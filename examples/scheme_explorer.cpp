/**
 * @file
 * Scheme explorer: sweep any benchmark across every (configuration x
 * scheme) cell and report IPC, synthesis frequency, and the combined
 * performance — the full paper-style comparison for one workload,
 * across the whole scheme roster (including the NDA-Strict,
 * Delay-on-Miss, and DelayAll extensions) plus the two-taint-store
 * ablation.
 *
 * Usage: scheme_explorer [benchmark]
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "harness/engine.hh"
#include "synth/area_model.hh"
#include "synth/power_model.hh"
#include "synth/timing_model.hh"

int
main(int argc, char **argv)
{
    using namespace sb;

    const std::string bench = argc > 1 ? argv[1] : "520.omnetpp";
    std::printf("Scheme explorer: %s\n\n", bench.c_str());

    struct Variant
    {
        std::string label;
        SchemeConfig cfg;
    };
    std::vector<Variant> variants;
    for (const SchemeConfig &c : allSchemeConfigs())
        variants.push_back({schemeName(c.scheme), c});
    {
        SchemeConfig c;
        c.scheme = Scheme::SttRename;
        c.twoTaintStores = true;
        variants.push_back({"STT-Rename+2taint", c});
    }

    const auto configs = CoreConfig::boomPresets();
    std::vector<RunSpec> specs;
    for (const auto &cfg : configs) {
        for (const auto &v : variants) {
            RunSpec s;
            s.core = cfg;
            s.scheme = v.cfg;
            s.workload = bench;
            s.measureInsts = 100000;
            specs.push_back(std::move(s));
        }
    }
    // The engine dedups identical cells and honours SB_JOBS; a cache
    // directory could be passed via Options to memoize across runs.
    ExperimentEngine engine;
    const auto outcomes = engine.run(specs);

    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto &cfg = configs[ci];
        std::printf("--- %s (width %u) ---\n", cfg.name.c_str(),
                    cfg.coreWidth);
        TextTable t;
        t.header({"scheme", "IPC", "rel IPC", "rel MHz", "rel perf",
                  "rel power"});
        const double base_ipc =
            outcomes[ci * variants.size()].ipc;
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const auto &o = outcomes[ci * variants.size() + vi];
            const Scheme s = variants[vi].cfg.scheme;
            const double rel_ipc = o.ipc / base_ipc;
            const double rel_mhz =
                TimingModel::relativeFrequency(cfg, s);
            t.row({variants[vi].label, TextTable::num(o.ipc, 3),
                   TextTable::pct(rel_ipc), TextTable::pct(rel_mhz),
                   TextTable::pct(rel_ipc * rel_mhz),
                   TextTable::num(PowerModel::relative(cfg, s), 3)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
