/**
 * @file
 * Pipeline/taint trace visualiser (the stand-in for the paper's
 * TraceDoctor methodology, Sec. 7): runs a workload under a chosen
 * scheme and prints a cycle-by-cycle event log for a window of
 * execution, annotated with sequence numbers, YRoTs, and the
 * visibility point.
 *
 * Usage: taint_trace [benchmark] [scheme] [skip_cycles] [show_cycles]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "trace/spec_suite.hh"

int
main(int argc, char **argv)
{
    using namespace sb;

    const std::string bench = argc > 1 ? argv[1] : "548.exchange2";
    const std::string scheme_name = argc > 2 ? argv[2] : "stt-rename";
    const Cycle skip = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                : 50000;
    const Cycle show = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                : 120;

    SchemeConfig scfg;
    if (scheme_name == "baseline")
        scfg.scheme = Scheme::Baseline;
    else if (scheme_name == "stt-rename")
        scfg.scheme = Scheme::SttRename;
    else if (scheme_name == "stt-issue")
        scfg.scheme = Scheme::SttIssue;
    else if (scheme_name == "nda")
        scfg.scheme = Scheme::Nda;
    else
        sb_fatal("unknown scheme: ", scheme_name);

    const Workload w = SpecSuite::make(bench);
    Core core(CoreConfig::mega(), scfg, makeScheme(scfg), w.program);

    std::printf("Tracing %s under %s (cycles %llu..%llu)\n\n",
                bench.c_str(), schemeName(scfg.scheme),
                static_cast<unsigned long long>(skip),
                static_cast<unsigned long long>(skip + show));

    // Fast-forward without tracing.
    while (core.now() < skip && !core.halted())
        core.tick();

    core.setTraceHook([&](const char *event, const DynInst &inst,
                          Cycle at) {
        std::printf("%8llu  %-10s seq=%-8llu pc=%-4u %-24s",
                    static_cast<unsigned long long>(at), event,
                    static_cast<unsigned long long>(inst.seq), inst.pc,
                    inst.uop.disassemble().c_str());
        if (inst.yrot != invalidSeqNum)
            std::printf(" yrot=%llu",
                        static_cast<unsigned long long>(inst.yrot));
        if (inst.yrotMask != invalidSeqNum)
            std::printf(" mask=%llu",
                        static_cast<unsigned long long>(inst.yrotMask));
        std::printf(" vp=%llu\n",
                    static_cast<unsigned long long>(
                        core.visibilityPoint()));
    });

    const Cycle end = core.now() + show;
    while (core.now() < end && !core.halted())
        core.tick();
    return 0;
}
