/**
 * @file
 * Quickstart: build a core, pick a secure speculation scheme, run a
 * workload, and read the results.
 *
 * Usage: quickstart [benchmark] [scheme] [config]
 *   benchmark: a SPEC2017 stand-in name (default 505.mcf)
 *   scheme:    baseline | stt-rename | stt-issue | nda (default all)
 *   config:    small | medium | large | mega (default mega)
 *
 * Set SB_DUMP_STATS=1 to additionally dump every core and cache
 * counter per scheme.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/config.hh"
#include "common/table.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "trace/spec_suite.hh"

namespace
{

sb::CoreConfig
configByName(const std::string &name)
{
    if (name == "small")
        return sb::CoreConfig::small();
    if (name == "medium")
        return sb::CoreConfig::medium();
    if (name == "large")
        return sb::CoreConfig::large();
    if (name == "mega")
        return sb::CoreConfig::mega();
    sb_fatal("unknown config: ", name);
}

std::vector<sb::Scheme>
schemesByName(const std::string &name)
{
    if (name == "baseline")
        return {sb::Scheme::Baseline};
    if (name == "stt-rename")
        return {sb::Scheme::SttRename};
    if (name == "stt-issue")
        return {sb::Scheme::SttIssue};
    if (name == "nda")
        return {sb::Scheme::Nda};
    if (name == "all") {
        return {sb::Scheme::Baseline, sb::Scheme::SttRename,
                sb::Scheme::SttIssue, sb::Scheme::Nda};
    }
    sb_fatal("unknown scheme: ", name);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "505.mcf";
    const std::string scheme_name = argc > 2 ? argv[2] : "all";
    const std::string config_name = argc > 3 ? argv[3] : "mega";

    const sb::Workload workload = sb::SpecSuite::make(bench);
    const sb::CoreConfig cfg = configByName(config_name);

    std::printf("ShadowBinding quickstart: %s on the %s BOOM config\n\n",
                workload.name.c_str(), cfg.name.c_str());

    sb::TextTable table;
    table.header({"scheme", "IPC", "cycles", "insts", "mispredicts",
                  "order-violations", "blocks", "kills", "defers",
                  "forwards", "stt-viol", "nda-viol"});

    double base_ipc = 0.0;
    for (sb::Scheme s : schemesByName(scheme_name)) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(cfg, scfg, sb::makeScheme(scfg), workload.program);
        const sb::RunResult r = core.run(200000, 10'000'000);

        if (s == sb::Scheme::Baseline)
            base_ipc = r.ipc();
        std::string label = sb::schemeName(s);
        if (base_ipc > 0.0 && s != sb::Scheme::Baseline) {
            label += " (" + sb::TextTable::pct(r.ipc() / base_ipc)
                     + " of base)";
        }
        table.row({label, sb::TextTable::num(r.ipc()),
                   std::to_string(r.cycles),
                   std::to_string(r.instructions),
                   std::to_string(
                       core.stats().value("branch_mispredicts")),
                   std::to_string(
                       core.stats().value("mem_order_violations")),
                   std::to_string(
                       core.stats().value("scheme_select_blocks")),
                   std::to_string(
                       core.stats().value("scheme_issue_kills")),
                   std::to_string(
                       core.stats().value("deferred_broadcasts")),
                   std::to_string(core.stats().value("load_forwards")),
                   std::to_string(core.monitor().transmitViolations()),
                   std::to_string(core.monitor().consumeViolations())});
        if (std::getenv("SB_DUMP_STATS")) {
            std::printf("--- %s counters ---\n%s%s%s",
                        sb::schemeName(s),
                        core.stats().render().c_str(),
                        core.memorySystem().l1Cache().stats().render()
                            .c_str(),
                        core.memorySystem().l2Cache().stats().render()
                            .c_str());
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("stt-viol / nda-viol are ground-truth security-monitor "
                "counts:\nSTT schemes must show 0 stt-viol; NDA must "
                "show 0 of both.\n");
    return 0;
}

