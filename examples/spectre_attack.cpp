/**
 * @file
 * Spectre gadget-battery demonstration (the BOOM-attacks stand-in,
 * paper Sec. 7): leaks a multi-byte secret through the cache covert
 * channel on the unprotected baseline — via each gadget in the
 * battery — then shows STT-Rename, STT-Issue, and NDA blocking all of
 * them.
 *
 * Usage: spectre_attack [config] [secret-string] [gadget]
 *   gadget: spectre-v1 (default), spectre-v1-mask,
 *           spectre-v2-indirect, spectre-v4-ssb, or "all"
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "harness/attack.hh"

namespace
{

sb::CoreConfig
configByName(const std::string &name)
{
    if (name == "small")
        return sb::CoreConfig::small();
    if (name == "medium")
        return sb::CoreConfig::medium();
    if (name == "large")
        return sb::CoreConfig::large();
    if (name == "mega")
        return sb::CoreConfig::mega();
    sb_fatal("unknown config: ", name);
}

void
runBattery(sb::GadgetKind gadget, const sb::CoreConfig &cfg,
           const std::string &secret)
{
    using namespace sb;

    std::printf("--- %s ---\n", gadgetName(gadget));
    for (Scheme s : allSchemes()) {
        SchemeConfig scfg;
        scfg.scheme = s;
        std::string timing_out, oracle_out;
        std::uint64_t violations = 0;
        bool any_leak = false;
        for (std::size_t i = 0; i < secret.size(); ++i) {
            const auto byte = static_cast<std::uint8_t>(secret[i]);
            const AttackResult res =
                runGadget(gadget, cfg, scfg, byte, 1000 + i);
            timing_out += res.timingByte > 0
                              ? static_cast<char>(res.timingByte)
                              : '?';
            oracle_out += res.oracleByte > 0
                              ? static_cast<char>(res.oracleByte)
                              : '?';
            violations += res.transmitViolations;
            any_leak |= res.leaked;
        }
        std::printf("%-11s timing probe: \"%s\"   residency oracle: "
                    "\"%s\"   -> %s (monitor transmit-violations: "
                    "%llu)\n",
                    schemeName(s), timing_out.c_str(),
                    oracle_out.c_str(),
                    any_leak ? "SECRET LEAKED" : "leak blocked",
                    static_cast<unsigned long long>(violations));
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace sb;

    const std::string config_name = argc > 1 ? argv[1] : "mega";
    const std::string secret = argc > 2 ? argv[2] : "SB!25";
    const std::string gadget_name = argc > 3 ? argv[3] : "spectre-v1";
    const CoreConfig cfg = configByName(config_name);

    std::vector<GadgetKind> gadgets;
    if (gadget_name == "all") {
        gadgets = allGadgets();
    } else {
        GadgetKind kind;
        if (!gadgetFromName(gadget_name, kind))
            sb_fatal("unknown gadget: ", gadget_name,
                     " (try spectre-v1, spectre-v1-mask, "
                     "spectre-v2-indirect, spectre-v4-ssb, all)");
        gadgets.push_back(kind);
    }

    std::printf("Spectre battery on the %s BOOM configuration; secret "
                "= \"%s\"\n\n", cfg.name.c_str(), secret.c_str());
    for (GadgetKind gadget : gadgets)
        runBattery(gadget, cfg, secret);

    std::printf("Each gadget arms a different transient entry — a "
                "trained bounds check (v1), the same behind an\n"
                "ineffective index mask (v1-mask), a mistrained "
                "indirect-branch target (v2), or a bypassed\n"
                "sanitising store (v4/SSB) — into one shared "
                "transmitter: the secret byte is encoded into the\n"
                "set-state of a probe array and recovered from "
                "serialised commit-to-commit load gaps.\n");
    return 0;
}
