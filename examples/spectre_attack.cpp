/**
 * @file
 * Spectre-v1 end-to-end demonstration (the BOOM-attacks stand-in,
 * paper Sec. 7): leaks a multi-byte secret through the cache covert
 * channel on the unprotected baseline, then shows STT-Rename,
 * STT-Issue, and NDA blocking the same attack.
 *
 * Usage: spectre_attack [config] [secret-string]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/config.hh"
#include "common/logging.hh"
#include "harness/attack.hh"

namespace
{

sb::CoreConfig
configByName(const std::string &name)
{
    if (name == "small")
        return sb::CoreConfig::small();
    if (name == "medium")
        return sb::CoreConfig::medium();
    if (name == "large")
        return sb::CoreConfig::large();
    if (name == "mega")
        return sb::CoreConfig::mega();
    sb_fatal("unknown config: ", name);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace sb;

    const std::string config_name = argc > 1 ? argv[1] : "mega";
    const std::string secret = argc > 2 ? argv[2] : "SB!25";
    const CoreConfig cfg = configByName(config_name);

    std::printf("Spectre-v1 on the %s BOOM configuration; secret = "
                "\"%s\"\n\n", cfg.name.c_str(), secret.c_str());

    const Scheme schemes[] = {Scheme::Baseline, Scheme::SttRename,
                              Scheme::SttIssue, Scheme::Nda};
    for (Scheme s : schemes) {
        SchemeConfig scfg;
        scfg.scheme = s;
        std::string timing_out, oracle_out;
        std::uint64_t violations = 0;
        bool any_leak = false;
        for (std::size_t i = 0; i < secret.size(); ++i) {
            const auto byte = static_cast<std::uint8_t>(secret[i]);
            const AttackResult res =
                runSpectreV1(cfg, scfg, byte, 1000 + i);
            timing_out += res.timingByte > 0
                              ? static_cast<char>(res.timingByte)
                              : '?';
            oracle_out += res.oracleByte > 0
                              ? static_cast<char>(res.oracleByte)
                              : '?';
            violations += res.transmitViolations;
            any_leak |= res.leaked;
        }
        std::printf("%-11s timing probe: \"%s\"   residency oracle: "
                    "\"%s\"   -> %s (monitor transmit-violations: "
                    "%llu)\n",
                    schemeName(s), timing_out.c_str(),
                    oracle_out.c_str(),
                    any_leak ? "SECRET LEAKED" : "leak blocked",
                    static_cast<unsigned long long>(violations));
    }

    std::printf("\nThe attack: a bounds-check branch is trained "
                "in-range, then given an out-of-range index while the\n"
                "bound is delayed behind a cold pointer chase. The "
                "transient gadget reads the secret and encodes it\n"
                "into the set-state of a probe array; a serialised "
                "timing probe (commit-to-commit gaps) recovers it.\n");
    return 0;
}
