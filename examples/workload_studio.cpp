/**
 * @file
 * Workload studio: build a custom kernel from the generator library,
 * inspect its static code, and measure how each secure speculation
 * scheme responds to its character — a playground for exploring the
 * microarchitectural levers (slow branches, dependent loads, tainted
 * store data) described in DESIGN.md.
 *
 * Usage: workload_studio [kernel]
 *   kernel: stream | chase | chain | branchy | storefwd | hashmix
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/table.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "trace/kernels.hh"

namespace
{

sb::Program
buildKernel(const std::string &kind)
{
    if (kind == "stream") {
        sb::StreamParams p;
        p.footprintBytes = 8u << 20;
        return sb::makeStreamKernel(p);
    }
    if (kind == "chase") {
        sb::PointerChaseParams p;
        p.footprintBytes = 4u << 20;
        p.chains = 3;
        p.branchChainLength = 6;
        return sb::makePointerChaseKernel(p);
    }
    if (kind == "chain") {
        sb::ComputeChainParams p;
        p.chainLength = 8;
        p.independentWork = 6;
        return sb::makeComputeChainKernel(p);
    }
    if (kind == "branchy") {
        sb::BranchyParams p;
        p.hardBranches = 3;
        p.slowBranchChain = 6;
        return sb::makeBranchyKernel(p);
    }
    if (kind == "storefwd") {
        sb::StoreForwardParams p;
        return sb::makeStoreForwardKernel(p);
    }
    if (kind == "hashmix") {
        sb::HashMixParams p;
        p.dependentLoadFraction = 0.5;
        return sb::makeHashMixKernel(p);
    }
    sb_fatal("unknown kernel: ", kind);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace sb;

    const std::string kind = argc > 1 ? argv[1] : "storefwd";
    const Program program = buildKernel(kind);

    std::printf("Kernel '%s': %zu static micro-ops\n\n", kind.c_str(),
                program.size());
    std::printf("First loop body (disassembly up to 40 ops):\n");
    std::string dis = program.disassemble();
    std::size_t lines = 0;
    std::size_t pos = 0;
    while (lines < 40 && pos < dis.size()) {
        const auto nl = dis.find('\n', pos);
        std::printf("  %s\n", dis.substr(pos, nl - pos).c_str());
        pos = nl + 1;
        ++lines;
    }

    std::printf("\nScheme response on the Mega configuration:\n");
    TextTable t;
    t.header({"scheme", "IPC", "relative", "blocks", "kills",
              "defers", "violations"});
    double base = 0.0;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig scfg;
        scfg.scheme = s;
        Core core(CoreConfig::mega(), scfg, makeScheme(scfg), program);
        const auto r = core.run(120000, 10'000'000);
        if (s == Scheme::Baseline)
            base = r.ipc();
        t.row({schemeName(s), TextTable::num(r.ipc(), 3),
               TextTable::pct(base > 0 ? r.ipc() / base : 1.0),
               std::to_string(
                   core.stats().value("scheme_select_blocks")),
               std::to_string(core.stats().value("scheme_issue_kills")),
               std::to_string(
                   core.stats().value("deferred_broadcasts")),
               std::to_string(
                   core.stats().value("mem_order_violations"))});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
