/**
 * @file
 * sbsim: the unified driver over the scenario registry.
 *
 *   sbsim list                       # scenarios, cell counts, titles
 *   sbsim run <scenario...> [opts]   # any slice of the grid
 *   sbsim all [opts]                 # the whole reproduction
 *   sbsim verify [opts]              # security battery -> leak matrix
 *   sbsim fuzz [opts]                # differential conformance fuzz
 *   sbsim serve [--fd N]             # shard worker daemon (internal)
 *
 * Common options, accepted identically by run/all/verify/fuzz (one
 * shared parser — parseCommonOpt — so the verbs cannot drift):
 *   --jobs N        worker threads (default: SB_JOBS, else hardware)
 *   --cache-dir D   result-cache directory (default: .sbsim-cache)
 *   --no-cache      disable the on-disk result cache
 *   --json          also write SBSIM_<scenario>.json outcome dumps
 *
 * run/all options:
 *   --shards N      run cells on N supervised worker processes
 *                   (`sbsim serve` children; crashes and hangs are
 *                   retried with backoff, poisoned cells quarantined,
 *                   and the tier degrades to in-process execution if
 *                   no worker survives)
 *   --cell-timeout S  per-cell wall-clock budget in seconds; overruns
 *                   come back as stats["watchdog_tripped"] outcomes
 *
 * verify options:
 *   --contract C    contract to judge protected cells under:
 *                   declared (default; each scheme's own contract),
 *                   sandboxing, or constant-time. The override only
 *                   rebinds cells whose scheme declares a contract —
 *                   the unprotected baseline keeps its armed-proof
 *                   role (and its constant-time violation record is
 *                   the printed evidence against it).
 *   --mitigation M  software co-study: run the gadget battery twice
 *                   (unmitigated + under M in {slh, fence, retpoline})
 *                   and fold the closure + overhead matrix; exits
 *                   nonzero unless M closes its target gadgets on the
 *                   unprotected core, leaves the others armed, and
 *                   keeps every hardware contract intact. With --json
 *                   writes SBSIM_verify_<M>.json.
 *
 * SIGINT/SIGTERM stop dispatch gracefully: in-flight work is cut
 * short, finished cells stay in the cache, the partial grid summary
 * still prints, and the process exits 128+signal. `sbsim serve` is
 * the worker end of the shard protocol (harness/protocol.hh); it is
 * spawned by the dispatcher and is not meant for interactive use.
 *
 * Fuzz options (sbsim fuzz only):
 *   --programs N    random programs per campaign (default 50)
 *   --seed S        base seed; program i uses seed S+i (default 0xC0FFEE)
 *   --profile P     op-mix profile (mixed|alu|mem|branch|all; default all)
 *   --core C        core preset (small|medium|large|mega; default mega)
 *   --mitigation M  apply a software mitigation (isa/transform.hh) to
 *                   every cell and judge architectural equivalence —
 *                   modulo the transform's inserted glue — against an
 *                   extra unmitigated Baseline oracle per program
 *
 * All requested scenarios are collected into one ExperimentEngine
 * batch, so overlapping grid cells are simulated once (in-batch
 * dedup) and persist across invocations (content-addressed cache).
 * `sbsim all` additionally writes BENCH_gridspeed.json with the grid
 * throughput accounting (cells requested / simulated / deduped /
 * cached, wall-clock) so the perf trajectory tracks grid cost next
 * to BENCH_simspeed.json.
 *
 * `sbsim verify` runs the Spectre gadget battery (the "security"
 * scenario's cells) and folds the paired secret-flipped runs into a
 * leak matrix: the process exits nonzero if any scheme breaks its
 * security contract (a claiming scheme leaks or shows differential
 * timing divergence, or the unsafe baseline fails to leak). With
 * --json the matrix is written to SBSIM_verify.json.
 *
 * `sbsim fuzz` runs the differential conformance campaign: seeded
 * random programs under every scheme, checked against the Baseline's
 * architectural results (src/harness/conformance.hh). Failures print
 * a minimized, replayable repro (seed + profile + scheme) and the
 * process exits nonzero. With --json the report is written to
 * SBSIM_fuzz.json. Fuzz cells ride the same engine, so --jobs,
 * --cache-dir, and --no-cache apply (authoritative CI smoke runs
 * --no-cache, like the security battery).
 */

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/signals.hh"
#include "core/security_contract.hh"
#include "harness/conformance.hh"
#include "harness/engine.hh"
#include "harness/result_cache.hh"
#include "harness/reporting.hh"
#include "harness/scenario.hh"
#include "harness/serve.hh"
#include "harness/verify.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s list\n"
                 "       %s run <scenario...> [common] [--shards N]"
                 " [--cell-timeout S]\n"
                 "       %s all [common] [--shards N] [--cell-timeout S]\n"
                 "       %s verify [common]"
                 " [--contract declared|sandboxing|constant-time]\n"
                 "               [--mitigation slh|fence|retpoline]\n"
                 "       %s fuzz [common] [--programs N] [--seed S]"
                 " [--profile P] [--core C] [--mitigation M]\n"
                 "       %s serve [--fd N] [--cache-dir D]\n"
                 "common options (identical for run/all/verify/fuzz):\n"
                 "       [--jobs N] [--cache-dir D] [--no-cache]"
                 " [--json]\n",
                 argv0, argv0, argv0, argv0, argv0, argv0);
    return 2;
}

/** "mixed|alu|...|all" — derived from the enum roster, so the CLI
 *  diagnostics cannot drift from the profiles that actually exist. */
std::string
profileVocabulary()
{
    std::string vocab;
    for (const sb::OpMixProfile p : sb::allOpMixProfiles()) {
        vocab += sb::opMixProfileName(p);
        vocab += '|';
    }
    return vocab + "all";
}

/** "small|medium|..." — derived from the preset roster. */
std::string
coreVocabulary()
{
    std::string vocab;
    for (const sb::CoreConfig &preset : sb::CoreConfig::boomPresets()) {
        if (!vocab.empty())
            vocab += '|';
        vocab += preset.name;
    }
    return vocab;
}

/** Options every simulating verb accepts with identical semantics. */
struct CommonOpts
{
    unsigned jobs = 0;              // 0 = resolveJobs() default
    std::string cacheDir = ".sbsim-cache";
    bool useCache = true;
    bool emitJson = false;
};

/**
 * Shared flag parser for the cross-verb options. Attempts to consume
 * argv[i] (advancing @p i past any value argument). Returns 1 when
 * consumed, 0 when argv[i] is not a common option, -1 on a malformed
 * value (diagnostic already printed).
 */
int
parseCommonOpt(int argc, char **argv, int &i, CommonOpts &opts)
{
    const std::string arg = argv[i];
    if (arg == "--jobs" || arg == "--cache-dir") {
        if (++i >= argc) {
            std::fprintf(stderr, "%s wants a value\n", arg.c_str());
            return -1;
        }
    }
    if (arg == "--jobs") {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(argv[i], &end, 10);
        if (end == argv[i] || *end != '\0' || errno != 0 || v <= 0
            || v > static_cast<long>(sb::maxJobs)) {
            std::fprintf(stderr, "--jobs wants an integer in [1, %u]\n",
                         sb::maxJobs);
            return -1;
        }
        opts.jobs = static_cast<unsigned>(v);
        return 1;
    }
    if (arg == "--cache-dir") {
        opts.cacheDir = argv[i];
        return 1;
    }
    if (arg == "--no-cache") {
        opts.useCache = false;
        return 1;
    }
    if (arg == "--json") {
        opts.emitJson = true;
        return 1;
    }
    return 0;
}

/** The path the dispatcher should exec as workers: this very binary. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

int
serveCommand(int argc, char **argv)
{
    sb::ServeOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fd" || arg == "--cache-dir") {
            if (++i >= argc)
                return usage(argv[0]);
        }
        if (arg == "--fd") {
            char *end = nullptr;
            errno = 0;
            const long v = std::strtol(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || errno != 0 || v < 0) {
                std::fprintf(stderr,
                             "--fd wants a nonnegative descriptor\n");
                return 2;
            }
            // One bidirectional descriptor (the dispatcher's
            // socketpair end) carries both directions.
            options.inFd = static_cast<int>(v);
            options.outFd = static_cast<int>(v);
        } else if (arg == "--cache-dir") {
            options.cacheDir = argv[i];
        } else {
            std::fprintf(stderr, "unknown serve option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    // A dispatcher that dies mid-reply must surface as EPIPE, not
    // SIGPIPE-kill the worker while it holds the cache lock.
    ::signal(SIGPIPE, SIG_IGN);
    return sb::serveMain(options);
}

int
listScenarios()
{
    const auto &registry = sb::ScenarioRegistry::instance();
    std::printf("%-16s %7s  %s\n", "scenario", "cells", "title");
    for (const auto &name : registry.names()) {
        const sb::Scenario *s = registry.find(name);
        std::printf("%-16s %7zu  %s\n", s->name.c_str(),
                    s->specs().size(), s->title.c_str());
    }
    return 0;
}

void
writeOutcomesJson(const std::string &scenario,
                  const std::vector<sb::RunOutcome> &outcomes)
{
    sb::Json doc = sb::Json::object();
    doc.set("scenario", sb::Json::str(scenario));
    sb::Json arr = sb::Json::array();
    for (const auto &o : outcomes)
        arr.push(sb::toJson(o));
    doc.set("outcomes", std::move(arr));

    const std::string path = "SBSIM_" + scenario + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "%s\n", doc.dump().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

void
writeVerifyJson(const sb::VerifyMatrix &matrix)
{
    std::FILE *f = std::fopen("SBSIM_verify.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open SBSIM_verify.json\n");
        return;
    }
    std::fprintf(f, "%s\n", sb::toJson(matrix).dump().c_str());
    std::fclose(f);
    std::printf("wrote SBSIM_verify.json\n");
}

void
writeGridspeedJson(const std::vector<std::string> &scenarios,
                   const sb::ExperimentEngine &engine)
{
    const sb::EngineStats &st = engine.stats();
    sb::Json doc = sb::Json::object();
    doc.set("bench", sb::Json::str("gridspeed"));
    sb::Json names = sb::Json::array();
    for (const auto &n : scenarios)
        names.push(sb::Json::str(n));
    doc.set("scenarios", std::move(names));
    doc.set("jobs", sb::Json::num(std::uint64_t(engine.jobs())));
    doc.set("cells_requested", sb::Json::num(st.requested));
    doc.set("cells_simulated", sb::Json::num(st.simulated));
    doc.set("cells_from_dedup", sb::Json::num(st.dedupHits));
    doc.set("cells_from_cache", sb::Json::num(st.cacheHits));
    doc.set("wall_seconds", sb::Json::num(st.wallSeconds));
    doc.set("workers_spawned", sb::Json::num(st.workersSpawned));
    doc.set("worker_crashes", sb::Json::num(st.shardCrashes));
    doc.set("worker_hangs", sb::Json::num(st.shardHangs));
    doc.set("cell_retries", sb::Json::num(st.shardRetries));
    doc.set("cells_stolen", sb::Json::num(st.shardStolen));

    std::FILE *f = std::fopen("BENCH_gridspeed.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open BENCH_gridspeed.json\n");
        return;
    }
    std::fprintf(f, "%s\n", doc.dump().c_str());
    std::fclose(f);
    std::printf("wrote BENCH_gridspeed.json\n");
}

void
writeFuzzJson(const sb::FuzzReport &report)
{
    std::FILE *f = std::fopen("SBSIM_fuzz.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open SBSIM_fuzz.json\n");
        return;
    }
    std::fprintf(f, "%s\n", sb::toJson(report).dump().c_str());
    std::fclose(f);
    std::printf("wrote SBSIM_fuzz.json\n");
}

int
fuzzMain(int argc, char **argv)
{
    sb::FuzzParams params;
    CommonOpts common;

    for (int i = 2; i < argc; ++i) {
        const int consumed = parseCommonOpt(argc, argv, i, common);
        if (consumed < 0)
            return 2;
        if (consumed > 0)
            continue;
        const std::string arg = argv[i];
        char *end = nullptr;
        errno = 0;
        if (arg == "--programs" || arg == "--seed"
            || arg == "--profile" || arg == "--core"
            || arg == "--mitigation") {
            if (++i >= argc)
                return usage(argv[0]);
        }
        if (arg == "--programs") {
            const unsigned long v = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || errno != 0 || v == 0
                || v > 1000000) {
                std::fprintf(stderr,
                             "--programs wants an integer in "
                             "[1, 1000000]\n");
                return 2;
            }
            params.programs = static_cast<unsigned>(v);
        } else if (arg == "--seed") {
            const unsigned long long v =
                std::strtoull(argv[i], &end, 0);
            if (end == argv[i] || *end != '\0' || errno != 0) {
                std::fprintf(stderr, "--seed wants a 64-bit integer\n");
                return 2;
            }
            params.baseSeed = v;
        } else if (arg == "--profile") {
            sb::OpMixProfile profile;
            if (std::string(argv[i]) == "all") {
                params.profiles.clear();
            } else if (sb::opMixProfileFromName(argv[i], profile)) {
                params.profiles = {profile};
            } else {
                std::fprintf(stderr, "unknown profile '%s' (want %s)\n",
                             argv[i], profileVocabulary().c_str());
                return 2;
            }
        } else if (arg == "--core") {
            bool found = false;
            for (const sb::CoreConfig &preset :
                 sb::CoreConfig::boomPresets()) {
                if (preset.name == argv[i]) {
                    params.core = preset;
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown core '%s' (want %s)\n",
                             argv[i], coreVocabulary().c_str());
                return 2;
            }
        } else if (arg == "--mitigation") {
            sb::Mitigation m;
            if (!sb::mitigationFromName(argv[i], m)) {
                std::fprintf(stderr,
                             "unknown mitigation '%s' (want %s)\n",
                             argv[i],
                             sb::mitigationVocabulary().c_str());
                return 2;
            }
            params.mitigation = m;
        } else {
            std::fprintf(stderr, "unknown fuzz option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    params.jobs = common.jobs;
    params.cacheDir = common.useCache ? common.cacheDir : std::string();

    const std::size_t stride =
        sb::allSchemeConfigs().size()
        + (params.mitigation != sb::Mitigation::None ? 1 : 0);
    std::printf("sbsim fuzz: %u program(s), %zu cells, base seed %llu, "
                "mitigation %s, cache %s\n",
                params.programs, params.programs * stride,
                static_cast<unsigned long long>(params.baseSeed),
                sb::mitigationName(params.mitigation),
                common.useCache ? common.cacheDir.c_str() : "off");
    const sb::FuzzReport report = sb::runFuzz(params);
    printFuzzReport(report, stdout);
    if (common.emitJson)
        writeFuzzJson(report);
    if (!report.ok()) {
        std::fprintf(stderr,
                     "sbsim fuzz: conformance oracle failed\n");
        return 1;
    }
    return 0;
}

/**
 * `sbsim verify --mitigation M`: the gadget battery twice — once
 * unmitigated, once under M — folded into the closure + overhead
 * co-study. Exits nonzero unless M closes every gadget it targets on
 * the unprotected core, leaves non-target gadgets demonstrably armed,
 * and breaks no hardware scheme's contract.
 */
int
verifyMitigationMain(sb::Mitigation m, const CommonOpts &common)
{
    const std::vector<sb::RunSpec> specs = sb::mitigationBatterySpecs(
        sb::CoreConfig::mega(), sb::allSchemeConfigs(), m);

    sb::ExperimentEngine::Options options;
    options.jobs = common.jobs;
    options.cacheDir =
        common.useCache ? common.cacheDir : std::string();
    sb::ExperimentEngine engine(options);

    std::printf("sbsim verify: mitigation %s, %zu cells, %u jobs, "
                "cache %s\n",
                sb::mitigationName(m), specs.size(), engine.jobs(),
                common.useCache ? common.cacheDir.c_str() : "off");
    const auto outcomes = engine.run(specs);
    const sb::MitigationReport report =
        sb::foldMitigationOutcomes(m, outcomes);
    sb::printMitigationReport(report, stdout);

    if (common.emitJson) {
        const std::string path = std::string("SBSIM_verify_")
                                 + sb::mitigationName(m) + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
        } else {
            std::fprintf(f, "%s\n", sb::toJson(report).dump().c_str());
            std::fclose(f);
            std::printf("wrote %s\n", path.c_str());
        }
    }

    if (engine.stats().interrupted) {
        std::fprintf(stderr, "sbsim: interrupted; partial results\n");
        const int sig = sb::interruptSignal();
        return sig > 0 ? 128 + sig : 130;
    }
    if (!report.ok()) {
        std::fprintf(stderr,
                     "sbsim verify: mitigation %s failed its closure "
                     "contract\n",
                     sb::mitigationName(m));
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    if (command == "list")
        return listScenarios();
    if (command == "serve")
        return serveCommand(argc, argv);
    // Graceful interrupt for every simulating verb: finish nothing
    // new, keep what is done, print the partial summary, exit
    // 128+signal. Workers (`serve`) keep default dispositions so the
    // dispatcher's supervision semantics stay observable.
    sb::installSignalHandlers();
    if (command == "fuzz")
        return fuzzMain(argc, argv);
    if (command != "run" && command != "all" && command != "verify")
        return usage(argv[0]);

    std::vector<std::string> names;
    CommonOpts common;
    unsigned shards = 0;
    double cell_timeout = 0;
    std::optional<sb::ContractPolicy> contract_override;
    std::optional<sb::Mitigation> mitigation;

    for (int i = 2; i < argc; ++i) {
        const int consumed = parseCommonOpt(argc, argv, i, common);
        if (consumed < 0)
            return 2;
        if (consumed > 0)
            continue;
        const std::string arg = argv[i];
        if (arg == "--shards" && command != "verify") {
            if (++i >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            errno = 0;
            const long v = std::strtol(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || errno != 0 || v < 0
                || v > 256) {
                std::fprintf(stderr,
                             "--shards wants an integer in [0, 256]\n");
                return 2;
            }
            shards = static_cast<unsigned>(v);
        } else if (arg == "--cell-timeout" && command != "verify") {
            if (++i >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            errno = 0;
            const double v = std::strtod(argv[i], &end);
            if (end == argv[i] || *end != '\0' || errno != 0 || v < 0) {
                std::fprintf(stderr,
                             "--cell-timeout wants a nonnegative "
                             "number of seconds\n");
                return 2;
            }
            cell_timeout = v;
        } else if (arg == "--contract" && command == "verify") {
            if (++i >= argc)
                return usage(argv[0]);
            const std::string want = argv[i];
            sb::ContractPolicy policy;
            if (want == "declared") {
                contract_override.reset();
            } else if (sb::contractPolicyFromName(want, policy)
                       && (policy == sb::ContractPolicy::Sandboxing
                           || policy
                                  == sb::ContractPolicy::ConstantTime)) {
                contract_override = policy;
            } else {
                std::fprintf(stderr,
                             "--contract wants declared, sandboxing, "
                             "or constant-time (got '%s')\n",
                             want.c_str());
                return 2;
            }
        } else if (arg == "--mitigation" && command == "verify") {
            if (++i >= argc)
                return usage(argv[0]);
            sb::Mitigation m;
            if (!sb::mitigationFromName(argv[i], m)
                || m == sb::Mitigation::None) {
                std::fprintf(stderr,
                             "--mitigation wants slh, fence, or "
                             "retpoline (got '%s')\n",
                             argv[i]);
                return 2;
            }
            mitigation = m;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown %s option '%s'\n",
                         command.c_str(), arg.c_str());
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }

    if (mitigation) {
        if (!names.empty())
            return usage(argv[0]);
        return verifyMitigationMain(*mitigation, common);
    }

    const auto &registry = sb::ScenarioRegistry::instance();
    if (command == "all" || command == "verify") {
        if (!names.empty())
            return usage(argv[0]);
        names = command == "verify"
                    ? std::vector<std::string>{"security"}
                    : registry.names();
    } else if (names.empty()) {
        return usage(argv[0]);
    }

    std::vector<const sb::Scenario *> scenarios;
    for (const auto &name : names) {
        const sb::Scenario *s = registry.find(name);
        if (!s) {
            std::fprintf(stderr,
                         "unknown scenario '%s' (try: %s list)\n",
                         name.c_str(), argv[0]);
            return 2;
        }
        scenarios.push_back(s);
    }

    // One batch over everything requested: cross-scenario cells dedup
    // inside the engine, and cached cells skip simulation entirely.
    std::vector<sb::RunSpec> specs;
    std::vector<std::size_t> offsets;
    for (const sb::Scenario *s : scenarios) {
        offsets.push_back(specs.size());
        auto mine = s->specs();
        specs.insert(specs.end(), std::make_move_iterator(mine.begin()),
                     std::make_move_iterator(mine.end()));
    }
    offsets.push_back(specs.size());

    sb::ExperimentEngine::Options options;
    options.jobs = common.jobs;
    // Model-only requests (zero cells) should not create a cache
    // directory as a side effect.
    options.cacheDir = common.useCache && !specs.empty()
                           ? common.cacheDir
                           : std::string();
    options.shards = shards;
    options.cellTimeoutSec = cell_timeout;
    if (shards > 0)
        options.sbsimPath = selfExePath(argv[0]);
    sb::ExperimentEngine engine(options);

    std::printf("sbsim: %zu scenario(s), %zu cells, %u jobs, cache %s",
                scenarios.size(), specs.size(), engine.jobs(),
                common.useCache ? common.cacheDir.c_str() : "off");
    if (shards > 0)
        std::printf(", %u shard worker(s)", shards);
    std::printf("\n");
    const auto results = engine.run(specs);

    bool verify_ok = true;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const std::vector<sb::RunOutcome> slice(
            results.begin() + offsets[i],
            results.begin() + offsets[i + 1]);
        std::printf("\n");
        if (command == "verify" || scenarios[i]->name == "security") {
            // Security outcomes always gate the exit code, however
            // they were reached (`verify`, `run security`, `all`):
            // a leak matrix printed with "verdict: FAIL" must not
            // exit 0. The dedicated verify command writes the folded
            // matrix JSON; the generic paths keep the raw outcome
            // dump (same as every other scenario).
            const sb::VerifyMatrix matrix =
                sb::foldVerifyOutcomes(slice, contract_override);
            sb::printVerifyMatrix(matrix, stdout);
            verify_ok = verify_ok && matrix.ok();
            if (common.emitJson) {
                if (command == "verify")
                    writeVerifyJson(matrix);
                else
                    writeOutcomesJson(scenarios[i]->name, slice);
            }
            continue;
        }
        scenarios[i]->report(slice, stdout);
        if (common.emitJson)
            writeOutcomesJson(scenarios[i]->name, slice);
    }

    const sb::EngineStats &st = engine.stats();
    std::printf("\n--- grid summary ---\n");
    std::printf("cells requested:   %llu\n",
                static_cast<unsigned long long>(st.requested));
    std::printf("cells simulated:   %llu\n",
                static_cast<unsigned long long>(st.simulated));
    std::printf("served by dedup:   %llu\n",
                static_cast<unsigned long long>(st.dedupHits));
    std::printf("served by cache:   %llu\n",
                static_cast<unsigned long long>(st.cacheHits));
    std::printf("wall-clock:        %.3f s (%u jobs)\n", st.wallSeconds,
                engine.jobs());
    if (engine.cache())
        std::printf("cache file:        %s (%zu entries)\n",
                    engine.cache()->path().c_str(),
                    engine.cache()->size());
    if (shards > 0) {
        std::printf("shard workers:     %llu spawned (crashes %llu, "
                    "hangs %llu, retries %llu, stolen %llu)\n",
                    static_cast<unsigned long long>(st.workersSpawned),
                    static_cast<unsigned long long>(st.shardCrashes),
                    static_cast<unsigned long long>(st.shardHangs),
                    static_cast<unsigned long long>(st.shardRetries),
                    static_cast<unsigned long long>(st.shardStolen));
        if (st.shardDegraded)
            std::printf("shard tier:        degraded; remainder ran "
                        "in-process\n");
    }
    for (const std::string &key : st.quarantinedKeys)
        std::printf("quarantined cell:  %s\n", key.c_str());

    if (command == "all")
        writeGridspeedJson(names, engine);
    if (st.interrupted) {
        std::fprintf(stderr,
                     "sbsim: interrupted; partial results "
                     "(%llu cell(s) unfinished)\n",
                     static_cast<unsigned long long>(
                         st.interruptedCells));
        const int sig = sb::interruptSignal();
        return sig > 0 ? 128 + sig : 130;
    }
    if (!verify_ok) {
        std::fprintf(stderr,
                     "sbsim verify: security contract violated\n");
        return 1;
    }
    if (!st.quarantinedKeys.empty()) {
        std::fprintf(stderr,
                     "sbsim: %zu cell(s) quarantined; results "
                     "incomplete\n",
                     st.quarantinedKeys.size());
        return 1;
    }
    return 0;
}
