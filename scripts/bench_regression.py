#!/usr/bin/env python3
"""Bench-regression gate: diff the simulator throughput artifacts
against the committed baselines.

    scripts/bench_regression.py [--build-dir build]
                                [--baseline-dir bench/baselines]
                                [--tolerance 0.20] [--update]
                                [--min-speedup X] [--floor-only]

Compares BENCH_simspeed.json (per-scheme simulated MIPS) against the
committed baseline and exits nonzero when any scheme regressed by more
than the tolerance (default 20%, override with --tolerance or the
SB_BENCH_TOLERANCE environment variable). BENCH_gridspeed.json is
diffed informationally: its cell accounting (requested / simulated /
dedup / cache) is deterministic and drift there means the scenario
grid itself changed, but its wall-clock depends on cache warmth so it
never gates.

--min-speedup X adds a *floor* gate: every scheme must reach at least
X times its committed baseline MIPS. Unlike the tolerance gate (meant
for the reference machine, so it is tight), the floor is meant to be
loose enough to hold on any hardware — CI runners are slower than the
reference machine, but a catastrophic engine regression (an order of
magnitude, a pathological O(n) loop) still trips it.

--floor-only applies just the floor gate and skips both the tolerance
gate and the gridspeed diff; together with `bench_simspeed --quick`
this is the CI smoke configuration, which has no gridspeed artifact.

--update refreshes the committed baselines from the current build
directory (run on the reference machine after an intentional
performance change, and say so in the commit).

Only the standard library is used; no third-party dependencies.
"""

import argparse
import json
import os
import shutil
import sys

SIMSPEED = "BENCH_simspeed.json"
GRIDSPEED = "BENCH_gridspeed.json"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"bench_regression: missing {path}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_regression: malformed {path}: {err}")


def diff_simspeed(baseline, current, tolerance, min_speedup=None,
                  floor_only=False):
    base_schemes = {s["name"]: s for s in baseline.get("schemes", [])}
    cur_schemes = {s["name"]: s for s in current.get("schemes", [])}
    failures = []

    if floor_only:
        gate = f"gate: MIPS >= {min_speedup:.2f}x baseline"
    elif min_speedup is not None:
        gate = (f"gate: MIPS within -{tolerance:.0%}, "
                f"floor {min_speedup:.2f}x")
    else:
        gate = f"gate: MIPS within -{tolerance:.0%}"
    print(f"--- {SIMSPEED} ({gate}) ---")
    print(f"{'scheme':<12} {'base MIPS':>10} {'now MIPS':>10} {'delta':>8}")
    for name, base in base_schemes.items():
        cur = cur_schemes.get(name)
        if cur is None:
            failures.append(f"scheme '{name}' missing from current run")
            continue
        base_mips = float(base["mips"])
        cur_mips = float(cur["mips"])
        delta = (cur_mips - base_mips) / base_mips if base_mips else 0.0
        marker = ""
        if (not floor_only and base_mips
                and cur_mips < base_mips * (1.0 - tolerance)):
            failures.append(
                f"{name}: {cur_mips:.3f} MIPS vs baseline "
                f"{base_mips:.3f} ({delta:+.1%})"
            )
            marker = "  <-- REGRESSION"
        if (min_speedup is not None and base_mips
                and cur_mips < base_mips * min_speedup):
            failures.append(
                f"{name}: {cur_mips:.3f} MIPS below the floor of "
                f"{min_speedup:.2f}x baseline "
                f"({base_mips * min_speedup:.3f})"
            )
            marker = "  <-- BELOW FLOOR"
        print(f"{name:<12} {base_mips:>10.3f} {cur_mips:>10.3f} "
              f"{delta:>+7.1%}{marker}")
    for name in cur_schemes.keys() - base_schemes.keys():
        print(f"{name:<12} {'(new)':>10} "
              f"{float(cur_schemes[name]['mips']):>10.3f}")
    return failures


def diff_gridspeed(baseline, current):
    print(f"\n--- {GRIDSPEED} (informational) ---")
    keys = ["cells_requested", "cells_simulated", "cells_from_dedup",
            "cells_from_cache"]
    drifted = False
    for key in keys:
        base_v = baseline.get(key)
        cur_v = current.get(key)
        note = ""
        # The *requested* cell count is a property of the scenario
        # registry, not of cache warmth; a change there means the grid
        # itself changed shape and the baseline wants refreshing.
        if key == "cells_requested" and base_v != cur_v:
            note = "  <-- grid shape changed (refresh baseline?)"
            drifted = True
        print(f"{key:<20} base={base_v}  now={cur_v}{note}")
    print(f"{'wall_seconds':<20} base={baseline.get('wall_seconds')}  "
          f"now={current.get('wall_seconds')} (cache-warmth dependent)")
    return drifted


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("SB_BENCH_TOLERANCE", "0.20")),
    )
    parser.add_argument("--update", action="store_true",
                        help="refresh the committed baselines")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="floor gate: each scheme must reach X times its baseline "
             "MIPS (machine-tolerant catastrophic-regression check)",
    )
    parser.add_argument(
        "--floor-only",
        action="store_true",
        help="apply only the --min-speedup floor; skip the tolerance "
             "gate and the gridspeed diff (CI smoke mode)",
    )
    args = parser.parse_args()
    if args.floor_only and args.min_speedup is None:
        parser.error("--floor-only requires --min-speedup")

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in (SIMSPEED, GRIDSPEED):
            src = os.path.join(args.build_dir, name)
            if not os.path.exists(src):
                sys.exit(f"bench_regression: cannot update, missing {src}")
            shutil.copyfile(src, os.path.join(args.baseline_dir, name))
            print(f"updated {args.baseline_dir}/{name}")
        return

    failures = diff_simspeed(
        load(os.path.join(args.baseline_dir, SIMSPEED)),
        load(os.path.join(args.build_dir, SIMSPEED)),
        args.tolerance,
        min_speedup=args.min_speedup,
        floor_only=args.floor_only,
    )
    if not args.floor_only:
        diff_gridspeed(
            load(os.path.join(args.baseline_dir, GRIDSPEED)),
            load(os.path.join(args.build_dir, GRIDSPEED)),
        )

    if failures:
        print("\nFAIL: simulator throughput gate:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("\nbench regression gate: PASS")


if __name__ == "__main__":
    main()
