#!/usr/bin/env bash
# One-command verification gate: configure + build + ctest (the
# tier-1 command), optionally under AddressSanitizer/UBSan.
#
#   scripts/check.sh          # Release build + full test suite
#   scripts/check.sh --asan   # Sanitizer build + full test suite
#   scripts/check.sh --bench  # Also run the sim-speed benchmark
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_flags=()
run_bench=0
for arg in "$@"; do
    case "$arg" in
      --asan)
        build_dir=build-asan
        cmake_flags+=(-DSB_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug)
        ;;
      --bench)
        run_bench=1
        ;;
      *)
        echo "usage: $0 [--asan] [--bench]" >&2
        exit 2
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

if [ "$run_bench" = 1 ]; then
    (cd "$build_dir" && ./bench_simspeed)
    echo "sim-speed results: $build_dir/BENCH_simspeed.json"
fi
