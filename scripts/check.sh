#!/usr/bin/env bash
# One-command verification gate: configure + build + ctest (the
# tier-1 command), optionally under AddressSanitizer/UBSan.
#
#   scripts/check.sh          # Release build + full test suite
#   scripts/check.sh --asan   # Sanitizer build + full test suite
#   scripts/check.sh --bench  # Also run sim-speed + the sbsim grid
#
# SB_JOBS bounds simulation worker threads (tests and sbsim).
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_flags=()
run_bench=0
for arg in "$@"; do
    case "$arg" in
      --asan)
        build_dir=build-asan
        cmake_flags+=(-DSB_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug)
        ;;
      --bench)
        run_bench=1
        ;;
      *)
        echo "usage: $0 [--asan] [--bench]" >&2
        exit 2
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

if [ "$run_bench" = 1 ]; then
    (cd "$build_dir" && ./bench_simspeed)
    echo "sim-speed results: $build_dir/BENCH_simspeed.json"
    # Full grid through the scenario engine: dedup + result cache make
    # a warm rerun near-instant; BENCH_gridspeed.json tracks grid
    # throughput across PRs next to BENCH_simspeed.json.
    (cd "$build_dir" && ./sbsim all --cache-dir .sbsim-cache > sbsim_all.log)
    tail -n 12 "$build_dir/sbsim_all.log"
    echo "grid-speed results: $build_dir/BENCH_gridspeed.json (full report: $build_dir/sbsim_all.log)"
fi
