#!/usr/bin/env bash
# One-command verification gate: configure + build + ctest (the
# tier-1 command), optionally under AddressSanitizer/UBSan.
#
#   scripts/check.sh           # Release build + full test suite
#   scripts/check.sh --quick   # Fast-label tests only (inner loop)
#   scripts/check.sh --asan    # Sanitizer build + full test suite
#   scripts/check.sh --bench   # Also run sim-speed + the sbsim grid
#   scripts/check.sh --verify  # Also run the Spectre gadget battery
#   scripts/check.sh --contracts # Also judge the battery under the
#                              # constant-time contract + run the
#                              # contract_check fuzz scenario
#   scripts/check.sh --fuzz    # Also run the conformance fuzz smoke
#   scripts/check.sh --mitigations # Also prove each software
#                              # mitigation's gadget closure and run a
#                              # mitigated conformance slice
#   scripts/check.sh --docs    # Also run the markdown docs link check
#   scripts/check.sh --shards  # Also run the shard-tier smoke
#                              # (cold sharded run == in-process run)
#   scripts/check.sh --tenants # Also run the multi-tenant server mix
#                              # and gate on its cross-tenant verdict
#
# SB_JOBS bounds simulation worker threads (tests and sbsim).
# Flags compose: e.g. `check.sh --asan --verify`.
#
# Every optional block runs with its exit status checked explicitly:
# a failing bench or battery fails the script even as the final
# command (a bare trailing `if` can otherwise mask the status under
# `set -e`, which does not apply inside conditionals).
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_flags=()
ctest_flags=()
run_bench=0
run_verify=0
run_contracts=0
run_fuzz=0
run_mitigations=0
run_docs=0
run_shards=0
run_tenants=0
for arg in "$@"; do
    case "$arg" in
      --asan)
        build_dir=build-asan
        cmake_flags+=(-DSB_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug)
        ;;
      --quick)
        # Inner-loop slice: only tests labelled `fast` (see the label
        # taxonomy in CMakeLists.txt). The full suite stays the gate.
        ctest_flags+=(-L fast)
        ;;
      --bench)
        run_bench=1
        ;;
      --verify)
        run_verify=1
        ;;
      --contracts)
        run_contracts=1
        ;;
      --fuzz)
        run_fuzz=1
        ;;
      --mitigations)
        run_mitigations=1
        ;;
      --docs)
        run_docs=1
        ;;
      --shards)
        run_shards=1
        ;;
      --tenants)
        run_tenants=1
        ;;
      *)
        echo "usage: $0 [--asan] [--quick] [--bench] [--verify]" \
             "[--contracts] [--fuzz] [--mitigations] [--docs]" \
             "[--shards] [--tenants]" >&2
        exit 2
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
      "${ctest_flags[@]}"

status=0

if [ "$run_verify" = 1 ]; then
    # The security battery: every gadget x scheme cell, differentially
    # checked; `sbsim verify` exits nonzero on any contract breach.
    # Deliberately --no-cache: the result cache is addressed by
    # configuration, not by simulator/scheme *code*, so a cached
    # verdict could green-light a scheme broken by the very change
    # under test. The battery re-simulates in ~2 s; honesty is cheap.
    if (cd "$build_dir" && ./sbsim verify --no-cache --json); then
        echo "leak matrix: $build_dir/SBSIM_verify.json"
    else
        echo "FAIL: security battery reported a leak / divergence" >&2
        status=1
    fi
fi

if [ "$run_contracts" = 1 ]; then
    # Contract shadow gate: the battery re-judged under the strictest
    # (constant-time) policy, plus the contract_check scenario over
    # the fuzz corpus. The matrix JSON moves aside so it never
    # clobbers the --verify output. --no-cache for the same reason as
    # the battery: a cached verdict must never green-light a broken
    # scheme.
    if (cd "$build_dir" \
        && ./sbsim verify --contract constant-time --no-cache --json \
        && mv SBSIM_verify.json SBSIM_verify_ct.json \
        && ./sbsim run contract_check --no-cache); then
        echo "constant-time matrix: $build_dir/SBSIM_verify_ct.json"
    else
        echo "FAIL: contract shadow check" >&2
        status=1
    fi
fi

if [ "$run_fuzz" = 1 ]; then
    # Differential conformance smoke: random programs under every
    # scheme vs the Baseline's architectural results. Like the
    # security battery, deliberately --no-cache: a cached conformance
    # verdict must never green-light a scheme broken by the change
    # under test.
    if (cd "$build_dir" && ./sbsim fuzz --programs 50 --no-cache --json); then
        echo "conformance report: $build_dir/SBSIM_fuzz.json"
    else
        echo "FAIL: conformance fuzz found a divergence/deadlock" >&2
        status=1
    fi
fi

if [ "$run_mitigations" = 1 ]; then
    # Software-mitigation gate: each pass must close exactly its
    # target gadgets on the unprotected core (`sbsim verify
    # --mitigation` exits nonzero on any closure miss), and a
    # mitigated conformance slice must stay architecturally
    # equivalent to the unmitigated oracle. --no-cache for the same
    # reason as the battery: a cached verdict must never green-light
    # a pass broken by the change under test.
    for m in slh fence retpoline; do
        if (cd "$build_dir" && ./sbsim verify --mitigation "$m" --no-cache --json); then
            echo "closure matrix: $build_dir/SBSIM_verify_$m.json"
        else
            echo "FAIL: mitigation $m missed its closure contract" >&2
            status=1
        fi
        if (cd "$build_dir" && ./sbsim fuzz --programs 10 --mitigation "$m" --no-cache); then
            :
        else
            echo "FAIL: mitigation $m broke architectural equivalence" >&2
            status=1
        fi
    done
fi

if [ "$run_bench" = 1 ]; then
    if (cd "$build_dir" && ./bench_simspeed); then
        echo "sim-speed results: $build_dir/BENCH_simspeed.json"
    else
        echo "FAIL: bench_simspeed" >&2
        status=1
    fi
    # Full grid through the scenario engine: dedup + result cache make
    # a warm rerun near-instant; BENCH_gridspeed.json tracks grid
    # throughput across PRs next to BENCH_simspeed.json.
    if (cd "$build_dir" && ./sbsim all --cache-dir .sbsim-cache > sbsim_all.log); then
        tail -n 12 "$build_dir/sbsim_all.log"
        echo "grid-speed results: $build_dir/BENCH_gridspeed.json (full report: $build_dir/sbsim_all.log)"
    else
        echo "FAIL: sbsim all (log: $build_dir/sbsim_all.log)" >&2
        status=1
    fi
fi

if [ "$run_shards" = 1 ]; then
    # Shard-tier smoke: a COLD sharded run (fresh cache, real
    # `sbsim serve` workers) must produce byte-identical outcome
    # dumps to an in-process run of the same scenario. This is the
    # end-to-end distributed-correctness gate; the fault-injection
    # paths are covered by tests/test_shard.cpp in the suite above.
    shard_tmp=$(mktemp -d)
    if (cd "$build_dir" \
        && ./sbsim run table1 --shards 2 \
             --cache-dir "$shard_tmp/cache" --json > /dev/null \
        && mv SBSIM_table1.json "$shard_tmp/sharded.json" \
        && ./sbsim run table1 --no-cache --json > /dev/null \
        && mv SBSIM_table1.json "$shard_tmp/inproc.json" \
        && diff "$shard_tmp/sharded.json" "$shard_tmp/inproc.json"); then
        echo "shard smoke: sharded == in-process (byte-identical)"
    else
        echo "FAIL: sharded run diverged from in-process run" >&2
        status=1
    fi
    rm -rf "$shard_tmp"
fi

if [ "$run_tenants" = 1 ]; then
    # Multi-tenant gate: the consolidated-server mix across the
    # scheme roster x switch policies. --no-cache like the battery: a
    # cached verdict must never green-light a broken scheme. The
    # verdict itself lives in the JSON: Baseline must show a
    # cross-tenant transmit (the battery is armed) and every dataflow
    # scheme must show none; DoM is sandboxing-only and exempt.
    if (cd "$build_dir" \
        && ./sbsim run multi_tenant --no-cache > /dev/null) \
       && python3 - "$build_dir/SBSIM_multi_tenant_summary.json" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
dataflow = {"STT-Rename", "STT-Issue", "NDA", "NDA-Strict", "DelayAll"}
baseline_leaks = any(c["cross_tenant_violations"] > 0
                     for c in cells if c["scheme"] == "Baseline")
dataflow_leaks = [c for c in cells
                  if c["scheme"] in dataflow
                  and c["cross_tenant_violations"] > 0]
ok = baseline_leaks and not dataflow_leaks
if not baseline_leaks:
    print("tenant gate: Baseline showed no cross-tenant transmit "
          "(battery disarmed)", file=sys.stderr)
for c in dataflow_leaks:
    print(f"tenant gate: {c['scheme']} leaked "
          f"({c['cross_tenant_violations']} violations)",
          file=sys.stderr)
sys.exit(0 if ok else 1)
EOF
    then
        echo "multi-tenant report: $build_dir/SBSIM_multi_tenant_summary.json"
    else
        echo "FAIL: multi-tenant cross-domain gate" >&2
        status=1
    fi
fi

if [ "$run_docs" = 1 ]; then
    # Markdown link/anchor check: the docs layer must not rot.
    if python3 scripts/check_docs.py; then
        :
    else
        echo "FAIL: broken markdown links (scripts/check_docs.py)" >&2
        status=1
    fi
fi

exit "$status"
