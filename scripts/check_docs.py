#!/usr/bin/env python3
"""Markdown link/anchor checker for the docs layer.

Walks every tracked *.md file (git ls-files, falling back to a
filesystem walk), extracts inline links and images, and fails on:

  - relative links whose target file does not exist;
  - fragment links (#anchor) whose heading does not exist in the
    target file (GitHub slugification rules);
  - empty link targets.

External http(s)/mailto links are not fetched (CI must not depend on
the network); their syntax is still validated. Exit status is the
number of broken links, so `python3 scripts/check_docs.py` composes
directly into scripts/check.sh and CI.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline links/images: [text](target "title") — tolerates one level of
# balanced parentheses inside the target (GitHub does the same).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]*(?:\([^()]*\)[^()\s]*)*)"
                     r"(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def tracked_markdown():
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others",
             "--exclude-standard", "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True)
        files = [f for f in out.stdout.splitlines() if f.strip()]
        if files:
            return sorted(set(files))
    except (subprocess.CalledProcessError, OSError):
        pass
    found = []
    for root, dirs, names in os.walk(REPO):
        dirs[:] = [d for d in dirs
                   if d not in {".git", "build", "build-asan"}]
        for name in names:
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(root, name),
                                             REPO))
    return sorted(found)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->-.

    Underscores are word characters and survive slugification (e.g. a
    heading quoting `stt_rename.cc` keeps its underscore); only
    backtick/asterisk formatting is stripped.
    """
    text = re.sub(r"[`*]", "", heading)           # inline formatting
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path):
    slugs = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            # Duplicate headings get -1, -2, ... suffixes on GitHub.
            n = slugs.get(slug, -1) + 1
            slugs[slug] = n
            if n:
                slugs[f"{slug}-{n}"] = 0
    return set(slugs)


def links_of(path):
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


def main():
    errors = []
    files = tracked_markdown()
    checked = 0
    for rel in files:
        path = os.path.join(REPO, rel)
        if not os.path.isfile(path):
            continue
        for lineno, target in links_of(path):
            checked += 1
            where = f"{rel}:{lineno}"
            if not target:
                errors.append(f"{where}: empty link target")
                continue
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # http(s)/mailto/...: not fetched.
            base, _, fragment = target.partition("#")
            if base:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), base))
                if os.path.commonpath([REPO, dest]) != REPO:
                    # Escapes the repo (e.g. the ../../actions/...
                    # CI-badge URL): resolves on the forge, not on
                    # disk — nothing to validate locally.
                    continue
                if not os.path.exists(dest):
                    errors.append(f"{where}: missing target '{base}'")
                    continue
            else:
                dest = path
            if fragment and dest.endswith(".md"):
                if fragment not in headings_of(dest):
                    errors.append(
                        f"{where}: no heading for anchor "
                        f"'#{fragment}' in {os.path.relpath(dest, REPO)}")
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    print(f"check_docs: {len(files)} files, {checked} links, "
          f"{len(errors)} broken")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
