/**
 * @file
 * Thin wrapper over the "table4" scenario (src/harness/scenarios.cc):
 * LUT/FF/power per scheme relative to baseline (model-only, no
 * simulation cells).
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("table4");
}
