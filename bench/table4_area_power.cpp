/**
 * @file
 * Reproduces Table 4: LUTs, flip-flops, and power for every scheme,
 * normalised to the unsafe baseline (synthesised at 50 MHz on the
 * Mega configuration). Paper values: STT-Rename 1.060/1.094/1.008,
 * STT-Issue 1.059/1.039/1.026, NDA 0.980/1.027/0.936.
 */

#include <cstdio>

#include "common/table.hh"
#include "synth/area_model.hh"
#include "synth/power_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Table 4: area and power, normalised to baseline "
                "(Mega) ===\n\n");

    const CoreConfig mega = CoreConfig::mega();

    TextTable t;
    t.header({"scheme", "LUTs", "FFs", "Power", "paper (LUT/FF/P)"});
    const char *paper[] = {"1.060 / 1.094 / 1.008",
                           "1.059 / 1.039 / 1.026",
                           "0.980 / 1.027 / 0.936"};
    int i = 0;
    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        const AreaEstimate rel = AreaModel::relative(mega, s);
        t.row({schemeName(s), TextTable::num(rel.luts, 3),
               TextTable::num(rel.ffs, 3),
               TextTable::num(PowerModel::relative(mega, s), 3),
               paper[i++]});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Absolute structure estimates (arbitrary units):\n");
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        const AreaEstimate a = AreaModel::estimate(mega, s);
        std::printf("  %-11s LUTs=%8.0f FFs=%8.0f\n", schemeName(s),
                    a.luts, a.ffs);
    }

    std::printf("\nExtension: NDA-Strict area/power (not in the "
                "paper):\n");
    const AreaEstimate strict = AreaModel::relative(mega,
                                                    Scheme::NdaStrict);
    std::printf("  NDA-Strict  LUTs=%.3f FFs=%.3f Power=%.3f\n",
                strict.luts, strict.ffs,
                PowerModel::relative(mega, Scheme::NdaStrict));
    return 0;
}
