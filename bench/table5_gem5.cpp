/**
 * @file
 * Thin wrapper over the "table5" scenario (src/harness/scenarios.cc):
 * BOOM configurations next to the original papers' gem5-style setups.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("table5");
}
