/**
 * @file
 * Reproduces Table 5: IPC loss on the BOOM Medium/Large/Mega
 * configurations next to runs using the original papers' gem5-style
 * configurations (STT's window-rich single-cycle-L1 setup and NDA's
 * Haswell-like setup, Sec. 9.5). Paper: gem5-STT baseline IPC 1.12
 * with 17.2 % STT-Rename loss; gem5-NDA baseline 0.79 with 13.0 %
 * NDA loss — simulator configuration choices shift the conclusion.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"

namespace
{

double
lossPct(double base, double scheme)
{
    return (1.0 - scheme / base) * 100.0;
}

} // anonymous namespace

int
main()
{
    using namespace sb;

    std::printf("=== Table 5: BOOM vs gem5-style configurations ===\n\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    const std::vector<CoreConfig> configs = {
        CoreConfig::medium(), CoreConfig::large(), CoreConfig::mega(),
        CoreConfig::gem5Stt(), CoreConfig::gem5Nda(),
    };
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, schemes, 100000));

    TextTable t;
    t.header({"configuration", "base IPC", "STT-Rename loss",
              "STT-Issue loss", "NDA loss"});
    for (const auto &cfg : configs) {
        const auto base =
            aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
        const auto rename =
            aggregate(filter(outcomes, cfg.name, Scheme::SttRename));
        const auto issue =
            aggregate(filter(outcomes, cfg.name, Scheme::SttIssue));
        const auto nda =
            aggregate(filter(outcomes, cfg.name, Scheme::Nda));
        t.row({cfg.name, TextTable::num(base.meanIpc, 2),
               TextTable::num(lossPct(base.meanIpc, rename.meanIpc), 1)
                   + "%",
               TextTable::num(lossPct(base.meanIpc, issue.meanIpc), 1)
                   + "%",
               TextTable::num(lossPct(base.meanIpc, nda.meanIpc), 1)
                   + "%"});
    }
    t.row({"paper BOOM Medium", "0.54", "7.3%", "6.4%", "10.7%"});
    t.row({"paper BOOM Large", "0.83", "11.3%", "10.0%", "18.6%"});
    t.row({"paper BOOM Mega", "1.09", "17.6%", "15.8%", "22.4%"});
    t.row({"paper gem5 (STT cfg)", "1.12", "17.2%", "N/A", "-"});
    t.row({"paper gem5 (NDA cfg)", "0.79", "-", "N/A", "13.0%"});
    std::printf("%s\n", t.render().c_str());

    std::printf("Shape check (Sec. 9.5): the gem5-STT configuration's "
                "single-cycle L1 and large window yield a higher\n"
                "baseline IPC; the gem5-NDA configuration lands "
                "between Medium and Large with a milder NDA loss.\n");
    return 0;
}
