/**
 * @file
 * Thin wrapper over the "table3" scenario (src/harness/scenarios.cc):
 * normalized performance per configuration with the half-slope Intel
 * estimate. The unified driver (tools/sbsim.cpp) runs the same
 * definition with cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("table3");
}
