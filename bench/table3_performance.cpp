/**
 * @file
 * Reproduces Table 3: normalized performance (IPC x timing) per
 * configuration, with the halved-slope linear estimate for an Intel
 * Redwood Cove class processor. Paper values:
 *   STT-Rename 0.98 0.93 0.84 0.65 | Intel 0.53
 *   STT-Issue  0.98 0.86 0.81 0.73 | Intel 0.62
 *   NDA        1.01 0.88 0.80 0.78 | Intel 0.66
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "synth/timing_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Table 3: normalized performance per "
                "configuration ===\n\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, schemes, 100000));

    TextTable t;
    t.header({"scheme", "Small", "Medium", "Large", "Mega",
              "Intel (half-slope)", "paper row"});
    const char *paper[] = {"0.98 0.93 0.84 0.65 | 0.53",
                           "0.98 0.86 0.81 0.73 | 0.62",
                           "1.01 0.88 0.80 0.78 | 0.66"};
    int pi = 0;
    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        std::vector<double> xs, ys;
        std::vector<std::string> row{schemeName(s)};
        for (const auto &cfg : configs) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            const auto agg = aggregate(filter(outcomes, cfg.name, s));
            const double perf = (agg.meanIpc / base.meanIpc)
                                * TimingModel::relativeFrequency(cfg, s);
            xs.push_back(base.meanIpc);
            ys.push_back(perf);
            row.push_back(TextTable::num(perf, 2));
        }
        const LinearFit fit = fitLine(xs, ys);
        row.push_back(TextTable::num(
            fit.atHalfSlope(IntelReference::specIpc, xs.back(),
                            ys.back()),
            2));
        row.push_back(paper[pi++]);
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Performance = (suite-mean IPC relative to baseline) x "
                "(relative synthesis frequency).\n");
    return 0;
}
