/**
 * @file
 * Thin wrapper over the "fig7" scenario (src/harness/scenarios.cc):
 * per-benchmark normalized IPC for each BOOM configuration.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig7");
}
