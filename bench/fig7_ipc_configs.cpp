/**
 * @file
 * Reproduces Figure 7 (a/b/c): per-benchmark IPC normalised to the
 * unsafe baseline, for each of the four BOOM configurations, for
 * STT-Rename, STT-Issue, and NDA. Paper shape: the average
 * normalised IPC worsens as the core gets wider, consistently across
 * benchmarks except the insensitive ones (bwaves, roms).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "trace/spec_suite.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 7: normalized IPC per configuration ===\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, schemes, 100000));

    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        std::printf("\n--- Figure 7: %s ---\n", schemeName(s));
        TextTable t;
        t.header({"benchmark", "small", "medium", "large", "mega"});
        for (const auto &name : SpecSuite::benchmarkNames()) {
            std::vector<std::string> row{name};
            for (const auto &cfg : configs) {
                const auto base = aggregate(
                    filter(outcomes, cfg.name, Scheme::Baseline));
                const auto agg = aggregate(filter(outcomes, cfg.name, s));
                row.push_back(TextTable::pct(agg.perBench.at(name)
                                             / base.perBench.at(name)));
            }
            t.row(row);
        }
        std::vector<std::string> mean_row{"suite mean"};
        for (const auto &cfg : configs) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            const auto agg = aggregate(filter(outcomes, cfg.name, s));
            mean_row.push_back(TextTable::pct(agg.meanIpc
                                              / base.meanIpc));
        }
        t.row(mean_row);
        std::printf("%s", t.render().c_str());
    }

    std::printf("\nPaper suite-mean IPC losses for comparison "
                "(Table 5): Medium 7.3/6.4/10.7%%, Large "
                "11.3/10.0/18.6%%, Mega 17.6/15.8/22.4%% for "
                "STT-Rename/STT-Issue/NDA.\n");
    return 0;
}
