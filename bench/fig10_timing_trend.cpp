/**
 * @file
 * Thin wrapper over the "fig10" scenario (src/harness/scenarios.cc):
 * best relative synthesis timing against absolute baseline IPC.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig10");
}
