/**
 * @file
 * Reproduces Figure 10: best relative synthesis timing of each
 * scheme against the absolute baseline IPC of the configuration.
 * Paper shape: NDA flat at ~1.0; STT-Issue drops early then flattens;
 * STT-Rename degrades increasingly with wider configurations.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "synth/timing_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 10: relative timing vs absolute IPC ===\n\n");

    // Baseline IPC per configuration (simulated).
    SchemeConfig baseline;
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, {baseline}, 100000));

    TextTable t;
    t.header({"config", "abs IPC", "STT-Rename", "STT-Issue", "NDA"});
    std::map<Scheme, std::vector<double>> xs, ys;
    for (const auto &cfg : configs) {
        const auto base =
            aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
        std::vector<std::string> row{cfg.name,
                                     TextTable::num(base.meanIpc, 3)};
        for (Scheme s : {Scheme::SttRename, Scheme::SttIssue,
                         Scheme::Nda}) {
            const double rel = TimingModel::relativeFrequency(cfg, s);
            xs[s].push_back(base.meanIpc);
            ys[s].push_back(rel);
            row.push_back(TextTable::pct(rel));
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());

    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        const LinearFit fit = fitLine(xs[s], ys[s]);
        std::printf("  %-11s rel-timing = %.3f %+.3f * IPC\n",
                    schemeName(s), fit.intercept, fit.slope);
    }
    std::printf("\nShape check: NDA ~flat at 1.0; STT-Rename slope "
                "most negative (paper Sec. 8.3).\n");
    return 0;
}
