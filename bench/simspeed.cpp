/**
 * @file
 * Simulator-throughput benchmark (host-side performance, not modelled
 * performance). Runs every spec_suite workload under each of the four
 * paper schemes on one thread, measures wall-clock time, and reports
 * simulated MIPS (committed instructions / second) per scheme.
 *
 * Emits BENCH_simspeed.json so the perf trajectory of the cycle
 * engine is machine-readable from this PR onward. The per-scheme
 * total cycle and committed-instruction counts are printed (and
 * included in the JSON) as the stats-parity signature: any engine
 * optimization must reproduce them bit-identically.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "trace/spec_suite.hh"

namespace
{

struct SchemeResult
{
    std::string name;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double wallSeconds = 0.0;

    double mips() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(instructions) / wallSeconds / 1e6;
    }
};

SchemeResult
runScheme(sb::Scheme scheme, std::uint64_t insts_per_workload)
{
    using Clock = std::chrono::steady_clock;

    sb::SchemeConfig scheme_cfg;
    scheme_cfg.scheme = scheme;
    const sb::CoreConfig core_cfg = sb::CoreConfig::mega();

    SchemeResult res;
    res.name = sb::schemeName(scheme);

    const auto t0 = Clock::now();
    for (const auto &name : sb::SpecSuite::benchmarkNames()) {
        const sb::Workload workload = sb::SpecSuite::make(name);
        sb::Core core(core_cfg, scheme_cfg, sb::makeScheme(scheme_cfg),
                      workload.program);
        const sb::RunResult r =
            core.run(insts_per_workload, 40'000'000);
        res.instructions += r.instructions;
        res.cycles += r.cycles;
    }
    res.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return res;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Small mode for quick smoke runs: simspeed --quick
    std::uint64_t insts = 150000;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick") {
            insts = 20000;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }

    std::printf("=== Simulator throughput (simulated MIPS, "
                "single-threaded) ===\n\n");
    std::printf("%-12s %14s %14s %10s %10s\n", "scheme", "insts",
                "cycles", "wall[s]", "MIPS");

    std::vector<SchemeResult> results;
    for (sb::Scheme s :
         {sb::Scheme::Baseline, sb::Scheme::SttRename,
          sb::Scheme::SttIssue, sb::Scheme::Nda}) {
        SchemeResult r = runScheme(s, insts);
        std::printf("%-12s %14llu %14llu %10.3f %10.3f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.instructions),
                    static_cast<unsigned long long>(r.cycles),
                    r.wallSeconds, r.mips());
        results.push_back(std::move(r));
    }

    FILE *f = std::fopen("BENCH_simspeed.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open BENCH_simspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"simspeed\",\n");
    std::fprintf(f, "  \"core\": \"mega\",\n");
    std::fprintf(f, "  \"insts_per_workload\": %llu,\n",
                 static_cast<unsigned long long>(insts));
    std::fprintf(f, "  \"schemes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"instructions\": %llu, "
                     "\"cycles\": %llu, \"wall_seconds\": %.6f, "
                     "\"mips\": %.3f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.instructions),
                     static_cast<unsigned long long>(r.cycles),
                     r.wallSeconds, r.mips(),
                     i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_simspeed.json\n");
    return 0;
}
