/**
 * @file
 * Reproduces Table 1: the four BOOM configurations with their key
 * characteristics and the absolute SPEC CPU2017 IPC of the unsafe
 * baseline (paper: 0.46 / 0.60 / 0.943 / 1.27; Redwood Cove 2.03 as
 * an external reference point).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Table 1: BOOM configurations and baseline "
                "SPEC2017 IPC ===\n\n");

    SchemeConfig baseline;
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes = runner.runAll(suiteSpecs(configs, {baseline}));

    TextTable t;
    t.header({"", "Small", "Medium", "Large", "Mega", "Intel (ref)"});
    t.row({"Core Width", "1", "2", "3", "4", "6"});
    t.row({"Memory Ports", "1", "1", "1", "2", "3+2"});
    t.row({"ROB Entries", "32", "64", "96", "128", "512"});

    std::vector<std::string> ipc_row{"SPEC2017 IPC (measured)"};
    std::vector<std::string> paper_row{"SPEC2017 IPC (paper)"};
    for (const auto &cfg : configs) {
        const auto agg =
            aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
        ipc_row.push_back(TextTable::num(agg.meanIpc, 3));
    }
    ipc_row.push_back("2.03");
    for (const char *v : {"0.46", "0.60", "0.943", "1.27", "2.03"})
        paper_row.push_back(v);
    t.row(ipc_row);
    t.row(paper_row);

    std::printf("%s\n", t.render().c_str());
    return 0;
}
