/**
 * @file
 * Thin wrapper over the "table1" scenario (src/harness/scenarios.cc):
 * the four BOOM configurations and their baseline SPEC2017 IPC.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("table1");
}
