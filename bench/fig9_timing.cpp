/**
 * @file
 * Thin wrapper over the "fig9" scenario (src/harness/scenarios.cc):
 * achieved synthesis frequency per scheme and configuration
 * (model-only, no simulation cells).
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig9");
}
