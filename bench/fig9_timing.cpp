/**
 * @file
 * Reproduces Figure 9: achieved synthesis frequency (MHz) for every
 * scheme on the four BOOM configurations. Paper shape: NDA matches
 * or beats baseline everywhere; STT-Rename degrades sharply with
 * width (80 % of baseline at Mega); STT-Issue pays a flat cost.
 */

#include <cstdio>

#include "common/table.hh"
#include "synth/timing_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 9: achieved frequency (MHz) per "
                "configuration ===\n\n");

    const auto configs = CoreConfig::boomPresets();
    const Scheme schemes[] = {Scheme::Baseline, Scheme::SttRename,
                              Scheme::SttIssue, Scheme::Nda};

    TextTable t;
    t.header({"scheme", "Small", "Medium", "Large", "Mega"});
    for (Scheme s : schemes) {
        std::vector<std::string> row{schemeName(s)};
        for (const auto &cfg : configs) {
            row.push_back(TextTable::num(
                TimingModel::frequencyMhz(cfg, s), 1));
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());

    TextTable r;
    r.header({"scheme (relative)", "Small", "Medium", "Large", "Mega",
              "paper Mega"});
    const char *paper[] = {"100%", "~79%", "~87%", "~100%"};
    int i = 0;
    for (Scheme s : schemes) {
        std::vector<std::string> row{schemeName(s)};
        for (const auto &cfg : configs) {
            row.push_back(TextTable::pct(
                TimingModel::relativeFrequency(cfg, s)));
        }
        row.push_back(paper[i++]);
        r.row(row);
    }
    std::printf("%s\n", r.render().c_str());

    std::printf("Critical-path breakdown (Mega, gate-depth units):\n");
    for (Scheme s : schemes) {
        const auto b = TimingModel::analyze(CoreConfig::mega(), s);
        std::printf("  %-11s rename=%6.1f issue=%6.1f bypass=%6.1f "
                    "-> critical=%6.1f (%.1f MHz)\n",
                    schemeName(s), b.renameStage, b.issueStage,
                    b.bypassNetwork, b.criticalPath, b.frequencyMhz);
    }
    return 0;
}
