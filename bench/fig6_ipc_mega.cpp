/**
 * @file
 * Thin wrapper over the "fig6" scenario (src/harness/scenarios.cc):
 * per-benchmark IPC normalised to the unsafe baseline on Mega BOOM.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig6");
}
