/**
 * @file
 * Reproduces Figure 6: per-benchmark IPC normalised to the unsafe
 * baseline for STT-Rename, STT-Issue and NDA on the Mega BOOM
 * configuration, plus the Sec. 8.1 suite means (paper: 81.9 %,
 * 84.5 %, 73.6 % of baseline).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "trace/spec_suite.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 6: normalized IPC per benchmark, "
                "Mega BOOM ===\n\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }

    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs({CoreConfig::mega()}, schemes));

    const auto base = aggregate(filter(outcomes, "mega",
                                       Scheme::Baseline));
    const auto rename = aggregate(filter(outcomes, "mega",
                                         Scheme::SttRename));
    const auto issue = aggregate(filter(outcomes, "mega",
                                        Scheme::SttIssue));
    const auto nda = aggregate(filter(outcomes, "mega", Scheme::Nda));

    TextTable t;
    t.header({"benchmark", "base IPC", "STT-Rename", "STT-Issue",
              "NDA"});
    for (const auto &name : SpecSuite::benchmarkNames()) {
        const double b = base.perBench.at(name);
        t.row({name, TextTable::num(b, 3),
               TextTable::pct(rename.perBench.at(name) / b),
               TextTable::pct(issue.perBench.at(name) / b),
               TextTable::pct(nda.perBench.at(name) / b)});
    }
    t.row({"suite mean (SPEC method)", TextTable::num(base.meanIpc, 3),
           TextTable::pct(rename.meanIpc / base.meanIpc),
           TextTable::pct(issue.meanIpc / base.meanIpc),
           TextTable::pct(nda.meanIpc / base.meanIpc)});
    t.row({"paper suite mean", "1.27", "81.9%", "84.5%", "73.6%"});
    std::printf("%s\n", t.render().c_str());

    std::printf("Figure 6 bars (normalized IPC, # = 2.5%%):\n");
    for (const auto &name : SpecSuite::benchmarkNames()) {
        const double b = base.perBench.at(name);
        std::printf("  %-16s STT-R |%-40s|\n", name.c_str(),
                    bar(rename.perBench.at(name) / b).c_str());
        std::printf("  %-16s STT-I |%-40s|\n", "",
                    bar(issue.perBench.at(name) / b).c_str());
        std::printf("  %-16s NDA   |%-40s|\n", "",
                    bar(nda.perBench.at(name) / b).c_str());
    }
    return 0;
}
