/**
 * @file
 * google-benchmark microbenchmarks of the simulator's substrate
 * components: cache probes, TAGE predictions, rename throughput,
 * issue-queue wakeup/select, full-core simulation rate, and the
 * synthesis models. These guard the simulator's own performance
 * (the methodology needs large instruction windows, paper Sec. 7).
 */

#include <benchmark/benchmark.h>

#include "branch/tage.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "core/inst_slab.hh"
#include "core/issue_queue.hh"
#include "core/rename_map.hh"
#include "memory/memory_system.hh"
#include "secure/factory.hh"
#include "synth/timing_model.hh"
#include "trace/spec_suite.hh"

namespace
{

void
BM_CacheProbe(benchmark::State &state)
{
    sb::Cache cache("bench", sb::CacheConfig{});
    sb::Rng rng(7);
    sb::Cycle now = 0;
    for (auto _ : state) {
        const sb::Addr addr = rng.below(1 << 20);
        ++now;
        auto hit = cache.probe(addr, now);
        if (!hit)
            cache.insert(addr, now, now + 20);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_CacheProbe);

void
BM_MemorySystemAccess(benchmark::State &state)
{
    sb::MemorySystem mem(sb::CoreConfig::mega());
    sb::Rng rng(7);
    sb::Cycle now = 0;
    for (auto _ : state) {
        now += 2;
        auto res = mem.access(rng.below(1 << 22), rng.below(64), now,
                              false);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_MemorySystemAccess);

void
BM_TagePredict(benchmark::State &state)
{
    sb::TagePredictor tage(10);
    sb::Rng rng(7);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        const std::uint64_t pc = rng.below(512);
        const bool taken = tage.predict(pc, hist);
        hist = (hist << 1) | taken;
        tage.update(pc, hist, (pc & 3) != 0);
        benchmark::DoNotOptimize(taken);
    }
}
BENCHMARK(BM_TagePredict);

void
BM_RenameAllocate(benchmark::State &state)
{
    sb::RenameMap map(sb::numArchRegs, 128);
    sb::Rng rng(7);
    for (auto _ : state) {
        const sb::ArchReg reg = rng.below(sb::numArchRegs);
        sb::PhysReg stale;
        const sb::PhysReg fresh = map.allocate(reg, stale);
        map.release(stale);
        benchmark::DoNotOptimize(fresh);
    }
}
BENCHMARK(BM_RenameAllocate);

void
BM_IssueQueueWakeup(benchmark::State &state)
{
    sb::InstSlab slab(64);
    sb::IssueQueue iq(40);
    iq.attachSlab(&slab);
    for (unsigned i = 0; i < 40; ++i) {
        const sb::InstHandle h = slab.alloc();
        sb::DynInst &inst = slab.get(h);
        inst = sb::DynInst{};
        inst.seq = i + 1;
        inst.uop.op = sb::Op::Add;
        inst.uop.dst = 1;
        inst.uop.src1 = 2;
        inst.uop.src2 = 3;
        inst.psrc1 = i % 64;
        inst.psrc2 = (i * 7) % 64;
        iq.insert(h, inst, false, false);
    }
    sb::Rng rng(7);
    for (auto _ : state) {
        iq.wakeup(static_cast<sb::PhysReg>(rng.below(64)));
        benchmark::DoNotOptimize(iq.size());
    }
}
BENCHMARK(BM_IssueQueueWakeup);

/** Full-core simulation throughput (instructions per second). */
void
BM_CoreSimulation(benchmark::State &state)
{
    const sb::Workload w = sb::SpecSuite::make("538.imagick");
    const sb::Scheme scheme = static_cast<sb::Scheme>(state.range(0));
    for (auto _ : state) {
        sb::SchemeConfig scfg;
        scfg.scheme = scheme;
        sb::Core core(sb::CoreConfig::mega(), scfg,
                      sb::makeScheme(scfg), w.program);
        auto r = core.run(20000, 1'000'000);
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(state.items_processed()
                                + r.instructions);
    }
}
BENCHMARK(BM_CoreSimulation)
    ->Arg(static_cast<int>(sb::Scheme::Baseline))
    ->Arg(static_cast<int>(sb::Scheme::SttRename))
    ->Arg(static_cast<int>(sb::Scheme::SttIssue))
    ->Arg(static_cast<int>(sb::Scheme::Nda))
    ->Unit(benchmark::kMillisecond);

void
BM_TimingModel(benchmark::State &state)
{
    const sb::CoreConfig cfg = sb::CoreConfig::mega();
    for (auto _ : state) {
        auto b = sb::TimingModel::analyze(cfg, sb::Scheme::SttRename);
        benchmark::DoNotOptimize(b.frequencyMhz);
    }
}
BENCHMARK(BM_TimingModel);

} // anonymous namespace

BENCHMARK_MAIN();
