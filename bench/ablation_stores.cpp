/**
 * @file
 * Thin wrapper over the "ablation_stores" scenario
 * (src/harness/scenarios.cc): store taints and store-to-load
 * forwarding errors on 548.exchange2 (paper Sec. 9.2). The unified
 * driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("ablation_stores");
}
