/**
 * @file
 * Ablation of paper Sec. 9.2: partial store issue and store-to-load
 * forwarding errors on 548.exchange2.
 *
 * Single-taint STT-Rename blocks a store's address generation when
 * its *data* operand is tainted, so younger loads bypass unknown
 * store addresses and get flushed when the address finally appears.
 * The two-taint optimization (one YRoT per store operand) restores
 * the partial address issue; STT-Issue avoids the problem naturally.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Ablation (Sec. 9.2): store taints and forwarding "
                "errors on 548.exchange2 ===\n\n");

    struct Variant
    {
        const char *label;
        SchemeConfig cfg;
    };
    std::vector<Variant> variants;
    {
        SchemeConfig c;
        variants.push_back({"Baseline", c});
        c.scheme = Scheme::SttRename;
        variants.push_back({"STT-Rename (single taint)", c});
        c.twoTaintStores = true;
        variants.push_back({"STT-Rename (two-taint stores)", c});
        SchemeConfig i;
        i.scheme = Scheme::SttIssue;
        variants.push_back({"STT-Issue", i});
        SchemeConfig n;
        n.scheme = Scheme::Nda;
        variants.push_back({"NDA", n});
    }

    std::vector<RunSpec> specs;
    for (const auto &v : variants) {
        RunSpec s;
        s.core = CoreConfig::mega();
        s.scheme = v.cfg;
        s.workload = "548.exchange2";
        s.measureInsts = 150000;
        specs.push_back(std::move(s));
    }
    ExperimentRunner runner;
    const auto outcomes = runner.runAll(specs);

    const double base_ipc = outcomes.front().ipc;
    TextTable t;
    t.header({"variant", "IPC", "relative", "forwarding errors",
              "scheme blocks"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &o = outcomes[i];
        t.row({variants[i].label, TextTable::num(o.ipc, 3),
               TextTable::pct(o.ipc / base_ipc),
               std::to_string(o.stat("mem_order_violations")),
               std::to_string(o.stat("scheme_select_blocks"))});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Paper observation: STT-Rename suffered ~1350x the "
                "forwarding errors of NDA on exchange2 (abs IPC 1.44 "
                "vs 1.77);\nthe two-taint optimization and STT-Issue "
                "both eliminate the error storm.\n");
    return 0;
}
