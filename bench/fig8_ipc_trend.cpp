/**
 * @file
 * Reproduces Figure 8: relative IPC of each scheme against the
 * absolute baseline IPC of the configuration, with the linear trend
 * used to estimate the IPC loss of a Redwood Cove class processor
 * (paper: upward of 20 % loss at IPC 2.03).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 8: relative IPC vs absolute baseline IPC "
                "===\n\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, schemes, 100000));

    TextTable t;
    t.header({"config", "abs IPC", "STT-Rename", "STT-Issue", "NDA"});
    std::map<Scheme, std::vector<double>> xs, ys;
    for (const auto &cfg : configs) {
        const auto base =
            aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
        std::vector<std::string> row{cfg.name,
                                     TextTable::num(base.meanIpc, 3)};
        for (Scheme s : {Scheme::SttRename, Scheme::SttIssue,
                         Scheme::Nda}) {
            const auto agg = aggregate(filter(outcomes, cfg.name, s));
            const double rel = agg.meanIpc / base.meanIpc;
            xs[s].push_back(base.meanIpc);
            ys[s].push_back(rel);
            row.push_back(TextTable::pct(rel));
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Linear trends and the Redwood Cove estimate "
                "(IPC %.2f):\n", IntelReference::specIpc);
    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        const LinearFit fit = fitLine(xs[s], ys[s]);
        const double at_intel = fit.at(IntelReference::specIpc);
        std::printf("  %-11s rel-IPC = %.3f %+.3f * IPC -> %.3f at "
                    "Intel (%.1f%% loss; paper predicts > 20%%)\n",
                    schemeName(s), fit.intercept, fit.slope, at_intel,
                    (1.0 - at_intel) * 100.0);
    }

    std::printf("\nShape check: relative IPC must fall as absolute IPC "
                "rises (negative slopes above).\n");
    return 0;
}
