/**
 * @file
 * Thin wrapper over the "fig8" scenario (src/harness/scenarios.cc):
 * relative IPC against absolute baseline IPC with the linear trend.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig8");
}
