/**
 * @file
 * Ablation of paper Sec. 5.1: NDA with and without speculative
 * L1-hit scheduling. The paper removes the logic from NDA (it cannot
 * benefit: broadcasts wait for the visibility point anyway), which
 * also improves NDA's synthesis timing. This ablation quantifies the
 * IPC side: keeping the logic barely helps NDA, confirming the
 * design decision.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "synth/timing_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Ablation (Sec. 5.1): NDA +/- speculative L1-hit "
                "scheduling ===\n\n");

    const std::vector<std::string> benches = {
        "503.bwaves", "538.imagick", "505.mcf", "502.gcc",
        "548.exchange2", "520.omnetpp",
    };

    SchemeConfig base;
    SchemeConfig nda;
    nda.scheme = Scheme::Nda;
    SchemeConfig nda_spec = nda;
    nda_spec.ndaKeepSpeculativeScheduling = true;

    std::vector<RunSpec> specs;
    for (const auto &cfg : {base, nda, nda_spec}) {
        for (const auto &b : benches) {
            RunSpec s;
            s.core = CoreConfig::mega();
            s.scheme = cfg;
            s.workload = b;
            s.measureInsts = 120000;
            specs.push_back(std::move(s));
        }
    }
    ExperimentRunner runner;
    const auto outcomes = runner.runAll(specs);
    const std::size_t n = benches.size();

    TextTable t;
    t.header({"benchmark", "base IPC", "NDA (no spec sched)",
              "NDA (keep spec sched)"});
    for (std::size_t i = 0; i < n; ++i) {
        const double b = outcomes[i].ipc;
        t.row({benches[i], TextTable::num(b, 3),
               TextTable::pct(outcomes[n + i].ipc / b),
               TextTable::pct(outcomes[2 * n + i].ipc / b)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Timing side (Mega): removing the logic lets NDA reach "
                "%.1f MHz vs the baseline's %.1f MHz.\n",
                TimingModel::frequencyMhz(CoreConfig::mega(),
                                          Scheme::Nda),
                TimingModel::frequencyMhz(CoreConfig::mega(),
                                          Scheme::Baseline));
    std::printf("Conclusion (paper Sec. 5.1): the IPC benefit of "
                "keeping the logic is marginal for NDA, while removing "
                "it simplifies timing.\n");
    return 0;
}
