/**
 * @file
 * Thin wrapper over the "ablation_l1hit" scenario
 * (src/harness/scenarios.cc): NDA with and without speculative
 * L1-hit scheduling (paper Sec. 5.1). The unified driver
 * (tools/sbsim.cpp) runs the same definition with cross-scenario
 * dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("ablation_l1hit");
}
