/**
 * @file
 * Thin wrapper over the "fig1" scenario (src/harness/scenarios.cc):
 * normalized performance (IPC x timing) vs absolute baseline IPC.
 * The unified driver (tools/sbsim.cpp) runs the same definition with
 * cross-scenario dedup and the result cache.
 */

#include "harness/scenario.hh"

int
main()
{
    return sb::runScenarioMain("fig1");
}
