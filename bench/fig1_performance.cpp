/**
 * @file
 * Reproduces Figure 1: normalized performance (IPC x timing) of the
 * secure schemes against the absolute baseline IPC of each core
 * configuration, with the linear trend the paper extrapolates from.
 * Paper Mega points: STT-Rename 0.65, STT-Issue 0.73, NDA 0.78.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "synth/timing_model.hh"

int
main()
{
    using namespace sb;

    std::printf("=== Figure 1: normalized performance (IPC x timing) "
                "vs absolute IPC ===\n\n");

    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    const auto configs = CoreConfig::boomPresets();
    ExperimentRunner runner;
    const auto outcomes =
        runner.runAll(suiteSpecs(configs, schemes, 100000));

    TextTable t;
    t.header({"config", "base IPC", "STT-Rename", "STT-Issue", "NDA"});

    std::map<Scheme, std::vector<double>> xs, ys;
    for (const auto &cfg : configs) {
        const auto base =
            aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
        std::vector<std::string> row{cfg.name,
                                     TextTable::num(base.meanIpc, 3)};
        for (Scheme s : {Scheme::SttRename, Scheme::SttIssue,
                         Scheme::Nda}) {
            const auto agg = aggregate(filter(outcomes, cfg.name, s));
            const double perf = (agg.meanIpc / base.meanIpc)
                                * TimingModel::relativeFrequency(cfg, s);
            xs[s].push_back(base.meanIpc);
            ys[s].push_back(perf);
            row.push_back(TextTable::num(perf, 3));
        }
        t.row(row);
    }
    t.row({"paper (Mega)", "1.27", "0.65", "0.73", "0.78"});
    std::printf("%s\n", t.render().c_str());

    std::printf("Linear trends (performance vs absolute IPC) and the "
                "Redwood Cove point (IPC %.2f):\n",
                IntelReference::specIpc);
    for (Scheme s : {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda}) {
        const LinearFit fit = fitLine(xs[s], ys[s]);
        std::printf("  %-11s perf = %.3f %+.3f * IPC   -> linear at "
                    "Intel: %.3f, half-slope: %.3f\n",
                    schemeName(s), fit.intercept, fit.slope,
                    fit.at(IntelReference::specIpc),
                    fit.atHalfSlope(IntelReference::specIpc,
                                    xs[s].back(), ys[s].back()));
    }

    std::printf("\nFigure 1 scatter (x = absolute IPC, # at relative "
                "performance):\n");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::printf("  IPC %.2f  STT-R |%-40s|\n", xs[Scheme::SttRename][i],
                    bar(ys[Scheme::SttRename][i]).c_str());
        std::printf("           STT-I |%-40s|\n",
                    bar(ys[Scheme::SttIssue][i]).c_str());
        std::printf("           NDA   |%-40s|\n",
                    bar(ys[Scheme::Nda][i]).c_str());
    }
    return 0;
}
