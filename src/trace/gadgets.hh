/**
 * @file
 * Spectre gadget battery: transient-leak programs for the security
 * verification subsystem (the stand-in for the BOOM-attacks suite the
 * paper verifies its schemes against).
 *
 * Every gadget shares one transmitter/receiver toolkit:
 *
 *  - *Transmitter*: a transient gadget reads a secret byte and encodes
 *    it into the set-state of a 256-slot probe array (one 512-byte
 *    slot per byte value), while the squash trigger (branch outcome,
 *    indirect target, or store address) is delayed behind a cold
 *    pointer chase, opening a ~300-cycle speculation window.
 *  - *Receiver*: after a serialising barrier, a fully serialised
 *    timing probe walks slots 1..255; the secret slot's load commits a
 *    full memory latency earlier than the misses around it. A
 *    cache-residency oracle cross-checks the timing channel.
 *
 * What differs per gadget is only the transient *entry* into the
 * transmitter:
 *
 *  - SpectreV1: classic bounds-check bypass (trained conditional
 *    branch, out-of-range index).
 *  - SpectreV1Mask: the same gadget behind an index-masking "false
 *    mitigation" — the mask is wide enough to pass the malicious
 *    index, so the gadget must still be caught leaking.
 *  - SpectreV2Indirect: indirect-branch target misprediction — the
 *    BTB is trained to the gadget body, and on the attack round the
 *    architectural target skips it.
 *  - SpectreV4StoreBypass: speculative store bypass — a sanitising
 *    store's address resolves late, so a younger load reads the stale
 *    malicious index and feeds it to the transmitter before the
 *    memory-order violation is detected.
 *  - SpectreV2CrossDomain: cross-tenant indirect-target injection —
 *    attacker tenant A trains a shared dispatcher's BTB entry at the
 *    gadget, context-switches to victim tenant B whose architectural
 *    target skips it, and (if predictor state survives the switch)
 *    B's own pointer to its own secret is transiently dereferenced
 *    and transmitted; A reads the probe after switching back.
 *  - SpectreV1Swapgs: cross-tenant conditional-path injection after
 *    CVE-2019-1125 — a shared entry routine conditionally takes a
 *    privileged path; tenant A trains the branch taken, tenant B's
 *    slow-resolving flag architecturally falls through, but the
 *    trained predictor transiently steers B into the privileged path
 *    with B's secret-pointing registers.
 *
 * Architecturally, no gadget ever touches a secret-dependent probe
 * slot: committed execution only ever warms slot 0 (excluded from
 * scoring), so any recovered byte is transient leakage by
 * construction.
 */

#ifndef SB_TRACE_GADGETS_HH
#define SB_TRACE_GADGETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sb
{

/** The battery's gadget variants. */
enum class GadgetKind
{
    SpectreV1,           ///< Classic bounds-check bypass.
    SpectreV1Mask,       ///< v1 behind an ineffective index mask.
    SpectreV2Indirect,   ///< Indirect-branch target misprediction.
    SpectreV4StoreBypass,///< Speculative store bypass (SSB).
    SpectreV2CrossDomain,///< Cross-tenant BTB injection over a switch.
    SpectreV1Swapgs,     ///< Cross-tenant branch-path injection
                         ///< (CVE-2019-1125 style).
};

/** Stable CLI / JSON handle, e.g. "spectre-v1". */
const char *gadgetName(GadgetKind kind);

/** Inverse of gadgetName(); false (out untouched) on unknown names. */
bool gadgetFromName(const std::string &name, GadgetKind &out);

/** All gadgets, in battery order. */
std::vector<GadgetKind> allGadgets();

/** Built gadget program plus the static PCs the harness needs. */
struct GadgetProgram
{
    Program program;
    /** First load of the pre-probe serialisation barrier. */
    std::uint32_t barrierPc = 0;
    /** First probe load (slot v=1); one probe group is 4 ops. */
    std::uint32_t firstProbePc = 0;
    /** The transmit load (array2[secret * 512]) inside the shared
     *  transmitter — where the contract shadow engine pinpoints an
     *  out-of-contract transmit. */
    std::uint32_t transmitPc = 0;

    /** Protection domain that owns the secret region. */
    TenantId secretOwner = 0;
    /** Protection domain that reads the probe (the attacker). A
     *  cross-domain gadget has observer != secretOwner: a recovered
     *  byte is then a cross-tenant leak, not just a transient one. */
    TenantId observer = 0;

    bool crossDomain() const { return observer != secretOwner; }
};

/** Shared memory layout the receiver and harness agree on. */
namespace gadget_layout
{
constexpr Addr array2Base = 0x400000;  ///< Probe array base.
constexpr unsigned probeStride = 512;  ///< One slot per byte value.
} // namespace gadget_layout

/**
 * Build the gadget program for @p kind leaking @p secret_byte
 * (1..255; slot 0 is warmed architecturally and excluded from
 * scoring). @p seed drives the pointer-chase shuffle only, so equal
 * seeds give byte-identical programs up to the secret.
 */
GadgetProgram buildGadgetProgram(GadgetKind kind,
                                 std::uint8_t secret_byte,
                                 std::uint64_t seed);

} // namespace sb

#endif // SB_TRACE_GADGETS_HH
