#include "trace/gadgets.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sb
{

namespace
{

using gadget_layout::array2Base;
using gadget_layout::probeStride;

// Memory layout shared by every gadget.
constexpr Addr array1Base = 0x200000;
constexpr Addr secretOffset = 0x10000;   ///< Out-of-range index.
constexpr Addr idxArrayBase = 0x600000;
constexpr Addr staleBase = 0xA00000;     ///< v4 sanitised-pointer slots.
constexpr Addr chaseBase = 0x800000;
constexpr unsigned chaseNodes = 2048;
constexpr unsigned trainingRounds = 48;
constexpr std::int64_t inRangeLength = 8;
/** v4 needs no predictor training; each round leaks independently. */
constexpr unsigned ssbRounds = 16;
/** Mask for the v1 "false mitigation": wide enough to pass the
 *  malicious index (secretOffset < 0x20000), so it mitigates nothing
 *  while leaving the in-range training indices untouched. */
constexpr std::int64_t falseMask = 0x1ffff;

/** Register assignments shared by every gadget. */
struct Regs
{
    static constexpr ArchReg a1 = 1, a2 = 2, idxp = 3, idx = 4;
    static constexpr ArchReg bound = 5, chase = 6, hop1 = 7, hop2 = 8;
    static constexpr ArchReg secret = 10, offs = 11, slot = 12;
    static constexpr ArchReg leakv = 13, probeAddr = 14, probeVal = 15;
    static constexpr ArchReg targ = 16, paddr = 17, preg = 18;
    static constexpr ArchReg cnt = 20, lim = 21, one = 22, mask = 23;
    static constexpr ArchReg byteMask = 24, nine = 25, acc = 26;
    static constexpr ArchReg chain0 = 27, zero = 28;
};

/**
 * Cold pointer chase: a shuffled cyclic chain of 64-byte nodes. Each
 * node holds its successor's address at +0 and the (benign) bound at
 * +8; offsets +16 and +24 are free for per-round gadget payloads
 * (v2 jump targets, v4 store addresses). Dependent hops through the
 * cold chain are what delay each gadget's squash trigger.
 */
struct ChaseChain
{
    std::vector<std::uint32_t> order;

    Addr
    nodeAddr(unsigned i) const
    {
        return chaseBase + Addr(order[i % chaseNodes]) * 64;
    }
};

ChaseChain
buildChase(ProgramBuilder &b, Rng &rng)
{
    ChaseChain chain;
    chain.order.resize(chaseNodes);
    for (unsigned i = 0; i < chaseNodes; ++i)
        chain.order[i] = i;
    for (unsigned i = chaseNodes - 1; i > 0; --i) {
        const unsigned j = rng.below(i);
        std::swap(chain.order[i], chain.order[j]);
    }
    for (unsigned i = 0; i < chaseNodes; ++i) {
        const Addr node = chain.nodeAddr(i);
        const Addr next = chain.nodeAddr(i + 1);
        b.memory().write(node, next);
        b.memory().write(node + 8, inRangeLength); // The bound.
    }
    return chain;
}

/** In-range victim entries are all zero, so architectural execution
 *  only ever warms probe slot 0 (excluded from scoring). */
void
initVictimArrays(ProgramBuilder &b, std::uint8_t secret_byte)
{
    for (unsigned i = 0; i < inRangeLength; ++i)
        b.memory().write(array1Base + 8 * i, 0);
    b.memory().write(array1Base + secretOffset, secret_byte);
    b.markSecret(array1Base + secretOffset, 8);
}

/** Common register preamble; gadget-specific registers ride along. */
void
emitPreamble(ProgramBuilder &b, const ChaseChain &chain,
             unsigned rounds)
{
    b.movi(Regs::a1, array1Base);
    b.movi(Regs::a2, array2Base);
    b.movi(Regs::idxp, idxArrayBase);
    b.movi(Regs::chase, chain.nodeAddr(0));
    b.movi(Regs::cnt, 0);
    b.movi(Regs::lim, rounds);
    b.movi(Regs::one, 1);
    b.movi(Regs::byteMask, 0xff);
    b.movi(Regs::nine, 9);
    b.movi(Regs::acc, 0);
    b.movi(Regs::chain0, 0);
    b.movi(Regs::zero, 0);
}

/**
 * The shared transmitter: read array1[idx], encode the byte into the
 * residency of probe slot array2[byte * 512]. Transient execution of
 * this sequence with a malicious idx is what every gadget arranges.
 */
std::uint32_t
emitTransmitter(ProgramBuilder &b)
{
    b.add(Regs::offs, Regs::a1, Regs::idx);
    b.load(Regs::secret, Regs::offs, 0);   // Reads the secret.
    b.and_(Regs::secret, Regs::secret, Regs::byteMask);
    b.shl(Regs::slot, Regs::secret, Regs::nine); // * 512.
    b.add(Regs::slot, Regs::a2, Regs::slot);
    // Transmit: warms the slot; its address operand carries the
    // secret label, so this pc is where the contract shadow engine
    // pinpoints an out-of-contract transmit.
    const std::uint32_t transmit_pc = b.load(Regs::leakv, Regs::slot, 0);
    b.add(Regs::acc, Regs::acc, Regs::leakv);
    return transmit_pc;
}

/**
 * Shared receiver: a serialisation barrier of six more cold dependent
 * hops (so no probe load can execute until long after any wrong-path
 * window closed; the harness pauses at the first barrier load to read
 * the residency oracle before the probe pollutes the cache), then a
 * fully serialised timing probe over slots 1..255.
 */
void
emitBarrierAndProbe(ProgramBuilder &b, GadgetProgram &out)
{
    out.barrierPc = b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::hop1, Regs::hop2, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::hop1, Regs::hop2, 0);
    b.load(Regs::bound, Regs::hop1, 0);
    b.and_(Regs::chain0, Regs::bound, Regs::zero);

    for (unsigned v = 1; v < 256; ++v) {
        const std::uint32_t movi_pc =
            b.movi(Regs::probeAddr, array2Base + Addr(v) * probeStride);
        if (v == 1)
            out.firstProbePc = movi_pc + 2;
        b.add(Regs::probeAddr, Regs::probeAddr, Regs::chain0);
        b.load(Regs::probeVal, Regs::probeAddr, 0);
        b.and_(Regs::chain0, Regs::probeVal, Regs::zero);
    }
    b.halt();
}

// ---------------------------------------------------------------------
// Spectre v1 (and the masked false-mitigation variant)
// ---------------------------------------------------------------------

GadgetProgram
buildV1(std::uint8_t secret_byte, std::uint64_t seed, bool masked)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    // Index sequence: training values, then the malicious index.
    const unsigned rounds = trainingRounds + 1;
    for (unsigned t = 0; t < trainingRounds; ++t)
        b.memory().write(idxArrayBase + 8 * t, t % inRangeLength);
    b.memory().write(idxArrayBase + 8 * trainingRounds, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, rounds);
    if (masked)
        b.movi(Regs::mask, falseMask);

    const auto round = b.here();
    // Three dependent cold loads delay the bound by ~300 cycles.
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::bound, Regs::hop2, 8);
    b.add(Regs::chase, Regs::hop2, Regs::zero); // Advance the head.
    b.load(Regs::idx, Regs::idxp, 0);
    b.addi(Regs::idxp, Regs::idxp, 8);
    if (masked) {
        // The "mitigation": clamp the index before the bounds check.
        // The mask passes secretOffset, so the gadget leaks anyway.
        b.and_(Regs::idx, Regs::idx, Regs::mask);
    }
    const auto skip = b.futureLabel();
    b.bge(Regs::idx, Regs::bound, skip); // The trained bounds check.
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.bind(skip);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    // Loop structure matters for receiver hygiene: the exit branch is
    // not-taken through every round, so any mispredicted wrong path
    // falls back *into* the loop, never into the probe code.
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);
    out.program = b.build(masked ? "spectre-v1-mask" : "spectre-v1");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v2: indirect-branch target misprediction
// ---------------------------------------------------------------------

GadgetProgram
buildV2(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    const unsigned rounds = trainingRounds + 1;
    for (unsigned t = 0; t < trainingRounds; ++t)
        b.memory().write(idxArrayBase + 8 * t, t % inRangeLength);
    b.memory().write(idxArrayBase + 8 * trainingRounds, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, rounds);

    const auto round = b.here();
    // The per-round jump target rides on the cold chase, so the
    // indirect branch stays unresolved for ~300 cycles while fetch
    // follows the BTB.
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::targ, Regs::hop2, 16); // This round's destination.
    b.add(Regs::chase, Regs::hop2, Regs::zero);
    b.load(Regs::idx, Regs::idxp, 0);
    b.addi(Regs::idxp, Regs::idxp, 8);
    b.jr(Regs::targ);
    // The gadget sits directly after the jr: a cold BTB predicts
    // fall-through, which is also the architectural target of every
    // training round, so training is mispredict-free from round 0.
    const std::uint32_t gadget_pc = b.here();
    const std::uint32_t transmit_pc = emitTransmitter(b);
    // Training rounds fall through the gadget into the join.
    const std::uint32_t join_pc = b.here();
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // Per-round targets, written now that the PCs are known: round r
    // reads its destination from the node its third hop lands on.
    // Training rounds architecturally enter the gadget (with in-range
    // indices); the attack round's architectural target skips it, but
    // the trained BTB sends transient fetch through it with the
    // malicious index.
    for (unsigned r = 0; r < rounds; ++r) {
        const Addr node = chain.nodeAddr(2 * r + 2);
        b.memory().write(node + 16,
                         r < trainingRounds ? gadget_pc : join_pc);
    }

    out.program = b.build("spectre-v2-indirect");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v4: speculative store bypass
// ---------------------------------------------------------------------

GadgetProgram
buildV4(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    // Each round has its own "pointer" slot, pre-loaded with the
    // malicious stale index. The victim sanitises the slot with a
    // store of zero, then immediately reloads it — but the store's
    // address rides on the cold chase, so the load speculatively
    // bypasses the unknown-address store and reads the stale value.
    for (unsigned r = 0; r < ssbRounds; ++r)
        b.memory().write(staleBase + 64 * r, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, ssbRounds);
    b.movi(Regs::preg, staleBase);

    // Warm the pointer slots so the bypassing load hits in the L1 and
    // the transmitter runs well inside the disambiguation window.
    for (unsigned r = 0; r < ssbRounds; ++r)
        b.load(Regs::hop1, Regs::preg, 64 * r);

    const auto round = b.here();
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::paddr, Regs::hop2, 24); // This round's slot address.
    b.add(Regs::chase, Regs::hop2, Regs::zero);
    // The sanitising store: address unknown for ~300 cycles.
    b.store(Regs::paddr, Regs::zero, 0);
    // The victim load of the same slot: address known immediately, so
    // it optimistically bypasses the store and reads the stale index.
    b.load(Regs::idx, Regs::preg, 0);
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.addi(Regs::preg, Regs::preg, 64);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // The store's delayed address, parked on the chase like v2's
    // targets: round r's third hop carries staleBase + 64r.
    for (unsigned r = 0; r < ssbRounds; ++r) {
        const Addr node = chain.nodeAddr(2 * r + 2);
        b.memory().write(node + 24, staleBase + 64 * r);
    }

    out.program = b.build("spectre-v4-ssb");
    return out;
}

} // anonymous namespace

const char *
gadgetName(GadgetKind kind)
{
    switch (kind) {
      case GadgetKind::SpectreV1:
        return "spectre-v1";
      case GadgetKind::SpectreV1Mask:
        return "spectre-v1-mask";
      case GadgetKind::SpectreV2Indirect:
        return "spectre-v2-indirect";
      case GadgetKind::SpectreV4StoreBypass:
        return "spectre-v4-ssb";
    }
    sb_panic("unknown gadget kind");
}

bool
gadgetFromName(const std::string &name, GadgetKind &out)
{
    for (GadgetKind kind : allGadgets()) {
        if (name == gadgetName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::vector<GadgetKind>
allGadgets()
{
    return {GadgetKind::SpectreV1, GadgetKind::SpectreV1Mask,
            GadgetKind::SpectreV2Indirect,
            GadgetKind::SpectreV4StoreBypass};
}

GadgetProgram
buildGadgetProgram(GadgetKind kind, std::uint8_t secret_byte,
                   std::uint64_t seed)
{
    sb_assert(secret_byte >= 1,
              "secret byte must be 1..255 (slot 0 is warmed by training)");
    switch (kind) {
      case GadgetKind::SpectreV1:
        return buildV1(secret_byte, seed, false);
      case GadgetKind::SpectreV1Mask:
        return buildV1(secret_byte, seed, true);
      case GadgetKind::SpectreV2Indirect:
        return buildV2(secret_byte, seed);
      case GadgetKind::SpectreV4StoreBypass:
        return buildV4(secret_byte, seed);
    }
    sb_panic("unknown gadget kind");
}

} // namespace sb
