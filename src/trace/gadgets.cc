#include "trace/gadgets.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sb
{

namespace
{

using gadget_layout::array2Base;
using gadget_layout::probeStride;

// Memory layout shared by every gadget.
constexpr Addr array1Base = 0x200000;
constexpr Addr secretOffset = 0x10000;   ///< Out-of-range index.
constexpr Addr idxArrayBase = 0x600000;
constexpr Addr staleBase = 0xA00000;     ///< v4 sanitised-pointer slots.
constexpr Addr chaseBase = 0x800000;
/** Cross-domain v2: slot holding the attacker's training target. */
constexpr Addr targSlotAddr = 0x700000;
/** Swapgs flag chains: the attacker's sits in one line (resolves
 *  fast); the victim's spans three cold lines (slow resolve = the
 *  speculation window). */
constexpr Addr flagChainA = 0xB00000;
constexpr Addr flagChainB = 0xB10000;
constexpr unsigned chaseNodes = 2048;
constexpr unsigned trainingRounds = 48;
constexpr std::int64_t inRangeLength = 8;
/** v4 needs no predictor training; each round leaks independently. */
constexpr unsigned ssbRounds = 16;
/** Mask for the v1 "false mitigation": wide enough to pass the
 *  malicious index (secretOffset < 0x20000), so it mitigates nothing
 *  while leaving the in-range training indices untouched. */
constexpr std::int64_t falseMask = 0x1ffff;

/** Register assignments shared by every gadget. */
struct Regs
{
    static constexpr ArchReg a1 = 1, a2 = 2, idxp = 3, idx = 4;
    static constexpr ArchReg bound = 5, chase = 6, hop1 = 7, hop2 = 8;
    static constexpr ArchReg secret = 10, offs = 11, slot = 12;
    static constexpr ArchReg leakv = 13, probeAddr = 14, probeVal = 15;
    static constexpr ArchReg targ = 16, paddr = 17, preg = 18;
    static constexpr ArchReg cnt = 20, lim = 21, one = 22, mask = 23;
    static constexpr ArchReg byteMask = 24, nine = 25, acc = 26;
    static constexpr ArchReg chain0 = 27, zero = 28;
};

/**
 * Cold pointer chase: a shuffled cyclic chain of 64-byte nodes. Each
 * node holds its successor's address at +0 and the (benign) bound at
 * +8; offsets +16 and +24 are free for per-round gadget payloads
 * (v2 jump targets, v4 store addresses). Dependent hops through the
 * cold chain are what delay each gadget's squash trigger.
 */
struct ChaseChain
{
    std::vector<std::uint32_t> order;

    Addr
    nodeAddr(unsigned i) const
    {
        return chaseBase + Addr(order[i % chaseNodes]) * 64;
    }
};

ChaseChain
buildChase(ProgramBuilder &b, Rng &rng)
{
    ChaseChain chain;
    chain.order.resize(chaseNodes);
    for (unsigned i = 0; i < chaseNodes; ++i)
        chain.order[i] = i;
    for (unsigned i = chaseNodes - 1; i > 0; --i) {
        const unsigned j = rng.below(i);
        std::swap(chain.order[i], chain.order[j]);
    }
    for (unsigned i = 0; i < chaseNodes; ++i) {
        const Addr node = chain.nodeAddr(i);
        const Addr next = chain.nodeAddr(i + 1);
        b.memory().write(node, next);
        b.memory().write(node + 8, inRangeLength); // The bound.
    }
    return chain;
}

/** In-range victim entries are all zero, so architectural execution
 *  only ever warms probe slot 0 (excluded from scoring). The secret
 *  belongs to tenant @p owner (0 for the single-tenant gadgets). */
void
initVictimArrays(ProgramBuilder &b, std::uint8_t secret_byte,
                 TenantId owner = 0)
{
    for (unsigned i = 0; i < inRangeLength; ++i)
        b.memory().write(array1Base + 8 * i, 0);
    b.memory().write(array1Base + secretOffset, secret_byte);
    b.markSecret(array1Base + secretOffset, 8, owner);
}

/** Common register preamble; gadget-specific registers ride along. */
void
emitPreamble(ProgramBuilder &b, const ChaseChain &chain,
             unsigned rounds)
{
    b.movi(Regs::a1, array1Base);
    b.movi(Regs::a2, array2Base);
    b.movi(Regs::idxp, idxArrayBase);
    b.movi(Regs::chase, chain.nodeAddr(0));
    b.movi(Regs::cnt, 0);
    b.movi(Regs::lim, rounds);
    b.movi(Regs::one, 1);
    b.movi(Regs::byteMask, 0xff);
    b.movi(Regs::nine, 9);
    b.movi(Regs::acc, 0);
    b.movi(Regs::chain0, 0);
    b.movi(Regs::zero, 0);
}

/**
 * The shared transmitter: read array1[idx], encode the byte into the
 * residency of probe slot array2[byte * 512]. Transient execution of
 * this sequence with a malicious idx is what every gadget arranges.
 */
std::uint32_t
emitTransmitter(ProgramBuilder &b)
{
    b.add(Regs::offs, Regs::a1, Regs::idx);
    b.load(Regs::secret, Regs::offs, 0);   // Reads the secret.
    b.and_(Regs::secret, Regs::secret, Regs::byteMask);
    b.shl(Regs::slot, Regs::secret, Regs::nine); // * 512.
    b.add(Regs::slot, Regs::a2, Regs::slot);
    // Transmit: warms the slot; its address operand carries the
    // secret label, so this pc is where the contract shadow engine
    // pinpoints an out-of-contract transmit.
    const std::uint32_t transmit_pc = b.load(Regs::leakv, Regs::slot, 0);
    b.add(Regs::acc, Regs::acc, Regs::leakv);
    return transmit_pc;
}

/**
 * Shared receiver: a serialisation barrier of six more cold dependent
 * hops (so no probe load can execute until long after any wrong-path
 * window closed; the harness pauses at the first barrier load to read
 * the residency oracle before the probe pollutes the cache), then a
 * fully serialised timing probe over slots 1..255.
 */
void
emitBarrierAndProbe(ProgramBuilder &b, GadgetProgram &out)
{
    out.barrierPc = b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::hop1, Regs::hop2, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::hop1, Regs::hop2, 0);
    b.load(Regs::bound, Regs::hop1, 0);
    b.and_(Regs::chain0, Regs::bound, Regs::zero);

    for (unsigned v = 1; v < 256; ++v) {
        const std::uint32_t movi_pc =
            b.movi(Regs::probeAddr, array2Base + Addr(v) * probeStride);
        if (v == 1)
            out.firstProbePc = movi_pc + 2;
        b.add(Regs::probeAddr, Regs::probeAddr, Regs::chain0);
        b.load(Regs::probeVal, Regs::probeAddr, 0);
        b.and_(Regs::chain0, Regs::probeVal, Regs::zero);
    }
    b.halt();
}

// ---------------------------------------------------------------------
// Spectre v1 (and the masked false-mitigation variant)
// ---------------------------------------------------------------------

GadgetProgram
buildV1(std::uint8_t secret_byte, std::uint64_t seed, bool masked)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    // Index sequence: training values, then the malicious index.
    const unsigned rounds = trainingRounds + 1;
    for (unsigned t = 0; t < trainingRounds; ++t)
        b.memory().write(idxArrayBase + 8 * t, t % inRangeLength);
    b.memory().write(idxArrayBase + 8 * trainingRounds, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, rounds);
    if (masked)
        b.movi(Regs::mask, falseMask);

    const auto round = b.here();
    // Three dependent cold loads delay the bound by ~300 cycles.
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::bound, Regs::hop2, 8);
    b.add(Regs::chase, Regs::hop2, Regs::zero); // Advance the head.
    b.load(Regs::idx, Regs::idxp, 0);
    b.addi(Regs::idxp, Regs::idxp, 8);
    if (masked) {
        // The "mitigation": clamp the index before the bounds check.
        // The mask passes secretOffset, so the gadget leaks anyway.
        b.and_(Regs::idx, Regs::idx, Regs::mask);
    }
    const auto skip = b.futureLabel();
    b.bge(Regs::idx, Regs::bound, skip); // The trained bounds check.
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.bind(skip);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    // Loop structure matters for receiver hygiene: the exit branch is
    // not-taken through every round, so any mispredicted wrong path
    // falls back *into* the loop, never into the probe code.
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);
    out.program = b.build(masked ? "spectre-v1-mask" : "spectre-v1");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v2: indirect-branch target misprediction
// ---------------------------------------------------------------------

GadgetProgram
buildV2(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    const unsigned rounds = trainingRounds + 1;
    for (unsigned t = 0; t < trainingRounds; ++t)
        b.memory().write(idxArrayBase + 8 * t, t % inRangeLength);
    b.memory().write(idxArrayBase + 8 * trainingRounds, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, rounds);

    const auto round = b.here();
    // The per-round jump target rides on the cold chase, so the
    // indirect branch stays unresolved for ~300 cycles while fetch
    // follows the BTB.
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::targ, Regs::hop2, 16); // This round's destination.
    b.add(Regs::chase, Regs::hop2, Regs::zero);
    b.load(Regs::idx, Regs::idxp, 0);
    b.addi(Regs::idxp, Regs::idxp, 8);
    b.jr(Regs::targ);
    // The gadget sits directly after the jr: a cold BTB predicts
    // fall-through, which is also the architectural target of every
    // training round, so training is mispredict-free from round 0.
    const std::uint32_t gadget_pc = b.here();
    const std::uint32_t transmit_pc = emitTransmitter(b);
    // Training rounds fall through the gadget into the join.
    const std::uint32_t join_pc = b.here();
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // Per-round targets, written now that the PCs are known: round r
    // reads its destination from the node its third hop lands on.
    // Training rounds architecturally enter the gadget (with in-range
    // indices); the attack round's architectural target skips it, but
    // the trained BTB sends transient fetch through it with the
    // malicious index.
    for (unsigned r = 0; r < rounds; ++r) {
        const Addr node = chain.nodeAddr(2 * r + 2);
        b.memory().write(node + 16,
                         r < trainingRounds ? gadget_pc : join_pc);
    }

    out.program = b.build("spectre-v2-indirect");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v4: speculative store bypass
// ---------------------------------------------------------------------

GadgetProgram
buildV4(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte);

    // Each round has its own "pointer" slot, pre-loaded with the
    // malicious stale index. The victim sanitises the slot with a
    // store of zero, then immediately reloads it — but the store's
    // address rides on the cold chase, so the load speculatively
    // bypasses the unknown-address store and reads the stale value.
    for (unsigned r = 0; r < ssbRounds; ++r)
        b.memory().write(staleBase + 64 * r, secretOffset);

    const ChaseChain chain = buildChase(b, rng);

    emitPreamble(b, chain, ssbRounds);
    b.movi(Regs::preg, staleBase);

    // Warm the pointer slots so the bypassing load hits in the L1 and
    // the transmitter runs well inside the disambiguation window.
    for (unsigned r = 0; r < ssbRounds; ++r)
        b.load(Regs::hop1, Regs::preg, 64 * r);

    const auto round = b.here();
    b.load(Regs::hop1, Regs::chase, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::paddr, Regs::hop2, 24); // This round's slot address.
    b.add(Regs::chase, Regs::hop2, Regs::zero);
    // The sanitising store: address unknown for ~300 cycles.
    b.store(Regs::paddr, Regs::zero, 0);
    // The victim load of the same slot: address known immediately, so
    // it optimistically bypasses the store and reads the stale index.
    b.load(Regs::idx, Regs::preg, 0);
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.addi(Regs::preg, Regs::preg, 64);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    const auto exit_label = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // The store's delayed address, parked on the chase like v2's
    // targets: round r's third hop carries staleBase + 64r.
    for (unsigned r = 0; r < ssbRounds; ++r) {
        const Addr node = chain.nodeAddr(2 * r + 2);
        b.memory().write(node + 24, staleBase + 64 * r);
    }

    out.program = b.build("spectre-v4-ssb");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v2 cross-domain: BTB injection across a context switch
// ---------------------------------------------------------------------

/**
 * Attacker tenant A (= 0, the observer) architecturally drives a
 * shared dispatcher `jr targ` at its gadget target for trainingRounds,
 * planting a BTB entry, then context-switches to victim tenant B
 * (= 1, the secret owner). B holds — legitimately — a pointer to its
 * own secret and jumps through the same dispatcher at a target that
 * skips the gadget, with the target riding three cold dependent loads.
 * If predictor state survives the switch, fetch follows A's BTB entry
 * into the gadget with B's registers: B's secret is read and
 * transmitted transiently. B switches back and A reads the probe.
 *
 * The gadget deliberately does NOT sit at the dispatcher's
 * fall-through: a cold (flushed) BTB predicts fall-through, which is a
 * harmless trampoline, so the flush-on-switch policy closes the
 * channel. A retpoline (JmpRegRet) never consults the BTB and closes
 * it the same way.
 */
GadgetProgram
buildV2Cross(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte, /*owner=*/1);
    const ChaseChain chain = buildChase(b, rng);

    // --- Tenant A: training loop ----------------------------------
    emitPreamble(b, chain, trainingRounds);
    b.movi(Regs::idx, 0);               // Public in-range index.
    b.movi(Regs::paddr, targSlotAddr);  // Training-target slot.

    const auto round = b.here();
    const auto exit_a = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_a);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    b.load(Regs::targ, Regs::paddr, 0); // = gadget pc (warm).
    // D: the shared dispatcher. A falls into it; B jumps to it.
    const std::uint32_t dispatcher_pc = b.jr(Regs::targ);
    // Fall-through = what a cold BTB predicts: a harmless trampoline.
    b.jmp(round);
    // G: the gadget body (the trained target).
    const std::uint32_t gadget_pc = b.here();
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.jmp(round);

    b.bind(exit_a);
    b.switchTenant(1);
    // A resumes here after B switches back. The fence keeps any
    // wrong path that runs ahead of a switch marker from renaming
    // receiver code; the fresh chase head gives the barrier a fully
    // cold segment (B walked nodes 0..2).
    b.fence();
    b.movi(Regs::chase, chain.nodeAddr(16));
    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // --- Tenant B: the victim -------------------------------------
    b.tenantEntry(1);
    b.movi(Regs::a1, array1Base);
    b.movi(Regs::a2, array2Base);
    b.movi(Regs::byteMask, 0xff);
    b.movi(Regs::nine, 9);
    b.movi(Regs::acc, 0);
    b.movi(Regs::idx, secretOffset); // B's pointer to B's own secret.
    b.movi(Regs::chase, chain.nodeAddr(0));
    b.load(Regs::hop1, Regs::chase, 0);  // Cold …
    b.load(Regs::hop2, Regs::hop1, 0);   // … serial …
    b.load(Regs::targ, Regs::hop2, 16);  // … ≈300-cycle resolve.
    b.jmp(dispatcher_pc);
    const std::uint32_t b_cont = b.here(); // B's architectural target.
    b.switchTenant(0);
    b.halt();

    // Build-time backpatches now that the pcs are known.
    b.memory().write(targSlotAddr, gadget_pc);
    b.memory().write(chain.nodeAddr(2) + 16, b_cont);

    out.secretOwner = 1;
    out.observer = 0;
    out.program = b.build("spectre-v2-cross");
    return out;
}

// ---------------------------------------------------------------------
// Spectre v1 swapgs-style: branch-path injection across a switch
// ---------------------------------------------------------------------

/**
 * CVE-2019-1125 shape: a shared entry routine resolves a flag through
 * dependent loads and conditionally takes a privileged path that
 * dereferences a caller-supplied pointer. Attacker tenant A trains the
 * branch taken (its flag chain resolves fast to 0, its pointer is
 * public). Victim tenant B's flag chain spans three cold lines and
 * resolves to 1 — architecturally B falls through — but a predictor
 * kept across the switch steers B transiently into the privileged
 * path with B's secret-pointing registers.
 *
 * The privileged path is the branch's TAKEN side, so a flushed
 * predictor (cold bimodal predicts not-taken) closes the channel, as
 * do the conditional-branch software mitigations (SLH, fences). A
 * retpoline is irrelevant here: the gadget must stay armed under it.
 */
GadgetProgram
buildV1Swapgs(std::uint8_t secret_byte, std::uint64_t seed)
{
    ProgramBuilder b;
    Rng rng(seed);

    initVictimArrays(b, secret_byte, /*owner=*/1);
    const ChaseChain chain = buildChase(b, rng);

    // Flag chains (see flagChainA/flagChainB above).
    b.memory().write(flagChainA + 0, flagChainA + 8);
    b.memory().write(flagChainA + 8, flagChainA + 16);
    b.memory().write(flagChainA + 16, 0); // A: flag = 0 → taken.
    b.memory().write(flagChainB + 0, flagChainB + 0x1000);
    b.memory().write(flagChainB + 0x1000, flagChainB + 0x2000);
    b.memory().write(flagChainB + 0x2000, 1); // B: flag = 1 → fall.

    // --- Tenant A: train the privileged path taken ----------------
    emitPreamble(b, chain, trainingRounds);
    b.movi(Regs::idx, 0);             // Public pointer offset.
    b.movi(Regs::preg, flagChainA);   // A's flag chain head.

    const auto round = b.here();
    b.load(Regs::hop1, Regs::preg, 0);
    b.load(Regs::hop2, Regs::hop1, 0);
    b.load(Regs::bound, Regs::hop2, 0); // The flag.
    const auto danger = b.futureLabel();
    const auto b_switch = b.futureLabel();
    b.beq(Regs::bound, Regs::zero, danger);
    // Fall-through: only B's architectural path (flag = 1).
    b.jmp(b_switch);
    // The privileged path: dereference the caller's pointer.
    b.bind(danger);
    const std::uint32_t transmit_pc = emitTransmitter(b);
    b.add(Regs::cnt, Regs::cnt, Regs::one);
    const auto exit_a = b.futureLabel();
    b.beq(Regs::cnt, Regs::lim, exit_a);
    b.jmp(round);

    b.bind(exit_a);
    b.switchTenant(1);
    // A's resume point: fence (wrong-path hygiene, as in the cross-v2
    // gadget), then an all-cold barrier segment.
    b.fence();
    b.movi(Regs::chase, chain.nodeAddr(0));
    GadgetProgram out;
    out.transmitPc = transmit_pc;
    emitBarrierAndProbe(b, out);

    // --- Tenant B: the victim -------------------------------------
    b.tenantEntry(1);
    b.movi(Regs::a1, array1Base);
    b.movi(Regs::a2, array2Base);
    b.movi(Regs::byteMask, 0xff);
    b.movi(Regs::nine, 9);
    b.movi(Regs::acc, 0);
    b.movi(Regs::idx, secretOffset); // B's pointer to B's own secret.
    b.movi(Regs::preg, flagChainB);  // B's (cold) flag chain head.
    b.jmp(round);

    b.bind(b_switch);
    b.switchTenant(0);
    b.halt();

    out.secretOwner = 1;
    out.observer = 0;
    out.program = b.build("spectre-v1-swapgs");
    return out;
}

} // anonymous namespace

const char *
gadgetName(GadgetKind kind)
{
    switch (kind) {
      case GadgetKind::SpectreV1:
        return "spectre-v1";
      case GadgetKind::SpectreV1Mask:
        return "spectre-v1-mask";
      case GadgetKind::SpectreV2Indirect:
        return "spectre-v2-indirect";
      case GadgetKind::SpectreV4StoreBypass:
        return "spectre-v4-ssb";
      case GadgetKind::SpectreV2CrossDomain:
        return "spectre-v2-cross";
      case GadgetKind::SpectreV1Swapgs:
        return "spectre-v1-swapgs";
    }
    sb_panic("unknown gadget kind");
}

bool
gadgetFromName(const std::string &name, GadgetKind &out)
{
    for (GadgetKind kind : allGadgets()) {
        if (name == gadgetName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::vector<GadgetKind>
allGadgets()
{
    return {GadgetKind::SpectreV1, GadgetKind::SpectreV1Mask,
            GadgetKind::SpectreV2Indirect,
            GadgetKind::SpectreV4StoreBypass,
            GadgetKind::SpectreV2CrossDomain,
            GadgetKind::SpectreV1Swapgs};
}

GadgetProgram
buildGadgetProgram(GadgetKind kind, std::uint8_t secret_byte,
                   std::uint64_t seed)
{
    sb_assert(secret_byte >= 1,
              "secret byte must be 1..255 (slot 0 is warmed by training)");
    switch (kind) {
      case GadgetKind::SpectreV1:
        return buildV1(secret_byte, seed, false);
      case GadgetKind::SpectreV1Mask:
        return buildV1(secret_byte, seed, true);
      case GadgetKind::SpectreV2Indirect:
        return buildV2(secret_byte, seed);
      case GadgetKind::SpectreV4StoreBypass:
        return buildV4(secret_byte, seed);
      case GadgetKind::SpectreV2CrossDomain:
        return buildV2Cross(secret_byte, seed);
      case GadgetKind::SpectreV1Swapgs:
        return buildV1Swapgs(secret_byte, seed);
    }
    sb_panic("unknown gadget kind");
}

} // namespace sb
