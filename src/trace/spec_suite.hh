/**
 * @file
 * SPEC CPU2017 stand-in suite.
 *
 * One synthetic workload per benchmark the paper evaluates (Figure 6).
 * The real suite cannot be redistributed or run on this substrate, so
 * each benchmark is mapped to a kernel whose microarchitectural
 * character matches the behaviour the paper reports for it (see
 * DESIGN.md "Substitutions"). Parameters were calibrated against the
 * paper's per-benchmark normalised IPC.
 */

#ifndef SB_TRACE_SPEC_SUITE_HH
#define SB_TRACE_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace sb
{

/** A named, runnable benchmark stand-in. */
struct Workload
{
    std::string name;
    Program program;
};

/** Factory for the 22-benchmark stand-in suite. */
class SpecSuite
{
  public:
    /** Names in the paper's presentation order (Figure 6). */
    static std::vector<std::string> benchmarkNames();

    /** Build the stand-in for one benchmark (fatal on unknown name). */
    static Workload make(const std::string &name);

    /** Build every benchmark. */
    static std::vector<Workload> all();
};

} // namespace sb

#endif // SB_TRACE_SPEC_SUITE_HH
