#include "trace/spec_suite.hh"

#include "common/logging.hh"
#include "trace/kernels.hh"

namespace sb
{

std::vector<std::string>
SpecSuite::benchmarkNames()
{
    return {
        "500.perlbench", "502.gcc",       "503.bwaves",   "505.mcf",
        "507.cactuBSSN", "508.namd",      "510.parest",   "511.povray",
        "519.lbm",       "520.omnetpp",   "521.wrf",      "523.xalancbmk",
        "525.x264",      "527.cam4",      "531.deepsjeng","538.imagick",
        "541.leela",     "544.nab",       "548.exchange2","549.fotonik3d",
        "554.roms",      "557.xz",
    };
}

Workload
SpecSuite::make(const std::string &name)
{
    Program p;

    if (name == "500.perlbench") {
        HashMixParams h;
        h.footprintBytes = 512u << 10;
        h.probesPerIter = 2;
        h.computePerProbe = 4;
        h.storeFraction = 0.4;
        h.slowBranchFraction = 0.6;
        h.noisyBranchFraction = 0.2;
        h.dependentLoadFraction = 0.5;
        h.seed = 500;
        p = makeHashMixKernel(h);
    } else if (name == "502.gcc") {
        HashMixParams h;
        h.footprintBytes = 2u << 20;
        h.probesPerIter = 2;
        h.computePerProbe = 3;
        h.storeFraction = 0.3;
        h.slowBranchFraction = 0.4;
        h.noisyBranchFraction = 0.25;
        h.dependentLoadFraction = 0.15;
        h.seed = 502;
        p = makeHashMixKernel(h);
    } else if (name == "503.bwaves") {
        StreamParams s;
        s.footprintBytes = 32u << 20;
        s.loadsPerIter = 2;
        s.computePerLoad = 2;
        s.useFp = true;
        s.storePerIter = true;
        s.seed = 503;
        p = makeStreamKernel(s);
    } else if (name == "505.mcf") {
        PointerChaseParams c;
        c.footprintBytes = 8u << 20;
        c.chains = 3;
        c.workPerHop = 2;
        c.slowBranchFraction = 1.0;
        c.noisyBranchFraction = 0.3;
        c.seed = 505;
        c.branchChainLength = 8;
        p = makePointerChaseKernel(c);
    } else if (name == "507.cactuBSSN") {
        ComputeChainParams k;
        k.chainLength = 6;
        k.chainsPerIter = 3;
        k.useFp = true;
        k.loadsPerIter = 3;
        k.hotBytes = 64u << 10;
        k.seed = 507;
        k.independentWork = 8;
        p = makeComputeChainKernel(k);
    } else if (name == "508.namd") {
        ComputeChainParams k;
        k.chainLength = 4;
        k.chainsPerIter = 4;
        k.useFp = true;
        k.loadsPerIter = 2;
        k.hotBytes = 32u << 10;
        k.seed = 508;
        k.independentWork = 12;
        p = makeComputeChainKernel(k);
    } else if (name == "510.parest") {
        ComputeChainParams k;
        k.chainLength = 5;
        k.chainsPerIter = 2;
        k.useFp = true;
        k.loadsPerIter = 3;
        k.hotBytes = 256u << 10;
        k.seed = 510;
        k.independentWork = 14;
        p = makeComputeChainKernel(k);
    } else if (name == "511.povray") {
        BranchyParams br;
        br.hardBranches = 2;
        br.easyBranches = 2;
        br.computePerBranch = 4;
        br.footprintBytes = 128u << 10;
        br.loadConditionFraction = 0.3;
        br.seed = 511;
        br.slowBranchChain = 6;
        p = makeBranchyKernel(br);
    } else if (name == "519.lbm") {
        StreamParams s;
        s.footprintBytes = 64u << 20;
        s.loadsPerIter = 3;
        s.computePerLoad = 2;
        s.useFp = true;
        s.storePerIter = true;
        s.seed = 519;
        p = makeStreamKernel(s);
    } else if (name == "520.omnetpp") {
        PointerChaseParams c;
        c.footprintBytes = 16u << 20;
        c.chains = 4;
        c.workPerHop = 3;
        c.slowBranchFraction = 0.8;
        c.noisyBranchFraction = 0.2;
        c.seed = 520;
        c.branchChainLength = 6;
        p = makePointerChaseKernel(c);
    } else if (name == "521.wrf") {
        ComputeChainParams k;
        k.chainLength = 4;
        k.chainsPerIter = 3;
        k.useFp = true;
        k.loadsPerIter = 3;
        k.hotBytes = 1u << 20;
        k.seed = 521;
        k.independentWork = 10;
        p = makeComputeChainKernel(k);
    } else if (name == "523.xalancbmk") {
        HashMixParams h;
        h.footprintBytes = 4u << 20;
        h.probesPerIter = 3;
        h.computePerProbe = 2;
        h.storeFraction = 0.2;
        h.slowBranchFraction = 0.45;
        h.noisyBranchFraction = 0.2;
        h.dependentLoadFraction = 0.25;
        h.seed = 523;
        p = makeHashMixKernel(h);
    } else if (name == "525.x264") {
        ComputeChainParams k;
        k.chainLength = 3;
        k.chainsPerIter = 4;
        k.useFp = false;
        k.loadsPerIter = 3;
        k.hotBytes = 512u << 10;
        k.seed = 525;
        p = makeComputeChainKernel(k);
    } else if (name == "527.cam4") {
        StreamParams s;
        s.footprintBytes = 16u << 20;
        s.loadsPerIter = 2;
        s.computePerLoad = 3;
        s.useFp = true;
        s.storePerIter = true;
        s.seed = 527;
        p = makeStreamKernel(s);
    } else if (name == "531.deepsjeng") {
        BranchyParams br;
        br.hardBranches = 3;
        br.easyBranches = 1;
        br.computePerBranch = 3;
        br.footprintBytes = 1u << 20;
        br.loadConditionFraction = 0.7;
        br.seed = 531;
        br.slowBranchChain = 8;
        p = makeBranchyKernel(br);
    } else if (name == "538.imagick") {
        ComputeChainParams k;
        k.chainLength = 8;
        k.chainsPerIter = 2;
        k.useFp = true;
        k.loadsPerIter = 2;
        k.hotBytes = 16u << 10;
        k.seed = 538;
        k.independentWork = 6;
        p = makeComputeChainKernel(k);
    } else if (name == "541.leela") {
        BranchyParams br;
        br.hardBranches = 3;
        br.easyBranches = 2;
        br.computePerBranch = 2;
        br.footprintBytes = 512u << 10;
        br.loadConditionFraction = 0.6;
        br.seed = 541;
        br.slowBranchChain = 8;
        p = makeBranchyKernel(br);
    } else if (name == "544.nab") {
        ComputeChainParams k;
        k.chainLength = 5;
        k.chainsPerIter = 3;
        k.useFp = true;
        k.loadsPerIter = 2;
        k.hotBytes = 128u << 10;
        k.seed = 544;
        k.independentWork = 14;
        p = makeComputeChainKernel(k);
    } else if (name == "548.exchange2") {
        StoreForwardParams sf;
        sf.regionBytes = 4u << 10;
        sf.depth = 3;
        sf.computePerLevel = 2;
        sf.loadedData = true;
        sf.chainAfterPop = 20;
        sf.seed = 548;
        sf.independentWork = 12;
        p = makeStoreForwardKernel(sf);
    } else if (name == "549.fotonik3d") {
        StreamParams s;
        s.footprintBytes = 32u << 20;
        s.loadsPerIter = 2;
        s.computePerLoad = 2;
        s.useFp = true;
        s.storePerIter = true;
        s.seed = 549;
        p = makeStreamKernel(s);
    } else if (name == "554.roms") {
        StreamParams s;
        s.footprintBytes = 32u << 20;
        s.loadsPerIter = 3;
        s.computePerLoad = 2;
        s.useFp = true;
        s.storePerIter = false;
        s.seed = 554;
        p = makeStreamKernel(s);
    } else if (name == "557.xz") {
        HashMixParams h;
        h.footprintBytes = 2u << 20;
        h.probesPerIter = 2;
        h.computePerProbe = 3;
        h.storeFraction = 0.4;
        h.slowBranchFraction = 0.5;
        h.noisyBranchFraction = 0.15;
        h.dependentLoadFraction = 0.45;
        h.seed = 557;
        p = makeHashMixKernel(h);
    } else {
        sb_fatal("unknown SPEC2017 stand-in: ", name);
    }

    Workload w;
    w.name = name;
    w.program = std::move(p);
    return w;
}

std::vector<Workload>
SpecSuite::all()
{
    std::vector<Workload> out;
    for (const auto &name : benchmarkNames())
        out.push_back(make(name));
    return out;
}

} // namespace sb
