/**
 * @file
 * Multi-tenant server-mix workload generator.
 *
 * Models a request-serving core shared by several protection domains:
 * each tenant handles a stream of requests drawn from a small service
 * mix (hash-table lookups, input parsing, buffer copies, and a
 * crypto-style kernel over the tenant's own secret key material), and
 * the core round-robins between tenants with a commit-time context
 * switch after every request. Every request ends on a switch marker,
 * so the harness can histogram per-request service times (tail
 * latency) straight off the commit stream.
 *
 * The *hostile* variant arms tenant 0 with a Spectre-v1 bounds-check
 * gadget whose transient out-of-bounds index reaches tenant 1's
 * secret region: the contract shadow engine attributes the transient
 * transmit to tenant 0 while the label's owner is tenant 1, so every
 * successful transient firing is a cross-tenant violation — the
 * leakage column of the multi_tenant report.
 */

#ifndef SB_TRACE_SERVER_MIX_HH
#define SB_TRACE_SERVER_MIX_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace sb
{

/** Parameters for the server-mix generator. */
struct ServerMixParams
{
    /** Protection domains sharing the core (2..16). */
    unsigned tenants = 4;
    /** Requests served per tenant (round-robin rounds). */
    unsigned requests = 24;
    /** Unrolled kernel iterations per request (work per request). */
    unsigned work = 24;
    /** Arm tenant 0 with the cross-tenant v1 gadget. */
    bool hostile = true;
    /** Perturbs per-tenant initial hash state and table contents. */
    std::uint64_t seed = 7;
};

/** A built server-mix program plus its request-accounting metadata. */
struct ServerMixProgram
{
    Program program;
    /** PCs of the per-request context-switch markers: one commit of
     *  any of these = one request completed (the tail-latency
     *  sampling points). */
    std::vector<std::uint32_t> requestEnds;
    unsigned tenants = 0;
    /** Total requests across all tenants (== requestEnds.size()). */
    unsigned totalRequests = 0;
};

ServerMixProgram buildServerMix(const ServerMixParams &p);

} // namespace sb

#endif // SB_TRACE_SERVER_MIX_HH
