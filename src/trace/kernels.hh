/**
 * @file
 * Synthetic kernel generators.
 *
 * Each generator emits a real, functionally-executing program whose
 * microarchitectural character (memory-boundedness, branch
 * predictability, dependency structure, store/load aliasing) is set by
 * explicit parameters. The SPEC CPU2017 stand-in suite (spec_suite.hh)
 * composes these kernels with per-benchmark parameters.
 *
 * The central knob for secure-speculation sensitivity is the *slow
 * branch*: a perfectly predictable (never-taken) compare against a
 * magic constant whose operand only becomes available after a load or
 * a compute chain. Slow branches cost the baseline nothing but keep
 * C-shadows open for the full data latency, which:
 *  - stalls the visibility point, so loads complete speculative and
 *    NDA must defer their broadcasts (its main IPC cost);
 *  - keeps taint roots live, so STT blocks dependent transmitters
 *    (loads/stores/branches with tainted operands);
 *  - under single-taint STT-Rename, delays store address generation,
 *    causing the forwarding-error storms of paper Sec. 9.2.
 * Noisy branches (low-bias conditions on loaded data) add real
 * mispredicts on top, for benchmarks that have them.
 */

#ifndef SB_TRACE_KERNELS_HH
#define SB_TRACE_KERNELS_HH

#include <cstdint>

#include "isa/program.hh"

namespace sb
{

/** Parameters for the streaming (array-sweep) kernel. */
struct StreamParams
{
    std::uint64_t footprintBytes = 8u << 20;
    unsigned loadsPerIter = 2;      ///< Independent loads per element.
    unsigned computePerLoad = 2;    ///< Independent ALU/FP ops per load.
    bool useFp = true;              ///< FP-latency compute ops.
    bool storePerIter = true;       ///< One streaming store per element.
    /** Emit a slow branch on loaded data every N iterations (0=off). */
    unsigned slowBranchPeriod = 0;
    std::uint64_t seed = 1;
};

/** Parameters for the pointer-chase kernel. */
struct PointerChaseParams
{
    std::uint64_t footprintBytes = 16u << 20;
    unsigned chains = 2;            ///< Independent chains (MLP).
    unsigned workPerHop = 2;        ///< ALU ops per dereference.
    /** Fraction of chains followed by a slow branch on the payload. */
    double slowBranchFraction = 1.0;
    /** Fraction of chains followed by a noisy (mispredicting) branch. */
    double noisyBranchFraction = 0.25;
    /**
     * Heterogeneous chains: chain c's footprint is
     * footprintBytes >> (3*c) (floor 128 KiB), so fast (cache-
     * resident) chains coexist with DRAM-bound ones, and fast chains
     * take several dependent hops per iteration. Under STT every
     * intra-iteration hop address is tainted while the slow chain's
     * branch is unresolved, collapsing the fast chains' MLP — the
     * dominant STT cost on mcf-like code.
     */
    bool heterogeneous = true;
    /** Dependent hops per iteration for the fastest chains. */
    unsigned maxHopsPerIter = 4;
    /**
     * Dependent ALU ops between a payload and its slow branch: the
     * branch then resolves that much after the payload, keeping the
     * next hop's taint root live past its data-ready time (the STT
     * serialisation cost on the chase recurrence).
     */
    unsigned branchChainLength = 0;
    std::uint64_t seed = 2;
};

/** Parameters for the compute-chain kernel. */
struct ComputeChainParams
{
    unsigned chainLength = 8;       ///< Dependent ops per chain segment.
    unsigned chainsPerIter = 2;     ///< Parallel chain segments.
    bool useFp = true;
    unsigned loadsPerIter = 2;      ///< Hot-set loads feeding the chains.
    std::uint64_t hotBytes = 16u << 10; ///< Small, L1-resident set.
    /** Slow branch on the chain result each iteration. */
    bool branchOnChain = true;
    /** Independent ALU ops per iteration (ILP the schemes keep). */
    unsigned independentWork = 0;
    std::uint64_t seed = 3;
};

/** Parameters for the branchy (control-dominated) kernel. */
struct BranchyParams
{
    /** Number of data-dependent (hard) branches per iteration. */
    unsigned hardBranches = 2;
    /** Number of loop-like (easy) branches per iteration. */
    unsigned easyBranches = 2;
    unsigned computePerBranch = 3;
    std::uint64_t footprintBytes = 256u << 10;
    /** Fraction of hard branches that test a loaded value. */
    double loadConditionFraction = 0.5;
    /**
     * Dependent ALU ops between a condition load and a trailing slow
     * branch each iteration: stretches the shadow so the taint roots
     * of the next iteration's conditions stay live, delaying tainted
     * mispredicting branches (longer wrong-path execution).
     */
    unsigned slowBranchChain = 0;
    std::uint64_t seed = 4;
};

/** Parameters for the store/forward (stack-churn) kernel. */
struct StoreForwardParams
{
    std::uint64_t regionBytes = 4u << 10; ///< Tiny, forwarding-heavy.
    unsigned depth = 4;             ///< Push/pop nesting per iteration.
    unsigned computePerLevel = 2;
    /** Store data depends on loaded values (keeps stores tainted). */
    bool loadedData = true;
    /** Slow branch on a popped value each iteration (keeps the
     *  shadow open so the taints above stay live). */
    bool slowBranchOnPop = true;
    /**
     * Dependent ALU ops between the pops and the value the slow
     * branch tests: stretches the shadow past the forwarding window
     * so the next iteration's pushes/pops run under it.
     */
    unsigned chainAfterPop = 8;
    /** Independent ALU ops per iteration (ILP the schemes keep). */
    unsigned independentWork = 8;
    std::uint64_t seed = 5;
};

/** Parameters for the hash-mix (irregular access) kernel. */
struct HashMixParams
{
    std::uint64_t footprintBytes = 4u << 20;
    unsigned probesPerIter = 2;
    unsigned computePerProbe = 3;
    double storeFraction = 0.3;     ///< Probes followed by a store.
    /** Fraction of probes followed by a slow branch on the value. */
    double slowBranchFraction = 0.6;
    /** Fraction of probes followed by a noisy branch on the value. */
    double noisyBranchFraction = 0.2;
    /**
     * Fraction of probes that dereference the loaded value as a
     * (sanitised) pointer. The second load's address is tainted
     * under STT, so it is a blocked transmitter while the first load
     * is speculative — the dominant STT cost in pointer-linked code.
     */
    double dependentLoadFraction = 0.5;
    std::uint64_t seed = 6;
};

Program makeStreamKernel(const StreamParams &p);
Program makePointerChaseKernel(const PointerChaseParams &p);
Program makeComputeChainKernel(const ComputeChainParams &p);
Program makeBranchyKernel(const BranchyParams &p);
Program makeStoreForwardKernel(const StoreForwardParams &p);
Program makeHashMixKernel(const HashMixParams &p);

} // namespace sb

#endif // SB_TRACE_KERNELS_HH
