#include "trace/server_mix.hh"

#include "common/logging.hh"

namespace sb
{

namespace
{

// Architectural register map (1..27; 0 and 28..31 stay unused).
constexpr ArchReg rTab = 1;     ///< Tenant's hash-table base.
constexpr ArchReg rIn = 2;      ///< Tenant's parse-input base.
constexpr ArchReg rCpyS = 3;    ///< memcpy source base.
constexpr ArchReg rCpyD = 4;    ///< memcpy destination base.
constexpr ArchReg rSec = 5;     ///< Tenant's own secret base.
constexpr ArchReg rScr = 6;     ///< Crypto scratch output base.
constexpr ArchReg rProbe = 7;   ///< Gadget probe-array base.
constexpr ArchReg rBndA = 8;    ///< Gadget bounds-array base.
constexpr ArchReg rK = 9;       ///< Hash multiplier constant.
constexpr ArchReg rMaskTab = 10; ///< Table-offset mask (0xFF8).
constexpr ArchReg rMask = 11;   ///< Byte mask (0xFF).
constexpr ArchReg rThree = 12;  ///< Shift-by-3 constant.
constexpr ArchReg rZero = 13;
constexpr ArchReg rOne = 14;
constexpr ArchReg rIdx = 15;    ///< Rolling hash state.
constexpr ArchReg rAddr = 16;   ///< Address temp.
constexpr ArchReg rVal = 17;    ///< Load temp.
constexpr ArchReg rAcc = 18;    ///< Public accumulator.
constexpr ArchReg rT = 19;      ///< Scratch temp.
constexpr ArchReg rMix = 20;    ///< Crypto state (secret-derived).
constexpr ArchReg rBound = 21;  ///< Gadget: loaded bound.
constexpr ArchReg rIdx2 = 22;   ///< Gadget: loaded index.
constexpr ArchReg rVict = 23;   ///< Gadget: victim-table base.
constexpr ArchReg rCnt = 24;    ///< Gadget: loop counter.
constexpr ArchReg rLim = 25;    ///< Gadget: loop limit.
constexpr ArchReg rIdxT = 26;   ///< Gadget: index-table base.
constexpr ArchReg rBndOff = 27; ///< Gadget: rolling bound offset.

// Per-tenant memory map: regions are spread so no two tenants share a
// word, and the gadget's malicious index is a compile-time constant.
constexpr Addr tableBase(unsigned t) { return 0x2000000 + Addr(t) * 0x100000; }
constexpr Addr inputBase(unsigned t) { return 0x3000000 + Addr(t) * 0x100000; }
constexpr Addr copySrcBase(unsigned t) { return 0x4000000 + Addr(t) * 0x100000; }
constexpr Addr copyDstBase(unsigned t) { return 0x4080000 + Addr(t) * 0x100000; }
constexpr Addr secretBase(unsigned t) { return 0x5000000 + Addr(t) * 0x10000; }
constexpr Addr scratchBase(unsigned t) { return 0x5800000 + Addr(t) * 0x10000; }
constexpr Addr probeBase(unsigned t) { return 0x6000000 + Addr(t) * 0x10000; }
constexpr Addr boundBase(unsigned t) { return 0x7000000 + Addr(t) * 0x10000; }
constexpr Addr idxTableBase = 0x7800000;

constexpr std::uint64_t secretBytes = 512; ///< 64 words per tenant.
constexpr unsigned gadgetIters = 8;        ///< 7 trainings + 1 attack.
constexpr std::uint64_t gadgetBound = 512; ///< Victim table bytes.
constexpr std::uint64_t hashMul = 2654435761ULL;

/** Hash-table lookup service: W dependent-probe iterations. */
void
emitHashRequest(ProgramBuilder &b, unsigned work)
{
    for (unsigned i = 0; i < work; ++i) {
        b.mul(rIdx, rIdx, rK);
        b.and_(rT, rIdx, rMaskTab);
        b.add(rAddr, rTab, rT);
        b.load(rVal, rAddr, 0);
        b.xor_(rAcc, rAcc, rVal);
    }
}

/** Input parsing: sequential scan with a data-dependent branch per
 *  element (the background image makes the condition ~50/50 noisy). */
void
emitParseRequest(ProgramBuilder &b, unsigned work)
{
    for (unsigned i = 0; i < work; ++i) {
        const std::int64_t off = (i * 8) & 0x7F8;
        b.load(rVal, rIn, off);
        b.and_(rT, rVal, rOne);
        const auto skip = b.futureLabel();
        b.beq(rT, rZero, skip);
        b.addi(rAcc, rAcc, 1);
        b.bind(skip);
    }
}

/** Buffer copy: W load/store pairs over the tenant's copy region. */
void
emitCopyRequest(ProgramBuilder &b, unsigned work)
{
    for (unsigned i = 0; i < work; ++i) {
        const std::int64_t off = (i * 8) & 0xFF8;
        b.load(rVal, rCpyS, off);
        b.store(rCpyD, rVal, off);
    }
}

/**
 * Crypto-style service over the tenant's *own* secret: absorb key
 * words into a multiply-xor sponge and store the (secret-derived)
 * digest words to public scratch. The secret stays in the data path —
 * it never reaches an address or branch operand — and the state
 * register is scrubbed afterwards so no secret label outlives the
 * request.
 */
void
emitCryptoRequest(ProgramBuilder &b, unsigned work)
{
    for (unsigned i = 0; i < work; ++i) {
        const std::int64_t off = (i * 8) & 0x1F8;
        b.load(rVal, rSec, off);
        b.xor_(rMix, rMix, rVal);
        b.mul(rMix, rMix, rK);
        b.store(rScr, rMix, off);
    }
    b.movi(rMix, 0);
}

/**
 * The hostile tenant's service: a Spectre-v1 bounds-check loop. Each
 * iteration reads its array index and its bound-line offset from a
 * per-request table row. Training iterations (everything except the
 * last) use offset 0 — a line that is warm after the first touch —
 * so they resolve and commit quickly, keeping the ROB drained. The
 * last iteration's offset points at a never-touched line, so its
 * bounds check resolves a full cold-miss latency after the index is
 * ready, with the whole backend free for the wrong path.
 *
 * The index stays in bounds in every iteration of every gadget
 * request except the very last iteration of the run's *final* gadget
 * request, which lands on tenant 1's secret. A periodic attack (say
 * every 8th iteration) would be *predicted* by TAGE's tagged
 * histories and never go transient; firing once, at a branch history
 * identical to dozens of not-taken training instances, guarantees
 * the mispredict. The secret load and dependent probe then execute
 * in the cold-miss window before the squash, which the contract
 * shadow attributes as a cross-tenant transmit (owner 1, stream
 * tenant 0).
 */
void
emitGadgetRequest(ProgramBuilder &b, unsigned request)
{
    b.movi(rIdxT, std::int64_t(idxTableBase + Addr(request) * 128));
    b.movi(rCnt, 0);
    const auto loop = b.here();
    b.shl(rT, rCnt, rThree);
    b.add(rAddr, rIdxT, rT);
    b.load(rBndOff, rAddr, 64); // Bound-line offset (warm).
    b.load(rIdx2, rAddr, 0);    // Array index (warm).
    b.add(rAddr, rBndA, rBndOff);
    b.load(rBound, rAddr, std::int64_t(request) * 512);
    const auto skip = b.futureLabel();
    b.bge(rIdx2, rBound, skip);
    b.add(rAddr, rVict, rIdx2);
    b.load(rVal, rAddr, 0);
    b.and_(rVal, rVal, rMask);
    b.shl(rVal, rVal, rThree);
    b.add(rAddr, rProbe, rVal);
    b.load(rT, rAddr, 0);
    b.bind(skip);
    b.addi(rCnt, rCnt, 1);
    b.blt(rCnt, rLim, loop);
}

/** Per-tenant constants, run once at the tenant's first scheduling. */
void
emitTenantSetup(ProgramBuilder &b, unsigned t, const ServerMixParams &p)
{
    b.movi(rTab, std::int64_t(tableBase(t)));
    b.movi(rIn, std::int64_t(inputBase(t)));
    b.movi(rCpyS, std::int64_t(copySrcBase(t)));
    b.movi(rCpyD, std::int64_t(copyDstBase(t)));
    b.movi(rSec, std::int64_t(secretBase(t)));
    b.movi(rScr, std::int64_t(scratchBase(t)));
    b.movi(rProbe, std::int64_t(probeBase(t)));
    b.movi(rBndA, std::int64_t(boundBase(t)));
    b.movi(rK, std::int64_t(hashMul));
    b.movi(rMaskTab, 0xFF8);
    b.movi(rMask, 0xFF);
    b.movi(rThree, 3);
    b.movi(rZero, 0);
    b.movi(rOne, 1);
    b.movi(rIdx,
           std::int64_t(((p.seed + 1) * hashMul + (t + 1) * 0x9E3779B9ULL)
                        & 0x3FFFFFFFFFFFFFFFULL));
    b.movi(rAcc, std::int64_t(t + 1));
    b.movi(rMix, 0);
    if (p.hostile && t == 0) {
        b.movi(rVict, std::int64_t(tableBase(0)));
        b.movi(rLim, gadgetIters);
    }
}

} // anonymous namespace

ServerMixProgram
buildServerMix(const ServerMixParams &p)
{
    sb_assert(p.tenants >= 2 && p.tenants <= 16,
              "server mix needs 2..16 tenants, got ", p.tenants);
    sb_assert(p.requests >= 1 && p.requests <= 128,
              "server mix needs 1..128 requests, got ", p.requests);
    sb_assert(p.work >= 1 && p.work <= 256,
              "server mix needs 1..256 work, got ", p.work);

    ProgramBuilder b;

    // Per-tenant secret key material (owned, labelled regions).
    for (unsigned t = 0; t < p.tenants; ++t) {
        for (std::uint64_t w = 0; w < secretBytes / 8; ++w) {
            b.memory().write(secretBase(t) + w * 8,
                             (p.seed + t * 131 + w) * hashMul);
        }
        b.markSecret(secretBase(t), secretBytes, TenantId(t));
    }

    if (p.hostile) {
        // Per-request gadget rows (128 B): words 0..7 hold the array
        // indices, words 8..15 the bound-line offsets. Indices are
        // all in-bounds except the final gadget request's last slot,
        // which holds the byte distance from tenant 0's table to
        // tenant 1's secret (the run's single transient firing); the
        // last slot's bound offset selects the cold line (see
        // emitGadgetRequest).
        unsigned lastGadget = 0;
        for (unsigned r = 0; r < p.requests; ++r) {
            if (r % 4 != 0)
                continue;
            lastGadget = r;
            const Addr row = idxTableBase + Addr(r) * 128;
            for (unsigned i = 0; i < gadgetIters; ++i) {
                b.memory().write(row + Addr(i) * 8,
                                 (r + i) * 8 % gadgetBound);
                b.memory().write(row + 64 + Addr(i) * 8,
                                 i + 1 == gadgetIters ? 256 : 0);
            }
            // The warm (training) and cold (attack) bound lines.
            b.memory().write(boundBase(0) + Addr(r) * 512,
                             gadgetBound);
            b.memory().write(boundBase(0) + Addr(r) * 512 + 256,
                             gadgetBound);
        }
        b.memory().write(idxTableBase + Addr(lastGadget) * 128
                             + Addr(gadgetIters - 1) * 8,
                         secretBase(1) - tableBase(0));
    }

    ServerMixProgram out;
    out.tenants = p.tenants;
    out.totalRequests = p.tenants * p.requests;
    out.requestEnds.reserve(out.totalRequests);

    // One contiguous block per tenant. A tenant switched out at its
    // marker resumes at marker+1 — the tenant's own next request — so
    // round-robin scheduling emerges from the per-block layout alone.
    for (unsigned t = 0; t < p.tenants; ++t) {
        b.tenantEntry(TenantId(t));
        emitTenantSetup(b, t, p);
        for (unsigned r = 0; r < p.requests; ++r) {
            const unsigned service = r % 4;
            if (service == 0) {
                if (p.hostile && t == 0)
                    emitGadgetRequest(b, r);
                else
                    emitHashRequest(b, p.work);
            } else if (service == 1) {
                emitParseRequest(b, p.work);
            } else if (service == 2) {
                emitCopyRequest(b, p.work);
            } else {
                emitCryptoRequest(b, p.work);
            }
            out.requestEnds.push_back(
                b.switchTenant(TenantId((t + 1) % p.tenants)));
        }
        // Tenant 0 resumes here after the final round's last switch;
        // the other tenants' halts are unreachable terminators.
        b.halt();
    }

    out.program = b.build("server-mix");
    return out;
}

} // namespace sb
