#include "trace/random_program.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sb
{

namespace
{

/** Registers reserved for generator plumbing. */
constexpr ArchReg regBase = 1;   ///< Data-region base address.
constexpr ArchReg regMask = 2;   ///< Word-aligned offset mask.
constexpr ArchReg regAddr = 3;   ///< Scratch for sanitised addresses.
constexpr ArchReg regCnt = 20;
constexpr ArchReg regLim = 21;
constexpr ArchReg regOne = 22;
constexpr ArchReg regZero = 28;
constexpr ArchReg regSeven = 29;
constexpr ArchReg regMagic = 30;

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // anonymous namespace

Program
makeRandomProgram(const RandomProgramParams &p)
{
    sb_assert(isPow2(p.memBytes) && p.memBytes >= 64,
              "memBytes must be a power of two >= 64");
    sb_assert(p.outerIterations >= 1, "program must iterate");

    ProgramBuilder b;
    Rng rng(p.seed);

    b.movi(regBase, randomProgramMemBase);
    b.movi(regMask, (p.memBytes - 1) & ~std::uint64_t(7));
    b.movi(regCnt, 0);
    b.movi(regLim, p.outerIterations);
    b.movi(regOne, 1);
    b.movi(regZero, 0);
    b.movi(regSeven, 7);
    b.movi(regMagic, 0x5bd1e995deadbeefLL);
    for (ArchReg r = randomProgramFirstReg; r <= randomProgramLastReg;
         ++r) {
        b.movi(r, static_cast<std::int64_t>(rng.next() >> 8));
    }

    auto work_reg = [&]() -> ArchReg {
        return randomProgramFirstReg
               + rng.below(randomProgramLastReg
                           - randomProgramFirstReg + 1);
    };
    auto sanitize_addr = [&](ArchReg src) {
        b.and_(regAddr, src, regMask);
        b.or_(regAddr, regAddr, regBase);
    };

    const auto loop = b.here();
    for (unsigned blk = 0; blk < p.blocks; ++blk) {
        for (unsigned i = 0; i < p.opsPerBlock; ++i) {
            const double roll = rng.uniform();
            const ArchReg d = work_reg();
            const ArchReg s1 = work_reg();
            const ArchReg s2 = work_reg();
            if (roll < p.loadFraction) {
                sanitize_addr(s1);
                b.load(d, regAddr, 0);
            } else if (roll < p.loadFraction + p.storeFraction) {
                sanitize_addr(s1);
                b.store(regAddr, s2, 0);
            } else if (roll < p.loadFraction + p.storeFraction
                                  + p.branchFraction) {
                // Data-dependent forward skip over 1-3 ops: bounded,
                // so the program always terminates.
                b.and_(regAddr, s1, regSeven);
                const auto skip = b.futureLabel();
                b.bne(regAddr, regZero, skip);
                const unsigned body = 1 + rng.below(3);
                for (unsigned k = 0; k < body; ++k)
                    b.add(work_reg(), work_reg(), regOne);
                b.bind(skip);
            } else if (roll < p.loadFraction + p.storeFraction
                                  + p.branchFraction
                                  + p.slowBranchFraction) {
                // Never-taken slow branch: a pure shadow generator.
                const auto next = b.futureLabel();
                b.beq(s1, regMagic, next);
                b.bind(next);
            } else if (roll < p.loadFraction + p.storeFraction
                                  + p.branchFraction
                                  + p.slowBranchFraction
                                  + p.mulFraction) {
                b.mul(d, s1, s2);
            } else {
                switch (rng.below(5)) {
                  case 0:
                    b.add(d, s1, s2);
                    break;
                  case 1:
                    b.sub(d, s1, s2);
                    break;
                  case 2:
                    b.xor_(d, s1, s2);
                    break;
                  case 3:
                    b.or_(d, s1, s2);
                    break;
                  default:
                    b.and_(d, s1, s2);
                    break;
                }
            }
        }
    }
    b.add(regCnt, regCnt, regOne);
    b.blt(regCnt, regLim, loop);
    b.halt();

    return b.build("random-" + std::to_string(p.seed));
}

} // namespace sb
