#include "trace/kernels.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sb
{

namespace
{

/** Base address of the data region for all kernels. */
constexpr Addr dataBase = 1ULL << 20;

/** Magic constant no computed value ever equals (slow branches). */
constexpr std::int64_t magicValue = 0x5bd1e995deadbeefLL;

/** Round down to a power of two. */
std::uint64_t
floorPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

/**
 * Emit a slow branch: beq val, magic -> next instruction. Both
 * outcomes land on the same PC, so it never mispredicts and costs
 * the unprotected baseline (almost) nothing — but it is a C-shadow
 * that resolves only when @p val is available.
 */
void
emitSlowBranch(ProgramBuilder &b, ArchReg val, ArchReg magic)
{
    const auto next = b.futureLabel();
    b.beq(val, magic, next);
    b.bind(next);
}

} // anonymous namespace

Program
makeStreamKernel(const StreamParams &p)
{
    sb_assert(p.loadsPerIter >= 1 && p.loadsPerIter <= 4,
              "stream: 1..4 loads per iter");
    ProgramBuilder b;

    const std::uint64_t footprint = floorPow2(p.footprintBytes);
    const ArchReg ptr = 1, end = 2, stride = 3, base = 4, magic = 30;
    const ArchReg acc0 = 16; // acc0..acc0+3 accumulators

    b.movi(base, dataBase);
    b.movi(ptr, dataBase);
    b.movi(end, dataBase + footprint);
    b.movi(stride, 64);
    b.movi(magic, magicValue);
    for (unsigned i = 0; i < 4; ++i)
        b.movi(acc0 + i, i + 1);

    const auto loop = b.here();
    // Independent loads across the line.
    for (unsigned i = 0; i < p.loadsPerIter; ++i)
        b.load(8 + i, ptr, 8 * i);
    // Independent compute per load (high ILP).
    for (unsigned i = 0; i < p.loadsPerIter; ++i) {
        for (unsigned c = 0; c < p.computePerLoad; ++c) {
            const ArchReg acc = acc0 + ((i + c) % 4);
            if (p.useFp) {
                if (c % 2 == 0)
                    b.fadd(acc, acc, 8 + i);
                else
                    b.fmul(acc, acc, 8 + i);
            } else {
                if (c % 2 == 0)
                    b.add(acc, acc, 8 + i);
                else
                    b.xor_(acc, acc, 8 + i);
            }
        }
    }
    if (p.slowBranchPeriod > 0)
        emitSlowBranch(b, 8, magic);
    if (p.storePerIter)
        b.store(ptr, acc0, 56);
    b.add(ptr, ptr, stride);
    b.blt(ptr, end, loop);          // Predictable: taken until wrap.
    b.movi(ptr, dataBase);
    b.jmp(loop);

    return b.build("stream");
}

Program
makePointerChaseKernel(const PointerChaseParams &p)
{
    sb_assert(p.chains >= 1 && p.chains <= 4, "chase: 1..4 chains");
    ProgramBuilder b;
    Rng rng(p.seed);

    // Build one cyclic random permutation per chain, nodes 64 B apart.
    // Node layout: [next (+0)] [payload (+8)]. With heterogeneous
    // chains, chain c's region shrinks by 8x per step so fast,
    // cache-resident chains run beside DRAM-bound ones.
    std::vector<Addr> heads(p.chains);
    std::vector<unsigned> hops(p.chains, 1);
    Addr regionBase = dataBase;
    for (unsigned c = 0; c < p.chains; ++c) {
        std::uint64_t bytes = p.heterogeneous
                                  ? p.footprintBytes >> (5 * c)
                                  : p.footprintBytes / p.chains;
        bytes = floorPow2(std::max<std::uint64_t>(bytes, 16u << 10));
        const std::uint64_t slots = bytes / 64;
        if (p.heterogeneous && c > 0)
            hops[c] = std::min(p.maxHopsPerIter, 1u << c);

        std::vector<std::uint32_t> order(slots);
        for (std::uint64_t i = 0; i < slots; ++i)
            order[i] = i;
        // Sattolo-style shuffle: one cycle visiting every slot.
        for (std::uint64_t i = slots - 1; i > 0; --i) {
            const std::uint64_t j = rng.below(i);
            std::swap(order[i], order[j]);
        }
        for (std::uint64_t i = 0; i < slots; ++i) {
            const Addr node = regionBase + Addr(order[i]) * 64;
            const Addr next =
                regionBase + Addr(order[(i + 1) % slots]) * 64;
            b.memory().write(node, next);
            b.memory().write(node + 8, rng.next());
        }
        heads[c] = regionBase;
        regionBase += bytes;
    }

    const ArchReg cnt = 20, lim = 21, one = 22, mask = 23, zero = 24;
    const ArchReg acc = 25, magic = 30;
    for (unsigned c = 0; c < p.chains; ++c)
        b.movi(1 + c, heads[c]);
    b.movi(cnt, 0);
    b.movi(lim, 1 << 20);
    b.movi(one, 1);
    b.movi(mask, 7);    // Noisy branch: (payload & 7) == 0, ~12.5 % taken.
    b.movi(zero, 0);
    b.movi(acc, 0);
    b.movi(magic, magicValue);

    const auto loop = b.here();
    // Dependent next-pointer loads: the serialised, memory-bound
    // core. Fast chains take several dependent hops per iteration.
    for (unsigned c = 0; c < p.chains; ++c) {
        for (unsigned h = 0; h < hops[c]; ++h)
            b.load(1 + c, 1 + c, 0);
    }
    // Payload loads (depend on the fresh pointers).
    for (unsigned c = 0; c < p.chains; ++c)
        b.load(8 + c, 1 + c, 8);
    // Work per hop.
    for (unsigned c = 0; c < p.chains; ++c) {
        for (unsigned w = 0; w < p.workPerHop; ++w) {
            if (w % 2 == 0)
                b.add(acc, acc, 8 + c);
            else
                b.xor_(acc, acc, 8 + c);
        }
    }
    // Slow branches on loaded payloads: long-lived C-shadows that
    // stall the visibility point for a full memory latency. An
    // optional dependent chain stretches each branch's resolution
    // past the payload, extending the taint-live window.
    for (unsigned c = 0; c < p.chains; ++c) {
        if (rng.uniform() < p.slowBranchFraction) {
            ArchReg val = 8 + c;
            if (p.branchChainLength > 0) {
                b.add(13, val, one);
                for (unsigned k = 1; k < p.branchChainLength; ++k) {
                    if (k % 2 == 0)
                        b.add(13, 13, one);
                    else
                        b.mul(13, 13, one);
                }
                val = 13;
            }
            emitSlowBranch(b, val, magic);
        }
    }
    // Noisy branches: real, data-dependent mispredicts.
    for (unsigned c = 0; c < p.chains; ++c) {
        if (rng.uniform() < p.noisyBranchFraction) {
            b.and_(12, 8 + c, mask);
            const auto skip = b.futureLabel();
            b.bne(12, zero, skip);
            b.addi(acc, acc, 1);
            b.bind(skip);
        }
    }
    b.add(cnt, cnt, one);
    b.blt(cnt, lim, loop);          // Easy loop branch.
    b.movi(cnt, 0);
    b.jmp(loop);

    return b.build("pointer-chase");
}

Program
makeComputeChainKernel(const ComputeChainParams &p)
{
    sb_assert(p.chainsPerIter >= 1 && p.chainsPerIter <= 4,
              "chain: 1..4 chains");
    sb_assert(p.loadsPerIter >= 1 && p.loadsPerIter <= 4,
              "chain: 1..4 loads");
    ProgramBuilder b;

    const std::uint64_t hot = floorPow2(p.hotBytes);
    const ArchReg ptr = 1, base = 2, mask = 3, stride = 4, magic = 30;
    const ArchReg cnt = 20, lim = 21, one = 22, three = 23;

    b.movi(base, dataBase);
    b.movi(ptr, dataBase);
    b.movi(mask, hot - 1);
    b.movi(stride, 64);
    b.movi(cnt, 0);
    b.movi(lim, 1 << 20);
    b.movi(one, 1);
    b.movi(three, 3);
    b.movi(magic, magicValue);

    const auto loop = b.here();
    // Hot-set loads (L1 resident) feeding the chains.
    for (unsigned i = 0; i < p.loadsPerIter; ++i)
        b.load(8 + i, ptr, 8 * i);
    // Per-iteration dependent compute chains, started fresh from the
    // loads so consecutive iterations overlap freely on the baseline.
    // These are non-transmitters: STT runs them at full speed while
    // NDA stalls them on the deferred load broadcast.
    for (unsigned c = 0; c < p.chainsPerIter; ++c) {
        const ArchReg acc = 16 + c;
        const ArchReg in = 8 + (c % p.loadsPerIter);
        b.add(acc, in, three); // Fresh chain head each iteration.
        for (unsigned k = 1; k < p.chainLength; ++k) {
            if (p.useFp) {
                if (k % 2 == 0)
                    b.fmul(acc, acc, in);
                else
                    b.fadd(acc, acc, in);
            } else {
                if (k % 2 == 0)
                    b.mul(acc, acc, in);
                else
                    b.add(acc, acc, in);
            }
        }
    }
    // Slow branch on the chain result: resolves a full chain latency
    // after the loads, keeping every younger load speculative.
    if (p.branchOnChain)
        emitSlowBranch(b, 16, magic);
    // Independent integer work: ILP every scheme retains.
    for (unsigned c = 0; c < p.independentWork; ++c) {
        const ArchReg w = 24 + (c % 4);
        if (c % 2 == 0)
            b.add(w, cnt, one);
        else
            b.xor_(w, w, cnt);
    }
    // Hot-set store (fast address, resolves quickly).
    b.store(ptr, 16, 56);
    // Advance the hot pointer: ptr = base | ((ptr + 64) & mask).
    b.add(ptr, ptr, stride);
    b.and_(ptr, ptr, mask);
    b.or_(ptr, ptr, base);
    b.add(cnt, cnt, one);
    b.blt(cnt, lim, loop);
    b.movi(cnt, 0);
    b.jmp(loop);

    return b.build("compute-chain");
}

Program
makeBranchyKernel(const BranchyParams &p)
{
    ProgramBuilder b;
    Rng rng(p.seed);

    const std::uint64_t footprint = floorPow2(p.footprintBytes);
    const ArchReg lcg = 8, lcgA = 9, lcgC = 10, bit = 11, zero = 12;
    const ArchReg base = 1, mask = 2, addr = 3, val = 4;
    const ArchReg cnt = 20, lim = 21, one = 22, acc = 25, mask7 = 13;

    b.movi(lcg, 0x9e3779b9);
    b.movi(lcgA, 6364136223846793005LL);
    b.movi(lcgC, 1442695040888963407LL);
    b.movi(zero, 0);
    b.movi(base, dataBase);
    b.movi(mask, footprint - 64);
    b.movi(cnt, 0);
    b.movi(lim, 1 << 20);
    b.movi(one, 1);
    b.movi(acc, 0);
    b.movi(mask7, 7);

    const auto loop = b.here();
    for (unsigned h = 0; h < p.hardBranches; ++h) {
        // Refresh the pseudo-random value.
        b.mul(lcg, lcg, lcgA);
        b.add(lcg, lcg, lcgC);
        const bool onLoad = rng.uniform() < p.loadConditionFraction;
        if (onLoad) {
            // Condition tests a loaded value: the branch is a tainted
            // transmitter under STT and waits for the broadcast under
            // NDA, keeping the shadow alive for a memory latency.
            b.and_(addr, lcg, mask);
            b.or_(addr, addr, base);
            b.load(val, addr, 0);
            b.and_(bit, val, mask7);
        } else {
            // Condition on register data: unpredictable but fast.
            b.and_(bit, lcg, mask7);
        }
        const auto skip = b.futureLabel();
        b.bne(bit, zero, skip);     // ~12.5 % taken, data-dependent.
        for (unsigned c = 0; c < p.computePerBranch; ++c)
            b.add(acc, acc, one);
        b.bind(skip);
        for (unsigned c = 0; c < p.computePerBranch; ++c)
            b.xor_(acc, acc, lcg);
    }
    for (unsigned e = 0; e < p.easyBranches; ++e) {
        // Highly biased branch: taken once per 2^20 iterations.
        const auto skip = b.futureLabel();
        b.bge(cnt, lim, skip);
        b.add(acc, acc, one);
        b.bind(skip);
    }
    if (p.slowBranchChain > 0) {
        // Shadow extender: a never-taken branch on a value that
        // trails the last condition load by a dependent chain.
        const ArchReg magic2 = 14, slowv = 15;
        b.movi(magic2, 0x5bd1e995deadbeefLL);
        b.add(slowv, val, one);
        for (unsigned k = 1; k < p.slowBranchChain; ++k) {
            if (k % 2 == 0)
                b.add(slowv, slowv, one);
            else
                b.mul(slowv, slowv, one);
        }
        emitSlowBranch(b, slowv, magic2);
    }
    b.add(cnt, cnt, one);
    b.blt(cnt, lim, loop);
    b.movi(cnt, 0);
    b.jmp(loop);

    return b.build("branchy");
}

Program
makeStoreForwardKernel(const StoreForwardParams &p)
{
    sb_assert(p.depth >= 1 && p.depth <= 8, "storefwd: depth 1..8");
    ProgramBuilder b;

    const std::uint64_t region = floorPow2(p.regionBytes);
    const ArchReg sp = 1, base = 2, mask = 3, link = 15, magic = 30;
    const ArchReg cnt = 20, lim = 21, one = 22, acc = 25;

    b.movi(base, dataBase);
    b.movi(sp, dataBase);
    b.movi(mask, region - 1);
    b.movi(cnt, 0);
    b.movi(lim, 1 << 20);
    b.movi(one, 1);
    b.movi(acc, 0);
    b.movi(link, 0x1234);
    b.movi(magic, magicValue);
    // Seed the region's first frame so the initial pops see real data.
    for (unsigned d = 0; d < p.depth; ++d)
        b.memory().write(dataBase + 8 * d, d + 1);

    const ArchReg slowv = 14;
    b.movi(slowv, 7);

    const auto loop = b.here();
    // Slow branch on a *side* chain (slowv): it keeps the shadow
    // open over the pushes/pops below without being on the store
    // data path, so the pop roots stay live while the push data is
    // ready early — the blocked address halves then force younger
    // pops to bypass unknown stores and take violation flushes.
    if (p.slowBranchOnPop)
        emitSlowBranch(b, slowv, magic);
    // Push phase: store addresses come from the fast sp counter.
    // With loadedData, odd slots carry pop-derived (tainted) data, so
    // single-taint STT-Rename blocks their address halves too (paper
    // Sec. 9.2); even slots carry ALU-link data, which keeps the
    // iteration recurrence off the loads — NDA's deferrals then only
    // delay leaves, matching exchange2's NDA-friendly profile.
    for (unsigned d = 0; d < p.depth; ++d) {
        const ArchReg v = 8 + (d % 4);
        if (p.loadedData && (d % 2) == 1)
            b.add(v, 16, one);      // Pop-derived: tainted data.
        else
            b.add(v, link, one);    // ALU link: clean data.
        for (unsigned c = 1; c < p.computePerLevel; ++c)
            b.xor_(v, v, cnt);
        b.store(sp, v, 8 * d);
    }
    // Pop phase: immediately load the pushed slots back (forwarding).
    // The pops are leaves: acc restarts from them every iteration.
    b.load(16, sp, 0);
    b.add(acc, 16, one);
    for (unsigned d = p.depth; d-- > 1;) {
        b.load(16 + (d % 4), sp, 8 * d);
        b.add(acc, acc, 16 + (d % 4));
    }
    // Carried path: pure ALU, so the baseline (and NDA) overlap
    // iterations freely.
    b.add(link, link, one);
    b.xor_(link, link, cnt);
    // The slow side chain feeding only the next slow branch: muls
    // give it real latency, so the shadow outlives the push/pop
    // window of the next iteration. It hangs off the ALU link (not a
    // pop), so NDA's deferred pop broadcasts never feed back into
    // shadow resolution — the deferrals stay leaf-only, as in real
    // exchange2.
    b.add(slowv, link, one);
    for (unsigned c = 1; c < p.chainAfterPop; ++c) {
        if (c % 2 == 0)
            b.add(slowv, slowv, cnt);
        else
            b.mul(slowv, slowv, one);
    }
    // Independent integer work: overlappable ILP under NDA, but
    // lost to the violation flushes under single-taint STT-Rename.
    for (unsigned c = 0; c < p.independentWork; ++c) {
        const ArchReg w = 11 + (c % 3);
        if (c % 2 == 0)
            b.add(w, cnt, one);
        else
            b.xor_(w, w, cnt);
    }
    // Advance sp within the tiny region: heavy cross-iteration reuse.
    b.addi(sp, sp, 8 * p.depth);
    b.and_(sp, sp, mask);
    b.or_(sp, sp, base);
    b.add(cnt, cnt, one);
    b.blt(cnt, lim, loop);
    b.movi(cnt, 0);
    b.jmp(loop);

    return b.build("store-forward");
}

Program
makeHashMixKernel(const HashMixParams &p)
{
    ProgramBuilder b;
    Rng rng(p.seed);

    const std::uint64_t footprint = floorPow2(p.footprintBytes);
    const ArchReg lcg = 8, lcgA = 9, lcgC = 10;
    const ArchReg base = 1, mask = 2, addr = 3, val = 4, bit = 11;
    const ArchReg zero = 12, mask7 = 13, magic = 30;
    const ArchReg cnt = 20, lim = 21, one = 22, acc = 25;

    b.movi(lcg, 0x243f6a8885a308d3LL);
    b.movi(lcgA, 6364136223846793005LL);
    b.movi(lcgC, 1442695040888963407LL);
    b.movi(base, dataBase);
    b.movi(mask, footprint - 64);
    b.movi(zero, 0);
    b.movi(mask7, 7);
    b.movi(cnt, 0);
    b.movi(lim, 1 << 20);
    b.movi(one, 1);
    b.movi(acc, 0);
    b.movi(magic, magicValue);

    const auto loop = b.here();
    for (unsigned q = 0; q < p.probesPerIter; ++q) {
        b.mul(lcg, lcg, lcgA);
        b.add(lcg, lcg, lcgC);
        b.and_(addr, lcg, mask);
        b.or_(addr, addr, base);
        b.load(val, addr, 0);
        if (rng.uniform() < p.dependentLoadFraction) {
            // Dereference the loaded value as a sanitised pointer:
            // under STT the second load's address is tainted, so it
            // cannot issue until the first load is non-speculative.
            b.and_(addr, val, mask);
            b.or_(addr, addr, base);
            b.load(val, addr, 0);
        }
        for (unsigned c = 0; c < p.computePerProbe; ++c) {
            if (c % 2 == 0)
                b.add(acc, acc, val);
            else
                b.xor_(acc, acc, lcg);
        }
        if (rng.uniform() < p.slowBranchFraction)
            emitSlowBranch(b, val, magic);
        if (rng.uniform() < p.noisyBranchFraction) {
            b.and_(bit, val, mask7);
            const auto skip = b.futureLabel();
            b.bne(bit, zero, skip);
            b.add(acc, acc, one);
            b.bind(skip);
        }
        if (rng.uniform() < p.storeFraction)
            b.store(addr, acc, 8);
    }
    b.add(cnt, cnt, one);
    b.blt(cnt, lim, loop);
    b.movi(cnt, 0);
    b.jmp(loop);

    return b.build("hash-mix");
}

} // namespace sb
