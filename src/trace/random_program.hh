/**
 * @file
 * Random (but always-terminating) program generator for differential
 * testing.
 *
 * Generated programs mix ALU ops, loads/stores confined to a masked
 * memory region, data-dependent forward branches, and slow branches,
 * inside one bounded outer loop — so every program halts, every
 * address is valid, and every run is deterministic for a seed. The
 * fuzz suite runs each program under every secure scheme and demands
 * bit-identical architectural results and clean monitor obligations.
 */

#ifndef SB_TRACE_RANDOM_PROGRAM_HH
#define SB_TRACE_RANDOM_PROGRAM_HH

#include <cstdint>

#include "isa/program.hh"

namespace sb
{

/** Shape of a generated random program. */
struct RandomProgramParams
{
    std::uint64_t seed = 1;
    unsigned blocks = 8;            ///< Straight-line blocks per loop.
    unsigned opsPerBlock = 12;      ///< Random ops per block.
    unsigned outerIterations = 40;  ///< Loop trips before halt.
    std::uint64_t memBytes = 4096;  ///< Power-of-two data region.
    double loadFraction = 0.20;
    double storeFraction = 0.12;
    double branchFraction = 0.12;   ///< Data-dependent forward skips.
    double slowBranchFraction = 0.06;
    double mulFraction = 0.10;
};

/** Generate a program; deterministic in @p params.seed. */
Program makeRandomProgram(const RandomProgramParams &params);

/** First working register the generator mutates (r4..r15). */
constexpr ArchReg randomProgramFirstReg = 4;
/** Last working register the generator mutates. */
constexpr ArchReg randomProgramLastReg = 15;
/** Base address of the generated program's data region. */
constexpr Addr randomProgramMemBase = 1ULL << 22;

} // namespace sb

#endif // SB_TRACE_RANDOM_PROGRAM_HH
