#include "secure/nda.hh"

#include "common/logging.hh"

namespace sb
{

bool
NdaScheme::deferBroadcast(InstHandle /* h */, const DynInst &inst,
                          Cycle /* ready_at */)
{
    if (!inst.isLoad())
        return false;
    if (!coreRef->isSpeculative(inst.seq))
        return false;
    // Data is already in the register file; only the broadcast waits
    // (split data-write / broadcast, Fig. 5b).
    pending.push_back(Pending{inst.seq, inst.pdst, coreRef->now()});
    return true;
}

unsigned
NdaScheme::broadcastBudget() const
{
    return coreRef->config().memPorts;
}

void
NdaScheme::tick()
{
    if (pending.empty())
        return;

    // Broadcast non-speculative results oldest-first, limited to the
    // broadcast-port budget per cycle. Squashed producers cannot be
    // here: every squash erases them by sequence number in onSquash.
    std::sort(pending.begin(), pending.end(),
              [](const Pending &a, const Pending &b) {
                  return a.seq < b.seq;
              });
    unsigned budget = broadcastBudget();
    const Cycle now = coreRef->now();
    while (budget > 0 && !pending.empty()) {
        const Pending &p = pending.front();
        if (coreRef->isSpeculative(p.seq) || p.readyAt > now)
            break;
        // One broadcast cycle: dependents can be selected next cycle.
        coreRef->scheduleWakeup(p.pdst, now + 1);
        pending.pop_front();
        --budget;
    }
}

void
NdaScheme::onSquash(SeqNum youngest_surviving)
{
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [youngest_surviving](const Pending &p) {
                                     return p.seq > youngest_surviving;
                                 }),
                  pending.end());
}

bool
NdaStrictScheme::deferBroadcast(InstHandle /* h */, const DynInst &inst,
                                Cycle ready_at)
{
    if (inst.pdst == invalidPhysReg)
        return false;
    if (!coreRef->isSpeculative(inst.seq))
        return false;
    pending.push_back(Pending{inst.seq, inst.pdst, ready_at});
    return true;
}

unsigned
NdaStrictScheme::broadcastBudget() const
{
    // Strict mode defers ALU results too; give it the full issue
    // width of broadcast buses.
    return coreRef->config().issueWidth;
}

} // namespace sb
