/**
 * @file
 * Delay-on-Miss (DoM): speculative loads that miss in the L1 stall
 * until they reach the point of no speculation.
 *
 * The scheme family of Sakalis et al. ("Efficient Invisible
 * Speculative Execution through Selective Delay and Value
 * Prediction", ISCA 2019), realised on this core's C/D-shadow
 * machinery: a speculative load whose line is L1-resident proceeds
 * normally (a hit changes no cache state an attacker can probe),
 * while a speculative load that would launch a demand miss is parked
 * at the delayLoadMiss() hook instead — no MSHR is allocated, no
 * fill walks the hierarchy. Each cycle the parked set is checked
 * against the visibility point; loads the point has passed re-enter
 * the memory pipeline through Core::retryLoad() (oldest first, like
 * an MSHR-reject retry), and squashed loads are dropped without ever
 * having touched the caches — which is exactly why the transient
 * probe-array fill of a Spectre gadget never happens.
 *
 * Contract: DoM polices the *memory side channel*, not dataflow.
 * Tainted transmitters still execute when they hit, so the STT
 * obligation (ContractPolicy::TransmitterSafe) is deliberately not
 * declared; the scheme declares the observational sandboxing
 * contract only (SecurityContract::sandboxing()): paired
 * secret-flipped runs must not leak through a receiver nor diverge
 * in their committed observation traces.
 *
 * Modeling simplification: speculative hits proceed through the
 * normal access path, including replacement/prefetcher metadata
 * updates (the paper discusses suppressing those separately). The
 * differential verifier is the judge of whether that matters for a
 * given gadget battery.
 */

#ifndef SB_SECURE_DOM_HH
#define SB_SECURE_DOM_HH

#include <vector>

#include "core/core.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** Delay-on-Miss: park speculative L1 misses until safe. */
class DomScheme : public SecureScheme
{
  public:
    explicit DomScheme(const SchemeConfig & /* config */) {}

    const char *name() const override { return "DoM"; }
    Scheme kind() const override { return Scheme::DelayOnMiss; }

    SecurityContract
    contract() const override
    {
        return SecurityContract::sandboxing();
    }

    bool delayLoadMiss(InstHandle h, const DynInst &load) override;
    void tick() override;
    void onSquash(SeqNum youngest_surviving) override;
    void reset() override { parked.clear(); }

    /** Loads currently parked on a speculative miss (for tests). */
    std::size_t parkedLoads() const { return parked.size(); }

  private:
    /** A parked load: handle for re-injection, seq for ordering. */
    struct Parked
    {
        InstHandle handle;
        SeqNum seq;
    };

    std::vector<Parked> parked;
    std::vector<Parked> releaseScratch;
};

} // namespace sb

#endif // SB_SECURE_DOM_HH
