#include "secure/stt_rename.hh"

#include "common/logging.hh"
#include "secure/taint_util.hh"

namespace sb
{

void
SttRenameScheme::onRenameGroup(const std::vector<DynInst *> &group)
{
    // The untaint broadcast reaches the rename-stage taint RAT one
    // cycle after the visibility point moves.
    const SeqNum vp = coreRef->visibilityPointPrev();

    // Serial pass over the group: younger instructions see the taint
    // writes of older same-cycle instructions — the dependency chain
    // of Fig. 3.
    for (DynInst *inst : group) {
        YRoT src1_taint = invalidSeqNum;
        YRoT src2_taint = invalidSeqNum;
        if (inst->uop.hasSrc1())
            src1_taint = filterRoot(taintRat[inst->uop.src1], vp);
        if (inst->uop.hasSrc2())
            src2_taint = filterRoot(taintRat[inst->uop.src2], vp);
        const YRoT unified = youngestRoot(src1_taint, src2_taint);

        inst->yrot = unified;
        if (inst->isStore() && schemeCfg.twoTaintStores) {
            // Sec. 9.2 optimization: separate taints for the address
            // and data operands of a store.
            inst->yrotAddr = src1_taint;
            inst->yrotData = src2_taint;
        }

        if (inst->uop.hasDst()) {
            inst->staleYrot = taintRat[inst->uop.dst];
            if (inst->isLoad()) {
                // Speculative loads root a fresh taint; bound-to-
                // commit loads produce clean data (Sec. 3.1).
                taintRat[inst->uop.dst] =
                    inst->specAtRename ? inst->seq : invalidSeqNum;
            } else {
                taintRat[inst->uop.dst] = unified;
            }
        }
    }
}

bool
SttRenameScheme::selectVeto(const DynInst &inst, bool addr_half)
{
    const SeqNum vp = coreRef->visibilityPointPrev();

    if (inst.isStore()) {
        if (schemeCfg.twoTaintStores) {
            // Address half transmits; data half is unobservable.
            return addr_half && rootLive(inst.yrotAddr, vp);
        }
        // Single-taint store: the unified YRoT blocks both halves,
        // delaying address generation (the Sec. 9.2 pathology).
        return rootLive(inst.yrot, vp);
    }
    if (!inst.uop.isTransmitter())
        return false;
    return rootLive(inst.yrot, vp);
}

void
SttRenameScheme::onSquashWalk(const DynInst &inst)
{
    // Youngest-first walk restores the taint RAT exactly; stale
    // roots are filtered against the visibility point on read.
    if (inst.uop.hasDst())
        taintRat[inst.uop.dst] = inst.staleYrot;
}

} // namespace sb
