/**
 * @file
 * DelayAll: the eager delay-all-speculative-loads baseline.
 *
 * The conservative endpoint of the in-core design space (the
 * behaviour hardware/software contract work such as ProSpeCT assumes
 * of a maximally careful core): no load wins a select port while it
 * is younger than an open C/D shadow. The veto sits in the ready
 * logic (selectVeto), so a blocked load simply stays in the issue
 * queue and re-arbitrates once the visibility point passes it —
 * store address/data halves, branches, and ALU ops issue normally,
 * which is what keeps the visibility point advancing (the oldest
 * unresolved shadow never depends on a younger delayed load, so
 * forward progress is inductive).
 *
 * Because a load only ever executes non-speculatively, its result is
 * never speculative when broadcast: DelayAll satisfies the NDA
 * obligation (SecurityContract::consumeSafe(), which implies the STT
 * obligation) by construction, at the largest IPC cost in the roster. That makes
 * it the anchor every selective scheme (STT, NDA, DoM) is measured
 * against in the scheme_compare scenario.
 */

#ifndef SB_SECURE_DELAY_ALL_HH
#define SB_SECURE_DELAY_ALL_HH

#include "core/core.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** Delay every speculative load until the point of no speculation. */
class DelayAllScheme : public SecureScheme
{
  public:
    explicit DelayAllScheme(const SchemeConfig & /* config */) {}

    const char *name() const override { return "DelayAll"; }
    Scheme kind() const override { return Scheme::DelayAll; }

    SecurityContract
    contract() const override
    {
        return SecurityContract::consumeSafe();
    }

    bool selectVeto(const DynInst &inst, bool addr_half) override;
};

} // namespace sb

#endif // SB_SECURE_DELAY_ALL_HH
