/**
 * @file
 * Small helpers shared by the STT taint computations.
 */

#ifndef SB_SECURE_TAINT_UTIL_HH
#define SB_SECURE_TAINT_UTIL_HH

#include "common/types.hh"

namespace sb
{

/**
 * Combine two YRoTs, selecting the *youngest* (largest sequence
 * number) valid root — the YRoT rule of paper Sec. 3.1.
 */
inline YRoT
youngestRoot(YRoT a, YRoT b)
{
    if (a == invalidSeqNum)
        return b;
    if (b == invalidSeqNum)
        return a;
    return a > b ? a : b;
}

/**
 * Is a root still a live taint? Roots at or below the visibility
 * point are bound-to-commit loads whose data is no longer secret.
 */
inline bool
rootLive(YRoT root, SeqNum visibility_point)
{
    return root != invalidSeqNum && root > visibility_point;
}

/** Filter a root against the visibility point (stale -> invalid). */
inline YRoT
filterRoot(YRoT root, SeqNum visibility_point)
{
    return rootLive(root, visibility_point) ? root : invalidSeqNum;
}

} // namespace sb

#endif // SB_SECURE_TAINT_UTIL_HH
