#include "secure/dom.hh"

#include <algorithm>

namespace sb
{

bool
DomScheme::delayLoadMiss(const DynInstPtr &load)
{
    if (!coreRef->isSpeculative(load->seq))
        return false;
    if (coreRef->memorySystem().l1Contains(load->effAddr))
        return false; // Speculative hits proceed (no fill, no trace).
    parked.push_back(load);
    return true;
}

void
DomScheme::tick()
{
    if (parked.empty())
        return;

    // Release every parked load the visibility point has passed,
    // oldest first (a re-injected load re-arbitrates for a memory
    // port in this cycle's select phase, so order determines port
    // priority). Squashed loads are dropped on the way: their miss
    // never happened.
    releaseScratch.clear();
    auto keep = parked.begin();
    for (auto it = parked.begin(); it != parked.end(); ++it) {
        DynInstPtr &load = *it;
        if (load->squashed)
            continue;
        if (!coreRef->isSpeculative(load->seq)) {
            releaseScratch.push_back(std::move(load));
            continue;
        }
        *keep++ = std::move(load);
    }
    parked.erase(keep, parked.end());

    if (releaseScratch.empty())
        return;
    std::sort(releaseScratch.begin(), releaseScratch.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->seq < b->seq;
              });
    for (const DynInstPtr &load : releaseScratch)
        coreRef->retryLoad(load);
    releaseScratch.clear();
}

void
DomScheme::onSquash(SeqNum youngest_surviving)
{
    parked.erase(std::remove_if(parked.begin(), parked.end(),
                                [youngest_surviving](const DynInstPtr &l) {
                                    return l->seq > youngest_surviving
                                           || l->squashed;
                                }),
                 parked.end());
}

} // namespace sb
