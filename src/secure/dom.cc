#include "secure/dom.hh"

#include <algorithm>

namespace sb
{

bool
DomScheme::delayLoadMiss(InstHandle h, const DynInst &load)
{
    if (!coreRef->isSpeculative(load.seq))
        return false;
    if (coreRef->memorySystem().l1Contains(load.effAddr))
        return false; // Speculative hits proceed (no fill, no trace).
    parked.push_back(Parked{h, load.seq});
    return true;
}

void
DomScheme::tick()
{
    if (parked.empty())
        return;

    // Release every parked load the visibility point has passed,
    // oldest first (a re-injected load re-arbitrates for a memory
    // port in this cycle's select phase, so order determines port
    // priority). Squashed loads (stale handles) are dropped on the
    // way: their miss never happened.
    releaseScratch.clear();
    auto keep = parked.begin();
    for (auto it = parked.begin(); it != parked.end(); ++it) {
        if (!coreRef->slabAlive(it->handle))
            continue;
        if (!coreRef->isSpeculative(it->seq)) {
            releaseScratch.push_back(*it);
            continue;
        }
        *keep++ = *it;
    }
    parked.erase(keep, parked.end());

    if (releaseScratch.empty())
        return;
    std::sort(releaseScratch.begin(), releaseScratch.end(),
              [](const Parked &a, const Parked &b) {
                  return a.seq < b.seq;
              });
    for (const Parked &load : releaseScratch)
        coreRef->retryLoad(load.handle);
    releaseScratch.clear();
}

void
DomScheme::onSquash(SeqNum youngest_surviving)
{
    parked.erase(std::remove_if(parked.begin(), parked.end(),
                                [youngest_surviving](const Parked &l) {
                                    return l.seq > youngest_surviving;
                                }),
                 parked.end());
}

} // namespace sb
