#include "secure/delay_all.hh"

namespace sb
{

bool
DelayAllScheme::selectVeto(const DynInst &inst, bool /* addr_half */)
{
    // Only loads are delayed; store halves and every other op class
    // issue normally (they are what resolves the shadows).
    if (!inst.isLoad())
        return false;
    return coreRef->isSpeculative(inst.seq);
}

} // namespace sb
