/**
 * @file
 * STT-Rename: Speculative Taint Tracking with taint computation in
 * the rename stage (paper Sec. 4.1-4.2).
 *
 * A taint RAT keyed by *architectural* register carries the YRoT of
 * each register. The YRoT of every renamed instruction is computed
 * serially across the rename group — same-cycle dependencies chain
 * exactly as in Fig. 3 (the single-cycle timing cost of that chain is
 * charged by the synthesis model, src/synth). Tainted transmitters
 * are kept from issue until their YRoT passes the visibility point;
 * because rename-stage taint state learns of untaints through a
 * broadcast, the unblock is observed one cycle late (Sec. 9.1).
 *
 * Mispredict recovery restores taint-RAT state exactly via the
 * squash walk (the functional equivalent of the checkpoint restore +
 * stale-entry invalidation of Sec. 4.2; stale roots are additionally
 * filtered against the visibility point on every read).
 */

#ifndef SB_SECURE_STT_RENAME_HH
#define SB_SECURE_STT_RENAME_HH

#include <array>

#include "core/core.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** STT with rename-stage tainting. */
class SttRenameScheme : public SecureScheme
{
  public:
    explicit SttRenameScheme(const SchemeConfig &config)
        : schemeCfg(config)
    {
        taintRat.fill(invalidSeqNum);
    }

    const char *name() const override { return "STT-Rename"; }
    Scheme kind() const override { return Scheme::SttRename; }

    SecurityContract
    contract() const override
    {
        return SecurityContract::transmitterSafe();
    }

    void onRenameGroup(const std::vector<DynInst *> &group) override;
    bool selectVeto(const DynInst &inst, bool addr_half) override;
    void onSquashWalk(const DynInst &inst) override;
    void reset() override { taintRat.fill(invalidSeqNum); }

    /** Current taint of an architectural register (for tests). */
    YRoT archTaint(ArchReg reg) const { return taintRat[reg]; }

  private:
    SchemeConfig schemeCfg;
    std::array<YRoT, numArchRegs> taintRat;
};

} // namespace sb

#endif // SB_SECURE_STT_RENAME_HH
