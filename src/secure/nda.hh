/**
 * @file
 * NDA: Non-speculative Data Access (paper Sec. 5).
 *
 * NDA-Permissive decouples a load's register-file writeback from its
 * ready broadcast (Fig. 5): a load that completes while speculative
 * writes its data but does not wake dependents; once the visibility
 * point passes the load, a broadcast is queued, with at most
 * `memPorts` broadcasts per cycle (Sec. 5.1). NDA drops speculative
 * L1-hit scheduling, which simplifies the core (and its timing).
 *
 * NDA-Strict (threat-model extension, Sec. 2.3) additionally defers
 * the broadcast of *every* speculatively produced result, making
 * speculation a data-propagation barrier.
 */

#ifndef SB_SECURE_NDA_HH
#define SB_SECURE_NDA_HH

#include <algorithm>
#include <deque>

#include "core/core.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** NDA-Permissive delayed-broadcast scheme. */
class NdaScheme : public SecureScheme
{
  public:
    explicit NdaScheme(const SchemeConfig &config) : schemeCfg(config) {}

    const char *name() const override { return "NDA"; }
    Scheme kind() const override { return Scheme::Nda; }

    SecurityContract
    contract() const override
    {
        return SecurityContract::consumeSafe();
    }

    bool deferBroadcast(InstHandle h, const DynInst &inst,
                        Cycle ready_at) override;
    void tick() override;
    void onSquash(SeqNum youngest_surviving) override;
    void reset() override { pending.clear(); }

    bool
    allowsSpeculativeScheduling() const override
    {
        return schemeCfg.ndaKeepSpeculativeScheduling;
    }

    std::size_t pendingBroadcasts() const { return pending.size(); }

  protected:
    /**
     * A queued broadcast carries only what firing it needs: the
     * destination register and when. Squashed producers never fire
     * because onSquash erases by sequence number, and the core's
     * per-register allocation epoch drops a wakeup whose register
     * was re-allocated between scheduling and firing.
     */
    struct Pending
    {
        SeqNum seq;
        PhysReg pdst;
        Cycle readyAt;
    };

    /** Broadcast-port budget per cycle. */
    virtual unsigned broadcastBudget() const;

    SchemeConfig schemeCfg;
    std::deque<Pending> pending;
};

/** NDA-Strict: every speculative result's broadcast is deferred. */
class NdaStrictScheme : public NdaScheme
{
  public:
    explicit NdaStrictScheme(const SchemeConfig &config)
        : NdaScheme(config)
    {
    }

    const char *name() const override { return "NDA-Strict"; }
    Scheme kind() const override { return Scheme::NdaStrict; }

    bool deferBroadcast(InstHandle h, const DynInst &inst,
                        Cycle ready_at) override;

  protected:
    unsigned broadcastBudget() const override;
};

} // namespace sb

#endif // SB_SECURE_NDA_HH
