#include "secure/stt_issue.hh"

#include "common/logging.hh"
#include "secure/taint_util.hh"

namespace sb
{

void
SttIssueScheme::attach(Core &core)
{
    SecureScheme::attach(core);
    taintTable.assign(core.config().numPhysRegs, invalidSeqNum);
}

void
SttIssueScheme::reset()
{
    for (auto &t : taintTable)
        t = invalidSeqNum;
}

bool
SttIssueScheme::selectVeto(const DynInst &inst, bool /* addr_half */)
{
    // Only the back-propagated YRoT masks ready (Fig. 4, step 5);
    // it is checked against the *current* visibility point, so the
    // entry re-arms the same cycle its root becomes safe.
    return rootLive(inst.yrotMask, coreRef->visibilityPoint());
}

bool
SttIssueScheme::onSelect(DynInst &inst, bool addr_half)
{
    const SeqNum vp = coreRef->visibilityPoint();

    // The taint unit reads only the operands this issue consumes.
    YRoT y = invalidSeqNum;
    const bool use_src1 = !inst.isStore() || addr_half;
    const bool use_src2 = !inst.isStore() || !addr_half;
    if (use_src1 && inst.uop.hasSrc1())
        y = youngestRoot(y, filterRoot(taintTable[inst.psrc1], vp));
    if (use_src2 && inst.uop.hasSrc2())
        y = youngestRoot(y, filterRoot(taintTable[inst.psrc2], vp));

    // Transmitting uses: a load's or store's address, a branch's
    // condition. A tainted transmitter is killed into a nop and its
    // YRoT back-propagated to the issue-queue entry.
    const bool transmitting_use =
        inst.isLoad() || inst.isBranch() || (inst.isStore() && addr_half);
    if (transmitting_use && y != invalidSeqNum) {
        inst.yrotMask = y;
        return false;
    }

    inst.yrot = y;
    if (inst.uop.hasDst()) {
        if (inst.isLoad()) {
            // A speculative load roots a fresh taint; its address
            // taint was necessarily clear to get here.
            taintTable[inst.pdst] =
                coreRef->isSpeculative(inst.seq) ? inst.seq
                                                 : invalidSeqNum;
        } else {
            taintTable[inst.pdst] = y;
        }
    }
    return true;
}

} // namespace sb
