/**
 * @file
 * STT-Issue: Speculative Taint Tracking with taint computation at
 * instruction issue (paper Sec. 4.3, Fig. 4).
 *
 * A taint unit keyed by *physical* register computes an
 * instruction's YRoT only when it wins a select port. Wakeup and
 * select are unmodified; a selected transmitter that turns out
 * tainted is killed into a nop (the slot is wasted) and its YRoT is
 * back-propagated to its issue-queue entry, masking ready until the
 * root passes the visibility point. No taint checkpoints are needed:
 * physical-register taint entries are always overwritten by a new
 * producer before any consumer can issue.
 *
 * Because the taint check happens at select against the *current*
 * visibility point, STT-Issue can issue an instruction the same
 * cycle its root becomes safe — one cycle earlier than STT-Rename
 * (Sec. 9.1).
 */

#ifndef SB_SECURE_STT_ISSUE_HH
#define SB_SECURE_STT_ISSUE_HH

#include <vector>

#include "core/core.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** STT with issue-stage tainting. */
class SttIssueScheme : public SecureScheme
{
  public:
    explicit SttIssueScheme(const SchemeConfig &config)
        : schemeCfg(config)
    {
    }

    const char *name() const override { return "STT-Issue"; }
    Scheme kind() const override { return Scheme::SttIssue; }

    SecurityContract
    contract() const override
    {
        return SecurityContract::transmitterSafe();
    }

    void attach(Core &core) override;
    bool selectVeto(const DynInst &inst, bool addr_half) override;
    bool onSelect(DynInst &inst, bool addr_half) override;
    void reset() override;

    /** Current taint of a physical register (for tests). */
    YRoT physTaint(PhysReg reg) const { return taintTable[reg]; }

  private:
    SchemeConfig schemeCfg;
    std::vector<YRoT> taintTable;
};

} // namespace sb

#endif // SB_SECURE_STT_ISSUE_HH
