/**
 * @file
 * Scheme factory: SchemeConfig -> hook implementation.
 */

#ifndef SB_SECURE_FACTORY_HH
#define SB_SECURE_FACTORY_HH

#include <memory>

#include "common/config.hh"
#include "core/scheme_iface.hh"

namespace sb
{

/** Instantiate the scheme selected by @p config. */
std::unique_ptr<SecureScheme> makeScheme(const SchemeConfig &config);

} // namespace sb

#endif // SB_SECURE_FACTORY_HH
