#include "secure/factory.hh"

#include "common/logging.hh"
#include "secure/delay_all.hh"
#include "secure/dom.hh"
#include "secure/nda.hh"
#include "secure/stt_issue.hh"
#include "secure/stt_rename.hh"

namespace sb
{

std::unique_ptr<SecureScheme>
makeScheme(const SchemeConfig &config)
{
    switch (config.scheme) {
      case Scheme::Baseline:
        return std::make_unique<SecureScheme>();
      case Scheme::SttRename:
        return std::make_unique<SttRenameScheme>(config);
      case Scheme::SttIssue:
        return std::make_unique<SttIssueScheme>(config);
      case Scheme::Nda:
        return std::make_unique<NdaScheme>(config);
      case Scheme::NdaStrict:
        return std::make_unique<NdaStrictScheme>(config);
      case Scheme::DelayOnMiss:
        return std::make_unique<DomScheme>(config);
      case Scheme::DelayAll:
        return std::make_unique<DelayAllScheme>(config);
    }
    sb_panic("unknown scheme in factory");
}

} // namespace sb
