#include "branch/tage.hh"

#include "common/logging.hh"

namespace sb
{

TagePredictor::TagePredictor(unsigned log_entries)
    : logEntries(log_entries),
      base(1u << (log_entries + 2), 1),
      statGroup("tage"),
      st(statGroup)
{
    sb_assert(log_entries >= 4 && log_entries <= 16,
              "unreasonable TAGE table size");
    for (unsigned len : {8u, 16u, 32u, 64u}) {
        Component c;
        c.historyLength = len;
        c.entries.resize(1u << log_entries);
        components.push_back(std::move(c));
    }
}

void
TagePredictor::flushSpeculativeState()
{
    std::fill(base.begin(), base.end(), 1);
    for (Component &c : components) {
        std::fill(c.entries.begin(), c.entries.end(), TaggedEntry{});
    }
    allocSeed = 0x1234;
}

std::uint64_t
TagePredictor::fold(std::uint64_t hist, unsigned len, unsigned bits)
{
    if (len < 64)
        hist &= (1ULL << len) - 1;
    std::uint64_t folded = 0;
    for (unsigned i = 0; i < len; i += bits)
        folded ^= (hist >> i);
    return folded & ((1ULL << bits) - 1);
}

unsigned
TagePredictor::index(const Component &c, std::uint64_t pc,
                     std::uint64_t hist) const
{
    const std::uint64_t h = fold(hist, c.historyLength, logEntries);
    return (pc ^ (pc >> logEntries) ^ h) & (c.entries.size() - 1);
}

std::uint16_t
TagePredictor::tag(const Component &c, std::uint64_t pc,
                   std::uint64_t hist) const
{
    const std::uint64_t h = fold(hist, c.historyLength, 9);
    return static_cast<std::uint16_t>((pc ^ (pc >> 7) ^ (h << 1)) & 0x1ff);
}

int
TagePredictor::provider(std::uint64_t pc, std::uint64_t hist) const
{
    for (int i = static_cast<int>(components.size()) - 1; i >= 0; --i) {
        const Component &c = components[i];
        const TaggedEntry &e = c.entries[index(c, pc, hist)];
        if (e.tag == tag(c, pc, hist))
            return i;
    }
    return -1;
}

bool
TagePredictor::predict(std::uint64_t pc, std::uint64_t hist)
{
    ++st.lookups;
    const int p = provider(pc, hist);
    if (p >= 0) {
        const Component &c = components[p];
        return c.entries[index(c, pc, hist)].ctr >= 0;
    }
    return base[pc % base.size()] >= 2;
}

void
TagePredictor::update(std::uint64_t pc, std::uint64_t hist, bool taken)
{
    const int p = provider(pc, hist);
    const bool predicted = predict(pc, hist);
    const bool correct = predicted == taken;

    if (p >= 0) {
        Component &c = components[p];
        TaggedEntry &e = c.entries[index(c, pc, hist)];
        if (taken && e.ctr < 3)
            ++e.ctr;
        else if (!taken && e.ctr > -4)
            --e.ctr;
        if (correct && e.useful < 3)
            ++e.useful;
        else if (!correct && e.useful > 0)
            --e.useful;
    } else {
        auto &ctr = base[pc % base.size()];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    }

    // Allocate in a longer-history component on a misprediction.
    if (!correct && p < static_cast<int>(components.size()) - 1) {
        // Deterministic pseudo-random start slot among candidates.
        allocSeed = allocSeed * 6364136223846793005ULL + 1442695040888963407ULL;
        const unsigned start = p + 1
            + static_cast<unsigned>((allocSeed >> 33)
                                    % (components.size() - p - 1));
        bool allocated = false;
        for (unsigned i = start; i < components.size() && !allocated; ++i) {
            Component &c = components[i];
            TaggedEntry &e = c.entries[index(c, pc, hist)];
            if (e.useful == 0) {
                e.tag = tag(c, pc, hist);
                e.ctr = taken ? 0 : -1;
                e.useful = 0;
                allocated = true;
                ++st.allocations;
            }
        }
        if (!allocated) {
            // Decay usefulness so future allocations can succeed.
            for (unsigned i = p + 1; i < components.size(); ++i) {
                Component &c = components[i];
                TaggedEntry &e = c.entries[index(c, pc, hist)];
                if (e.useful > 0)
                    --e.useful;
            }
        }
        ++st.mispredictUpdates;
    }
}

} // namespace sb
