/**
 * @file
 * Fixed-capacity set-associative branch target buffer.
 *
 * Replaces the core's original unbounded `std::unordered_map` BTB: a
 * perfect, never-evicting, never-flushed target memory overstates how
 * trainable indirect branches are (an attacker's stale entry survives
 * forever) and cannot model flush-on-context-switch at all. This BTB
 * has real geometry — sets x ways with tags and LRU replacement — and
 * an explicit flush() for the predictor-flush switch policy.
 *
 * Trained at commit with the architectural target of indirect
 * branches (Op::JmpReg), probed at fetch; a miss predicts fall-through
 * (pc + 1), matching the original map's behaviour. The default
 * geometry (1024 sets x 4 ways) is deliberately large relative to the
 * handful of indirect sites in the kernel suite, so replacing the map
 * changes no existing cycle-level result — capacity pressure only
 * matters to workloads built to create it.
 */

#ifndef SB_BRANCH_BTB_HH
#define SB_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace sb
{

/** Set-associative, LRU-replaced branch target buffer. */
class BranchTargetBuffer
{
  public:
    explicit BranchTargetBuffer(unsigned sets = 1024, unsigned ways = 4)
        : numSets(sets), numWays(ways), entries(sets * ways)
    {
        sb_assert(sets > 0 && (sets & (sets - 1)) == 0,
                  "BTB set count must be a power of two");
        sb_assert(ways > 0, "BTB must have at least one way");
    }

    /**
     * Predicted target for the indirect branch at @p pc, or
     * fall-through (pc + 1) on a miss.
     */
    std::uint32_t
    predict(std::uint32_t pc) const
    {
        const Entry *e = find(pc);
        return e ? e->target : pc + 1;
    }

    /** Did fetch at @p pc hit a trained entry? */
    bool hit(std::uint32_t pc) const { return find(pc) != nullptr; }

    /** Train (commit-time) the target of the indirect branch at @p pc. */
    void
    train(std::uint32_t pc, std::uint32_t target)
    {
        ++stamp;
        Entry *base = &entries[setIndex(pc) * numWays];
        Entry *victim = base;
        for (unsigned w = 0; w < numWays; ++w) {
            Entry &e = base[w];
            if (e.valid && e.tag == tagOf(pc)) {
                e.target = target;
                e.lastUse = stamp;
                return;
            }
            if (!e.valid) {
                victim = &e;
            } else if (victim->valid && e.lastUse < victim->lastUse) {
                victim = &e;
            }
        }
        victim->valid = true;
        victim->tag = tagOf(pc);
        victim->target = target;
        victim->lastUse = stamp;
    }

    /** Invalidate every entry (the flush-on-switch policy). */
    void
    flush()
    {
        for (Entry &e : entries)
            e = Entry{};
        stamp = 0;
    }

    /** Currently valid entries (bounded by sets x ways). */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Entry &e : entries)
            n += e.valid ? 1 : 0;
        return n;
    }

    std::size_t capacity() const { return entries.size(); }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint32_t target = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(std::uint32_t pc) const { return pc & (numSets - 1); }
    std::uint32_t tagOf(std::uint32_t pc) const
    {
        // Full upper-pc tag: no aliasing between distinct sites.
        std::uint32_t t = pc;
        unsigned s = numSets;
        while (s > 1) {
            t >>= 1;
            s >>= 1;
        }
        return t;
    }

    const Entry *
    find(std::uint32_t pc) const
    {
        const Entry *base = &entries[setIndex(pc) * numWays];
        for (unsigned w = 0; w < numWays; ++w) {
            if (base[w].valid && base[w].tag == tagOf(pc))
                return &base[w];
        }
        return nullptr;
    }

    unsigned numSets;
    unsigned numWays;
    std::vector<Entry> entries;
    std::uint64_t stamp = 0;
};

} // namespace sb

#endif // SB_BRANCH_BTB_HH
