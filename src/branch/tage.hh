/**
 * @file
 * TAGE-style tagged geometric-history predictor.
 *
 * The paper's gem5 configuration uses MultiperspectivePerceptronTAGE
 * (Table 2); this is a faithful-in-spirit TAGE: a bimodal base table
 * plus N tagged components with geometrically increasing history
 * lengths, usefulness counters, and allocate-on-mispredict. Folded
 * indices/tags are recomputed from the 64-bit history each call so
 * the predictor holds no speculative state.
 */

#ifndef SB_BRANCH_TAGE_HH
#define SB_BRANCH_TAGE_HH

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "common/stats.hh"

namespace sb
{

/** Cached counter handles for the predictor's lookup/update paths. */
struct TageStats
{
    explicit TageStats(StatGroup &g)
        : lookups(g.counter("lookups")),
          allocations(g.counter("allocations")),
          mispredictUpdates(g.counter("mispredict_updates"))
    {
    }

    Counter &lookups;
    Counter &allocations;
    Counter &mispredictUpdates;
};

/** TAGE with a bimodal base and four tagged components. */
class TagePredictor : public BranchPredictor
{
  public:
    /** @param log_entries log2 of each tagged table's entry count. */
    explicit TagePredictor(unsigned log_entries = 10);

    bool predict(std::uint64_t pc, std::uint64_t hist) override;
    void update(std::uint64_t pc, std::uint64_t hist, bool taken) override;

    /**
     * Reset the bimodal base and invalidate every tagged entry,
     * returning the predictor to its construction state (cold base
     * counters predict not-taken). The allocation seed is also reset
     * so a flushed predictor is bit-identical to a fresh one — flushes
     * keep runs deterministic and cache-reproducible. Stats survive.
     */
    void flushSpeculativeState() override;

    StatGroup &stats() { return statGroup; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;     ///< Signed: >= 0 predicts taken.
        std::uint8_t useful = 0;
    };

    struct Component
    {
        unsigned historyLength;
        std::vector<TaggedEntry> entries;
    };

    /** Fold the low @p len bits of @p hist into @p bits bits. */
    static std::uint64_t fold(std::uint64_t hist, unsigned len,
                              unsigned bits);

    unsigned index(const Component &c, std::uint64_t pc,
                   std::uint64_t hist) const;
    std::uint16_t tag(const Component &c, std::uint64_t pc,
                      std::uint64_t hist) const;

    /** Find the longest-history matching component, or -1 for base. */
    int provider(std::uint64_t pc, std::uint64_t hist) const;

    unsigned logEntries;
    std::vector<std::uint8_t> base;   ///< 2-bit bimodal counters.
    std::vector<Component> components;
    std::uint64_t allocSeed = 0x1234; ///< Deterministic tie-breaking.
    StatGroup statGroup;
    TageStats st;
};

} // namespace sb

#endif // SB_BRANCH_TAGE_HH
