/**
 * @file
 * Branch direction predictor interface.
 *
 * Predictors are pure functions of (pc, global history): the core owns
 * the speculative global-history register, snapshots it per branch,
 * and restores it on mispredict, so the predictor itself holds no
 * speculative state. Updates happen at commit with the history the
 * branch was predicted under, mirroring BOOM.
 *
 * The modelled ISA has only direct branches (targets are static), so
 * no BTB is required: the fetch stage redirects using the static
 * target, paying a one-cycle taken-branch bubble.
 */

#ifndef SB_BRANCH_PREDICTOR_HH
#define SB_BRANCH_PREDICTOR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sb
{

/** Direction predictor interface (history passed in by the core). */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict taken/not-taken for @p pc under history @p hist. */
    virtual bool predict(std::uint64_t pc, std::uint64_t hist) = 0;

    /** Train with the committed outcome under the predict-time history. */
    virtual void update(std::uint64_t pc, std::uint64_t hist,
                        bool taken) = 0;

    /**
     * Drop every trained direction so the next lookup predicts from
     * the cold (reset) state. Wired to the flush-on-context-switch
     * policy: without it, predictor state trained by one protection
     * domain steers speculation in the next (the Spectre v2 / swapgs
     * training channel). Stats survive the flush.
     */
    virtual void flushSpeculativeState() {}
};

/** 2-bit-counter bimodal predictor (ablation / unit-test baseline). */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries = 4096)
        : table(entries, 1) {}

    bool
    predict(std::uint64_t pc, std::uint64_t) override
    {
        return table[pc % table.size()] >= 2;
    }

    void
    update(std::uint64_t pc, std::uint64_t, bool taken) override
    {
        auto &ctr = table[pc % table.size()];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    }

    void
    flushSpeculativeState() override
    {
        std::fill(table.begin(), table.end(), 1);
    }

  private:
    std::vector<std::uint8_t> table;
};

} // namespace sb

#endif // SB_BRANCH_PREDICTOR_HH
