/**
 * @file
 * Wire protocol of the sharded experiment tier.
 *
 * A dispatcher (`sbsim run --shards N`) and a worker (`sbsim serve`)
 * exchange length-prefixed JSON frames over a pipe or socketpair:
 * each frame is a 4-byte little-endian payload length followed by
 * exactly that many bytes of JSON text. Framing is independent of
 * JSON so a reader never has to scan for message boundaries, a
 * half-written frame from a crashed peer is detected by length (not
 * by parse luck), and the unparsed tail survives in the reader for
 * the next read.
 *
 * Messages (the `cmd` field discriminates):
 *   worker -> dispatcher  {"cmd":"hello","pid":P,"proto":V}
 *   dispatcher -> worker  {"cmd":"run","id":I,"key":K,
 *                          "timeout_ms":T,"spec":{...}}
 *   worker -> dispatcher  {"cmd":"done","id":I,"cached":B,
 *                          "outcome":{...}}
 *   dispatcher -> worker  {"cmd":"shutdown"}
 *
 * The spec travels as a full field-by-field serialization of
 * RunSpec (core geometry, scheme knobs, workload, windows), so a
 * worker reconstructs exactly the cell the dispatcher addressed —
 * round-trip fidelity is pinned by tests against
 * RunSpec::canonical(), which by contract covers every field.
 */

#ifndef SB_HARNESS_PROTOCOL_HH
#define SB_HARNESS_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/json.hh"
#include "harness/experiment.hh"

namespace sb
{

/** Protocol version, carried in the hello message. A dispatcher
 *  refuses a worker answering with a different version. */
constexpr unsigned shardProtocolVersion = 2;

/** Upper bound on one frame; larger lengths mean a corrupt stream. */
constexpr std::uint32_t maxFrameBytes = 64u << 20;

/**
 * Write one frame (length prefix + @p payload) to @p fd, retrying
 * EINTR and partial writes. Returns false on error (EPIPE from a
 * dead peer included; install SIGPIPE ignore first).
 */
bool writeFrame(int fd, const std::string &payload);

enum class RecvStatus
{
    Ok,      ///< A complete frame was received.
    Closed,  ///< Peer closed the stream (EOF) at a frame boundary
             ///< or mid-frame (a crashed peer looks the same).
    Timeout, ///< No complete frame within the deadline.
    Error,   ///< read()/poll() error, or an oversized frame length.
};

/**
 * Blocking single-frame read with a poll()-based timeout.
 * @p timeoutMs < 0 waits forever. Used by the worker (one request at
 * a time); the dispatcher multiplexes many workers with FrameReader.
 */
RecvStatus readFrame(int fd, std::string &payload, int timeoutMs);

/**
 * Incremental frame decoder for a nonblocking stream: feed() raw
 * bytes as they arrive, next() extracts complete frames in order.
 */
class FrameReader
{
  public:
    void feed(const char *data, std::size_t n) { buf.append(data, n); }

    /** Extract the next complete frame into @p payload. */
    bool next(std::string &payload);

    /** A frame length exceeded maxFrameBytes: the stream is garbage
     *  and the peer should be treated as crashed. */
    bool corrupt() const { return corruptFlag; }

    /** Bytes of an incomplete trailing frame (diagnostics). */
    std::size_t pendingBytes() const { return buf.size(); }

  private:
    std::string buf;
    bool corruptFlag = false;
};

// --- Spec / outcome serialization --------------------------------------

Json toJson(const CacheConfig &config);
Json toJson(const CoreConfig &config);
Json toJson(const SchemeConfig &config);
Json toJson(const RunSpec &spec);

bool cacheConfigFromJson(const Json &json, CacheConfig &out);
bool coreConfigFromJson(const Json &json, CoreConfig &out);
bool schemeConfigFromJson(const Json &json, SchemeConfig &out);
bool runSpecFromJson(const Json &json, RunSpec &out);

// --- Message builders ---------------------------------------------------

Json makeHelloMsg();
Json makeRunCmd(std::uint64_t id, const std::string &key,
                const RunSpec &spec, std::uint64_t timeoutMs);
Json makeDoneMsg(std::uint64_t id, const RunOutcome &outcome,
                 bool cached);
Json makeShutdownCmd();

/** The `cmd` field of a parsed message ("" when absent/malformed). */
std::string messageCmd(const Json &msg);

} // namespace sb

#endif // SB_HARNESS_PROTOCOL_HH
