#include "harness/verify.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/attack.hh"
#include "harness/scenario.hh"
#include "secure/factory.hh"

namespace sb
{

namespace
{

constexpr const char *gadgetPrefix = "gadget:";

/** Strict base-10 parse of a full token. */
bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno != 0)
        return false;
    out = v;
    return true;
}

} // anonymous namespace

std::string
gadgetWorkloadName(GadgetKind kind, std::uint8_t secret,
                   std::uint64_t seed)
{
    return std::string(gadgetPrefix) + gadgetName(kind)
           + ":secret=" + std::to_string(unsigned(secret))
           + ":seed=" + std::to_string(seed);
}

bool
isGadgetWorkload(const std::string &workload)
{
    return workload.rfind(gadgetPrefix, 0) == 0;
}

bool
parseGadgetWorkload(const std::string &workload, GadgetKind &kind,
                    std::uint8_t &secret, std::uint64_t &seed)
{
    if (!isGadgetWorkload(workload))
        return false;
    const std::string rest = workload.substr(std::string(gadgetPrefix).size());
    const std::size_t colon1 = rest.find(':');
    if (colon1 == std::string::npos)
        return false;
    const std::size_t colon2 = rest.find(':', colon1 + 1);
    if (colon2 == std::string::npos)
        return false;

    GadgetKind parsed_kind;
    if (!gadgetFromName(rest.substr(0, colon1), parsed_kind))
        return false;
    const std::string secret_tok = rest.substr(colon1 + 1,
                                               colon2 - colon1 - 1);
    const std::string seed_tok = rest.substr(colon2 + 1);
    if (secret_tok.rfind("secret=", 0) != 0
        || seed_tok.rfind("seed=", 0) != 0)
        return false;
    std::uint64_t secret_val = 0;
    std::uint64_t seed_val = 0;
    if (!parseUint(secret_tok.substr(7), secret_val)
        || !parseUint(seed_tok.substr(5), seed_val))
        return false;
    if (secret_val < 1 || secret_val > 255)
        return false;

    kind = parsed_kind;
    secret = static_cast<std::uint8_t>(secret_val);
    seed = seed_val;
    return true;
}

RunOutcome
runGadgetCell(const RunSpec &spec)
{
    GadgetKind kind;
    std::uint8_t secret = 0;
    std::uint64_t seed = 0;
    if (!parseGadgetWorkload(spec.workload, kind, secret, seed))
        sb_fatal("malformed gadget workload '", spec.workload, "'");

    AttackResult res;
    if (spec.mitigation.enabled()) {
        const GadgetProgram gadget =
            buildGadgetProgram(kind, secret, seed);
        const TransformedProgram mitigated =
            applyMitigation(spec.mitigation.kind, gadget.program);
        res = runGadgetAttack(gadget, spec.core, spec.scheme,
                              makeScheme(spec.scheme), secret,
                              &mitigated);
    } else {
        res = runGadget(kind, spec.core, spec.scheme, secret, seed);
    }

    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.cycles = res.cycles;
    out.transmitViolations = res.transmitViolations;
    out.consumeViolations = res.consumeViolations;
    out.stats["gadget_leaked"] = res.leaked ? 1 : 0;
    // Bytes are stored +1 so "no signal" (-1) round-trips as 0.
    out.stats["gadget_timing_byte"] =
        static_cast<std::uint64_t>(res.timingByte + 1);
    out.stats["gadget_oracle_byte"] =
        static_cast<std::uint64_t>(res.oracleByte + 1);
    out.stats["gadget_trace_hash"] = res.traceHash;
    out.stats["gadget_trace_len"] = res.traceLength;
    // Probe gaps are integral cycle deltas; stored as counters.
    out.stats["gadget_median_gap"] =
        static_cast<std::uint64_t>(res.medianGap);
    out.stats["gadget_min_gap"] =
        static_cast<std::uint64_t>(res.minGap);
    // Contract shadow verdicts: counters plus the pinpointed first
    // violation of each contract (valid flag keeps the zero cycle of
    // a real first-cycle violation distinguishable from "none").
    out.stats["gadget_sandbox_viol"] = res.sandboxViolations;
    out.stats["gadget_ct_viol"] = res.ctViolations;
    auto record = [&out](const char *prefix, const ContractViolation &v) {
        const std::string p = prefix;
        out.stats[p + "_valid"] = v.valid() ? 1 : 0;
        out.stats[p + "_cycle"] = v.valid() ? v.cycle : 0;
        out.stats[p + "_seq"] = v.valid() ? v.seq : 0;
        out.stats[p + "_pc"] = v.valid() ? v.pc : 0;
    };
    record("gadget_first_sandbox", res.firstSandboxViolation);
    record("gadget_first_ct", res.firstCtViolation);
    // Protection-domain verdicts. The flush-policy bit is recorded so
    // the fold can tell an expected-closed cross-domain cell (flush
    // core, unprotected) from an armed-proof one without re-deriving
    // the core configuration from its name.
    out.stats["gadget_cross_viol"] = res.crossTenantViolations;
    record("gadget_first_cross", res.firstCrossTenantViolation);
    out.stats["gadget_context_switches"] = res.contextSwitches;
    out.stats["gadget_flush_on_switch"] =
        spec.core.flushPredictorsOnSwitch ? 1 : 0;
    return out;
}

bool
gadgetIsCrossDomain(GadgetKind kind)
{
    return kind == GadgetKind::SpectreV2CrossDomain
           || kind == GadgetKind::SpectreV1Swapgs;
}

bool
VerifyCell::pass() const
{
    if (judgedPolicy == ContractPolicy::None) {
        // A cross-domain cell on a flush-on-switch core: the *core
        // policy* is the mitigation under test, so the unprotected
        // verdict flips — the channel must be closed, and closed
        // without secret-dependent divergence.
        if (expectClosed)
            return !leaked && !diverged;
        // A non-declaring scheme (the unsafe baseline) must
        // demonstrably leak on both paired runs — proof the gadget is
        // armed — and the shadow engine must have pinpointed the
        // secret reaching a transmitter, so the differential verdict
        // always comes with a (cycle, seq, pc) repro.
        return armed && firstCtViolation.valid();
    }
    if (leaked || diverged)
        return false;
    // Declared schemes must also keep secrets inside their owning
    // protection domain (vacuous for single-tenant gadgets).
    if (crossTenantViolations != 0)
        return false;
    if (contract.obligesTransmitterSafety && transmitViolations != 0)
        return false;
    if (contract.obligesConsumeSafety && consumeViolations != 0)
        return false;
    if (judgedPolicy == ContractPolicy::ConstantTime)
        return ctViolations == 0;
    // Every declared policy at least sandboxes: transiently-acquired
    // secrets must never have reached a transmitter operand.
    return sandboxViolations == 0;
}

std::vector<RunSpec>
verifyBatterySpecs(const CoreConfig &core,
                   const std::vector<SchemeConfig> &schemes)
{
    std::vector<RunSpec> specs;
    for (const SchemeConfig &scheme : schemes) {
        for (GadgetKind kind : allGadgets()) {
            for (std::uint8_t secret : {verifySecretA, verifySecretB}) {
                RunSpec s;
                s.core = core;
                s.scheme = scheme;
                s.workload =
                    gadgetWorkloadName(kind, secret, verifyGadgetSeed);
                // A gadget run is a complete program, not a windowed
                // measurement; the window fields stay zero so cells
                // with equal gadgets share a cache address.
                s.warmupInsts = 0;
                s.measureInsts = 0;
                specs.push_back(std::move(s));
            }
        }
    }
    return specs;
}

VerifyMatrix
foldVerifyOutcomes(const std::vector<RunOutcome> &outcomes,
                   std::optional<ContractPolicy> contract_override)
{
    sb_assert(outcomes.size() % 2 == 0,
              "battery outcomes must come in secret pairs");
    VerifyMatrix matrix;
    for (std::size_t i = 0; i + 1 < outcomes.size(); i += 2) {
        const RunOutcome &a = outcomes[i];
        const RunOutcome &b = outcomes[i + 1];

        GadgetKind kind_a, kind_b;
        std::uint8_t secret_a = 0, secret_b = 0;
        std::uint64_t seed_a = 0, seed_b = 0;
        if (!parseGadgetWorkload(a.workload, kind_a, secret_a, seed_a)
            || !parseGadgetWorkload(b.workload, kind_b, secret_b,
                                    seed_b)) {
            sb_fatal("non-gadget outcome in battery fold: '",
                     a.workload, "' / '", b.workload, "'");
        }
        sb_assert(kind_a == kind_b && a.scheme == b.scheme
                      && seed_a == seed_b && secret_a != secret_b,
                  "battery pair mismatch: ", a.workload, " vs ",
                  b.workload);

        VerifyCell cell;
        cell.gadget = gadgetName(kind_a);
        cell.core = a.coreName;
        cell.scheme = a.scheme;
        SchemeConfig scfg;
        scfg.scheme = a.scheme;
        cell.contract = makeScheme(scfg)->contract();
        cell.judgedPolicy = cell.contract.policy;
        if (contract_override
            && cell.contract.policy != ContractPolicy::None) {
            cell.judgedPolicy = *contract_override;
        }

        const bool leaked_a = a.stat("gadget_leaked") != 0;
        const bool leaked_b = b.stat("gadget_leaked") != 0;
        cell.leaked = leaked_a || leaked_b;
        cell.armed = leaked_a && leaked_b;
        cell.diverged =
            a.stat("gadget_trace_hash") != b.stat("gadget_trace_hash")
            || a.stat("gadget_trace_len") != b.stat("gadget_trace_len")
            || a.cycles != b.cycles;
        cell.transmitViolations =
            std::max(a.transmitViolations, b.transmitViolations);
        cell.consumeViolations =
            std::max(a.consumeViolations, b.consumeViolations);
        cell.timingByteA =
            static_cast<int>(a.stat("gadget_timing_byte")) - 1;
        cell.timingByteB =
            static_cast<int>(b.stat("gadget_timing_byte")) - 1;
        cell.cyclesA = a.cycles;
        cell.cyclesB = b.cycles;
        cell.sandboxViolations = std::max(a.stat("gadget_sandbox_viol"),
                                          b.stat("gadget_sandbox_viol"));
        cell.ctViolations = std::max(a.stat("gadget_ct_viol"),
                                     b.stat("gadget_ct_viol"));
        auto first = [](const RunOutcome &o, const char *prefix) {
            const std::string p = prefix;
            ContractViolation v;
            if (o.stat(p + "_valid") != 0) {
                v.cycle = o.stat(p + "_cycle");
                v.seq = o.stat(p + "_seq");
                v.pc = static_cast<std::uint32_t>(o.stat(p + "_pc"));
            }
            return v;
        };
        const ContractViolation sa = first(a, "gadget_first_sandbox");
        cell.firstSandboxViolation =
            sa.valid() ? sa : first(b, "gadget_first_sandbox");
        const ContractViolation ca = first(a, "gadget_first_ct");
        cell.firstCtViolation =
            ca.valid() ? ca : first(b, "gadget_first_ct");
        cell.crossTenantViolations =
            std::max(a.stat("gadget_cross_viol"),
                     b.stat("gadget_cross_viol"));
        const ContractViolation xa = first(a, "gadget_first_cross");
        cell.firstCrossTenantViolation =
            xa.valid() ? xa : first(b, "gadget_first_cross");
        cell.contextSwitches =
            std::max(a.stat("gadget_context_switches"),
                     b.stat("gadget_context_switches"));
        cell.crossDomain = gadgetIsCrossDomain(kind_a);
        cell.expectClosed =
            cell.crossDomain
            && cell.judgedPolicy == ContractPolicy::None
            && a.stat("gadget_flush_on_switch") != 0;
        matrix.cells.push_back(std::move(cell));
    }
    return matrix;
}

Json
toJson(const VerifyMatrix &matrix)
{
    Json doc = Json::object();
    doc.set("schema", Json::num(std::uint64_t(3)));
    doc.set("ok", Json::boolean(matrix.ok()));
    doc.set("secret_a", Json::num(std::uint64_t(verifySecretA)));
    doc.set("secret_b", Json::num(std::uint64_t(verifySecretB)));
    Json cells = Json::array();
    for (const VerifyCell &cell : matrix.cells) {
        Json c = Json::object();
        c.set("gadget", Json::str(cell.gadget));
        c.set("scheme", Json::str(schemeName(cell.scheme)));
        c.set("core", Json::str(cell.core));
        c.set("contract",
              Json::str(contractPolicyName(cell.contract.policy)));
        c.set("judged_contract",
              Json::str(contractPolicyName(cell.judgedPolicy)));
        c.set("obliges_transmitter_safety",
              Json::boolean(cell.contract.obligesTransmitterSafety));
        c.set("obliges_consume_safety",
              Json::boolean(cell.contract.obligesConsumeSafety));
        c.set("obliges_leak_freedom",
              Json::boolean(cell.contract.obligesLeakFreedom));
        c.set("leaked", Json::boolean(cell.leaked));
        c.set("armed", Json::boolean(cell.armed));
        c.set("diverged", Json::boolean(cell.diverged));
        c.set("transmit_violations", Json::num(cell.transmitViolations));
        c.set("consume_violations", Json::num(cell.consumeViolations));
        c.set("timing_byte_a",
              Json::num(std::uint64_t(cell.timingByteA + 1)));
        c.set("timing_byte_b",
              Json::num(std::uint64_t(cell.timingByteB + 1)));
        c.set("cycles_a", Json::num(cell.cyclesA));
        c.set("cycles_b", Json::num(cell.cyclesB));
        c.set("sandbox_violations", Json::num(cell.sandboxViolations));
        c.set("ct_violations", Json::num(cell.ctViolations));
        auto record = [](const ContractViolation &v) {
            Json j = Json::object();
            j.set("valid", Json::boolean(v.valid()));
            j.set("cycle", Json::num(v.valid() ? v.cycle : 0));
            j.set("seq", Json::num(v.valid() ? v.seq : 0));
            j.set("pc", Json::num(std::uint64_t(v.valid() ? v.pc : 0)));
            return j;
        };
        c.set("first_sandbox_violation",
              record(cell.firstSandboxViolation));
        c.set("first_ct_violation", record(cell.firstCtViolation));
        c.set("cross_tenant_violations",
              Json::num(cell.crossTenantViolations));
        c.set("first_cross_tenant_violation",
              record(cell.firstCrossTenantViolation));
        c.set("context_switches", Json::num(cell.contextSwitches));
        c.set("cross_domain", Json::boolean(cell.crossDomain));
        c.set("expect_closed", Json::boolean(cell.expectClosed));
        c.set("cross_tenant_leak",
              Json::boolean(cell.crossDomain && cell.leaked));
        c.set("pass", Json::boolean(cell.pass()));
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

void
printVerifyMatrix(const VerifyMatrix &matrix, std::FILE *out)
{
    std::fprintf(out, "=== Security: Spectre gadget battery + "
                      "differential leakage check ===\n\n");
    TextTable t;
    t.header({"gadget", "scheme", "core", "contract", "leaked",
              "diverged", "t-viol", "c-viol", "sbx-viol", "ct-viol",
              "x-tenant", "first-viol", "verdict"});
    for (const VerifyCell &cell : matrix.cells) {
        // The pinpointed repro: the sandboxing record when the judged
        // contract has one, else the constant-time record (what the
        // baseline's leak verdict rests on).
        const ContractViolation &first =
            cell.firstSandboxViolation.valid()
                ? cell.firstSandboxViolation
                : cell.firstCtViolation;
        const std::string repro =
            first.valid() ? "c" + std::to_string(first.cycle) + "@pc"
                                + std::to_string(first.pc)
                          : "-";
        std::string contract = contractPolicyName(cell.contract.policy);
        if (cell.judgedPolicy != cell.contract.policy) {
            contract += "->";
            contract += contractPolicyName(cell.judgedPolicy);
        }
        // Cross-domain cells report the tenant-boundary verdict: did
        // the observing tenant recover another tenant's secret?
        const std::string xtenant =
            !cell.crossDomain ? "-" : (cell.leaked ? "LEAK" : "closed");
        t.row({cell.gadget, schemeName(cell.scheme), cell.core,
               contract, cell.leaked ? "yes" : "no",
               cell.diverged ? "yes" : "no",
               std::to_string(cell.transmitViolations),
               std::to_string(cell.consumeViolations),
               std::to_string(cell.sandboxViolations),
               std::to_string(cell.ctViolations), xtenant, repro,
               cell.pass() ? "pass" : "FAIL"});
    }
    std::fprintf(out, "%s\n", t.render().c_str());
    std::fprintf(out,
                 "Declared contracts must show leaked=no diverged=no "
                 "and zero sandboxing shadow violations, plus clean\n"
                 "monitor obligations for the dataflow policies "
                 "(transmitter-safe/consume-safe; sandboxing is the\n"
                 "purely observational contract, e.g. DoM). The unsafe "
                 "baseline must leak on every gadget (proof the\n"
                 "battery is armed), with the shadow engine "
                 "pinpointing the first out-of-contract transmit.\n");
    std::fprintf(out, "verdict: %s\n",
                 matrix.ok() ? "PASS" : "FAIL");
}

void
registerSecurityScenarios(ScenarioRegistry &registry)
{
    Scenario s;
    s.name = "security";
    s.title = "Security: Spectre gadget battery + differential "
              "leakage check (leak matrix)";
    s.specs = [] {
        std::vector<RunSpec> specs =
            verifyBatterySpecs(CoreConfig::mega(),
                               allSchemeConfigs());
        // The cross-domain gadgets again, unprotected, on the same
        // core with the flush-predictors-on-switch policy: the fold
        // flips those cells to expect-closed, proving the software-
        // visible context-switch hygiene alone severs the channel.
        SchemeConfig baseline;
        for (GadgetKind kind : {GadgetKind::SpectreV2CrossDomain,
                                GadgetKind::SpectreV1Swapgs}) {
            for (std::uint8_t secret : {verifySecretA,
                                        verifySecretB}) {
                RunSpec spec;
                spec.core = CoreConfig::megaFlush();
                spec.scheme = baseline;
                spec.workload = gadgetWorkloadName(kind, secret,
                                                   verifyGadgetSeed);
                spec.warmupInsts = 0;
                spec.measureInsts = 0;
                specs.push_back(std::move(spec));
            }
        }
        return specs;
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        printVerifyMatrix(foldVerifyOutcomes(outcomes), out);
    };
    registry.add(std::move(s));
}

// --- Software-mitigation co-study ---------------------------------------

bool
mitigationCloses(Mitigation m, GadgetKind gadget)
{
    switch (m) {
      case Mitigation::None:
        return false;
      case Mitigation::Slh:
      case Mitigation::Fence:
        // Conditional-branch instrumentation: the swapgs variant's
        // transient entry is a trained conditional branch, so both
        // passes sever it exactly like the bounds-check bypasses.
        return gadget == GadgetKind::SpectreV1
               || gadget == GadgetKind::SpectreV1Mask
               || gadget == GadgetKind::SpectreV1Swapgs;
      case Mitigation::Retpoline:
        // Both v2s enter through a BTB-predicted indirect; the
        // lowering starves the BTB whether the poisoning tenant is
        // the victim itself or a neighbour across a context switch.
        return gadget == GadgetKind::SpectreV2Indirect
               || gadget == GadgetKind::SpectreV2CrossDomain;
    }
    return false;
}

bool
MitigationCell::pass() const
{
    if (policy == ContractPolicy::None)
        return target ? closed : armed;
    return schemePass;
}

std::vector<RunSpec>
mitigationBatterySpecs(const CoreConfig &core,
                       const std::vector<SchemeConfig> &schemes,
                       Mitigation m)
{
    std::vector<RunSpec> specs = verifyBatterySpecs(core, schemes);
    const std::size_t half = specs.size();
    for (std::size_t i = 0; i < half; ++i) {
        RunSpec s = specs[i];
        s.mitigation.kind = m;
        specs.push_back(std::move(s));
    }
    return specs;
}

MitigationReport
foldMitigationOutcomes(Mitigation m,
                       const std::vector<RunOutcome> &outcomes)
{
    sb_assert(outcomes.size() % 2 == 0,
              "mitigation battery outcomes must split into matching "
              "unmitigated/mitigated halves");
    const std::size_t half = outcomes.size() / 2;
    const VerifyMatrix base = foldVerifyOutcomes(
        {outcomes.begin(), outcomes.begin() + half});
    const VerifyMatrix mit = foldVerifyOutcomes(
        {outcomes.begin() + half, outcomes.end()});
    sb_assert(base.cells.size() == mit.cells.size(),
              "mitigation fold halves disagree");

    MitigationReport report;
    report.mitigation = m;
    for (std::size_t i = 0; i < base.cells.size(); ++i) {
        const VerifyCell &b = base.cells[i];
        const VerifyCell &v = mit.cells[i];
        sb_assert(b.gadget == v.gadget && b.scheme == v.scheme,
                  "mitigation fold pair mismatch: ", b.gadget, " vs ",
                  v.gadget);
        GadgetKind kind;
        sb_assert(gadgetFromName(v.gadget, kind),
                  "unknown gadget in fold: ", v.gadget);

        MitigationCell cell;
        cell.gadget = v.gadget;
        cell.scheme = v.scheme;
        cell.policy = v.contract.policy;
        cell.target = cell.policy == ContractPolicy::None
                      && mitigationCloses(m, kind);
        cell.closed = !v.leaked && !v.firstCtViolation.valid();
        cell.armed = v.armed;
        cell.schemePass = v.pass();
        cell.cyclesBase = b.cyclesA;
        cell.cyclesMitigated = v.cyclesA;
        cell.overhead =
            b.cyclesA == 0 ? 0.0
                           : static_cast<double>(v.cyclesA)
                                 / static_cast<double>(b.cyclesA);
        report.cells.push_back(std::move(cell));
    }
    return report;
}

Json
toJson(const MitigationReport &report)
{
    Json doc = Json::object();
    doc.set("schema", Json::num(std::uint64_t(1)));
    doc.set("mitigation",
            Json::str(mitigationName(report.mitigation)));
    doc.set("ok", Json::boolean(report.ok()));
    Json cells = Json::array();
    for (const MitigationCell &cell : report.cells) {
        Json c = Json::object();
        c.set("gadget", Json::str(cell.gadget));
        c.set("scheme", Json::str(schemeName(cell.scheme)));
        c.set("contract", Json::str(contractPolicyName(cell.policy)));
        c.set("target", Json::boolean(cell.target));
        c.set("closed", Json::boolean(cell.closed));
        c.set("armed", Json::boolean(cell.armed));
        c.set("scheme_pass", Json::boolean(cell.schemePass));
        c.set("cycles_base", Json::num(cell.cyclesBase));
        c.set("cycles_mitigated", Json::num(cell.cyclesMitigated));
        c.set("overhead_pct",
              Json::num(std::uint64_t(cell.overhead * 100.0 + 0.5)));
        c.set("pass", Json::boolean(cell.pass()));
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

void
printMitigationReport(const MitigationReport &report, std::FILE *out)
{
    std::fprintf(out,
                 "=== Software mitigation co-study: %s over the "
                 "gadget battery ===\n\n",
                 mitigationName(report.mitigation));
    TextTable t;
    t.header({"gadget", "scheme", "contract", "target", "closed",
              "armed", "cycles", "overhead", "verdict"});
    for (const MitigationCell &cell : report.cells) {
        char overhead[32];
        std::snprintf(overhead, sizeof(overhead), "%.2fx",
                      cell.overhead);
        t.row({cell.gadget, schemeName(cell.scheme),
               contractPolicyName(cell.policy),
               cell.target ? "yes" : "no",
               cell.closed ? "yes" : "no", cell.armed ? "yes" : "no",
               std::to_string(cell.cyclesMitigated), overhead,
               cell.pass() ? "pass" : "FAIL"});
    }
    std::fprintf(out, "%s\n", t.render().c_str());
    std::fprintf(out,
                 "On the unprotected core the mitigation must close "
                 "exactly its target gadgets (closed = no recovery and\n"
                 "no pinpointed contract violation) and leave the "
                 "others demonstrably armed; under a declared hardware\n"
                 "scheme the combination is redundant and must still "
                 "pass the scheme's own contract. Overhead is the\n"
                 "mitigated/unmitigated cycle ratio of the same "
                 "gadget cell.\n");
    std::fprintf(out, "verdict: %s\n", report.ok() ? "PASS" : "FAIL");
}

namespace
{

/** Kernel-suite slice the grid sweeps (one per character class). */
const std::vector<std::string> &
mitigationKernelSlice()
{
    static const std::vector<std::string> kernels = {
        "502.gcc",    "505.mcf",  "525.x264",
        "531.deepsjeng", "541.leela", "557.xz",
    };
    return kernels;
}

std::vector<RunSpec>
mitigationGridSpecs()
{
    std::vector<RunSpec> specs;
    for (Mitigation m : allMitigations()) {
        // Battery block: closure under every scheme.
        for (RunSpec &s : verifyBatterySpecs(CoreConfig::mega(),
                                             allSchemeConfigs())) {
            s.mitigation.kind = m;
            specs.push_back(std::move(s));
        }
        // Kernel block: what the mitigation costs real workloads.
        for (const SchemeConfig &scheme : allSchemeConfigs()) {
            for (const std::string &name : mitigationKernelSlice()) {
                RunSpec s;
                s.core = CoreConfig::mega();
                s.scheme = scheme;
                s.workload = name;
                s.mitigation.kind = m;
                specs.push_back(std::move(s));
            }
        }
    }
    return specs;
}

void
mitigationGridReport(const std::vector<RunOutcome> &outcomes,
                     std::FILE *out)
{
    const std::size_t schemes = allSchemeConfigs().size();
    const std::size_t battery = allGadgets().size() * 2 * schemes;
    const std::size_t kernels =
        mitigationKernelSlice().size() * schemes;
    const std::size_t block = battery + kernels;
    sb_assert(outcomes.size() == block * allMitigations().size(),
              "mitigation grid outcome count mismatch");

    // Block 0 is Mitigation::None: the overhead baseline, and the
    // unmitigated half of each closure fold.
    std::fprintf(out, "=== Mitigation grid: (software mitigation x "
                      "hardware scheme) co-study ===\n\n");
    const std::vector<Mitigation> &roster = allMitigations();
    for (std::size_t mi = 1; mi < roster.size(); ++mi) {
        std::vector<RunOutcome> fold;
        fold.insert(fold.end(), outcomes.begin(),
                    outcomes.begin() + battery);
        fold.insert(fold.end(), outcomes.begin() + mi * block,
                    outcomes.begin() + mi * block + battery);
        printMitigationReport(foldMitigationOutcomes(roster[mi], fold),
                              out);
        std::fprintf(out, "\n");
    }

    // Kernel overhead: per (mitigation, scheme) geomean over the
    // kernel slice, relative to the unmitigated same-scheme cell.
    TextTable t;
    std::vector<std::string> header = {"scheme"};
    for (std::size_t mi = 1; mi < roster.size(); ++mi)
        header.push_back(mitigationName(roster[mi]));
    t.header(header);
    const std::vector<SchemeConfig> &scheme_list = allSchemeConfigs();
    const std::size_t per_scheme = mitigationKernelSlice().size();
    for (std::size_t si = 0; si < scheme_list.size(); ++si) {
        std::vector<std::string> row = {
            schemeName(scheme_list[si].scheme)};
        for (std::size_t mi = 1; mi < roster.size(); ++mi) {
            double log_sum = 0.0;
            unsigned n = 0;
            for (std::size_t ki = 0; ki < per_scheme; ++ki) {
                const std::size_t at = battery + si * per_scheme + ki;
                const RunOutcome &base = outcomes[at];
                const RunOutcome &mit = outcomes[mi * block + at];
                // Windows are counted in *committed* instructions, and
                // a transform pads the stream with glue — so compare
                // cycles per unit of original-program work: the
                // mitigated cell's origin-mapped commit count against
                // the unmitigated cell's full count.
                const std::uint64_t mit_useful =
                    mit.stat("useful_instructions");
                if (base.cycles == 0 || mit.cycles == 0
                    || base.instructions == 0 || mit_useful == 0)
                    continue;
                const double base_cpi =
                    static_cast<double>(base.cycles)
                    / static_cast<double>(base.instructions);
                const double mit_cpi =
                    static_cast<double>(mit.cycles)
                    / static_cast<double>(mit_useful);
                log_sum += std::log(mit_cpi / base_cpi);
                ++n;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2fx",
                          n ? std::exp(log_sum / n) : 0.0);
            row.push_back(buf);
        }
        t.row(row);
    }
    std::fprintf(out, "Kernel-suite slowdown (geomean over %zu "
                      "kernels, mega core, vs the same scheme "
                      "unmitigated):\n%s\n",
                 per_scheme, t.render().c_str());
}

} // anonymous namespace

void
registerMitigationScenarios(ScenarioRegistry &registry)
{
    Scenario s;
    s.name = "mitigation_grid";
    s.title = "Software-mitigation co-study: (slh|fence|retpoline) x "
              "schemes over the gadget battery + kernel slice";
    s.specs = mitigationGridSpecs;
    s.report = mitigationGridReport;
    registry.add(std::move(s));
}

} // namespace sb
