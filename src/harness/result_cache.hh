/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * One JSONL file (`<dir>/results.jsonl`) holds one line per simulated
 * cell: `{"key": "<RunSpec::specKey()>", "outcome": {...}}` with the
 * outcome in toJson(RunOutcome) form. The file is append-only: new
 * results are flushed line-by-line as they complete, so an
 * interrupted grid run keeps everything it already simulated, and a
 * later line for the same key wins on load (last-writer-wins). Each
 * line is appended with a single O_APPEND write so concurrent
 * processes sharing a cache directory cannot interleave partial
 * lines. Malformed or unrecognizable lines (a truncated tail from a
 * killed writer, editor garbage) are skipped with a warning and the
 * file is compacted — rewritten from the entries that parsed — so
 * damage is shed once instead of resurfacing on every load. A stale
 * cache can only cause extra simulation, never wrong results.
 */

#ifndef SB_HARNESS_RESULT_CACHE_HH
#define SB_HARNESS_RESULT_CACHE_HH

#include <map>
#include <mutex>
#include <string>

#include "harness/experiment.hh"

namespace sb
{

class ResultCache
{
  public:
    /**
     * Create @p dir if needed and load any existing results.jsonl.
     * An unusable directory or file leaves the cache disabled (see
     * ok()) with a warning rather than aborting.
     */
    explicit ResultCache(const std::string &dir);
    ~ResultCache();

    /** False when the backing file could not be opened for append. */
    bool ok() const { return appendFd >= 0; }

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Fetch the outcome cached under @p key, if any. */
    bool lookup(const std::string &key, RunOutcome &out) const;

    /**
     * Persist @p out under @p key (thread-safe, flushed per line).
     * A no-op beyond the in-memory map when !ok().
     */
    void store(const std::string &key, const RunOutcome &out);

    /** Number of distinct keys currently cached. */
    std::size_t size() const;

    /** Path of the backing JSONL file. */
    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    int appendFd = -1;
    mutable std::mutex mutex;
    std::map<std::string, RunOutcome> entries;
};

} // namespace sb

#endif // SB_HARNESS_RESULT_CACHE_HH
