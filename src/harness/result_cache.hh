/**
 * @file
 * Content-addressed on-disk result cache, safe for concurrent
 * multi-process use (shard workers, parallel CI jobs).
 *
 * One JSONL file (`<dir>/results.jsonl`) holds one line per simulated
 * cell. Each line is a length+checksum-framed record:
 *
 *   {"len":N,"sum":"<16-hex fnv1a64>","rec":{"key":K,"outcome":O}}
 *
 * where N is the byte length of the serialized `rec` object exactly
 * as written and the checksum covers those same bytes. On load a
 * record is accepted only when the length matches and the payload
 * bytes hash to the checksum, so a torn tail (killed writer), a
 * spliced line, or bit rot degrades to a skipped record — never a
 * wrong result. Legacy frameless lines ({"key":...,"outcome":...})
 * are still readable and are rewritten in framed form by the next
 * compaction.
 *
 * Concurrency protocol (N processes sharing one cache directory):
 *  - every append opens the data file fresh (O_APPEND) and writes the
 *    whole line with a single write() under a shared flock on a
 *    side lock file (`results.lock`);
 *  - compaction (shedding damaged or superseded lines) takes the lock
 *    exclusively around snapshot + write-temp + rename, so no append
 *    can slip between the snapshot and the rename and be lost with
 *    the old inode.
 * The lock file is never renamed, so its inode — and therefore the
 * flock — is stable; re-opening the data file per append means a
 * writer can never append to a stale pre-compaction inode. The file
 * is append-only between compactions and a later line for the same
 * key wins on load (last-writer-wins), so double stores of identical
 * content are harmless. A stale or damaged cache can only cause
 * extra simulation, never wrong results.
 */

#ifndef SB_HARNESS_RESULT_CACHE_HH
#define SB_HARNESS_RESULT_CACHE_HH

#include <map>
#include <mutex>
#include <string>

#include "harness/experiment.hh"

namespace sb
{

/** Serialize one framed cache record (exposed for tests). */
std::string frameCacheRecord(const std::string &key,
                             const RunOutcome &outcome);

/**
 * Parse one cache line into (@p key, @p out). Accepts framed records
 * whose length and checksum verify, plus legacy frameless lines
 * (@p legacy is set so callers can trigger a migrating compaction).
 * Returns false on damage of any kind.
 */
bool parseCacheLine(const std::string &line, std::string &key,
                    RunOutcome &out, bool &legacy);

class ResultCache
{
  public:
    /**
     * Create @p dir if needed and load any existing results.jsonl.
     * An unusable directory leaves the cache disabled (see ok())
     * with a warning rather than aborting.
     */
    explicit ResultCache(const std::string &dir);
    ~ResultCache();

    /** False when the cache directory / lock file is unusable. */
    bool ok() const { return lockFd >= 0; }

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Fetch the outcome cached under @p key, if any. */
    bool lookup(const std::string &key, RunOutcome &out) const;

    /**
     * Persist @p out under @p key (thread-safe; one flock-guarded
     * write() per record, durable as soon as store returns). A no-op
     * beyond the in-memory map when !ok().
     */
    void store(const std::string &key, const RunOutcome &out);

    /** Number of distinct keys currently cached. */
    std::size_t size() const;

    /** Records skipped as damaged during load (telemetry/tests). */
    std::size_t damagedOnLoad() const { return damaged; }

    /** Path of the backing JSONL file. */
    const std::string &path() const { return filePath; }

  private:
    void loadAndRepair();

    std::string filePath;
    std::string lockPath;
    int lockFd = -1;
    mutable std::mutex mutex;
    std::map<std::string, RunOutcome> entries;
    std::size_t damaged = 0;
};

} // namespace sb

#endif // SB_HARNESS_RESULT_CACHE_HH
