#include "harness/protocol.hh"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "harness/reporting.hh"

namespace sb
{

namespace
{

void
encodeLen(std::uint32_t len, char out[4])
{
    out[0] = static_cast<char>(len & 0xff);
    out[1] = static_cast<char>((len >> 8) & 0xff);
    out[2] = static_cast<char>((len >> 16) & 0xff);
    out[3] = static_cast<char>((len >> 24) & 0xff);
}

std::uint32_t
decodeLen(const char *in)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0]))
           | static_cast<std::uint32_t>(static_cast<unsigned char>(in[1]))
                 << 8
           | static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
                 << 16
           | static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]))
                 << 24;
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

// Typed field extraction: strict (missing or mistyped fields fail the
// whole message) because both ends run the same binary — any mismatch
// means a corrupt stream or a version skew, and silence would turn it
// into a wrong simulation.
bool
getUnsigned(const Json &json, const char *key, unsigned &out)
{
    if (!json.has(key) || json.at(key).kind() != Json::Kind::Uint)
        return false;
    out = static_cast<unsigned>(json.at(key).asUint());
    return true;
}

bool
getU64(const Json &json, const char *key, std::uint64_t &out)
{
    if (!json.has(key) || json.at(key).kind() != Json::Kind::Uint)
        return false;
    out = json.at(key).asUint();
    return true;
}

bool
getBool(const Json &json, const char *key, bool &out)
{
    if (!json.has(key) || json.at(key).kind() != Json::Kind::Bool)
        return false;
    out = json.at(key).asBool();
    return true;
}

bool
getString(const Json &json, const char *key, std::string &out)
{
    if (!json.has(key) || json.at(key).kind() != Json::Kind::String)
        return false;
    out = json.at(key).asString();
    return true;
}

} // anonymous namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        return false;
    char header[4];
    encodeLen(static_cast<std::uint32_t>(payload.size()), header);
    // One buffer, one stream: a short write interleaving with another
    // writer is not a concern (each stream has exactly one writer),
    // but coalescing saves a syscall per frame.
    std::string frame;
    frame.reserve(payload.size() + 4);
    frame.append(header, 4);
    frame += payload;
    return writeAll(fd, frame.data(), frame.size());
}

RecvStatus
readFrame(int fd, std::string &payload, int timeoutMs)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        timeoutMs < 0 ? Clock::time_point::max()
                      : Clock::now() + std::chrono::milliseconds(timeoutMs);

    FrameReader reader;
    char chunk[4096];
    while (true) {
        if (reader.next(payload))
            return RecvStatus::Ok;
        if (reader.corrupt())
            return RecvStatus::Error;

        int waitMs = -1;
        if (timeoutMs >= 0) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - Clock::now());
            if (left.count() <= 0)
                return RecvStatus::Timeout;
            waitMs = static_cast<int>(left.count());
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, waitMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Error;
        }
        if (ready == 0)
            return RecvStatus::Timeout;

        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Error;
        }
        if (n == 0)
            return RecvStatus::Closed;
        reader.feed(chunk, static_cast<std::size_t>(n));
    }
}

bool
FrameReader::next(std::string &payload)
{
    if (corruptFlag || buf.size() < 4)
        return false;
    const std::uint32_t len = decodeLen(buf.data());
    if (len > maxFrameBytes) {
        corruptFlag = true;
        return false;
    }
    if (buf.size() < 4u + len)
        return false;
    payload.assign(buf, 4, len);
    buf.erase(0, 4u + len);
    return true;
}

// --- Spec serialization -------------------------------------------------

Json
toJson(const CacheConfig &config)
{
    Json j = Json::object();
    j.set("size", Json::num(std::uint64_t(config.sizeBytes)));
    j.set("assoc", Json::num(std::uint64_t(config.assoc)));
    j.set("line", Json::num(std::uint64_t(config.lineBytes)));
    j.set("lat", Json::num(std::uint64_t(config.latency)));
    j.set("mshrs", Json::num(std::uint64_t(config.mshrs)));
    j.set("pf", Json::boolean(config.stridePrefetcher));
    j.set("pfdeg", Json::num(std::uint64_t(config.prefetchDegree)));
    return j;
}

bool
cacheConfigFromJson(const Json &json, CacheConfig &out)
{
    if (!json.isObject())
        return false;
    CacheConfig c;
    if (!getUnsigned(json, "size", c.sizeBytes)
        || !getUnsigned(json, "assoc", c.assoc)
        || !getUnsigned(json, "line", c.lineBytes)
        || !getUnsigned(json, "lat", c.latency)
        || !getUnsigned(json, "mshrs", c.mshrs)
        || !getBool(json, "pf", c.stridePrefetcher)
        || !getUnsigned(json, "pfdeg", c.prefetchDegree))
        return false;
    out = c;
    return true;
}

Json
toJson(const CoreConfig &config)
{
    Json j = Json::object();
    j.set("name", Json::str(config.name));
    j.set("fw", Json::num(std::uint64_t(config.fetchWidth)));
    j.set("fbuf", Json::num(std::uint64_t(config.fetchBufferEntries)));
    j.set("cw", Json::num(std::uint64_t(config.coreWidth)));
    j.set("iw", Json::num(std::uint64_t(config.issueWidth)));
    j.set("memp", Json::num(std::uint64_t(config.memPorts)));
    j.set("fpp", Json::num(std::uint64_t(config.fpPorts)));
    j.set("rob", Json::num(std::uint64_t(config.robEntries)));
    j.set("iq", Json::num(std::uint64_t(config.iqEntries)));
    j.set("ldq", Json::num(std::uint64_t(config.ldqEntries)));
    j.set("stq", Json::num(std::uint64_t(config.stqEntries)));
    j.set("pregs", Json::num(std::uint64_t(config.numPhysRegs)));
    j.set("br", Json::num(std::uint64_t(config.maxBranches)));
    j.set("alu", Json::num(std::uint64_t(config.aluLatency)));
    j.set("mul", Json::num(std::uint64_t(config.mulLatency)));
    j.set("div", Json::num(std::uint64_t(config.divLatency)));
    j.set("fp", Json::num(std::uint64_t(config.fpLatency)));
    j.set("fpdiv", Json::num(std::uint64_t(config.fpDivLatency)));
    j.set("brlat",
          Json::num(std::uint64_t(config.branchResolveLatency)));
    j.set("l1d", toJson(config.l1d));
    j.set("l2", toJson(config.l2));
    j.set("mem", Json::num(std::uint64_t(config.memLatency)));
    j.set("specsched", Json::boolean(config.speculativeScheduling));
    j.set("festages", Json::num(std::uint64_t(config.frontendStages)));
    j.set("swflush", Json::boolean(config.flushPredictorsOnSwitch));
    j.set("swpen",
          Json::num(std::uint64_t(config.contextSwitchPenalty)));
    return j;
}

bool
coreConfigFromJson(const Json &json, CoreConfig &out)
{
    if (!json.isObject())
        return false;
    CoreConfig c;
    if (!getString(json, "name", c.name)
        || !getUnsigned(json, "fw", c.fetchWidth)
        || !getUnsigned(json, "fbuf", c.fetchBufferEntries)
        || !getUnsigned(json, "cw", c.coreWidth)
        || !getUnsigned(json, "iw", c.issueWidth)
        || !getUnsigned(json, "memp", c.memPorts)
        || !getUnsigned(json, "fpp", c.fpPorts)
        || !getUnsigned(json, "rob", c.robEntries)
        || !getUnsigned(json, "iq", c.iqEntries)
        || !getUnsigned(json, "ldq", c.ldqEntries)
        || !getUnsigned(json, "stq", c.stqEntries)
        || !getUnsigned(json, "pregs", c.numPhysRegs)
        || !getUnsigned(json, "br", c.maxBranches)
        || !getUnsigned(json, "alu", c.aluLatency)
        || !getUnsigned(json, "mul", c.mulLatency)
        || !getUnsigned(json, "div", c.divLatency)
        || !getUnsigned(json, "fp", c.fpLatency)
        || !getUnsigned(json, "fpdiv", c.fpDivLatency)
        || !getUnsigned(json, "brlat", c.branchResolveLatency)
        || !json.has("l1d") || !cacheConfigFromJson(json.at("l1d"), c.l1d)
        || !json.has("l2") || !cacheConfigFromJson(json.at("l2"), c.l2)
        || !getUnsigned(json, "mem", c.memLatency)
        || !getBool(json, "specsched", c.speculativeScheduling)
        || !getUnsigned(json, "festages", c.frontendStages)
        || !getBool(json, "swflush", c.flushPredictorsOnSwitch)
        || !getUnsigned(json, "swpen", c.contextSwitchPenalty))
        return false;
    out = c;
    return true;
}

Json
toJson(const SchemeConfig &config)
{
    Json j = Json::object();
    j.set("scheme", Json::str(schemeName(config.scheme)));
    j.set("2taint", Json::boolean(config.twoTaintStores));
    j.set("ndaspec",
          Json::boolean(config.ndaKeepSpeculativeScheduling));
    return j;
}

bool
schemeConfigFromJson(const Json &json, SchemeConfig &out)
{
    if (!json.isObject())
        return false;
    SchemeConfig c;
    std::string name;
    if (!getString(json, "scheme", name)
        || !schemeFromName(name, c.scheme)
        || !getBool(json, "2taint", c.twoTaintStores)
        || !getBool(json, "ndaspec", c.ndaKeepSpeculativeScheduling))
        return false;
    out = c;
    return true;
}

Json
toJson(const RunSpec &spec)
{
    Json j = Json::object();
    j.set("core", toJson(spec.core));
    j.set("scheme", toJson(spec.scheme));
    j.set("workload", Json::str(spec.workload));
    j.set("mitigation", Json::str(mitigationName(spec.mitigation.kind)));
    j.set("warmup", Json::num(spec.warmupInsts));
    j.set("measure", Json::num(spec.measureInsts));
    j.set("maxcycles", Json::num(spec.maxCycles));
    return j;
}

bool
runSpecFromJson(const Json &json, RunSpec &out)
{
    if (!json.isObject())
        return false;
    RunSpec s;
    std::string mitigation;
    if (!json.has("core") || !coreConfigFromJson(json.at("core"), s.core)
        || !json.has("scheme")
        || !schemeConfigFromJson(json.at("scheme"), s.scheme)
        || !getString(json, "workload", s.workload)
        || !getString(json, "mitigation", mitigation)
        || !mitigationFromName(mitigation, s.mitigation.kind)
        || !getU64(json, "warmup", s.warmupInsts)
        || !getU64(json, "measure", s.measureInsts)
        || !getU64(json, "maxcycles", s.maxCycles))
        return false;
    out = s;
    return true;
}

// --- Messages -----------------------------------------------------------

Json
makeHelloMsg()
{
    Json j = Json::object();
    j.set("cmd", Json::str("hello"));
    j.set("pid", Json::num(std::uint64_t(::getpid())));
    j.set("proto", Json::num(std::uint64_t(shardProtocolVersion)));
    return j;
}

Json
makeRunCmd(std::uint64_t id, const std::string &key,
           const RunSpec &spec, std::uint64_t timeoutMs)
{
    Json j = Json::object();
    j.set("cmd", Json::str("run"));
    j.set("id", Json::num(id));
    j.set("key", Json::str(key));
    j.set("timeout_ms", Json::num(timeoutMs));
    j.set("spec", toJson(spec));
    return j;
}

Json
makeDoneMsg(std::uint64_t id, const RunOutcome &outcome, bool cached)
{
    Json j = Json::object();
    j.set("cmd", Json::str("done"));
    j.set("id", Json::num(id));
    j.set("cached", Json::boolean(cached));
    j.set("outcome", toJson(outcome));
    return j;
}

Json
makeShutdownCmd()
{
    Json j = Json::object();
    j.set("cmd", Json::str("shutdown"));
    return j;
}

std::string
messageCmd(const Json &msg)
{
    if (!msg.isObject() || !msg.has("cmd")
        || msg.at("cmd").kind() != Json::Kind::String)
        return std::string();
    return msg.at("cmd").asString();
}

} // namespace sb
