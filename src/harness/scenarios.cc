/**
 * @file
 * The paper's evaluation grid as registered scenarios. Each
 * definition is the former body of the matching bench_* binary
 * (which is now a thin wrapper, see bench/): the specs() builders and
 * report() renderers are ported verbatim so per-cell numbers stay
 * bit-identical to the standalone targets, while the shared
 * ExperimentEngine dedups and caches the overlapping grid cells
 * across scenarios.
 */

#include "harness/scenario.hh"

#include <cstdio>
#include <map>

#include "common/table.hh"
#include "harness/reporting.hh"
#include "synth/area_model.hh"
#include "synth/power_model.hh"
#include "synth/timing_model.hh"
#include "trace/spec_suite.hh"

namespace sb
{

namespace
{

/** Baseline + the three evaluated schemes, in presentation order. */
std::vector<SchemeConfig>
fourSchemes()
{
    std::vector<SchemeConfig> schemes;
    for (Scheme s : {Scheme::Baseline, Scheme::SttRename,
                     Scheme::SttIssue, Scheme::Nda}) {
        SchemeConfig c;
        c.scheme = s;
        schemes.push_back(c);
    }
    return schemes;
}

// --- Table 1: configurations and baseline IPC --------------------------

Scenario
table1Scenario()
{
    Scenario s;
    s.name = "table1";
    s.title = "Table 1: BOOM configurations and baseline SPEC2017 IPC";
    s.specs = [] {
        SchemeConfig baseline;
        return suiteSpecs(CoreConfig::boomPresets(), {baseline});
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Table 1: BOOM configurations and "
                          "baseline SPEC2017 IPC ===\n\n");

        TextTable t;
        t.header({"", "Small", "Medium", "Large", "Mega", "Intel (ref)"});
        t.row({"Core Width", "1", "2", "3", "4", "6"});
        t.row({"Memory Ports", "1", "1", "1", "2", "3+2"});
        t.row({"ROB Entries", "32", "64", "96", "128", "512"});

        std::vector<std::string> ipc_row{"SPEC2017 IPC (measured)"};
        std::vector<std::string> paper_row{"SPEC2017 IPC (paper)"};
        for (const auto &cfg : CoreConfig::boomPresets()) {
            const auto agg =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            ipc_row.push_back(TextTable::num(agg.meanIpc, 3));
        }
        ipc_row.push_back("2.03");
        for (const char *v : {"0.46", "0.60", "0.943", "1.27", "2.03"})
            paper_row.push_back(v);
        t.row(ipc_row);
        t.row(paper_row);

        std::fprintf(out, "%s\n", t.render().c_str());
    };
    return s;
}

// --- Figure 1: normalized performance vs absolute IPC ------------------

Scenario
fig1Scenario()
{
    Scenario s;
    s.name = "fig1";
    s.title = "Figure 1: normalized performance (IPC x timing) vs "
              "absolute IPC";
    s.specs = [] {
        return suiteSpecs(CoreConfig::boomPresets(), fourSchemes(),
                          100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Figure 1: normalized performance "
                          "(IPC x timing) vs absolute IPC ===\n\n");

        const auto configs = CoreConfig::boomPresets();
        TextTable t;
        t.header({"config", "base IPC", "STT-Rename", "STT-Issue",
                  "NDA"});

        std::map<Scheme, std::vector<double>> xs, ys;
        for (const auto &cfg : configs) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            std::vector<std::string> row{
                cfg.name, TextTable::num(base.meanIpc, 3)};
            for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                              Scheme::Nda}) {
                const auto agg =
                    aggregate(filter(outcomes, cfg.name, sc));
                const double perf =
                    (agg.meanIpc / base.meanIpc)
                    * TimingModel::relativeFrequency(cfg, sc);
                xs[sc].push_back(base.meanIpc);
                ys[sc].push_back(perf);
                row.push_back(TextTable::num(perf, 3));
            }
            t.row(row);
        }
        t.row({"paper (Mega)", "1.27", "0.65", "0.73", "0.78"});
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Linear trends (performance vs absolute IPC) and "
                     "the Redwood Cove point (IPC %.2f):\n",
                     IntelReference::specIpc);
        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            const LinearFit fit = fitLine(xs[sc], ys[sc]);
            std::fprintf(out,
                         "  %-11s perf = %.3f %+.3f * IPC   -> linear "
                         "at Intel: %.3f, half-slope: %.3f\n",
                         schemeName(sc), fit.intercept, fit.slope,
                         fit.at(IntelReference::specIpc),
                         fit.atHalfSlope(IntelReference::specIpc,
                                         xs[sc].back(), ys[sc].back()));
        }

        std::fprintf(out, "\nFigure 1 scatter (x = absolute IPC, # at "
                          "relative performance):\n");
        for (std::size_t i = 0; i < configs.size(); ++i) {
            std::fprintf(out, "  IPC %.2f  STT-R |%-40s|\n",
                         xs[Scheme::SttRename][i],
                         bar(ys[Scheme::SttRename][i]).c_str());
            std::fprintf(out, "           STT-I |%-40s|\n",
                         bar(ys[Scheme::SttIssue][i]).c_str());
            std::fprintf(out, "           NDA   |%-40s|\n",
                         bar(ys[Scheme::Nda][i]).c_str());
        }
    };
    return s;
}

// --- Figure 6: per-benchmark IPC on Mega -------------------------------

Scenario
fig6Scenario()
{
    Scenario s;
    s.name = "fig6";
    s.title = "Figure 6: normalized IPC per benchmark on Mega BOOM";
    s.specs = [] {
        return suiteSpecs({CoreConfig::mega()}, fourSchemes());
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Figure 6: normalized IPC per benchmark, "
                          "Mega BOOM ===\n\n");

        const auto base =
            aggregate(filter(outcomes, "mega", Scheme::Baseline));
        const auto rename =
            aggregate(filter(outcomes, "mega", Scheme::SttRename));
        const auto issue =
            aggregate(filter(outcomes, "mega", Scheme::SttIssue));
        const auto nda =
            aggregate(filter(outcomes, "mega", Scheme::Nda));

        TextTable t;
        t.header({"benchmark", "base IPC", "STT-Rename", "STT-Issue",
                  "NDA"});
        for (const auto &name : SpecSuite::benchmarkNames()) {
            const double b = base.perBench.at(name);
            t.row({name, TextTable::num(b, 3),
                   TextTable::pct(rename.perBench.at(name) / b),
                   TextTable::pct(issue.perBench.at(name) / b),
                   TextTable::pct(nda.perBench.at(name) / b)});
        }
        t.row({"suite mean (SPEC method)",
               TextTable::num(base.meanIpc, 3),
               TextTable::pct(rename.meanIpc / base.meanIpc),
               TextTable::pct(issue.meanIpc / base.meanIpc),
               TextTable::pct(nda.meanIpc / base.meanIpc)});
        t.row({"paper suite mean", "1.27", "81.9%", "84.5%", "73.6%"});
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Figure 6 bars (normalized IPC, # = 2.5%%):\n");
        for (const auto &name : SpecSuite::benchmarkNames()) {
            const double b = base.perBench.at(name);
            std::fprintf(out, "  %-16s STT-R |%-40s|\n", name.c_str(),
                         bar(rename.perBench.at(name) / b).c_str());
            std::fprintf(out, "  %-16s STT-I |%-40s|\n", "",
                         bar(issue.perBench.at(name) / b).c_str());
            std::fprintf(out, "  %-16s NDA   |%-40s|\n", "",
                         bar(nda.perBench.at(name) / b).c_str());
        }
    };
    return s;
}

// --- Figure 7: per-benchmark IPC per configuration ---------------------

Scenario
fig7Scenario()
{
    Scenario s;
    s.name = "fig7";
    s.title = "Figure 7: normalized IPC per configuration";
    s.specs = [] {
        return suiteSpecs(CoreConfig::boomPresets(), fourSchemes(),
                          100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Figure 7: normalized IPC per "
                          "configuration ===\n");

        const auto configs = CoreConfig::boomPresets();
        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            std::fprintf(out, "\n--- Figure 7: %s ---\n",
                         schemeName(sc));
            TextTable t;
            t.header({"benchmark", "small", "medium", "large", "mega"});
            for (const auto &name : SpecSuite::benchmarkNames()) {
                std::vector<std::string> row{name};
                for (const auto &cfg : configs) {
                    const auto base = aggregate(
                        filter(outcomes, cfg.name, Scheme::Baseline));
                    const auto agg =
                        aggregate(filter(outcomes, cfg.name, sc));
                    row.push_back(
                        TextTable::pct(agg.perBench.at(name)
                                       / base.perBench.at(name)));
                }
                t.row(row);
            }
            std::vector<std::string> mean_row{"suite mean"};
            for (const auto &cfg : configs) {
                const auto base = aggregate(
                    filter(outcomes, cfg.name, Scheme::Baseline));
                const auto agg =
                    aggregate(filter(outcomes, cfg.name, sc));
                mean_row.push_back(
                    TextTable::pct(agg.meanIpc / base.meanIpc));
            }
            t.row(mean_row);
            std::fprintf(out, "%s", t.render().c_str());
        }

        std::fprintf(out,
                     "\nPaper suite-mean IPC losses for comparison "
                     "(Table 5): Medium 7.3/6.4/10.7%%, Large "
                     "11.3/10.0/18.6%%, Mega 17.6/15.8/22.4%% for "
                     "STT-Rename/STT-Issue/NDA.\n");
    };
    return s;
}

// --- Figure 8: relative IPC vs absolute IPC ----------------------------

Scenario
fig8Scenario()
{
    Scenario s;
    s.name = "fig8";
    s.title = "Figure 8: relative IPC vs absolute baseline IPC";
    s.specs = [] {
        return suiteSpecs(CoreConfig::boomPresets(), fourSchemes(),
                          100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Figure 8: relative IPC vs absolute "
                          "baseline IPC ===\n\n");

        TextTable t;
        t.header({"config", "abs IPC", "STT-Rename", "STT-Issue",
                  "NDA"});
        std::map<Scheme, std::vector<double>> xs, ys;
        for (const auto &cfg : CoreConfig::boomPresets()) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            std::vector<std::string> row{
                cfg.name, TextTable::num(base.meanIpc, 3)};
            for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                              Scheme::Nda}) {
                const auto agg =
                    aggregate(filter(outcomes, cfg.name, sc));
                const double rel = agg.meanIpc / base.meanIpc;
                xs[sc].push_back(base.meanIpc);
                ys[sc].push_back(rel);
                row.push_back(TextTable::pct(rel));
            }
            t.row(row);
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Linear trends and the Redwood Cove estimate "
                     "(IPC %.2f):\n",
                     IntelReference::specIpc);
        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            const LinearFit fit = fitLine(xs[sc], ys[sc]);
            const double at_intel = fit.at(IntelReference::specIpc);
            std::fprintf(out,
                         "  %-11s rel-IPC = %.3f %+.3f * IPC -> %.3f "
                         "at Intel (%.1f%% loss; paper predicts > "
                         "20%%)\n",
                         schemeName(sc), fit.intercept, fit.slope,
                         at_intel, (1.0 - at_intel) * 100.0);
        }

        std::fprintf(out,
                     "\nShape check: relative IPC must fall as "
                     "absolute IPC rises (negative slopes above).\n");
    };
    return s;
}

// --- Figure 9: synthesis frequency (model-only) ------------------------

Scenario
fig9Scenario()
{
    Scenario s;
    s.name = "fig9";
    s.title = "Figure 9: achieved synthesis frequency per "
              "configuration (model-only)";
    s.specs = [] { return std::vector<RunSpec>{}; };
    s.report = [](const std::vector<RunOutcome> &, std::FILE *out) {
        std::fprintf(out, "=== Figure 9: achieved frequency (MHz) per "
                          "configuration ===\n\n");

        const auto configs = CoreConfig::boomPresets();
        const Scheme schemes[] = {Scheme::Baseline, Scheme::SttRename,
                                  Scheme::SttIssue, Scheme::Nda};

        TextTable t;
        t.header({"scheme", "Small", "Medium", "Large", "Mega"});
        for (Scheme sc : schemes) {
            std::vector<std::string> row{schemeName(sc)};
            for (const auto &cfg : configs) {
                row.push_back(TextTable::num(
                    TimingModel::frequencyMhz(cfg, sc), 1));
            }
            t.row(row);
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        TextTable r;
        r.header({"scheme (relative)", "Small", "Medium", "Large",
                  "Mega", "paper Mega"});
        const char *paper[] = {"100%", "~79%", "~87%", "~100%"};
        int i = 0;
        for (Scheme sc : schemes) {
            std::vector<std::string> row{schemeName(sc)};
            for (const auto &cfg : configs) {
                row.push_back(TextTable::pct(
                    TimingModel::relativeFrequency(cfg, sc)));
            }
            row.push_back(paper[i++]);
            r.row(row);
        }
        std::fprintf(out, "%s\n", r.render().c_str());

        std::fprintf(out, "Critical-path breakdown (Mega, gate-depth "
                          "units):\n");
        for (Scheme sc : schemes) {
            const auto b = TimingModel::analyze(CoreConfig::mega(), sc);
            std::fprintf(out,
                         "  %-11s rename=%6.1f issue=%6.1f "
                         "bypass=%6.1f -> critical=%6.1f (%.1f MHz)\n",
                         schemeName(sc), b.renameStage, b.issueStage,
                         b.bypassNetwork, b.criticalPath,
                         b.frequencyMhz);
        }
    };
    return s;
}

// --- Figure 10: relative timing vs absolute IPC ------------------------

Scenario
fig10Scenario()
{
    Scenario s;
    s.name = "fig10";
    s.title = "Figure 10: relative synthesis timing vs absolute IPC";
    s.specs = [] {
        SchemeConfig baseline;
        return suiteSpecs(CoreConfig::boomPresets(), {baseline},
                          100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Figure 10: relative timing vs absolute "
                          "IPC ===\n\n");

        TextTable t;
        t.header({"config", "abs IPC", "STT-Rename", "STT-Issue",
                  "NDA"});
        std::map<Scheme, std::vector<double>> xs, ys;
        for (const auto &cfg : CoreConfig::boomPresets()) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            std::vector<std::string> row{
                cfg.name, TextTable::num(base.meanIpc, 3)};
            for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                              Scheme::Nda}) {
                const double rel =
                    TimingModel::relativeFrequency(cfg, sc);
                xs[sc].push_back(base.meanIpc);
                ys[sc].push_back(rel);
                row.push_back(TextTable::pct(rel));
            }
            t.row(row);
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            const LinearFit fit = fitLine(xs[sc], ys[sc]);
            std::fprintf(out, "  %-11s rel-timing = %.3f %+.3f * IPC\n",
                         schemeName(sc), fit.intercept, fit.slope);
        }
        std::fprintf(out,
                     "\nShape check: NDA ~flat at 1.0; STT-Rename "
                     "slope most negative (paper Sec. 8.3).\n");
    };
    return s;
}

// --- Table 3: normalized performance per configuration -----------------

Scenario
table3Scenario()
{
    Scenario s;
    s.name = "table3";
    s.title = "Table 3: normalized performance (IPC x timing) per "
              "configuration";
    s.specs = [] {
        return suiteSpecs(CoreConfig::boomPresets(), fourSchemes(),
                          100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Table 3: normalized performance per "
                          "configuration ===\n\n");

        const auto configs = CoreConfig::boomPresets();
        TextTable t;
        t.header({"scheme", "Small", "Medium", "Large", "Mega",
                  "Intel (half-slope)", "paper row"});
        const char *paper[] = {"0.98 0.93 0.84 0.65 | 0.53",
                               "0.98 0.86 0.81 0.73 | 0.62",
                               "1.01 0.88 0.80 0.78 | 0.66"};
        int pi = 0;
        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            std::vector<double> xs, ys;
            std::vector<std::string> row{schemeName(sc)};
            for (const auto &cfg : configs) {
                const auto base = aggregate(
                    filter(outcomes, cfg.name, Scheme::Baseline));
                const auto agg =
                    aggregate(filter(outcomes, cfg.name, sc));
                const double perf =
                    (agg.meanIpc / base.meanIpc)
                    * TimingModel::relativeFrequency(cfg, sc);
                xs.push_back(base.meanIpc);
                ys.push_back(perf);
                row.push_back(TextTable::num(perf, 2));
            }
            const LinearFit fit = fitLine(xs, ys);
            row.push_back(TextTable::num(
                fit.atHalfSlope(IntelReference::specIpc, xs.back(),
                                ys.back()),
                2));
            row.push_back(paper[pi++]);
            t.row(row);
        }
        std::fprintf(out, "%s\n", t.render().c_str());
        std::fprintf(out,
                     "Performance = (suite-mean IPC relative to "
                     "baseline) x (relative synthesis frequency).\n");
    };
    return s;
}

// --- Table 4: area and power (model-only) ------------------------------

Scenario
table4Scenario()
{
    Scenario s;
    s.name = "table4";
    s.title = "Table 4: area and power relative to baseline "
              "(model-only)";
    s.specs = [] { return std::vector<RunSpec>{}; };
    s.report = [](const std::vector<RunOutcome> &, std::FILE *out) {
        std::fprintf(out, "=== Table 4: area and power, normalised to "
                          "baseline (Mega) ===\n\n");

        const CoreConfig mega = CoreConfig::mega();

        TextTable t;
        t.header({"scheme", "LUTs", "FFs", "Power",
                  "paper (LUT/FF/P)"});
        const char *paper[] = {"1.060 / 1.094 / 1.008",
                               "1.059 / 1.039 / 1.026",
                               "0.980 / 1.027 / 0.936"};
        int i = 0;
        for (Scheme sc : {Scheme::SttRename, Scheme::SttIssue,
                          Scheme::Nda}) {
            const AreaEstimate rel = AreaModel::relative(mega, sc);
            t.row({schemeName(sc), TextTable::num(rel.luts, 3),
                   TextTable::num(rel.ffs, 3),
                   TextTable::num(PowerModel::relative(mega, sc), 3),
                   paper[i++]});
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out, "Absolute structure estimates (arbitrary "
                          "units):\n");
        for (Scheme sc : {Scheme::Baseline, Scheme::SttRename,
                          Scheme::SttIssue, Scheme::Nda}) {
            const AreaEstimate a = AreaModel::estimate(mega, sc);
            std::fprintf(out, "  %-11s LUTs=%8.0f FFs=%8.0f\n",
                         schemeName(sc), a.luts, a.ffs);
        }

        std::fprintf(out, "\nExtension: NDA-Strict area/power (not in "
                          "the paper):\n");
        const AreaEstimate strict =
            AreaModel::relative(mega, Scheme::NdaStrict);
        std::fprintf(out,
                     "  NDA-Strict  LUTs=%.3f FFs=%.3f Power=%.3f\n",
                     strict.luts, strict.ffs,
                     PowerModel::relative(mega, Scheme::NdaStrict));
    };
    return s;
}

// --- Table 5: BOOM vs gem5-style configurations ------------------------

std::vector<CoreConfig>
table5Configs()
{
    return {CoreConfig::medium(), CoreConfig::large(),
            CoreConfig::mega(), CoreConfig::gem5Stt(),
            CoreConfig::gem5Nda()};
}

Scenario
table5Scenario()
{
    Scenario s;
    s.name = "table5";
    s.title = "Table 5: BOOM vs gem5-style configurations";
    s.specs = [] {
        return suiteSpecs(table5Configs(), fourSchemes(), 100000);
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Table 5: BOOM vs gem5-style "
                          "configurations ===\n\n");

        const auto lossPct = [](double base, double scheme) {
            return (1.0 - scheme / base) * 100.0;
        };

        TextTable t;
        t.header({"configuration", "base IPC", "STT-Rename loss",
                  "STT-Issue loss", "NDA loss"});
        for (const auto &cfg : table5Configs()) {
            const auto base =
                aggregate(filter(outcomes, cfg.name, Scheme::Baseline));
            const auto rename = aggregate(
                filter(outcomes, cfg.name, Scheme::SttRename));
            const auto issue = aggregate(
                filter(outcomes, cfg.name, Scheme::SttIssue));
            const auto nda =
                aggregate(filter(outcomes, cfg.name, Scheme::Nda));
            t.row({cfg.name, TextTable::num(base.meanIpc, 2),
                   TextTable::num(lossPct(base.meanIpc, rename.meanIpc),
                                  1)
                       + "%",
                   TextTable::num(lossPct(base.meanIpc, issue.meanIpc),
                                  1)
                       + "%",
                   TextTable::num(lossPct(base.meanIpc, nda.meanIpc), 1)
                       + "%"});
        }
        t.row({"paper BOOM Medium", "0.54", "7.3%", "6.4%", "10.7%"});
        t.row({"paper BOOM Large", "0.83", "11.3%", "10.0%", "18.6%"});
        t.row({"paper BOOM Mega", "1.09", "17.6%", "15.8%", "22.4%"});
        t.row({"paper gem5 (STT cfg)", "1.12", "17.2%", "N/A", "-"});
        t.row({"paper gem5 (NDA cfg)", "0.79", "-", "N/A", "13.0%"});
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Shape check (Sec. 9.5): the gem5-STT "
                     "configuration's single-cycle L1 and large window "
                     "yield a higher\nbaseline IPC; the gem5-NDA "
                     "configuration lands between Medium and Large "
                     "with a milder NDA loss.\n");
    };
    return s;
}

// --- Ablation Sec. 5.1: NDA +/- speculative L1-hit scheduling ----------

const std::vector<std::string> &
l1hitBenches()
{
    static const std::vector<std::string> benches = {
        "503.bwaves", "538.imagick", "505.mcf", "502.gcc",
        "548.exchange2", "520.omnetpp",
    };
    return benches;
}

Scenario
ablationL1hitScenario()
{
    Scenario s;
    s.name = "ablation_l1hit";
    s.title = "Ablation (Sec. 5.1): NDA +/- speculative L1-hit "
              "scheduling";
    s.specs = [] {
        SchemeConfig base;
        SchemeConfig nda;
        nda.scheme = Scheme::Nda;
        SchemeConfig nda_spec = nda;
        nda_spec.ndaKeepSpeculativeScheduling = true;

        std::vector<RunSpec> specs;
        for (const auto &cfg : {base, nda, nda_spec}) {
            for (const auto &b : l1hitBenches()) {
                RunSpec spec;
                spec.core = CoreConfig::mega();
                spec.scheme = cfg;
                spec.workload = b;
                spec.measureInsts = 120000;
                specs.push_back(std::move(spec));
            }
        }
        return specs;
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Ablation (Sec. 5.1): NDA +/- "
                          "speculative L1-hit scheduling ===\n\n");

        const auto &benches = l1hitBenches();
        const std::size_t n = benches.size();

        TextTable t;
        t.header({"benchmark", "base IPC", "NDA (no spec sched)",
                  "NDA (keep spec sched)"});
        for (std::size_t i = 0; i < n; ++i) {
            const double b = outcomes[i].ipc;
            t.row({benches[i], TextTable::num(b, 3),
                   TextTable::pct(outcomes[n + i].ipc / b),
                   TextTable::pct(outcomes[2 * n + i].ipc / b)});
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Timing side (Mega): removing the logic lets NDA "
                     "reach %.1f MHz vs the baseline's %.1f MHz.\n",
                     TimingModel::frequencyMhz(CoreConfig::mega(),
                                               Scheme::Nda),
                     TimingModel::frequencyMhz(CoreConfig::mega(),
                                               Scheme::Baseline));
        std::fprintf(out,
                     "Conclusion (paper Sec. 5.1): the IPC benefit of "
                     "keeping the logic is marginal for NDA, while "
                     "removing it simplifies timing.\n");
    };
    return s;
}

// --- Ablation Sec. 9.2: store taints on 548.exchange2 ------------------

struct StoreVariant
{
    const char *label;
    SchemeConfig cfg;
};

std::vector<StoreVariant>
storeVariants()
{
    std::vector<StoreVariant> variants;
    SchemeConfig c;
    variants.push_back({"Baseline", c});
    c.scheme = Scheme::SttRename;
    variants.push_back({"STT-Rename (single taint)", c});
    c.twoTaintStores = true;
    variants.push_back({"STT-Rename (two-taint stores)", c});
    SchemeConfig i;
    i.scheme = Scheme::SttIssue;
    variants.push_back({"STT-Issue", i});
    SchemeConfig n;
    n.scheme = Scheme::Nda;
    variants.push_back({"NDA", n});
    return variants;
}

Scenario
ablationStoresScenario()
{
    Scenario s;
    s.name = "ablation_stores";
    s.title = "Ablation (Sec. 9.2): store taints and forwarding "
              "errors on 548.exchange2";
    s.specs = [] {
        std::vector<RunSpec> specs;
        for (const auto &v : storeVariants()) {
            RunSpec spec;
            spec.core = CoreConfig::mega();
            spec.scheme = v.cfg;
            spec.workload = "548.exchange2";
            spec.measureInsts = 150000;
            specs.push_back(std::move(spec));
        }
        return specs;
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Ablation (Sec. 9.2): store taints and "
                          "forwarding errors on 548.exchange2 ===\n\n");

        const auto variants = storeVariants();
        const double base_ipc = outcomes.front().ipc;
        TextTable t;
        t.header({"variant", "IPC", "relative", "forwarding errors",
                  "scheme blocks"});
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &o = outcomes[i];
            t.row({variants[i].label, TextTable::num(o.ipc, 3),
                   TextTable::pct(o.ipc / base_ipc),
                   std::to_string(o.stat("mem_order_violations")),
                   std::to_string(o.stat("scheme_select_blocks"))});
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out,
                     "Paper observation: STT-Rename suffered ~1350x "
                     "the forwarding errors of NDA on exchange2 (abs "
                     "IPC 1.44 vs 1.77);\nthe two-taint optimization "
                     "and STT-Issue both eliminate the error storm.\n");
    };
    return s;
}

// --- scheme_compare: the full secure-scheme roster on Mega -------------

Scenario
schemeCompareScenario()
{
    Scenario s;
    s.name = "scheme_compare";
    s.title = "Scheme compare: the full secure-scheme roster "
              "(STT-Rename/STT-Issue/NDA/NDA-Strict/DoM/DelayAll) on "
              "Mega BOOM";
    s.specs = [] {
        return suiteSpecs({CoreConfig::mega()}, allSchemeConfigs());
    };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        std::fprintf(out, "=== Scheme compare: full roster over the "
                          "kernel suite, Mega BOOM ===\n\n");

        const CoreConfig mega = CoreConfig::mega();
        std::map<Scheme, SuiteAggregate> aggs;
        for (Scheme sc : allSchemes())
            aggs[sc] = aggregate(filter(outcomes, "mega", sc));
        const SuiteAggregate &base = aggs.at(Scheme::Baseline);

        TextTable t;
        t.header({"scheme", "suite IPC", "rel IPC", "rel freq",
                  "perf (IPC x freq)"});
        t.row({"Baseline", TextTable::num(base.meanIpc, 3), "100.0%",
               "100.0%", TextTable::num(1.0, 3)});
        for (Scheme sc : allSchemes()) {
            if (sc == Scheme::Baseline)
                continue;
            const SuiteAggregate &agg = aggs.at(sc);
            const double rel = agg.meanIpc / base.meanIpc;
            const double freq = TimingModel::relativeFrequency(mega, sc);
            t.row({schemeName(sc), TextTable::num(agg.meanIpc, 3),
                   TextTable::pct(rel), TextTable::pct(freq),
                   TextTable::num(rel * freq, 3)});
        }
        std::fprintf(out, "%s\n", t.render().c_str());

        std::fprintf(out, "Per-benchmark IPC relative to the unsafe "
                          "baseline:\n");
        TextTable p;
        p.header({"benchmark", "STT-Rename", "STT-Issue", "NDA",
                  "NDA-Strict", "DoM", "DelayAll"});
        const Scheme cols[] = {Scheme::SttRename, Scheme::SttIssue,
                               Scheme::Nda,       Scheme::NdaStrict,
                               Scheme::DelayOnMiss, Scheme::DelayAll};
        for (const auto &name : SpecSuite::benchmarkNames()) {
            std::vector<std::string> row{name};
            const double b = base.perBench.at(name);
            for (Scheme sc : cols) {
                row.push_back(
                    TextTable::pct(aggs.at(sc).perBench.at(name) / b));
            }
            p.row(row);
        }
        std::fprintf(out, "%s\n", p.render().c_str());

        std::fprintf(out,
                     "Expected ordering: DelayAll is the conservative "
                     "endpoint (every speculative load waits), DoM "
                     "sits between the\nselective schemes and DelayAll "
                     "on miss-heavy workloads but near baseline on "
                     "L1-resident ones.\n");
    };
    return s;
}

} // anonymous namespace

void
registerPaperScenarios(ScenarioRegistry &registry)
{
    registry.add(table1Scenario());
    registry.add(fig1Scenario());
    registry.add(fig6Scenario());
    registry.add(fig7Scenario());
    registry.add(fig8Scenario());
    registry.add(fig9Scenario());
    registry.add(fig10Scenario());
    registry.add(table3Scenario());
    registry.add(table4Scenario());
    registry.add(table5Scenario());
    registry.add(ablationL1hitScenario());
    registry.add(ablationStoresScenario());
    registry.add(schemeCompareScenario());
}

} // namespace sb
