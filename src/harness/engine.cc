#include "harness/engine.hh"

#include <chrono>
#include <unordered_map>

#include "common/logging.hh"
#include "common/signals.hh"
#include "harness/result_cache.hh"
#include "harness/shard.hh"

namespace sb
{

namespace
{

RunOutcome
interruptedStub(const RunSpec &spec)
{
    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.stats["interrupted"] = 1;
    return out;
}

} // anonymous namespace

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options options)
    : numJobs(resolveJobs(options.jobs)), opt(options)
{
    if (!options.cacheDir.empty()) {
        diskCache = std::make_unique<ResultCache>(options.cacheDir);
        // An unusable directory already warned; run uncached.
        if (!diskCache->ok())
            diskCache.reset();
    }
    // Workers are spawned lazily on the first batch with work, so an
    // engine that only ever serves cached/model-only requests never
    // parks idle threads.
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        shuttingDown = true;
    }
    workReady.notify_all();
    for (auto &t : pool)
        t.join();
}

void
ExperimentEngine::workerLoop()
{
    std::unique_lock<std::mutex> lock(poolMutex);
    while (true) {
        workReady.wait(lock, [this] {
            return shuttingDown
                   || (batchSpecs && nextIndex < batchSpecs->size());
        });
        if (shuttingDown)
            return;
        while (batchSpecs && nextIndex < batchSpecs->size()) {
            const std::size_t idx = nextIndex++;
            const RunSpec &spec = (*batchSpecs)[idx];
            const std::string &key = (*batchKeys)[idx];
            std::vector<RunOutcome> *results = batchResults;
            lock.unlock();
            RunOutcome out;
            if (interruptRequested()) {
                // Drain the batch with stubs instead of simulating:
                // run() still sees every cell complete, the caller
                // gets partial results and a nonzero exit.
                out = interruptedStub(spec);
            } else {
                RunHooks hooks;
                hooks.wallDeadlineSec = opt.cellTimeoutSec;
                hooks.interruptible = true;
                out = ExperimentRunner::runOne(spec, hooks);
            }
            // Flush to disk as cells complete so an interrupted grid
            // run keeps its progress (empty key: cell is banned from
            // the cache after a collision; timed-out / interrupted
            // stubs are supervision artifacts, not results).
            if (diskCache && !key.empty() && outcomeIsCacheable(out))
                diskCache->store(key, out);
            lock.lock();
            (*results)[idx] = std::move(out);
            if (++completedCount == results->size())
                batchDone.notify_all();
        }
    }
}

std::vector<RunOutcome>
ExperimentEngine::run(const std::vector<RunSpec> &specs)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    accounting.requested += specs.size();

    // Collapse the request onto unique cells (content-addressed).
    struct Cell
    {
        std::string key;
        const RunSpec *spec;
        std::vector<std::size_t> users; ///< Input indices served.
        bool cacheable = true;
        bool resolved = false;
        RunOutcome outcome;
    };
    std::vector<Cell> cells;
    std::unordered_map<std::string, std::size_t> cellByKey;
    cells.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::string key = specs[i].specKey();
        auto it = cellByKey.find(key);
        if (it != cellByKey.end()) {
            Cell &prior = cells[it->second];
            // Dedup only on identical content, not the 64-bit hash
            // alone: a key collision between distinct specs keeps
            // both cells and bans the shared cache address.
            if (prior.spec->canonical() == specs[i].canonical()) {
                prior.users.push_back(i);
                ++accounting.dedupHits;
                continue;
            }
            sb_warn("specKey collision (", key, "): '",
                    prior.spec->canonical(), "' vs '",
                    specs[i].canonical(), "'; not caching either");
            prior.cacheable = false;
            cells.push_back(Cell{std::move(key), &specs[i], {i}, false,
                                 false, RunOutcome{}});
            continue;
        }
        cellByKey.emplace(key, cells.size());
        cells.push_back(Cell{std::move(key), &specs[i], {i}, true,
                             false, RunOutcome{}});
    }

    // Serve what the disk cache already knows. A hit must also match
    // the spec on the fields the outcome carries, so a cross-process
    // key collision (or a hand-edited cache) re-simulates instead of
    // silently serving another spec's numbers.
    std::vector<RunSpec> toRun;
    std::vector<std::string> toRunKeys;
    std::vector<std::size_t> toRunCell;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        Cell &cell = cells[c];
        if (diskCache && cell.cacheable
            && diskCache->lookup(cell.key, cell.outcome)) {
            if (cell.outcome.workload == cell.spec->workload
                && cell.outcome.coreName == cell.spec->core.name
                && cell.outcome.scheme == cell.spec->scheme.scheme) {
                cell.resolved = true;
                ++accounting.cacheHits;
                continue;
            }
            // Leave the cell cacheable: the fresh result overwrites
            // the bad entry (last line wins on load), so a corrupt
            // entry self-heals instead of re-warning forever.
            sb_warn("cache entry ", cell.key,
                    " does not match its spec ('",
                    cell.spec->canonical(), "'); re-simulating");
        }
        toRun.push_back(*cell.spec);
        // An empty key tells the worker not to store this cell.
        toRunKeys.push_back(cell.cacheable ? cell.key : std::string());
        toRunCell.push_back(c);
    }

    // Simulate the remainder: sharded worker processes when
    // requested, the persistent in-process pool otherwise.
    std::vector<RunOutcome> ran(toRun.size());
    const bool useShards = opt.shards > 0 && !opt.sbsimPath.empty();
    if (opt.shards > 0 && opt.sbsimPath.empty())
        sb_warn("engine: shards requested but no worker binary "
                "configured; running in-process");
    if (!toRun.empty() && useShards) {
        ShardOptions shardOpt;
        shardOpt.shards = opt.shards;
        shardOpt.cacheDir = diskCache ? opt.cacheDir : std::string();
        shardOpt.workerPath = opt.sbsimPath;
        shardOpt.cellTimeoutSec = opt.cellTimeoutSec;
        ShardDispatcher dispatcher(std::move(shardOpt));
        ran = dispatcher.run(toRun, toRunKeys);
        // Workers persist their results before replying; store only
        // what nobody persisted (the degraded / uncached-worker
        // paths), and never supervision stubs.
        const std::vector<bool> &persisted =
            dispatcher.persistedByWorker();
        for (std::size_t j = 0; j < ran.size(); ++j)
            if (diskCache && !toRunKeys[j].empty() && !persisted[j]
                && outcomeIsCacheable(ran[j]))
                diskCache->store(toRunKeys[j], ran[j]);
        const ShardReport &report = dispatcher.report();
        accounting.workersSpawned += report.workersSpawned;
        accounting.shardCrashes += report.crashes;
        accounting.shardHangs += report.hangs;
        accounting.shardRetries += report.retries;
        accounting.shardStolen += report.stolen;
        accounting.shardDegraded |= report.degraded;
        accounting.interrupted |= report.interrupted;
        accounting.quarantinedKeys.insert(
            accounting.quarantinedKeys.end(),
            report.quarantinedKeys.begin(),
            report.quarantinedKeys.end());
        accounting.simulated += toRun.size();
    } else if (!toRun.empty()) {
        if (pool.empty()) {
            pool.reserve(numJobs);
            for (unsigned i = 0; i < numJobs; ++i)
                pool.emplace_back([this] { workerLoop(); });
        }
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            batchSpecs = &toRun;
            batchKeys = &toRunKeys;
            batchResults = &ran;
            nextIndex = 0;
            completedCount = 0;
        }
        workReady.notify_all();
        {
            std::unique_lock<std::mutex> lock(poolMutex);
            batchDone.wait(lock, [this, &toRun] {
                return completedCount == toRun.size();
            });
            batchSpecs = nullptr;
            batchKeys = nullptr;
            batchResults = nullptr;
        }
        accounting.simulated += toRun.size();
        accounting.interrupted |= interruptRequested();
    }
    for (std::size_t j = 0; j < toRunCell.size(); ++j) {
        cells[toRunCell[j]].outcome = std::move(ran[j]);
        cells[toRunCell[j]].resolved = true;
    }

    // Fan unique cells back out to the input order.
    std::vector<RunOutcome> results(specs.size());
    for (const Cell &cell : cells) {
        sb_assert(cell.resolved, "engine: unresolved cell");
        if (cell.outcome.stat("interrupted") != 0)
            ++accounting.interruptedCells;
        for (const std::size_t user : cell.users)
            results[user] = cell.outcome;
    }

    accounting.wallSeconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    return results;
}

} // namespace sb
