/**
 * @file
 * Differential conformance harness.
 *
 * ShadowBinding's schemes change *when* loads execute, never *what*
 * commits. This harness makes that claim testable at scale: seeded
 * random programs (src/isa/generator.hh) run under every scheme in
 * the roster, and an architectural-equivalence oracle demands, per
 * program, bit-identical results against the Baseline:
 *
 *  - identical committed register file (all architectural registers),
 *  - identical committed functional memory (MemoryImage fingerprint),
 *  - identical committed-instruction stream (PC-sequence digest) and
 *    committed-instruction count,
 *  - liveness: the run halts — no deadlock, no watchdog trip,
 *  - clean in-core invariant checkers (src/core/invariants.hh, force-
 *    enabled for every fuzz cell) and the monitor obligations each
 *    scheme claims.
 *
 * Each (program, scheme) cell is an ordinary RunSpec with a
 * "fuzz:<profile>:seed=S:iters=N" workload, so fuzzing rides the
 * ExperimentEngine's dedup, worker pool, and content-addressed result
 * cache like every performance cell. Failures fold into a report
 * whose entries carry a replayable repro (`sbsim fuzz --programs 1
 * --seed S --profile P`).
 */

#ifndef SB_HARNESS_CONFORMANCE_HH
#define SB_HARNESS_CONFORMANCE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/experiment.hh"
#include "isa/generator.hh"
#include "isa/transform.hh"

namespace sb
{

class ScenarioRegistry;
class SecureScheme;

/**
 * Workload-name encoding of one fuzz cell, e.g.
 * "fuzz:mixed:seed=12345:iters=32". The seed, profile, and dynamic
 * length are part of the cell's cache address via specKey().
 */
std::string fuzzWorkloadName(OpMixProfile profile, std::uint64_t seed,
                             unsigned iterations);

/** Is @p workload a fuzz cell? */
bool isFuzzWorkload(const std::string &workload);

/**
 * Decode a fuzzWorkloadName(). Returns false on anything malformed,
 * leaving the outputs untouched.
 */
bool parseFuzzWorkload(const std::string &workload, OpMixProfile &profile,
                       std::uint64_t &seed, unsigned &iterations);

/**
 * Architectural fingerprint plus health bits of one (program, scheme)
 * run — everything the oracle compares.
 */
struct ConformanceCell
{
    std::uint64_t regHash = 0;    ///< All architectural registers.
    std::uint64_t memHash = 0;    ///< Committed MemoryImage fingerprint.
    std::uint64_t commitHash = 0; ///< Committed PC-stream digest.
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    bool halted = false;
    bool watchdogTripped = false;
    std::uint64_t invariantViolations = 0;
    std::uint64_t transmitViolations = 0;
    std::uint64_t consumeViolations = 0;
    /** Contract shadow verdicts (src/core/contract_shadow.hh) over
     *  the generated program's secret-labelled buffer. */
    std::uint64_t sandboxViolations = 0;
    std::uint64_t ctViolations = 0;
    std::uint64_t firstSandboxCycle = 0;
    std::uint64_t firstSandboxPc = 0;

    /** The oracle's equality: architectural state only (timing and
     *  health bits are checked separately). */
    bool
    architecturallyEqual(const ConformanceCell &o) const
    {
        return regHash == o.regHash && memHash == o.memHash
               && commitHash == o.commitHash
               && instructions == o.instructions;
    }
};

/**
 * Run one program to completion under @p scheme with the invariant
 * checkers force-enabled and a soft watchdog (a deadlock returns with
 * watchdogTripped instead of aborting). The timing path is untouched:
 * the harness observes, never perturbs.
 *
 * When @p mitigated is non-null, @p program must be its .program and
 * the fingerprint is taken *modulo the transform's glue*: committed
 * PCs are mapped through TransformedProgram::origin, inserted glue
 * (origin < 0) is dropped from the commit digest, and `instructions`
 * counts only origin-mapped commits — so a correct transform produces
 * a cell architecturallyEqual() to the untransformed Baseline run.
 */
ConformanceCell runConformanceCell(const Program &program,
                                   const CoreConfig &core,
                                   const SchemeConfig &scheme_config,
                                   std::unique_ptr<SecureScheme> scheme,
                                   std::uint64_t max_cycles,
                                   const TransformedProgram *mitigated =
                                       nullptr);

/**
 * Execute one fuzz cell (ExperimentRunner::runOne dispatches here for
 * fuzz workloads). The fingerprint lands in RunOutcome::stats under
 * "fuzz_*" keys; warmup/measure counts are ignored (a fuzz run is a
 * complete program, not a windowed measurement).
 */
RunOutcome runFuzzCell(const RunSpec &spec);

/** Parameters of one fuzz campaign. */
struct FuzzParams
{
    std::uint64_t baseSeed = 0xC0FFEE;
    unsigned programs = 50;
    /** Profiles rotated across programs; empty = all profiles. */
    std::vector<OpMixProfile> profiles;
    CoreConfig core = CoreConfig::mega();
    unsigned outerIterations = 32;
    /** Per-cell cycle budget (soft watchdog trips well before). */
    std::uint64_t maxCycles = 4'000'000;
    /** Worker threads; 0 defers to SB_JOBS then hardware. */
    unsigned jobs = 0;
    /** Result-cache directory; empty disables the disk cache. */
    std::string cacheDir;
    /** Software mitigation applied to every non-oracle cell. When set
     *  the campaign grows an extra *unmitigated* Baseline cell per
     *  program (the oracle) and every scheme — including Baseline —
     *  runs the transformed program, judged for architectural
     *  equivalence against that oracle modulo inserted glue. */
    Mitigation mitigation = Mitigation::None;

    /** Program seed of the @p index -th program in the campaign. */
    std::uint64_t programSeed(unsigned index) const
    {
        return baseSeed + index;
    }

    /** Profile of the @p index -th program (rotating). */
    OpMixProfile profileFor(unsigned index) const;
};

/** One oracle failure, with everything a repro needs. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    OpMixProfile profile = OpMixProfile::Mixed;
    Scheme scheme = Scheme::Baseline;
    /** Mitigation active in the failing cell (None for oracle cells). */
    Mitigation mitigation = Mitigation::None;
    /** "divergence" | "deadlock" | "invariant" | "monitor" |
     *  "contract" (shadow-engine sandboxing breach against a declared
     *  dataflow policy). */
    std::string kind;
    std::string detail;

    /** Minimized replay command for this failure. */
    std::string repro(const std::string &core_name) const;
};

/** The folded campaign verdict. */
struct FuzzReport
{
    unsigned programs = 0;
    unsigned cells = 0;
    std::string coreName;
    Mitigation mitigation = Mitigation::None;
    std::vector<FuzzFailure> failures;

    bool ok() const { return cells > 0 && failures.empty(); }
};

/** The campaign's RunSpecs: for each program, every scheme in roster
 *  order with Baseline first (foldFuzzOutcomes relies on the order).
 *  With params.mitigation set, each program additionally *leads* with
 *  an unmitigated Baseline oracle cell, so the per-program stride is
 *  schemes + 1. */
std::vector<RunSpec> fuzzSpecs(const FuzzParams &params);

/** Fold engine outcomes (in fuzzSpecs() order) into the verdict. */
FuzzReport foldFuzzOutcomes(const FuzzParams &params,
                            const std::vector<RunOutcome> &outcomes);

/** Run the whole campaign through an ExperimentEngine. */
FuzzReport runFuzz(const FuzzParams &params);

/** Machine-readable report (the SBSIM_fuzz.json document). */
Json toJson(const FuzzReport &report);

/** Human-readable report, with repro lines for every failure. */
void printFuzzReport(const FuzzReport &report, std::FILE *out);

/** Register the "conformance" and "contract_check" scenarios (the
 *  same fixed small campaign; contract_check reports the contract
 *  shadow engine's per-scheme verdict over the generated programs'
 *  secret-labelled buffers). */
void registerConformanceScenarios(ScenarioRegistry &registry);

/** The contract_check report: per-scheme shadow-violation totals
 *  plus every "contract" failure with its repro. */
void printContractReport(const FuzzParams &params,
                         const std::vector<RunOutcome> &outcomes,
                         std::FILE *out);

} // namespace sb

#endif // SB_HARNESS_CONFORMANCE_HH
