#include "harness/attack.hh"

#include <algorithm>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/core.hh"
#include "secure/factory.hh"

namespace sb
{

namespace
{

/** FNV-1a 64 digest of the committed-load observation trace. */
std::uint64_t
hashObservations(const std::vector<LoadObservation> &trace)
{
    std::uint64_t hash = fnv1aBasis;
    auto mix = [&hash](std::uint64_t word) {
        hash = fnv1aWord(hash, word);
    };
    for (const LoadObservation &obs : trace) {
        mix(obs.pc);
        mix(obs.commitCycle);
        mix(obs.completeCycle);
        mix(obs.l1Hit ? 1 : 0);
    }
    return hash;
}

} // anonymous namespace

AttackResult
runGadgetAttack(const GadgetProgram &gadget,
                const CoreConfig &core_config,
                const SchemeConfig &scheme_config,
                std::unique_ptr<SecureScheme> scheme,
                std::uint8_t secret_byte,
                const TransformedProgram *mitigated)
{
    using gadget_layout::array2Base;
    using gadget_layout::probeStride;

    Core core(core_config, scheme_config, std::move(scheme),
              mitigated ? mitigated->program : gadget.program);
    core.enableObservationTrace();
    // The battery always judges contracts, whatever the build default
    // (the engine is a pure observer, so timing is unaffected).
    core.setContractShadowEnabled(true);

    // Commit-time receiver: record the commit cycle of each probe.
    // Under a mitigation committed PCs are mapped back to the PC of
    // the original instruction they stand for — mitigation thunks
    // are appended past firstProbePc and must not read as probes.
    std::vector<Cycle> commit_cycle(256, 0);
    bool rounds_done = false;
    const std::uint32_t first_probe_pc = gadget.firstProbePc;
    core.setCommitHook([&](const DynInst &inst, Cycle at) {
        std::int64_t opc = inst.pc;
        if (mitigated) {
            opc = mitigated->origin(inst.pc);
            if (opc < 0)
                return; // Inserted glue: invisible to the receiver.
        }
        if (opc >= first_probe_pc && inst.isLoad()) {
            const unsigned v =
                1 + static_cast<unsigned>(opc - first_probe_pc) / 4;
            if (v < 256)
                commit_cycle[v] = at;
        }
        if (static_cast<std::uint32_t>(opc) == gadget.barrierPc)
            rounds_done = true;
    });

    // Phase 1: run the victim rounds, pausing before the probe
    // commits so the residency oracle sees the post-attack state.
    // Single-commit granularity: the serialised barrier means whole
    // hops can pass inside one coarser run() chunk, letting probes
    // slip past the pause.
    while (!rounds_done && !core.halted() && core.now() < 10'000'000)
        core.run(1, 10'000'000);

    AttackResult res;
    int oracle_hits = 0;
    for (unsigned v = 1; v < 256; ++v) {
        if (core.memorySystem().cached(array2Base + Addr(v) * probeStride)) {
            res.oracleByte = static_cast<int>(v);
            ++oracle_hits;
        }
    }
    if (oracle_hits != 1)
        res.oracleByte = -1;

    // Phase 2: run the timing probe to completion.
    core.run(100'000'000, 10'000'000);

    std::vector<double> gaps;
    for (unsigned v = 2; v < 256; ++v) {
        if (commit_cycle[v] > 0 && commit_cycle[v - 1] > 0) {
            gaps.push_back(static_cast<double>(commit_cycle[v])
                           - static_cast<double>(commit_cycle[v - 1]));
        }
    }
    if (gaps.size() > 64) {
        std::vector<double> sorted = gaps;
        std::sort(sorted.begin(), sorted.end());
        const double median = sorted[sorted.size() / 2];
        double min_gap = sorted.front();
        res.medianGap = median;
        res.minGap = min_gap;
        // A hit sits a full memory latency below the (miss) median.
        if (min_gap < 0.5 * median) {
            for (unsigned v = 2; v < 256; ++v) {
                const double g =
                    static_cast<double>(commit_cycle[v])
                    - static_cast<double>(commit_cycle[v - 1]);
                if (g == min_gap) {
                    res.timingByte = static_cast<int>(v);
                    break;
                }
            }
        }
    }

    res.transmitViolations = core.monitor().transmitViolations();
    res.consumeViolations = core.monitor().consumeViolations();
    res.sandboxViolations = core.contractShadow().sandboxViolations();
    res.ctViolations = core.contractShadow().ctViolations();
    res.firstSandboxViolation =
        core.contractShadow().firstSandboxViolation();
    res.firstCtViolation = core.contractShadow().firstCtViolation();
    res.crossTenantViolations =
        core.contractShadow().crossTenantViolations();
    res.firstCrossTenantViolation =
        core.contractShadow().firstCrossTenantViolation();
    res.contextSwitches = core.contextSwitchCount();
    res.leaked = res.timingByte == secret_byte
                 || res.oracleByte == secret_byte;
    res.traceHash = hashObservations(core.observationTrace());
    res.traceLength = core.observationTrace().size();
    res.cycles = core.now();
    return res;
}

AttackResult
runGadget(GadgetKind kind, const CoreConfig &core_config,
          const SchemeConfig &scheme_config, std::uint8_t secret_byte,
          std::uint64_t seed)
{
    const GadgetProgram gadget =
        buildGadgetProgram(kind, secret_byte, seed);
    return runGadgetAttack(gadget, core_config, scheme_config,
                           makeScheme(scheme_config), secret_byte);
}

AttackResult
runSpectreV1(const CoreConfig &core_config,
             const SchemeConfig &scheme_config, std::uint8_t secret_byte,
             std::uint64_t seed)
{
    return runGadget(GadgetKind::SpectreV1, core_config, scheme_config,
                     secret_byte, seed);
}

} // namespace sb
