#include "harness/attack.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "secure/factory.hh"

namespace sb
{

namespace
{

// Memory layout of the attack program.
constexpr Addr array1Base = 0x200000;
constexpr Addr secretOffset = 0x10000;   ///< Out-of-range index.
constexpr Addr array2Base = 0x400000;
constexpr unsigned probeStride = 512;    ///< One slot per byte value.
constexpr Addr idxArrayBase = 0x600000;
constexpr Addr chaseBase = 0x800000;
constexpr unsigned chaseNodes = 2048;
constexpr unsigned trainingRounds = 48;
constexpr std::int64_t inRangeLength = 8;

} // anonymous namespace

SpectreProgram
buildSpectreV1Program(std::uint8_t secret_byte, std::uint64_t seed)
{
    sb_assert(secret_byte >= 1,
              "secret byte must be 1..255 (slot 0 is warmed by training)");
    ProgramBuilder b;
    Rng rng(seed);

    // --- Victim memory ------------------------------------------------
    // In-range entries are all zero, so training only ever warms
    // probe slot 0 (excluded from scoring).
    for (unsigned i = 0; i < inRangeLength; ++i)
        b.memory().write(array1Base + 8 * i, 0);
    // The secret lives past the bound.
    b.memory().write(array1Base + secretOffset, secret_byte);

    // --- Index sequence: training values, then the malicious index ----
    const unsigned rounds = trainingRounds + 1;
    for (unsigned t = 0; t < trainingRounds; ++t)
        b.memory().write(idxArrayBase + 8 * t, t % inRangeLength);
    b.memory().write(idxArrayBase + 8 * trainingRounds, secretOffset);

    // --- Cold pointer chain that delays the bound (three hops/round) --
    std::vector<std::uint32_t> order(chaseNodes);
    for (unsigned i = 0; i < chaseNodes; ++i)
        order[i] = i;
    for (unsigned i = chaseNodes - 1; i > 0; --i) {
        const unsigned j = rng.below(i);
        std::swap(order[i], order[j]);
    }
    for (unsigned i = 0; i < chaseNodes; ++i) {
        const Addr node = chaseBase + Addr(order[i]) * 64;
        const Addr next = chaseBase + Addr(order[(i + 1) % chaseNodes]) * 64;
        b.memory().write(node, next);
        b.memory().write(node + 8, inRangeLength); // The bound.
    }

    // --- Registers ------------------------------------------------------
    const ArchReg a1 = 1, a2 = 2, idxp = 3, idx = 4, bound = 5;
    const ArchReg chase = 6, hop1 = 7, hop2 = 8;
    const ArchReg secret = 10, offs = 11, slot = 12, leakv = 13;
    const ArchReg probeAddr = 14, probeVal = 15;
    const ArchReg cnt = 20, lim = 21, one = 22, byteMask = 24;
    const ArchReg nine = 25, acc = 26, chain0 = 27, zero = 28;

    b.movi(a1, array1Base);
    b.movi(a2, array2Base);
    b.movi(idxp, idxArrayBase);
    b.movi(chase, chaseBase + Addr(order[0]) * 64);
    b.movi(cnt, 0);
    b.movi(lim, rounds);
    b.movi(one, 1);
    b.movi(byteMask, 0xff);
    b.movi(nine, 9);
    b.movi(acc, 0);
    b.movi(chain0, 0);
    b.movi(zero, 0);

    // --- Victim rounds ----------------------------------------------------
    const auto round = b.here();
    // Three dependent cold loads delay the bound by ~300 cycles.
    b.load(hop1, chase, 0);
    b.load(hop2, hop1, 0);
    b.load(bound, hop2, 8);
    b.add(chase, hop2, zero);       // Advance the chase head.
    b.load(idx, idxp, 0);
    b.addi(idxp, idxp, 8);
    const auto skip = b.futureLabel();
    b.bge(idx, bound, skip);        // The trained bounds check.
    // --- Transient gadget (executes speculatively on the attack round)
    b.add(offs, a1, idx);
    b.load(secret, offs, 0);        // Reads the secret transiently.
    b.and_(secret, secret, byteMask);
    b.shl(slot, secret, nine);      // * 512.
    b.add(slot, a2, slot);
    b.load(leakv, slot, 0);         // Transmit: encodes into the cache.
    b.add(acc, acc, leakv);
    b.bind(skip);
    b.add(cnt, cnt, one);
    // Loop structure matters for receiver hygiene: the exit branch
    // is not-taken through every round, so any mispredicted wrong
    // path falls back *into* the loop, never into the probe code.
    const auto exit_label = b.futureLabel();
    b.beq(cnt, lim, exit_label);
    b.jmp(round);
    b.bind(exit_label);

    // --- Serialisation barrier: six more cold dependent hops gate
    // chain0, so no probe load can execute until long after any
    // wrong-path window closes. The harness pauses at the first
    // barrier load to read the residency oracle before the probe
    // pollutes the cache.
    SpectreProgram out;
    out.barrierPc = b.load(hop1, chase, 0);
    b.load(hop2, hop1, 0);
    b.load(hop1, hop2, 0);
    b.load(hop2, hop1, 0);
    b.load(hop1, hop2, 0);
    b.load(bound, hop1, 0);
    b.and_(chain0, bound, zero);

    // --- Receiver: serialised timing probe over slots 1..255 -----------
    for (unsigned v = 1; v < 256; ++v) {
        const std::uint32_t movi_pc =
            b.movi(probeAddr, array2Base + Addr(v) * probeStride);
        if (v == 1)
            out.firstProbePc = movi_pc + 2;
        b.add(probeAddr, probeAddr, chain0); // Serialise on prev probe.
        b.load(probeVal, probeAddr, 0);
        b.and_(chain0, probeVal, zero);      // chain0 = 0, dep on load.
    }
    b.halt();

    out.program = b.build("spectre-v1");
    return out;
}

AttackResult
runSpectreV1(const CoreConfig &core_config,
             const SchemeConfig &scheme_config, std::uint8_t secret_byte,
             std::uint64_t seed)
{
    const SpectreProgram spectre =
        buildSpectreV1Program(secret_byte, seed);
    Core core(core_config, scheme_config, makeScheme(scheme_config),
              spectre.program);

    // Commit-time receiver: record the commit cycle of each probe.
    std::vector<Cycle> commit_cycle(256, 0);
    bool rounds_done = false;
    const std::uint32_t first_probe_pc = spectre.firstProbePc;
    core.setCommitHook([&](const DynInst &inst, Cycle at) {
        if (inst.pc >= first_probe_pc && inst.isLoad()) {
            const unsigned v =
                1 + (inst.pc - first_probe_pc) / 4;
            if (v < 256)
                commit_cycle[v] = at;
        }
        if (inst.pc == spectre.barrierPc)
            rounds_done = true;
    });

    // Phase 1: run the victim rounds, pausing before the probe
    // commits so the residency oracle sees the post-attack state.
    // Single-commit granularity: the serialised barrier means whole
    // hops can pass inside one coarser run() chunk, letting probes
    // slip past the pause.
    while (!rounds_done && !core.halted() && core.now() < 10'000'000)
        core.run(1, 10'000'000);

    AttackResult res;
    int oracle_hits = 0;
    for (unsigned v = 1; v < 256; ++v) {
        if (core.memorySystem().cached(array2Base + Addr(v) * probeStride)) {
            res.oracleByte = static_cast<int>(v);
            ++oracle_hits;
        }
    }
    if (oracle_hits != 1)
        res.oracleByte = -1;

    // Phase 2: run the timing probe to completion.
    core.run(100'000'000, 10'000'000);

    std::vector<double> gaps;
    for (unsigned v = 2; v < 256; ++v) {
        if (commit_cycle[v] > 0 && commit_cycle[v - 1] > 0) {
            gaps.push_back(static_cast<double>(commit_cycle[v])
                           - static_cast<double>(commit_cycle[v - 1]));
        }
    }
    if (gaps.size() > 64) {
        std::vector<double> sorted = gaps;
        std::sort(sorted.begin(), sorted.end());
        const double median = sorted[sorted.size() / 2];
        double min_gap = sorted.front();
        res.medianGap = median;
        res.minGap = min_gap;
        // A hit sits a full memory latency below the (miss) median.
        if (min_gap < 0.5 * median) {
            for (unsigned v = 2; v < 256; ++v) {
                const double g =
                    static_cast<double>(commit_cycle[v])
                    - static_cast<double>(commit_cycle[v - 1]);
                if (g == min_gap) {
                    res.timingByte = static_cast<int>(v);
                    break;
                }
            }
        }
    }

    res.transmitViolations = core.monitor().transmitViolations();
    res.consumeViolations = core.monitor().consumeViolations();
    res.leaked = res.timingByte == secret_byte
                 || res.oracleByte == secret_byte;
    return res;
}

} // namespace sb
