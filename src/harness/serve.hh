/**
 * @file
 * `sbsim serve`: the shard worker daemon.
 *
 * A worker speaks the shard protocol (harness/protocol.hh) over a
 * pipe pair or a single bidirectional socket: it announces itself
 * with a hello frame, then executes run commands one at a time and
 * answers each with a done frame. With a cache directory configured
 * it pools results through the crash-safe shared ResultCache — a
 * cell already cached is answered without simulation, and fresh
 * results are persisted before the reply, so a worker killed between
 * store and reply loses no work (the retry is served from the
 * cache).
 *
 * Failure semantics: EOF or a corrupt stream means the dispatcher is
 * gone and the worker exits; a shutdown command exits cleanly. The
 * worker honors SB_FAULT (common/fault.hh) so supervision paths can
 * be exercised deterministically: poison:<substr> crashes it on
 * matching cells, crash:<n> kills it right before the n-th reply,
 * hang:<n> wedges it instead of the n-th reply, and torn-write:<n>
 * tears a cache append.
 */

#ifndef SB_HARNESS_SERVE_HH
#define SB_HARNESS_SERVE_HH

#include <string>

namespace sb
{

struct ServeOptions
{
    int inFd = 0;   ///< Requests arrive here (stdin by default).
    int outFd = 1;  ///< Replies leave here (stdout by default).
    /** Shared result-cache directory; empty = uncached worker. */
    std::string cacheDir;
};

/** Run the worker loop until EOF/shutdown; returns the exit code. */
int serveMain(const ServeOptions &options);

} // namespace sb

#endif // SB_HARNESS_SERVE_HH
