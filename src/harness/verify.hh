/**
 * @file
 * Differential leakage verifier.
 *
 * The battery runs every (gadget x scheme x config) cell as a *pair*
 * of executions that differ only in the secret byte, and checks two
 * independent things:
 *
 *  - *Recovery*: does either receiver (timing probe, residency
 *    oracle) recover the run's own secret? The unsafe baseline must
 *    leak on every gadget — proof the gadgets are armed — while any
 *    scheme claiming the STT obligation must never leak.
 *  - *Differential equivalence* (the Contract-Shadow-Logic-style
 *    check): the committed-load observation traces of the paired runs
 *    must be bit-identical under a secure scheme. Architecturally the
 *    two programs are identical up to the secret byte sitting in
 *    memory, so any trace divergence is secret-dependent
 *    microarchitectural state becoming visible — leakage, even if
 *    neither receiver decodes the byte.
 *
 * Battery cells are ordinary RunSpecs with a "gadget:" workload, so
 * they flow through the ExperimentEngine's in-batch dedup and
 * content-addressed result cache like every performance cell, and the
 * battery is registered as the "security" scenario (sbsim). The
 * `sbsim verify` command folds the outcomes into a leak matrix
 * (SBSIM_verify.json) and fails the process on any contract breach.
 */

#ifndef SB_HARNESS_VERIFY_HH
#define SB_HARNESS_VERIFY_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/contract_shadow.hh"
#include "core/security_contract.hh"
#include "harness/experiment.hh"
#include "trace/gadgets.hh"

namespace sb
{

class ScenarioRegistry;

/** The paired secrets every battery cell is run with. */
constexpr std::uint8_t verifySecretA = 0xA7;
constexpr std::uint8_t verifySecretB = 0x3C;
/** Pointer-chase shuffle seed for battery programs. */
constexpr std::uint64_t verifyGadgetSeed = 42;

/**
 * Workload-name encoding of one gadget run, e.g.
 * "gadget:spectre-v1:secret=167:seed=42". RunSpec::specKey() hashes
 * the workload string, so the secret and seed are part of the cell's
 * cache address.
 */
std::string gadgetWorkloadName(GadgetKind kind, std::uint8_t secret,
                               std::uint64_t seed);

/** Is @p workload a gadget cell (vs a SPEC stand-in benchmark)? */
bool isGadgetWorkload(const std::string &workload);

/**
 * Decode a gadgetWorkloadName(). Returns false on anything
 * malformed, leaving the outputs untouched.
 */
bool parseGadgetWorkload(const std::string &workload, GadgetKind &kind,
                         std::uint8_t &secret, std::uint64_t &seed);

/**
 * Execute one gadget cell (ExperimentRunner::runOne dispatches here
 * for gadget workloads). The attack receivers' results and the
 * observation-trace digest land in RunOutcome::stats under
 * "gadget_*" keys; warmup/measure counts are ignored (a gadget run
 * is a complete program, not a windowed measurement).
 */
RunOutcome runGadgetCell(const RunSpec &spec);

/** Does @p kind leak across a protection-domain boundary (observer
 *  tenant != secret-owner tenant)? Static property of the kind. */
bool gadgetIsCrossDomain(GadgetKind kind);

/** One folded (gadget x scheme x core) battery cell. */
struct VerifyCell
{
    std::string gadget;
    std::string core;
    Scheme scheme = Scheme::Baseline;
    /** The scheme's declared contract (SecureScheme::contract()).
     *  The dataflow obligations (transmitter/consume) are checked
     *  against the ground-truth monitor; the observational
     *  obligation (leak freedom + zero sandboxing shadow violations)
     *  binds every scheme with a non-None policy — Delay-on-Miss
     *  declares exactly the sandboxing policy and nothing stronger. */
    SecurityContract contract;
    /** The policy this cell is judged under: the declared policy, or
     *  the `sbsim verify --contract` override (which never touches
     *  None cells — the unsafe baseline keeps its armed-proof role). */
    ContractPolicy judgedPolicy = ContractPolicy::None;
    /** Either paired run recovered its own secret. */
    bool leaked = false;
    /** Both paired runs recovered their own secrets — the gadget is
     *  demonstrably armed (what the unsafe baseline must show). */
    bool armed = false;
    /** Paired observation traces differ (timing divergence). */
    bool diverged = false;
    /** Worst-case monitor counts over the pair. */
    std::uint64_t transmitViolations = 0;
    std::uint64_t consumeViolations = 0;
    /** Per-run diagnostics. */
    int timingByteA = -1;
    int timingByteB = -1;
    std::uint64_t cyclesA = 0;
    std::uint64_t cyclesB = 0;
    /** Worst-case contract shadow counts over the pair. */
    std::uint64_t sandboxViolations = 0;
    std::uint64_t ctViolations = 0;
    /** Pinpointed first violation of each contract (from run A when
     *  both runs violated; invalid seq when neither did). */
    ContractViolation firstSandboxViolation;
    ContractViolation firstCtViolation;
    /** Worst-case cross-tenant shadow count over the pair (transmits
     *  of a secret owned by a different protection domain than the
     *  transmitting instruction). */
    std::uint64_t crossTenantViolations = 0;
    ContractViolation firstCrossTenantViolation;
    /** Context switches per run (identical across the pair). */
    std::uint64_t contextSwitches = 0;
    /** The gadget's observer and secret owner are different tenants:
     *  a recovered byte is a cross-tenant leak. */
    bool crossDomain = false;
    /** Unprotected cell whose cross-domain channel the *core policy*
     *  (flush-predictors-on-switch) is expected to close: the verdict
     *  flips from must-demonstrably-leak to must-not-leak. */
    bool expectClosed = false;

    /**
     * Contract check under judgedPolicy: a scheme with a declared
     * contract must block recovery, show no differential divergence,
     * keep whichever monitor obligations it declares, and show zero
     * sandboxing shadow violations (zero constant-time violations
     * when judged under the ConstantTime override); a scheme
     * declaring nothing (the unsafe baseline) must demonstrably leak
     * — and the shadow engine must have pinpointed the secret
     * reaching a transmitter, so every leak verdict carries its
     * (cycle, seq, pc) repro.
     */
    bool pass() const;
};

/** The folded battery. */
struct VerifyMatrix
{
    std::vector<VerifyCell> cells;

    bool
    ok() const
    {
        for (const VerifyCell &cell : cells)
            if (!cell.pass())
                return false;
        return !cells.empty();
    }
};

/**
 * The battery's RunSpecs: for each scheme and gadget, the secret-A
 * and secret-B runs adjacent (foldVerifyOutcomes() relies on the
 * pairing order).
 */
std::vector<RunSpec>
verifyBatterySpecs(const CoreConfig &core,
                   const std::vector<SchemeConfig> &schemes);

/**
 * Fold engine outcomes (in verifyBatterySpecs() order) into cells.
 * @p contract_override, when set, replaces the judged policy of every
 * cell whose scheme declares a contract (None cells keep their
 * armed-proof role) — the `sbsim verify --contract` hook.
 */
VerifyMatrix
foldVerifyOutcomes(const std::vector<RunOutcome> &outcomes,
                   std::optional<ContractPolicy> contract_override =
                       std::nullopt);

/** Machine-readable leak matrix (the SBSIM_verify.json document). */
Json toJson(const VerifyMatrix &matrix);

/** Human-readable leak matrix. */
void printVerifyMatrix(const VerifyMatrix &matrix, std::FILE *out);

/** Register the "security" scenario (the whole battery) into @p r. */
void registerSecurityScenarios(ScenarioRegistry &registry);

// --- Software-mitigation co-study (isa/transform.hh) --------------------

/**
 * Closure map: is @p m designed to close @p gadget on an unprotected
 * core? SLH and conservative fencing neutralize the bounds-check
 * bypasses (v1, masked v1, and the cross-tenant swapgs variant — all
 * enter through a conditional branch), so v2 (BTB, same- or
 * cross-domain) and v4 (store bypass) stay open under them.
 * Retpoline starves the BTB and closes exactly the two v2s. Nothing
 * in the software roster closes v4.
 */
bool mitigationCloses(Mitigation m, GadgetKind gadget);

/** One (gadget x scheme) row of the mitigation co-study. */
struct MitigationCell
{
    std::string gadget;
    Scheme scheme = Scheme::Baseline;
    /** The hardware scheme's declared policy (None = unprotected). */
    ContractPolicy policy = ContractPolicy::None;
    /** Closure expected: unprotected core x a gadget the mitigation
     *  targets (mitigationCloses()). */
    bool target = false;
    /** Mitigated cell stopped leaking AND the shadow engine's
     *  first-violation record is gone. */
    bool closed = false;
    /** Mitigated cell still demonstrably leaks on both paired runs. */
    bool armed = false;
    /** Declared schemes: the mitigated cell still passes its
     *  hardware contract (redundancy confirmed, not broken). */
    bool schemePass = false;
    /** Secret-A cycles, unmitigated vs mitigated, and their ratio. */
    std::uint64_t cyclesBase = 0;
    std::uint64_t cyclesMitigated = 0;
    double overhead = 0.0;

    /**
     * Unprotected target cells must close; unprotected non-target
     * cells must stay armed (the pass must not quietly perturb a
     * gadget it does not claim); declared schemes must still pass.
     */
    bool pass() const;
};

/** The folded co-study for one mitigation. */
struct MitigationReport
{
    Mitigation mitigation = Mitigation::None;
    std::vector<MitigationCell> cells;

    bool
    ok() const
    {
        for (const MitigationCell &cell : cells)
            if (!cell.pass())
                return false;
        return !cells.empty();
    }
};

/**
 * Specs for `sbsim verify --mitigation`: the unmitigated battery
 * followed by the same battery under @p m (foldMitigationOutcomes()
 * relies on the halves lining up).
 */
std::vector<RunSpec>
mitigationBatterySpecs(const CoreConfig &core,
                       const std::vector<SchemeConfig> &schemes,
                       Mitigation m);

/** Fold engine outcomes (in mitigationBatterySpecs() order). */
MitigationReport
foldMitigationOutcomes(Mitigation m,
                       const std::vector<RunOutcome> &outcomes);

/** Machine-readable co-study (the SBSIM_verify_<m>.json document). */
Json toJson(const MitigationReport &report);

/** Human-readable closure + overhead matrix. */
void printMitigationReport(const MitigationReport &report,
                           std::FILE *out);

/**
 * Register the "mitigation_grid" scenario: (mitigations x schemes)
 * over the gadget battery plus a kernel-suite slice, reporting the
 * closure matrix and per-scheme software-mitigation overheads.
 */
void registerMitigationScenarios(ScenarioRegistry &registry);

} // namespace sb

#endif // SB_HARNESS_VERIFY_HH
