/**
 * @file
 * Result aggregation and rendering helpers shared by the benchmark
 * binaries: SPEC-style suite means (arithmetic mean of cycles and of
 * instructions, per paper Sec. 8.1 / [11]), normalisation against the
 * unsafe baseline, least-squares trend fitting for the width-scaling
 * figures, and simple ASCII bar charts for figure-style output.
 */

#ifndef SB_HARNESS_REPORTING_HH
#define SB_HARNESS_REPORTING_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "harness/experiment.hh"

namespace sb
{

/** Suite-level aggregate for one (config, scheme) cell. */
struct SuiteAggregate
{
    std::string coreName;
    Scheme scheme = Scheme::Baseline;
    /** SPEC mean IPC: mean(instructions) / mean(cycles). */
    double meanIpc = 0.0;
    /** Per-benchmark IPC, keyed by benchmark name. */
    std::map<std::string, double> perBench;
};

/**
 * Compute the suite aggregate over outcomes of one (config, scheme).
 * An empty input (e.g. a filter() miss) yields a zeroed aggregate
 * with no benchmarks rather than dividing by zero.
 */
SuiteAggregate aggregate(const std::vector<RunOutcome> &outcomes);

/**
 * Select outcomes matching (core, scheme) from a mixed result set.
 * An unknown core name or scheme simply selects nothing; combined
 * with aggregate()'s empty-input behaviour the pipeline is total.
 */
std::vector<RunOutcome> filter(const std::vector<RunOutcome> &all,
                               const std::string &core_name,
                               Scheme scheme);

/** JSON form of one measured cell (see README "Cache layout"). */
Json toJson(const RunOutcome &outcome);

/** JSON form of one suite-level (config, scheme) aggregate. */
Json toJson(const SuiteAggregate &aggregate);

/**
 * Rebuild a RunOutcome from toJson() output. The IPC is recomputed
 * from the integer cycle/instruction counts (bit-identical to a
 * fresh simulation) instead of trusting the serialized double.
 * Returns false on a malformed or unrecognizable object.
 */
bool outcomeFromJson(const Json &json, RunOutcome &out);

/** Least-squares line fit y = a + b x. */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;

    double at(double x) const { return intercept + slope * x; }

    /**
     * The paper's "less pessimistic" projection (Sec. 1, Table 3):
     * extrapolate from the last observed point with half the slope.
     */
    double
    atHalfSlope(double x, double last_x, double last_y) const
    {
        return last_y + 0.5 * slope * (x - last_x);
    }
};

LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/** Render a normalised-value bar (figure-style ASCII output). */
std::string bar(double normalized, unsigned width = 40);

} // namespace sb

#endif // SB_HARNESS_REPORTING_HH
