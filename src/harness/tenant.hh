/**
 * @file
 * Multi-tenant experiment tier.
 *
 * Wraps the server-mix workload (trace/server_mix.hh) as ordinary
 * RunSpec cells — workload strings of the form
 * "mt:tenants=4:requests=24:work=24:hostile=1:seed=7" — so
 * multi-tenant runs flow through the ExperimentEngine's dedup and
 * content-addressed result cache like every other cell. A cell's
 * RunOutcome carries the service-quality profile (throughput and
 * p50/p95/p99 tail latency in cycles, sampled per request off the
 * commit stream) and the cross-tenant leakage verdict from the
 * contract shadow engine, so the "multi_tenant" scenario can report
 * what each secure-speculation scheme costs a consolidated
 * request-serving core — and which ones actually stop the hostile
 * tenant.
 */

#ifndef SB_HARNESS_TENANT_HH
#define SB_HARNESS_TENANT_HH

#include <string>

#include "harness/experiment.hh"
#include "trace/server_mix.hh"

namespace sb
{

class ScenarioRegistry;

/**
 * Workload-name encoding of one server-mix run. RunSpec::specKey()
 * hashes the workload string, so every generator parameter is part of
 * the cell's cache address.
 */
std::string tenantWorkloadName(const ServerMixParams &p);

/** Is @p workload a multi-tenant server-mix cell? */
bool isTenantWorkload(const std::string &workload);

/**
 * Decode a tenantWorkloadName(). Returns false on anything malformed,
 * leaving @p out untouched.
 */
bool parseTenantWorkload(const std::string &workload,
                         ServerMixParams &out);

/**
 * Execute one server-mix cell (ExperimentRunner::runOne dispatches
 * here for "mt:" workloads). Per-request latencies, quantiles, and
 * the cross-tenant violation counts land in RunOutcome::stats under
 * "mt_*" keys; warmup/measure counts are ignored (the mix is a
 * complete program, measured whole).
 */
RunOutcome runServerMixCell(const RunSpec &spec);

/** Register the "multi_tenant" scenario (schemes x switch policies
 *  over the hostile server mix) into @p registry. */
void registerTenantScenarios(ScenarioRegistry &registry);

} // namespace sb

#endif // SB_HARNESS_TENANT_HH
