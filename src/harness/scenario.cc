#include "harness/scenario.hh"

#include "common/logging.hh"
#include "harness/conformance.hh"
#include "harness/engine.hh"
#include "harness/tenant.hh"
#include "harness/verify.hh"

namespace sb
{

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry = [] {
        ScenarioRegistry r;
        registerPaperScenarios(r);
        registerSecurityScenarios(r);
        registerMitigationScenarios(r);
        registerConformanceScenarios(r);
        registerTenantScenarios(r);
        return r;
    }();
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    sb_assert(!scenario.name.empty(), "scenario without a name");
    sb_assert(scenario.specs && scenario.report,
              "scenario '", scenario.name, "' missing specs/report");
    if (find(scenario.name))
        sb_fatal("duplicate scenario '", scenario.name, "'");
    scenarios.push_back(std::move(scenario));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const Scenario &s : scenarios) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios.size());
    for (const Scenario &s : scenarios)
        out.push_back(s.name);
    return out;
}

int
runScenarioMain(const std::string &name)
{
    const Scenario *scenario = ScenarioRegistry::instance().find(name);
    if (!scenario) {
        std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
        return 2;
    }
    ExperimentEngine engine;
    const auto outcomes = engine.run(scenario->specs());
    scenario->report(outcomes, stdout);
    return 0;
}

} // namespace sb
