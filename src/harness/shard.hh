/**
 * @file
 * Shard dispatcher: fault-tolerant multi-process execution of a cell
 * batch across supervised `sbsim serve` workers.
 *
 * The dispatcher partitions cells across N shards by specKey (stable
 * content addressing, so the same cell always homes to the same
 * shard and its worker's warm cache), spawns one worker process per
 * shard over a socketpair, and multiplexes all of them from a single
 * poll() loop. Scheduling is work-stealing: an idle worker drains
 * its home shard first, then steals from the tail of the longest
 * remaining queue, so a shard of slow cells cannot strand the rest
 * of the machine.
 *
 * Supervision and failure semantics:
 *  - a worker that exits, breaks its stream, or never says hello is
 *    a CRASH; one that misses its per-cell kill deadline is a HANG
 *    and is SIGKILLed. Either way the in-flight cell is retried with
 *    capped exponential backoff (backoffDelayMs) and the slot is
 *    respawned;
 *  - a cell whose attempts exceed the cap is QUARANTINED: it gets a
 *    stub outcome (stats["quarantined"] = 1) and lands on the
 *    report's poisoned-cell list instead of aborting the batch;
 *  - a slot whose respawns keep dying without completing a single
 *    cell is abandoned; when every slot is abandoned the dispatcher
 *    DEGRADES to in-process execution of the remaining cells, so a
 *    broken worker binary can slow a batch down but never fail it;
 *  - SIGINT/SIGTERM (common/signals.hh) stops dispatch, terminates
 *    and reaps workers, and returns partial results with the
 *    unfinished cells marked stats["interrupted"] = 1.
 *
 * Workers persist their results through the shared crash-safe
 * ResultCache before replying, so a worker killed between store and
 * reply loses nothing: the retry is served from the cache, and
 * aggregates stay bit-identical to an in-process run.
 */

#ifndef SB_HARNESS_SHARD_HH
#define SB_HARNESS_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sb
{

/**
 * Retry delay before attempt @p attempt (1-based: the delay after
 * the first failure is attempt 1): base * 2^(attempt-1), capped.
 */
unsigned backoffDelayMs(unsigned attempt, unsigned baseMs,
                        unsigned capMs);

/**
 * Home shard of each cell: FNV-1a of its key, modulo @p shards.
 * Deterministic across processes and runs.
 */
std::vector<unsigned> partitionByKey(const std::vector<std::string> &keys,
                                     unsigned shards);

struct ShardOptions
{
    /** Worker processes (= shards). */
    unsigned shards = 2;
    /** Shared result-cache directory passed to workers; empty runs
     *  the workers uncached. */
    std::string cacheDir;
    /** Worker binary (the sbsim executable). */
    std::string workerPath;
    /**
     * Full worker argv override for tests (e.g. a fake worker that
     * always dies). Empty = `<workerPath> serve --fd <n>
     * [--cache-dir <dir>]`.
     */
    std::vector<std::string> workerArgv;
    /** Per-cell wall-clock budget in seconds; 0 = a generous default.
     *  Workers get it as their deadline; the dispatcher kills at a
     *  slightly larger deadline (the backstop for wedged workers). */
    double cellTimeoutSec = 0;
    /** Attempts per cell before quarantine. */
    unsigned maxAttemptsPerCell = 3;
    /** Consecutive respawns of one slot without a completed cell
     *  before the slot is abandoned. */
    unsigned maxBarrenSpawns = 3;
    /** Backoff schedule (see backoffDelayMs). */
    unsigned backoffBaseMs = 25;
    unsigned backoffCapMs = 2000;
};

/** What happened while executing one batch (folded into EngineStats
 *  and the operator-facing grid summary). */
struct ShardReport
{
    unsigned workersSpawned = 0;
    std::uint64_t crashes = 0;   ///< Worker exits / broken streams.
    std::uint64_t hangs = 0;     ///< Kill-deadline SIGKILLs.
    std::uint64_t retries = 0;   ///< Cells re-dispatched after failure.
    std::uint64_t stolen = 0;    ///< Cells run off their home shard.
    std::uint64_t inProcess = 0; ///< Cells run by the dispatcher itself.
    bool degraded = false;       ///< Every slot abandoned; ran in-process.
    bool interrupted = false;    ///< Stopped by SIGINT/SIGTERM.
    /** specKeys of quarantined cells (poisoned-cell list). */
    std::vector<std::string> quarantinedKeys;
};

class ShardDispatcher
{
  public:
    explicit ShardDispatcher(ShardOptions options);
    ~ShardDispatcher();

    ShardDispatcher(const ShardDispatcher &) = delete;
    ShardDispatcher &operator=(const ShardDispatcher &) = delete;

    /**
     * Execute every cell; results match the input order. @p keys
     * parallels @p specs (a cell's cache address, or "" for
     * uncacheable cells). Quarantined / interrupted cells come back
     * as stub outcomes with the corresponding marker stat.
     */
    std::vector<RunOutcome> run(const std::vector<RunSpec> &specs,
                                const std::vector<std::string> &keys);

    /** Per-cell: true when a worker already persisted the result to
     *  the shared cache (the caller need not store it again). */
    const std::vector<bool> &persistedByWorker() const
    {
        return persisted;
    }

    const ShardReport &report() const { return rep; }

  private:
    struct Worker;
    struct Batch;

    void spawnWorker(Worker &worker);
    void killWorker(Worker &worker);
    void reapWorker(Worker &worker);
    void shutdownWorkers();
    void onWorkerDeath(Worker &worker, Batch &batch, bool hang);
    void assignWork(Worker &worker, Batch &batch);
    bool handleFrames(Worker &worker, Batch &batch);
    void runRemainingInProcess(Batch &batch);

    ShardOptions opt;
    ShardReport rep;
    std::vector<Worker> workers;
    std::vector<bool> persisted;
};

} // namespace sb

#endif // SB_HARNESS_SHARD_HH
