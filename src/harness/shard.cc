#include "harness/shard.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/signals.hh"
#include "harness/protocol.hh"
#include "harness/reporting.hh"

namespace sb
{

namespace
{

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/** Grace for a fresh worker to say hello (covers exec + cache load). */
constexpr int helloTimeoutMs = 20000;

/** Kill deadline when no cell timeout is configured: generous enough
 *  for any legitimate cell, finite so a wedged worker cannot hold a
 *  slot forever. */
constexpr double defaultKillDeadlineSec = 300.0;

int
toMsClamped(TimePoint deadline, TimePoint now)
{
    if (deadline <= now)
        return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - now)
                        .count();
    return static_cast<int>(std::min<long long>(ms, 500));
}

RunOutcome
stubOutcome(const RunSpec &spec, const char *marker)
{
    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.stats[marker] = 1;
    return out;
}

} // anonymous namespace

unsigned
backoffDelayMs(unsigned attempt, unsigned baseMs, unsigned capMs)
{
    if (attempt == 0 || baseMs == 0)
        return 0;
    std::uint64_t delay = baseMs;
    for (unsigned i = 1; i < attempt && delay < capMs; ++i)
        delay *= 2;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(delay, capMs));
}

std::vector<unsigned>
partitionByKey(const std::vector<std::string> &keys, unsigned shards)
{
    sb_assert(shards > 0, "partitionByKey: zero shards");
    std::vector<unsigned> home(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        home[i] = static_cast<unsigned>(
            fnv1aString(fnv1aBasis, keys[i]) % shards);
    return home;
}

// --- Dispatcher internals ----------------------------------------------

struct ShardDispatcher::Worker
{
    enum class State
    {
        Dead,     ///< Slot abandoned (or never started).
        Spawning, ///< Waiting for hello.
        Idle,     ///< Ready for a cell.
        Busy,     ///< A cell is in flight.
    };

    pid_t pid = -1;
    int fd = -1;
    FrameReader reader;
    State state = State::Dead;
    TimePoint deadline{};        ///< Hello or kill deadline.
    std::size_t cell = npos;     ///< In-flight cell (Busy).
    unsigned shard = 0;          ///< Home shard (= slot index).
    unsigned cellsSinceSpawn = 0;
    unsigned barrenSpawns = 0;   ///< Consecutive spawns with no work done.
};

struct ShardDispatcher::Batch
{
    enum class CellState
    {
        Pending, ///< Queued on a shard.
        Delayed, ///< Failed; waiting out its backoff.
        Running, ///< In flight on a worker.
        Done,    ///< Resolved (result, quarantine stub, or interrupt).
    };

    const std::vector<RunSpec> *specs = nullptr;
    const std::vector<std::string> *keys = nullptr;
    std::vector<RunOutcome> results;
    std::vector<CellState> state;
    std::vector<unsigned> attempts;
    std::vector<TimePoint> notBefore;
    std::vector<std::deque<std::size_t>> queues; ///< Per-shard FIFO.
    std::size_t remaining = 0;
};

ShardDispatcher::ShardDispatcher(ShardOptions options)
    : opt(std::move(options))
{
    if (opt.shards == 0)
        opt.shards = 1;
    // A worker that died mid-frame must surface as EPIPE, not kill
    // the dispatcher (installSignalHandlers also arranges this, but
    // the dispatcher must be safe standalone, e.g. under a test
    // harness that did not install handlers).
    ::signal(SIGPIPE, SIG_IGN);
}

ShardDispatcher::~ShardDispatcher()
{
    shutdownWorkers();
}

void
ShardDispatcher::spawnWorker(Worker &worker)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        sb_warn("shard: socketpair failed (", std::strerror(errno),
                "); abandoning slot ", worker.shard);
        worker.state = Worker::State::Dead;
        return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        sb_warn("shard: fork failed (", std::strerror(errno),
                "); abandoning slot ", worker.shard);
        ::close(sv[0]);
        ::close(sv[1]);
        worker.state = Worker::State::Dead;
        return;
    }
    if (pid == 0) {
        // Child. Drop every parent-side descriptor we inherited so a
        // sibling's EOF detection is not defeated by our copy of its
        // stream, then exec the worker with its end of the pair.
        ::close(sv[0]);
        for (const Worker &other : workers)
            if (other.fd >= 0)
                ::close(other.fd);
        std::vector<std::string> args = opt.workerArgv;
        if (args.empty()) {
            args = {opt.workerPath, "serve", "--fd",
                    std::to_string(sv[1])};
            if (!opt.cacheDir.empty()) {
                args.push_back("--cache-dir");
                args.push_back(opt.cacheDir);
            }
        }
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    ::close(sv[1]);
    ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    worker.pid = pid;
    worker.fd = sv[0];
    worker.reader = FrameReader{};
    worker.state = Worker::State::Spawning;
    worker.deadline =
        Clock::now() + std::chrono::milliseconds(helloTimeoutMs);
    worker.cell = npos;
    worker.cellsSinceSpawn = 0;
    ++rep.workersSpawned;
}

void
ShardDispatcher::killWorker(Worker &worker)
{
    if (worker.pid > 0)
        ::kill(worker.pid, SIGKILL);
}

void
ShardDispatcher::reapWorker(Worker &worker)
{
    if (worker.fd >= 0) {
        ::close(worker.fd);
        worker.fd = -1;
    }
    if (worker.pid > 0) {
        int status = 0;
        while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
        }
        worker.pid = -1;
    }
}

void
ShardDispatcher::shutdownWorkers()
{
    // Best effort: ask politely, give the cohort a moment, then kill.
    bool anyAlive = false;
    const std::string bye = makeShutdownCmd().dump();
    for (Worker &worker : workers) {
        if (worker.pid <= 0)
            continue;
        anyAlive = true;
        if (worker.fd >= 0)
            writeFrame(worker.fd, bye);
    }
    if (!anyAlive)
        return;
    const TimePoint patience =
        Clock::now() + std::chrono::milliseconds(500);
    for (Worker &worker : workers) {
        if (worker.pid <= 0)
            continue;
        int status = 0;
        while (true) {
            const pid_t got = ::waitpid(worker.pid, &status, WNOHANG);
            if (got == worker.pid || (got < 0 && errno != EINTR))
                break;
            if (Clock::now() >= patience) {
                ::kill(worker.pid, SIGKILL);
                while (::waitpid(worker.pid, &status, 0) < 0
                       && errno == EINTR) {
                }
                break;
            }
            ::usleep(10000);
        }
        worker.pid = -1;
        if (worker.fd >= 0) {
            ::close(worker.fd);
            worker.fd = -1;
        }
        worker.state = Worker::State::Dead;
    }
}

void
ShardDispatcher::onWorkerDeath(Worker &worker, Batch &batch, bool hang)
{
    reapWorker(worker);
    if (hang)
        ++rep.hangs;
    else
        ++rep.crashes;

    const std::size_t cell = worker.cell;
    worker.cell = npos;
    if (cell != npos) {
        Batch::CellState &st = batch.state[cell];
        unsigned &attempts = batch.attempts[cell];
        ++attempts;
        if (attempts >= opt.maxAttemptsPerCell) {
            // Poisoned cell: it keeps taking workers down with it.
            // Stub it out and report it instead of aborting the batch
            // (or retrying forever).
            const std::string &key = (*batch.keys)[cell];
            sb_warn("shard: quarantining cell ",
                    (*batch.specs)[cell].workload, " (key ",
                    key.empty() ? "<uncacheable>" : key, ") after ",
                    attempts, " failed attempt(s)");
            rep.quarantinedKeys.push_back(
                key.empty() ? (*batch.specs)[cell].specKey() : key);
            batch.results[cell] =
                stubOutcome((*batch.specs)[cell], "quarantined");
            st = Batch::CellState::Done;
            --batch.remaining;
        } else {
            ++rep.retries;
            st = Batch::CellState::Delayed;
            batch.notBefore[cell] =
                Clock::now()
                + std::chrono::milliseconds(backoffDelayMs(
                    attempts, opt.backoffBaseMs, opt.backoffCapMs));
        }
    }

    worker.barrenSpawns =
        worker.cellsSinceSpawn == 0 ? worker.barrenSpawns + 1 : 0;
    if (worker.barrenSpawns >= opt.maxBarrenSpawns) {
        sb_warn("shard: slot ", worker.shard, " abandoned after ",
                worker.barrenSpawns,
                " consecutive spawns with no completed cell");
        worker.state = Worker::State::Dead;
        return;
    }
    spawnWorker(worker);
}

void
ShardDispatcher::assignWork(Worker &worker, Batch &batch)
{
    // Home shard first; steal from the tail of the longest queue when
    // it runs dry, so one shard of slow cells cannot strand the rest.
    std::deque<std::size_t> *queue = &batch.queues[worker.shard];
    bool steal = false;
    if (queue->empty()) {
        std::size_t best = 0;
        for (std::size_t q = 1; q < batch.queues.size(); ++q)
            if (batch.queues[q].size() > batch.queues[best].size())
                best = q;
        if (batch.queues[best].empty())
            return; // Nothing runnable anywhere right now.
        queue = &batch.queues[best];
        steal = best != worker.shard;
    }

    const std::size_t cell = steal ? queue->back() : queue->front();
    if (steal) {
        queue->pop_back();
        ++rep.stolen;
    } else {
        queue->pop_front();
    }

    const std::uint64_t timeoutMs =
        opt.cellTimeoutSec > 0
            ? static_cast<std::uint64_t>(opt.cellTimeoutSec * 1000.0)
            : 0;
    const Json cmd = makeRunCmd(cell, (*batch.keys)[cell],
                                (*batch.specs)[cell], timeoutMs);
    if (!writeFrame(worker.fd, cmd.dump())) {
        // The worker died between frames; requeue the cell untouched
        // (this is a worker failure, not a cell failure) and handle
        // the death.
        queue->push_front(cell);
        onWorkerDeath(worker, batch, false);
        return;
    }
    batch.state[cell] = Batch::CellState::Running;
    worker.cell = cell;
    worker.state = Worker::State::Busy;
    const double killSec = opt.cellTimeoutSec > 0
                               ? opt.cellTimeoutSec + 2.0
                               : defaultKillDeadlineSec;
    worker.deadline =
        Clock::now()
        + std::chrono::milliseconds(
            static_cast<long long>(killSec * 1000.0));
}

bool
ShardDispatcher::handleFrames(Worker &worker, Batch &batch)
{
    char chunk[16384];
    while (true) {
        const ssize_t n = ::read(worker.fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        if (n == 0)
            return false; // EOF: the worker is gone.
        worker.reader.feed(chunk, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(chunk))
            break;
    }

    std::string payload;
    while (worker.reader.next(payload)) {
        Json msg;
        if (!Json::parse(payload, msg))
            return false;
        const std::string cmd = messageCmd(msg);
        if (cmd == "hello") {
            if (worker.state != Worker::State::Spawning
                || !msg.has("proto")
                || msg.at("proto").kind() != Json::Kind::Uint
                || msg.at("proto").asUint() != shardProtocolVersion) {
                sb_warn("shard: bad hello from slot ", worker.shard);
                return false;
            }
            worker.state = Worker::State::Idle;
            continue;
        }
        if (cmd == "done") {
            if (worker.state != Worker::State::Busy || !msg.has("id")
                || msg.at("id").kind() != Json::Kind::Uint
                || msg.at("id").asUint() != worker.cell
                || !msg.has("cached")
                || msg.at("cached").kind() != Json::Kind::Bool
                || !msg.has("outcome"))
                return false;
            RunOutcome outcome;
            if (!outcomeFromJson(msg.at("outcome"), outcome))
                return false;
            const std::size_t cell = worker.cell;
            batch.results[cell] = std::move(outcome);
            batch.state[cell] = Batch::CellState::Done;
            persisted[cell] = msg.at("cached").asBool();
            --batch.remaining;
            worker.cell = npos;
            worker.state = Worker::State::Idle;
            ++worker.cellsSinceSpawn;
            worker.barrenSpawns = 0;
            continue;
        }
        sb_warn("shard: unexpected '", cmd, "' from slot ",
                worker.shard);
        return false;
    }
    return !worker.reader.corrupt();
}

void
ShardDispatcher::runRemainingInProcess(Batch &batch)
{
    RunHooks hooks;
    hooks.wallDeadlineSec = opt.cellTimeoutSec;
    hooks.interruptible = true;
    for (std::size_t cell = 0; cell < batch.results.size(); ++cell) {
        if (batch.state[cell] == Batch::CellState::Done)
            continue;
        if (interruptRequested()) {
            rep.interrupted = true;
            batch.results[cell] =
                stubOutcome((*batch.specs)[cell], "interrupted");
        } else {
            batch.results[cell] =
                ExperimentRunner::runOne((*batch.specs)[cell], hooks);
            ++rep.inProcess;
        }
        batch.state[cell] = Batch::CellState::Done;
        --batch.remaining;
    }
}

std::vector<RunOutcome>
ShardDispatcher::run(const std::vector<RunSpec> &specs,
                     const std::vector<std::string> &keys)
{
    sb_assert(specs.size() == keys.size(), "shard: specs/keys skew");

    Batch batch;
    batch.specs = &specs;
    batch.keys = &keys;
    batch.results.resize(specs.size());
    batch.state.assign(specs.size(), Batch::CellState::Pending);
    batch.attempts.assign(specs.size(), 0);
    batch.notBefore.assign(specs.size(), TimePoint{});
    batch.remaining = specs.size();
    persisted.assign(specs.size(), false);
    if (specs.empty())
        return {};

    const unsigned shards = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, opt.shards), specs.size()));
    batch.queues.resize(shards);
    const std::vector<unsigned> home = partitionByKey(keys, shards);
    for (std::size_t i = 0; i < specs.size(); ++i)
        batch.queues[home[i]].push_back(i);

    workers.clear();
    workers.resize(shards);
    for (unsigned s = 0; s < shards; ++s) {
        workers[s].shard = s;
        spawnWorker(workers[s]);
    }

    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfdWorker;
    while (batch.remaining > 0) {
        if (interruptRequested()) {
            rep.interrupted = true;
            break;
        }

        // Promote delayed cells whose backoff has elapsed.
        const TimePoint now = Clock::now();
        TimePoint nextEvent = now + std::chrono::milliseconds(500);
        for (std::size_t cell = 0; cell < batch.state.size(); ++cell) {
            if (batch.state[cell] != Batch::CellState::Delayed)
                continue;
            if (batch.notBefore[cell] <= now) {
                batch.state[cell] = Batch::CellState::Pending;
                batch.queues[home[cell] % shards].push_back(cell);
            } else {
                nextEvent = std::min(nextEvent, batch.notBefore[cell]);
            }
        }

        for (Worker &worker : workers)
            if (worker.state == Worker::State::Idle)
                assignWork(worker, batch);

        bool anyLive = false;
        pfds.clear();
        pfdWorker.clear();
        for (std::size_t w = 0; w < workers.size(); ++w) {
            Worker &worker = workers[w];
            if (worker.state == Worker::State::Dead)
                continue;
            anyLive = true;
            if (worker.state != Worker::State::Idle)
                nextEvent = std::min(nextEvent, worker.deadline);
            pollfd pfd;
            pfd.fd = worker.fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            pfds.push_back(pfd);
            pfdWorker.push_back(w);
        }
        if (!anyLive) {
            // No worker can be kept alive: the architecture degrades,
            // the batch does not fail.
            sb_warn("shard: no live workers; degrading to in-process "
                    "execution of ", batch.remaining, " cell(s)");
            rep.degraded = true;
            runRemainingInProcess(batch);
            break;
        }

        const int ready =
            ::poll(pfds.data(), pfds.size(), toMsClamped(nextEvent, now));
        if (ready < 0 && errno != EINTR)
            sb_panic("shard: poll failed: ", std::strerror(errno));

        for (std::size_t p = 0; p < pfds.size(); ++p) {
            if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &worker = workers[pfdWorker[p]];
            if (worker.state == Worker::State::Dead)
                continue;
            if (!handleFrames(worker, batch))
                onWorkerDeath(worker, batch, false);
        }

        // Kill-deadline sweep: a worker that blew its hello or cell
        // deadline is wedged; SIGKILL it and retry the cell elsewhere.
        const TimePoint after = Clock::now();
        for (Worker &worker : workers) {
            if (worker.state == Worker::State::Dead
                || worker.state == Worker::State::Idle
                || worker.deadline > after)
                continue;
            sb_warn("shard: slot ", worker.shard,
                    worker.state == Worker::State::Spawning
                        ? " never said hello"
                        : " missed its cell deadline",
                    "; killing pid ", worker.pid);
            killWorker(worker);
            onWorkerDeath(worker, batch,
                          worker.state != Worker::State::Spawning);
        }
    }

    if (rep.interrupted) {
        for (std::size_t cell = 0; cell < batch.results.size(); ++cell) {
            if (batch.state[cell] == Batch::CellState::Done)
                continue;
            batch.results[cell] =
                stubOutcome((*batch.specs)[cell], "interrupted");
            batch.state[cell] = Batch::CellState::Done;
            --batch.remaining;
        }
    }

    shutdownWorkers();
    return std::move(batch.results);
}

} // namespace sb
