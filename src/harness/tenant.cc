#include "harness/tenant.hh"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/core.hh"
#include "core/security_contract.hh"
#include "harness/scenario.hh"
#include "secure/factory.hh"

namespace sb
{

namespace
{

constexpr const char *tenantPrefix = "mt:";

/** The scenario's canonical heavy-traffic cell. */
ServerMixParams
scenarioParams()
{
    return ServerMixParams{};
}

} // anonymous namespace

std::string
tenantWorkloadName(const ServerMixParams &p)
{
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "mt:tenants=%u:requests=%u:work=%u:hostile=%u:"
                  "seed=%" PRIu64,
                  p.tenants, p.requests, p.work, p.hostile ? 1u : 0u,
                  p.seed);
    return buf;
}

bool
isTenantWorkload(const std::string &workload)
{
    return workload.rfind(tenantPrefix, 0) == 0;
}

bool
parseTenantWorkload(const std::string &workload, ServerMixParams &out)
{
    unsigned tenants = 0;
    unsigned requests = 0;
    unsigned work = 0;
    unsigned hostile = 0;
    std::uint64_t seed = 0;
    if (std::sscanf(workload.c_str(),
                    "mt:tenants=%u:requests=%u:work=%u:hostile=%u:"
                    "seed=%" SCNu64,
                    &tenants, &requests, &work, &hostile, &seed)
        != 5) {
        return false;
    }
    if (hostile > 1)
        return false;
    out.tenants = tenants;
    out.requests = requests;
    out.work = work;
    out.hostile = hostile != 0;
    out.seed = seed;
    return true;
}

RunOutcome
runServerMixCell(const RunSpec &spec)
{
    ServerMixParams params;
    if (!parseTenantWorkload(spec.workload, params))
        sb_fatal("malformed tenant workload '", spec.workload, "'");

    const ServerMixProgram mix = buildServerMix(params);
    Core core(spec.core, spec.scheme, makeScheme(spec.scheme),
              mix.program);
    // The leakage column needs owner-aware labels whatever the build
    // default (the shadow engine is a pure observer).
    core.setContractShadowEnabled(true);

    // A request is served when its terminating switch marker commits;
    // service time is the gap back to the previous served request
    // (context-switch overhead bills to the request that incurred it).
    const std::unordered_set<std::uint32_t> ends(
        mix.requestEnds.begin(), mix.requestEnds.end());
    Histogram latency(2048, 16);
    Cycle lastEnd = 0;
    core.setCommitHook([&](const DynInst &inst, Cycle at) {
        if (ends.count(inst.pc) != 0) {
            latency.sample(at - lastEnd);
            lastEnd = at;
        }
    });

    const RunResult res =
        core.run(100'000'000'000ULL, spec.maxCycles);

    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.cycles = res.cycles;
    out.instructions = res.instructions;
    out.ipc = res.ipc();
    out.transmitViolations = core.monitor().transmitViolations();
    out.consumeViolations = core.monitor().consumeViolations();

    out.stats["mt_tenants"] = params.tenants;
    out.stats["mt_hostile"] = params.hostile ? 1 : 0;
    out.stats["mt_requests"] = latency.count();
    out.stats["mt_total_requests"] = mix.totalRequests;
    out.stats["mt_p50"] = latency.quantile(0.50);
    out.stats["mt_p95"] = latency.quantile(0.95);
    out.stats["mt_p99"] = latency.quantile(0.99);
    out.stats["mt_lat_mean"] =
        static_cast<std::uint64_t>(latency.mean() + 0.5);
    out.stats["mt_context_switches"] = core.contextSwitchCount();
    out.stats["mt_flush_on_switch"] =
        spec.core.flushPredictorsOnSwitch ? 1 : 0;
    out.stats["mt_cross_viol"] =
        core.contractShadow().crossTenantViolations();
    const ContractViolation &first =
        core.contractShadow().firstCrossTenantViolation();
    if (first.valid()) {
        out.stats["mt_first_cross_cycle"] = first.cycle;
        out.stats["mt_first_cross_seq"] = first.seq;
        out.stats["mt_first_cross_pc"] = first.pc;
    }
    out.stats["mt_halted"] = res.halted ? 1 : 0;
    if (!res.halted)
        out.stats["watchdog_tripped"] = 1; // Wedged: never cache.
    return out;
}

namespace
{

void
writeTenantJson(const std::vector<RunOutcome> &outcomes,
                const std::string &workload)
{
    Json doc = Json::object();
    doc.set("schema", Json::num(std::uint64_t(1)));
    doc.set("workload", Json::str(workload));
    Json cells = Json::array();
    for (const RunOutcome &o : outcomes) {
        Json c = Json::object();
        c.set("scheme", Json::str(schemeName(o.scheme)));
        c.set("core", Json::str(o.coreName));
        c.set("flush_on_switch",
              Json::boolean(o.stat("mt_flush_on_switch") != 0));
        c.set("cycles", Json::num(o.cycles));
        c.set("instructions", Json::num(o.instructions));
        c.set("ipc", Json::num(o.ipc));
        c.set("requests", Json::num(o.stat("mt_requests")));
        c.set("throughput_req_per_mcyc",
              Json::num(o.cycles == 0
                            ? 0.0
                            : static_cast<double>(o.stat("mt_requests"))
                                  * 1e6
                                  / static_cast<double>(o.cycles)));
        c.set("p50", Json::num(o.stat("mt_p50")));
        c.set("p95", Json::num(o.stat("mt_p95")));
        c.set("p99", Json::num(o.stat("mt_p99")));
        c.set("lat_mean", Json::num(o.stat("mt_lat_mean")));
        c.set("context_switches",
              Json::num(o.stat("mt_context_switches")));
        c.set("cross_tenant_violations",
              Json::num(o.stat("mt_cross_viol")));
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    // Distinct from the engine's generic SBSIM_multi_tenant.json
    // (--json) dump: this flat summary is written on every run, the
    // gate scripts parse it without needing --json.
    std::FILE *f = std::fopen("SBSIM_multi_tenant_summary.json", "w");
    if (!f)
        return;
    const std::string text = doc.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

void
tenantReport(const std::vector<RunOutcome> &outcomes, std::FILE *out)
{
    const ServerMixParams params = scenarioParams();
    std::fprintf(out,
                 "=== Multi-tenant server mix: %u tenants x %u "
                 "requests (hostile tenant 0), schemes x switch "
                 "policies ===\n\n",
                 params.tenants, params.requests);

    TextTable t;
    t.header({"scheme", "core", "switch-policy", "req", "req/Mcyc",
              "p50", "p95", "p99", "switches", "x-tenant"});
    for (const RunOutcome &o : outcomes) {
        const bool flush = o.stat("mt_flush_on_switch") != 0;
        const double tput =
            o.cycles == 0
                ? 0.0
                : static_cast<double>(o.stat("mt_requests")) * 1e6
                      / static_cast<double>(o.cycles);
        t.row({schemeName(o.scheme), o.coreName,
               flush ? "flush" : "keep",
               std::to_string(o.stat("mt_requests")),
               TextTable::num(tput, 1),
               std::to_string(o.stat("mt_p50")),
               std::to_string(o.stat("mt_p95")),
               std::to_string(o.stat("mt_p99")),
               std::to_string(o.stat("mt_context_switches")),
               o.stat("mt_cross_viol") == 0
                   ? "closed"
                   : "LEAK(" + std::to_string(o.stat("mt_cross_viol"))
                         + ")"});
    }
    std::fputs(t.render().c_str(), out);

    // The hostile tenant's gadget trains entirely inside its own
    // requests, so the predictor-flush switch policy alone cannot
    // close it — only schemes with a dataflow obligation
    // (transmitter-/consume-safe) must stop the transient transmit.
    // Sandboxing-only schemes (Delay-on-Miss) never promised to: the
    // victim keeps its own secret L1-hot, and DoM only delays
    // *missing* speculative loads.
    bool baselineLeaks = false;
    bool dataflowLeaks = false;
    for (const RunOutcome &o : outcomes) {
        SchemeConfig sc;
        sc.scheme = o.scheme;
        const SecurityContract contract = makeScheme(sc)->contract();
        if (contract.policy == ContractPolicy::None)
            baselineLeaks |= o.stat("mt_cross_viol") != 0;
        else if (contract.obligesTransmitterSafety
                 || contract.obligesConsumeSafety)
            dataflowLeaks |= o.stat("mt_cross_viol") != 0;
    }
    std::fprintf(out,
                 "\nhostile tenant: %s on Baseline, %s under "
                 "dataflow (transmitter-/consume-safe) schemes\n",
                 baselineLeaks ? "cross-tenant transmit observed"
                               : "no cross-tenant transmit (!)",
                 dataflowLeaks ? "NOT closed (!)" : "closed");
    writeTenantJson(outcomes, tenantWorkloadName(params));
    std::fprintf(out, "wrote SBSIM_multi_tenant_summary.json\n");
}

} // anonymous namespace

void
registerTenantScenarios(ScenarioRegistry &registry)
{
    Scenario s;
    s.name = "multi_tenant";
    s.title = "Consolidated server mix: per-scheme throughput, "
              "p50/p95/p99 tail latency, cross-tenant leakage";
    s.specs = [] {
        std::vector<RunSpec> specs;
        const std::string workload =
            tenantWorkloadName(scenarioParams());
        for (const CoreConfig &core :
             {CoreConfig::mega(), CoreConfig::megaFlush()}) {
            for (const SchemeConfig &scheme : allSchemeConfigs()) {
                RunSpec spec;
                spec.core = core;
                spec.scheme = scheme;
                spec.workload = workload;
                spec.warmupInsts = 0;
                spec.measureInsts = 0;
                specs.push_back(std::move(spec));
            }
        }
        return specs;
    };
    s.report = tenantReport;
    registry.add(std::move(s));
}

} // namespace sb
