#include "harness/serve.hh"

#include <unistd.h>

#include <cstdlib>
#include <memory>

#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/protocol.hh"
#include "harness/reporting.hh"
#include "harness/result_cache.hh"

namespace sb
{

namespace
{

/** Exit code for a protocol/stream failure (vs 0 for clean shutdown). */
constexpr int serveStreamError = 3;

/** SB_FAULT=crash exit code; distinctive in waitpid status. */
constexpr int serveFaultExit = 70;

} // anonymous namespace

int
serveMain(const ServeOptions &options)
{
    std::unique_ptr<ResultCache> cache;
    if (!options.cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(options.cacheDir);
        if (!cache->ok())
            cache.reset(); // Already warned; run uncached.
    }

    if (!writeFrame(options.outFd, makeHelloMsg().dump()))
        return serveStreamError;

    std::string payload;
    while (true) {
        // Block indefinitely: an idle worker costs nothing, and a
        // dying dispatcher delivers EOF which ends the loop.
        const RecvStatus status = readFrame(options.inFd, payload, -1);
        if (status == RecvStatus::Closed)
            return 0; // Dispatcher went away; nothing left to serve.
        if (status != RecvStatus::Ok)
            return serveStreamError;

        Json msg;
        if (!Json::parse(payload, msg)) {
            sb_warn("serve: unparseable frame (", payload.size(),
                    " bytes); exiting");
            return serveStreamError;
        }
        const std::string cmd = messageCmd(msg);
        if (cmd == "shutdown")
            return 0;
        if (cmd != "run") {
            sb_warn("serve: unknown command '", cmd, "'; exiting");
            return serveStreamError;
        }
        if (!msg.has("id") || msg.at("id").kind() != Json::Kind::Uint
            || !msg.has("key")
            || msg.at("key").kind() != Json::Kind::String
            || !msg.has("timeout_ms")
            || msg.at("timeout_ms").kind() != Json::Kind::Uint
            || !msg.has("spec")) {
            sb_warn("serve: malformed run command; exiting");
            return serveStreamError;
        }
        RunSpec spec;
        if (!runSpecFromJson(msg.at("spec"), spec)) {
            sb_warn("serve: undecodable spec; exiting");
            return serveStreamError;
        }
        const std::uint64_t id = msg.at("id").asUint();
        const std::string &key = msg.at("key").asString();
        const std::uint64_t timeoutMs = msg.at("timeout_ms").asUint();

        // Injected fault: a poisoned cell crashes every worker that
        // touches it, on every attempt — the quarantine trigger.
        if (faultPoisoned(spec.workload))
            _exit(serveFaultExit);

        RunOutcome outcome;
        bool cached = false;
        if (cache && !key.empty() && cache->lookup(key, outcome)
            && outcome.workload == spec.workload
            && outcome.coreName == spec.core.name
            && outcome.scheme == spec.scheme.scheme) {
            cached = true;
        } else {
            RunHooks hooks;
            // The dispatcher's kill deadline backs this up; the
            // worker-side deadline lets a slow cell end cleanly with
            // a watchdog outcome instead of a SIGKILL.
            hooks.wallDeadlineSec =
                timeoutMs ? static_cast<double>(timeoutMs) / 1000.0 : 0;
            outcome = ExperimentRunner::runOne(spec, hooks);
            if (cache && !key.empty() && outcomeIsCacheable(outcome)) {
                // Persist before replying: a crash in the gap costs
                // nothing (the retry is served from the cache), while
                // the reverse order could lose a computed cell.
                cache->store(key, outcome);
                cached = true;
            }
        }

        // Injected faults at the reply boundary: the work (and any
        // cache store) is done, the dispatcher never hears about it.
        if (faultPoint("crash"))
            _exit(serveFaultExit);
        if (faultPoint("hang")) {
            sb_warn("SB_FAULT hang: serve worker wedging");
            while (true)
                ::pause();
        }

        if (!writeFrame(options.outFd,
                        makeDoneMsg(id, outcome, cached).dump()))
            return serveStreamError;
    }
}

} // namespace sb
