#include "harness/result_cache.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/reporting.hh"

namespace sb
{

namespace
{

std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** write() the whole buffer, retrying on EINTR / partial writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** flock() retrying on EINTR (signals must not skip the lock). */
bool
lockFile(int fd, int op)
{
    while (::flock(fd, op) != 0) {
        if (errno != EINTR)
            return false;
    }
    return true;
}

} // anonymous namespace

std::string
frameCacheRecord(const std::string &key, const RunOutcome &outcome)
{
    Json rec = Json::object();
    rec.set("key", Json::str(key));
    rec.set("outcome", toJson(outcome));
    const std::string payload = rec.dump();
    // The frame is laid out by hand so the checksum covers the exact
    // payload bytes on disk; a reader locates them by offset + length
    // and never depends on serializer round-trip stability (doubles!).
    std::string line;
    line.reserve(payload.size() + 48);
    line += "{\"len\":";
    line += std::to_string(payload.size());
    line += ",\"sum\":\"";
    line += hex16(fnv1aString(fnv1aBasis, payload));
    line += "\",\"rec\":";
    line += payload;
    line += "}";
    return line;
}

bool
parseCacheLine(const std::string &line, std::string &key,
               RunOutcome &out, bool &legacy)
{
    legacy = false;
    static const std::string framedPrefix = "{\"len\":";
    if (line.compare(0, framedPrefix.size(), framedPrefix) == 0) {
        std::size_t pos = framedPrefix.size();
        std::size_t len = 0;
        const std::size_t lenStart = pos;
        while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9')
            len = len * 10 + static_cast<std::size_t>(line[pos++] - '0');
        if (pos == lenStart)
            return false;
        static const std::string sumTag = ",\"sum\":\"";
        if (line.compare(pos, sumTag.size(), sumTag) != 0)
            return false;
        pos += sumTag.size();
        if (pos + 16 > line.size())
            return false;
        const std::string sum = line.substr(pos, 16);
        pos += 16;
        static const std::string recTag = "\",\"rec\":";
        if (line.compare(pos, recTag.size(), recTag) != 0)
            return false;
        pos += recTag.size();
        // The payload must span exactly len bytes and leave only the
        // closing brace: a torn tail or a spliced next record fails
        // here before any checksum work.
        if (line.size() != pos + len + 1 || line.back() != '}')
            return false;
        const std::string payload = line.substr(pos, len);
        if (hex16(fnv1aString(fnv1aBasis, payload)) != sum)
            return false;
        Json rec;
        if (!Json::parse(payload, rec) || !rec.isObject()
            || !rec.has("key")
            || rec.at("key").kind() != Json::Kind::String
            || !rec.has("outcome")
            || !outcomeFromJson(rec.at("outcome"), out))
            return false;
        key = rec.at("key").asString();
        return true;
    }

    // Legacy frameless line: {"key":...,"outcome":...}. Accepted so
    // an existing cache survives the framing migration; the caller
    // compacts it into framed form.
    Json entry;
    if (!Json::parse(line, entry) || !entry.isObject()
        || !entry.has("key")
        || entry.at("key").kind() != Json::Kind::String
        || !entry.has("outcome")
        || !outcomeFromJson(entry.at("outcome"), out))
        return false;
    key = entry.at("key").asString();
    legacy = true;
    return true;
}

ResultCache::ResultCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    filePath = (std::filesystem::path(dir) / "results.jsonl").string();
    lockPath = (std::filesystem::path(dir) / "results.lock").string();
    if (ec) {
        sb_warn("cannot create cache directory '", dir,
                "': ", ec.message(), "; caching disabled");
        return;
    }

    // The lock file is a separate, never-renamed inode: flock()s on it
    // stay valid across compactions of the data file.
    lockFd = ::open(lockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (lockFd < 0) {
        sb_warn("cannot open '", lockPath, "': ", std::strerror(errno),
                "; caching disabled");
        return;
    }

    loadAndRepair();
}

void
ResultCache::loadAndRepair()
{
    // Exclusive: the load may compact (snapshot + rename), and no
    // append may land between the snapshot and the rename or it would
    // be stranded on the old inode.
    if (!lockFile(lockFd, LOCK_EX)) {
        sb_warn("cannot lock '", lockPath, "': ", std::strerror(errno),
                "; caching disabled");
        ::close(lockFd);
        lockFd = -1;
        return;
    }

    std::size_t legacyCount = 0;
    {
        std::ifstream in(filePath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string key;
            RunOutcome outcome;
            bool legacy = false;
            if (!parseCacheLine(line, key, outcome, legacy)) {
                ++damaged;
                continue;
            }
            if (legacy)
                ++legacyCount;
            entries[key] = std::move(outcome);
        }
    }

    if (damaged || legacyCount) {
        if (damaged)
            sb_warn("result cache ", filePath, ": skipped ", damaged,
                    " damaged record(s), compacting");
        // Rewrite the file from the records that verified, in framed
        // form, so damage (and the legacy format) is shed once
        // instead of being re-skipped on every load. The exclusive
        // lock is already held; write-then-rename keeps the file
        // whole if we die mid-compaction.
        const std::string tmp = filePath + ".compact";
        std::string blob;
        for (const auto &kv : entries) {
            blob += frameCacheRecord(kv.first, kv.second);
            blob += '\n';
        }
        const int tmpFd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
        bool written = tmpFd >= 0
                       && writeAll(tmpFd, blob.data(), blob.size())
                       && ::fsync(tmpFd) == 0;
        if (tmpFd >= 0)
            ::close(tmpFd);
        std::error_code ec;
        if (!written) {
            sb_warn("result cache ", filePath,
                    ": compaction write failed; keeping damaged file");
            std::filesystem::remove(tmp, ec);
        } else {
            std::filesystem::rename(tmp, filePath, ec);
            if (ec)
                sb_warn("result cache ", filePath,
                        ": compaction rename failed: ", ec.message());
        }
    }

    lockFile(lockFd, LOCK_UN);
}

ResultCache::~ResultCache()
{
    if (lockFd >= 0)
        ::close(lockFd);
}

bool
ResultCache::lookup(const std::string &key, RunOutcome &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end())
        return false;
    out = it->second;
    return true;
}

void
ResultCache::store(const std::string &key, const RunOutcome &out)
{
    std::string line = frameCacheRecord(key, out);
    line += '\n';

    std::lock_guard<std::mutex> lock(mutex);
    entries[key] = out;
    if (lockFd < 0)
        return;

    // Shared lock: appends may interleave with each other (each is a
    // single contiguous O_APPEND write) but never with a compaction.
    // The data file is re-opened per append so the write always lands
    // on the current inode, not one a concurrent compaction renamed
    // away; per-cell simulation cost dwarfs an open()+flock() pair.
    if (!lockFile(lockFd, LOCK_SH)) {
        sb_warn("result cache ", filePath, ": lock failed (",
                std::strerror(errno), "), entry not persisted");
        return;
    }
    const int fd = ::open(filePath.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        sb_warn("result cache ", filePath, ": open failed (",
                std::strerror(errno), "), entry not persisted");
        lockFile(lockFd, LOCK_UN);
        return;
    }
    if (faultPoint("torn-write")) {
        // Injected fault: behave like a writer killed mid-write and
        // leave a torn record. Loads must shed it (checksum framing)
        // and compaction must repair the file.
        sb_warn("SB_FAULT torn-write: tearing cache record for ", key);
        writeAll(fd, line.data(), line.size() / 2);
    } else if (!writeAll(fd, line.data(), line.size())) {
        sb_warn("result cache ", filePath, ": short write (",
                std::strerror(errno), "), entry may be torn");
    }
    ::close(fd);
    lockFile(lockFd, LOCK_UN);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

} // namespace sb
