#include "harness/result_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/reporting.hh"

namespace sb
{

ResultCache::ResultCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    filePath = (std::filesystem::path(dir) / "results.jsonl").string();
    if (ec) {
        sb_warn("cannot create cache directory '", dir,
                "': ", ec.message(), "; caching disabled");
        return;
    }

    std::ifstream in(filePath);
    std::string line;
    std::size_t bad = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Json entry;
        RunOutcome outcome;
        if (!Json::parse(line, entry) || !entry.isObject()
            || !entry.has("key")
            || entry.at("key").kind() != Json::Kind::String
            || !entry.has("outcome")
            || !outcomeFromJson(entry.at("outcome"), outcome)) {
            ++bad;
            continue;
        }
        entries[entry.at("key").asString()] = std::move(outcome);
    }
    in.close();
    if (bad) {
        sb_warn("result cache ", filePath, ": skipped ", bad,
                " unreadable line(s), compacting");
        // Rewrite the file from the entries that parsed, so damage
        // (a truncated trailing line from a killed writer, editor
        // garbage) is shed once instead of being re-skipped — and
        // re-warned about — on every load. Write-then-rename keeps
        // the file whole if we die mid-compaction; a concurrent
        // writer appending between the snapshot and the rename can
        // lose its line, which costs one re-simulation, never a
        // wrong result.
        const std::string tmp = filePath + ".compact";
        std::ofstream out(tmp, std::ios::trunc);
        for (const auto &kv : entries) {
            Json line = Json::object();
            line.set("key", Json::str(kv.first));
            line.set("outcome", toJson(kv.second));
            out << line.dump() << '\n';
        }
        out.close();
        std::error_code rename_ec;
        if (!out) {
            sb_warn("result cache ", filePath,
                    ": compaction write failed; keeping damaged file");
            std::filesystem::remove(tmp, rename_ec);
        } else {
            std::filesystem::rename(tmp, filePath, rename_ec);
            if (rename_ec)
                sb_warn("result cache ", filePath,
                        ": compaction rename failed: ",
                        rename_ec.message());
        }
    }

    appendFd = ::open(filePath.c_str(), O_WRONLY | O_APPEND | O_CREAT,
                      0644);
    if (appendFd < 0)
        sb_warn("cannot open '", filePath, "' for appending: ",
                std::strerror(errno), "; caching disabled");
}

ResultCache::~ResultCache()
{
    if (appendFd >= 0)
        ::close(appendFd);
}

bool
ResultCache::lookup(const std::string &key, RunOutcome &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end())
        return false;
    out = it->second;
    return true;
}

void
ResultCache::store(const std::string &key, const RunOutcome &out)
{
    Json entry = Json::object();
    entry.set("key", Json::str(key));
    entry.set("outcome", toJson(out));
    const std::string line = entry.dump() + "\n";

    std::lock_guard<std::mutex> lock(mutex);
    entries[key] = out;
    if (appendFd < 0)
        return;
    // One write() per line: with O_APPEND the kernel appends the
    // whole buffer contiguously, so concurrent writers (other
    // threads via the mutex, other processes via O_APPEND) cannot
    // splice partial lines into each other.
    const ssize_t written = ::write(appendFd, line.data(), line.size());
    if (written != static_cast<ssize_t>(line.size()))
        sb_warn("result cache ", filePath, ": short write (",
                written, "/", line.size(), "), entry may be dropped");
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

} // namespace sb
