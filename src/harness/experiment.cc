#include "harness/experiment.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/signals.hh"
#include "core/core.hh"
#include "harness/conformance.hh"
#include "harness/tenant.hh"
#include "harness/verify.hh"
#include "secure/factory.hh"
#include "trace/spec_suite.hh"

namespace sb
{

std::uint64_t
RunOutcome::stat(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

std::string
RunSpec::canonical() const
{
    std::ostringstream oss;
    oss << "schema=" << specSchemaVersion << "|core{"
        << core.canonical() << "}|scheme{" << scheme.canonical()
        << "}|workload=" << workload << "|" << mitigation.canonical()
        << "|warmup=" << warmupInsts << "|measure=" << measureInsts
        << "|maxcycles=" << maxCycles;
    return oss.str();
}

std::string
RunSpec::specKey() const
{
    // FNV-1a 64-bit over the canonical serialization.
    const std::uint64_t hash = fnv1aString(fnv1aBasis, canonical());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("SB_JOBS")) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && errno == 0 && v > 0
            && v <= maxJobs)
            return static_cast<unsigned>(v);
        sb_warn("ignoring SB_JOBS='", env, "' (want an integer in [1, ",
                maxJobs, "])");
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : numThreads(resolveJobs(threads))
{
}

RunOutcome
ExperimentRunner::runOne(const RunSpec &spec)
{
    return runOne(spec, RunHooks{});
}

RunOutcome
ExperimentRunner::runOne(const RunSpec &spec, const RunHooks &hooks)
{
    // Security-battery cells run the attack harness instead of a
    // windowed measurement; they share dedup/cache with everything
    // else because the dispatch key (the workload string) is part of
    // specKey(). They build their own cores, so the per-cell wall
    // deadline covers only windowed measurement cells — gadget and
    // fuzz cells are short and carry their own cycle watchdogs.
    if (isGadgetWorkload(spec.workload))
        return runGadgetCell(spec);
    if (isFuzzWorkload(spec.workload))
        return runFuzzCell(spec);
    if (isTenantWorkload(spec.workload))
        return runServerMixCell(spec);

    const Workload workload = SpecSuite::make(spec.workload);
    const TransformedProgram transformed =
        applyMitigation(spec.mitigation.kind, workload.program);
    Core core(spec.core, spec.scheme, makeScheme(spec.scheme),
              transformed.program);

    // Under a mitigation the raw committed-instruction count includes
    // pass glue; track *useful* commits (instructions standing for an
    // original one) so overhead reports can compare like with like.
    std::uint64_t useful = 0;
    if (spec.mitigation.enabled()) {
        core.setCommitHook([&](const DynInst &inst, Cycle) {
            if (transformed.origin(inst.pc) >= 0)
                ++useful;
        });
    }

    if (hooks.wallDeadlineSec > 0) {
        core.setWallDeadline(hooks.wallDeadlineSec);
        // The deadline must end the run, not escalate the stall
        // panic: a slow-but-healthy cell is a timeout, not a bug.
        core.setSoftWatchdog(100000);
    }
    if (hooks.interruptible)
        core.setInterruptible(true);

    // Warmup: fill caches, train the predictor, reach steady state.
    core.run(spec.warmupInsts, spec.maxCycles);
    core.stats().reset();
    const Cycle cycles0 = core.now();
    const std::uint64_t insts0 = core.committedInstructions();
    const std::uint64_t useful0 = useful;

    core.run(spec.measureInsts, spec.maxCycles);

    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.cycles = core.now() - cycles0;
    out.instructions = core.committedInstructions() - insts0;
    out.ipc = out.cycles == 0
                  ? 0.0
                  : static_cast<double>(out.instructions)
                        / static_cast<double>(out.cycles);
    out.transmitViolations = core.monitor().transmitViolations();
    out.consumeViolations = core.monitor().consumeViolations();
    for (const auto &kv : core.stats().counters())
        out.stats[kv.first] = kv.second.value();
    if (spec.mitigation.enabled())
        out.stats["useful_instructions"] = useful - useful0;
    if (core.watchdogTripped()) {
        // Supervision artifact, not a measurement: the cell ran out
        // of wall clock (or was interrupted, or genuinely stalled).
        // Marked so aggregation and the cache can tell it apart.
        if (hooks.interruptible && interruptRequested()
            && !core.wallDeadlineHit())
            out.stats["interrupted"] = 1;
        else
            out.stats["watchdog_tripped"] = 1;
    }
    return out;
}

bool
outcomeIsCacheable(const RunOutcome &outcome)
{
    return outcome.stat("watchdog_tripped") == 0
           && outcome.stat("interrupted") == 0
           && outcome.stat("quarantined") == 0;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const std::vector<RunSpec> &specs) const
{
    std::vector<RunOutcome> results(specs.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        while (true) {
            const std::size_t idx =
                next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= specs.size())
                return;
            results[idx] = runOne(specs[idx]);
        }
    };

    const unsigned n =
        std::min<std::size_t>(numThreads, specs.size());
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

std::vector<RunSpec>
suiteSpecs(const std::vector<CoreConfig> &configs,
           const std::vector<SchemeConfig> &schemes,
           std::uint64_t measure_insts)
{
    std::vector<RunSpec> specs;
    for (const auto &core : configs) {
        for (const auto &scheme : schemes) {
            for (const auto &name : SpecSuite::benchmarkNames()) {
                RunSpec s;
                s.core = core;
                s.scheme = scheme;
                s.workload = name;
                s.measureInsts = measure_insts;
                specs.push_back(std::move(s));
            }
        }
    }
    return specs;
}

} // namespace sb
