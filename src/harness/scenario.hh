/**
 * @file
 * Scenario registry: each of the paper's figures, tables, and
 * ablations is registered as a named {specs(), report()} definition,
 * so one driver (tools/sbsim.cpp) can run any slice of the evaluation
 * through a shared ExperimentEngine — with in-batch dedup and the
 * content-addressed result cache amortizing every (config, scheme,
 * workload) cell across scenarios. The standalone bench_* binaries
 * are thin wrappers over the same definitions (runScenarioMain), so
 * per-cell numbers are bit-identical however a cell is reached.
 */

#ifndef SB_HARNESS_SCENARIO_HH
#define SB_HARNESS_SCENARIO_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sb
{

/** One registered figure/table/ablation reproduction. */
struct Scenario
{
    std::string name;  ///< CLI handle, e.g. "fig6".
    std::string title; ///< One-line description for `sbsim list`.

    /**
     * The simulation cells this scenario needs. May be empty for
     * model-only scenarios (synthesis timing, area/power).
     */
    std::function<std::vector<RunSpec>()> specs;

    /**
     * Render the report to @p out; @p outcomes matches the order of
     * specs() element-for-element.
     */
    std::function<void(const std::vector<RunOutcome> &outcomes,
                       std::FILE *out)>
        report;
};

class ScenarioRegistry
{
  public:
    /** The process-wide registry, pre-loaded with the paper set. */
    static ScenarioRegistry &instance();

    /** Register @p scenario (fatal on a duplicate name). */
    void add(Scenario scenario);

    /** Find by name; null when unknown. */
    const Scenario *find(const std::string &name) const;

    /** All names, in registration order. */
    std::vector<std::string> names() const;

  private:
    std::vector<Scenario> scenarios;
};

/**
 * Registers the figure/table/ablation scenarios into @p registry.
 * ScenarioRegistry::instance() calls this once; it is only public so
 * tests can build isolated registries.
 */
void registerPaperScenarios(ScenarioRegistry &registry);

/**
 * Shared main() body of the thin bench_* wrappers: simulate and
 * report one scenario on a cache-less engine (standalone
 * reproductions always re-simulate). Returns a process exit code.
 */
int runScenarioMain(const std::string &name);

} // namespace sb

#endif // SB_HARNESS_SCENARIO_HH
