/**
 * @file
 * Spectre-v1 proof-of-concept on the simulated core (the stand-in
 * for the BOOM-attacks suite the paper uses to verify its schemes).
 *
 * The attack program trains a bounds-check branch in-range, then
 * supplies an out-of-range index while the bound itself is delayed
 * behind a three-hop cold pointer chase (~300-cycle speculation
 * window). The transient gadget reads a secret byte and encodes it
 * into the set-state of a 256-slot probe array; a serialised timing
 * probe then recovers the byte from commit-time load latencies. A
 * cache-residency oracle cross-checks the timing receiver.
 */

#ifndef SB_HARNESS_ATTACK_HH
#define SB_HARNESS_ATTACK_HH

#include <cstdint>

#include "common/config.hh"
#include "isa/program.hh"

namespace sb
{

/** Outcome of one attack attempt. */
struct AttackResult
{
    /** Byte recovered via the timing probe, -1 if no clear signal. */
    int timingByte = -1;
    /** Byte recovered via the cache-residency oracle, -1 if none. */
    int oracleByte = -1;
    /** True if either receiver recovered the actual secret. */
    bool leaked = false;
    /** Ground-truth monitor counts for the run. */
    std::uint64_t transmitViolations = 0;
    std::uint64_t consumeViolations = 0;
    /** Median / minimum probe gaps (diagnostics). */
    double medianGap = 0.0;
    double minGap = 0.0;
};

/** Attack program plus the static PCs the harness needs. */
struct SpectreProgram
{
    Program program;
    /** First load of the pre-probe serialisation barrier. */
    std::uint32_t barrierPc = 0;
    /** First probe load (slot v=1); one probe group is 4 ops. */
    std::uint32_t firstProbePc = 0;
};

/** Build the Spectre-v1 attack program for @p secret_byte (1..255). */
SpectreProgram buildSpectreV1Program(std::uint8_t secret_byte,
                                     std::uint64_t seed);

/**
 * Run the attack against a core protected by @p scheme_config.
 * The unsafe baseline is expected to leak; STT-Rename, STT-Issue and
 * NDA must not.
 */
AttackResult runSpectreV1(const CoreConfig &core_config,
                          const SchemeConfig &scheme_config,
                          std::uint8_t secret_byte,
                          std::uint64_t seed = 42);

} // namespace sb

#endif // SB_HARNESS_ATTACK_HH
