/**
 * @file
 * Gadget attack runner: executes one Spectre gadget program
 * (src/trace/gadgets.hh) against a configured core and recovers the
 * secret through both receivers — the serialised commit-time timing
 * probe and the cache-residency oracle — while recording the core's
 * committed-load observation trace for the differential leakage
 * verifier (verify.hh).
 *
 * The run is two-phase: the victim rounds execute until the first
 * barrier load commits (so the residency oracle sees the post-attack
 * cache before the probe pollutes it), then the timing probe runs to
 * completion and the per-slot commit gaps are scored.
 */

#ifndef SB_HARNESS_ATTACK_HH
#define SB_HARNESS_ATTACK_HH

#include <cstdint>
#include <memory>

#include "common/config.hh"
#include "core/contract_shadow.hh"
#include "core/scheme_iface.hh"
#include "isa/transform.hh"
#include "trace/gadgets.hh"

namespace sb
{

/** Outcome of one attack attempt. */
struct AttackResult
{
    /** Byte recovered via the timing probe, -1 if no clear signal. */
    int timingByte = -1;
    /** Byte recovered via the cache-residency oracle, -1 if none. */
    int oracleByte = -1;
    /** True if either receiver recovered the actual secret. */
    bool leaked = false;
    /** Ground-truth monitor counts for the run. */
    std::uint64_t transmitViolations = 0;
    std::uint64_t consumeViolations = 0;
    /** Contract shadow engine counts (contract_shadow.hh): sandboxing
     *  = a transmitter executed on a transiently-acquired secret;
     *  constant-time = a secret reached a transmitter at all. */
    std::uint64_t sandboxViolations = 0;
    std::uint64_t ctViolations = 0;
    /** Transmits of a secret owned by a different tenant than the
     *  transmitting instruction's (protection-domain model). */
    std::uint64_t crossTenantViolations = 0;
    /** Pinpointed first violation of each contract (invalid seq if
     *  the contract was never violated). */
    ContractViolation firstSandboxViolation;
    ContractViolation firstCtViolation;
    ContractViolation firstCrossTenantViolation;
    /** Context switches the core performed during the run. */
    std::uint64_t contextSwitches = 0;
    /** Median / minimum probe gaps (diagnostics). */
    double medianGap = 0.0;
    double minGap = 0.0;
    /** FNV-1a digest + length of the committed-load observation trace
     *  (Core::observationTrace()); the differential checker compares
     *  these across secret-flipped paired runs. */
    std::uint64_t traceHash = 0;
    std::uint64_t traceLength = 0;
    /** Total simulated cycles (also part of the observable surface). */
    std::uint64_t cycles = 0;
};

/** Build and run gadget @p kind against the scheme in @p scheme_config. */
AttackResult runGadget(GadgetKind kind, const CoreConfig &core_config,
                       const SchemeConfig &scheme_config,
                       std::uint8_t secret_byte,
                       std::uint64_t seed = 42);

/**
 * Run a pre-built gadget with an explicit scheme instance — the
 * injection point the differential-checker tests use to verify that
 * an intentionally leaky scheme is caught.
 *
 * When @p mitigated is non-null the core executes its (software-
 * hardened) program instead of gadget.program, and the commit-time
 * receiver maps committed PCs through TransformedProgram::origin so
 * the probe-slot arithmetic and barrier detection stay exact: thunk
 * PCs live past firstProbePc and would otherwise misread as probes.
 */
AttackResult runGadgetAttack(const GadgetProgram &gadget,
                             const CoreConfig &core_config,
                             const SchemeConfig &scheme_config,
                             std::unique_ptr<SecureScheme> scheme,
                             std::uint8_t secret_byte,
                             const TransformedProgram *mitigated =
                                 nullptr);

/** The original Spectre-v1 entry point (kept for the seed tests). */
AttackResult runSpectreV1(const CoreConfig &core_config,
                          const SchemeConfig &scheme_config,
                          std::uint8_t secret_byte,
                          std::uint64_t seed = 42);

} // namespace sb

#endif // SB_HARNESS_ATTACK_HH
