/**
 * @file
 * ExperimentEngine: the grid-scale successor of ExperimentRunner.
 *
 * Three things distinguish it from the simple runner:
 *  - a persistent worker pool (threads live for the engine's
 *    lifetime, not per batch), sized by resolveJobs() so SB_JOBS and
 *    --jobs bound simulation parallelism everywhere;
 *  - in-batch deduplication: specs with the same specKey() are
 *    simulated once and fanned back out, so scenarios sharing grid
 *    cells (fig7 / fig8 / table3 / ...) pay for each cell once;
 *  - an optional content-addressed on-disk result cache
 *    (ResultCache), making warm reruns of the whole reproduction
 *    near-instant and letting one figure reuse another's cells across
 *    process lifetimes.
 *
 * Results are returned in input order and are bit-identical to
 * ExperimentRunner::runOne whichever path (simulated, deduped,
 * cached) served them.
 */

#ifndef SB_HARNESS_ENGINE_HH
#define SB_HARNESS_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"

namespace sb
{

class ResultCache;

/** Grid accounting accumulated over every run() batch of one engine. */
struct EngineStats
{
    std::uint64_t requested = 0;  ///< Specs passed to run().
    std::uint64_t simulated = 0;  ///< Cells actually simulated.
    std::uint64_t dedupHits = 0;  ///< Duplicates of an in-batch cell.
    std::uint64_t cacheHits = 0;  ///< Unique cells served from disk.
    double wallSeconds = 0.0;     ///< Wall-clock spent inside run().

    // Shard-tier accounting (all zero / false for in-process runs).
    std::uint64_t workersSpawned = 0; ///< Worker processes started.
    std::uint64_t shardCrashes = 0;   ///< Worker exits / broken streams.
    std::uint64_t shardHangs = 0;     ///< Kill-deadline SIGKILLs.
    std::uint64_t shardRetries = 0;   ///< Cells re-dispatched.
    std::uint64_t shardStolen = 0;    ///< Cells run off their home shard.
    std::uint64_t interruptedCells = 0; ///< Cells stubbed by SIGINT/TERM.
    bool shardDegraded = false; ///< Batch fell back to in-process.
    bool interrupted = false;   ///< A batch was cut short by a signal.
    /** Poisoned-cell list: specKeys quarantined after repeated
     *  worker-killing failures. */
    std::vector<std::string> quarantinedKeys;
};

class ExperimentEngine
{
  public:
    struct Options
    {
        /** Worker threads; 0 defers to SB_JOBS then hardware. */
        unsigned jobs = 0;
        /** Result-cache directory; empty disables the disk cache. */
        std::string cacheDir;
        /** Worker processes for the sharded tier; 0 = in-process
         *  threads only (the default). */
        unsigned shards = 0;
        /** Per-cell wall-clock budget in seconds; 0 = unlimited.
         *  Overruns come back marked stats["watchdog_tripped"] and
         *  are not cached. */
        double cellTimeoutSec = 0;
        /** The sbsim binary to exec as `sbsim serve` workers;
         *  required when shards > 0. */
        std::string sbsimPath;
    };

    ExperimentEngine();
    explicit ExperimentEngine(Options options);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /**
     * Execute every spec; results match the input order. Duplicate
     * specs and cache hits are not re-simulated.
     */
    std::vector<RunOutcome> run(const std::vector<RunSpec> &specs);

    const EngineStats &stats() const { return accounting; }
    unsigned jobs() const { return numJobs; }
    /** Null when caching is disabled. */
    const ResultCache *cache() const { return diskCache.get(); }

  private:
    void workerLoop();

    unsigned numJobs;
    Options opt;
    std::unique_ptr<ResultCache> diskCache;
    EngineStats accounting;

    // Persistent-pool state, all guarded by poolMutex. A batch is
    // published by pointing batchSpecs/batchKeys/batchResults at
    // run()-local vectors; workers claim indices via nextIndex.
    std::mutex poolMutex;
    std::condition_variable workReady;
    std::condition_variable batchDone;
    bool shuttingDown = false;
    const std::vector<RunSpec> *batchSpecs = nullptr;
    const std::vector<std::string> *batchKeys = nullptr;
    std::vector<RunOutcome> *batchResults = nullptr;
    std::size_t nextIndex = 0;
    std::size_t completedCount = 0;
    std::vector<std::thread> pool;
};

} // namespace sb

#endif // SB_HARNESS_ENGINE_HH
