/**
 * @file
 * Experiment runner: executes (core config x scheme x workload)
 * simulations, with warmup, in parallel across host threads.
 */

#ifndef SB_HARNESS_EXPERIMENT_HH
#define SB_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "isa/transform.hh"

namespace sb
{

/**
 * Version of the RunSpec canonical-serialization schema, folded into
 * every specKey(). Bump it whenever the meaning of a cached outcome
 * changes without the serialized fields changing (new stats harvested
 * into RunOutcome, semantic changes to a workload family, ...): old
 * cache lines then miss instead of resurfacing stale results. CI
 * keys its persisted result cache on this constant.
 */
constexpr unsigned specSchemaVersion = 5;

/** One simulation to run. */
struct RunSpec
{
    CoreConfig core;
    SchemeConfig scheme;
    /** SPEC stand-in name, or a "gadget:" security-battery cell
     *  (see harness/verify.hh). */
    std::string workload;
    /** Software mitigation applied to the program before simulation
     *  (isa/transform.hh); None runs the workload as written. */
    MitigationConfig mitigation;
    std::uint64_t warmupInsts = 30000;
    std::uint64_t measureInsts = 120000;
    std::uint64_t maxCycles = 40'000'000;

    /**
     * Canonical serialization of everything that determines the
     * simulation's outcome (the simulator is deterministic, so this
     * string identifies the run by content).
     */
    std::string canonical() const;

    /**
     * Content hash of canonical() (16 hex chars, FNV-1a 64). Two
     * specs with the same key compute the same RunOutcome; the
     * ExperimentEngine uses it for in-batch dedup and as the
     * result-cache address.
     */
    std::string specKey() const;
};

/** Upper bound on worker threads accepted from SB_JOBS / --jobs. */
constexpr unsigned maxJobs = 4096;

/**
 * Worker-thread count policy, used everywhere a runner would
 * otherwise reach for hardware_concurrency(): an explicit
 * @p requested wins, then SB_JOBS when it holds an integer in
 * [1, maxJobs], then the hardware concurrency (min 1).
 */
unsigned resolveJobs(unsigned requested);

/** Measured outcome of one simulation (measurement window only). */
struct RunOutcome
{
    std::string workload;
    std::string coreName;
    Scheme scheme = Scheme::Baseline;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    /** Ground-truth monitor counts over the whole run. */
    std::uint64_t transmitViolations = 0;
    std::uint64_t consumeViolations = 0;

    /** All core counters harvested from the measurement window. */
    std::map<std::string, std::uint64_t> stats;

    std::uint64_t stat(const std::string &name) const;
};

/**
 * Supervision knobs for one cell execution. Deliberately NOT part of
 * RunSpec: none of these change the simulated outcome of a healthy
 * cell, so they must not perturb specKey() / the result cache.
 */
struct RunHooks
{
    /**
     * Wall-clock budget in seconds for the whole cell (warmup +
     * measurement); 0 = unlimited. A cell that exceeds it returns a
     * watchdog-tripped outcome (stats["watchdog_tripped"] = 1)
     * instead of wedging its worker slot; such outcomes are never
     * cached (a timeout depends on host speed, not cell content).
     */
    double wallDeadlineSec = 0;

    /** End the cell early when SIGINT/SIGTERM was requested
     *  (stats["interrupted"] = 1; never cached). */
    bool interruptible = false;
};

/** Thread-pooled runner. */
class ExperimentRunner
{
  public:
    /** @param threads worker count; 0 defers to resolveJobs(). */
    explicit ExperimentRunner(unsigned threads = 0);

    /** Execute every spec (order of results matches input order). */
    std::vector<RunOutcome> runAll(const std::vector<RunSpec> &specs) const;

    /** Execute one spec synchronously. */
    static RunOutcome runOne(const RunSpec &spec);

    /** Execute one spec under supervision (per-cell deadline /
     *  interrupt awareness); see RunHooks. */
    static RunOutcome runOne(const RunSpec &spec, const RunHooks &hooks);

  private:
    unsigned numThreads;
};

/**
 * True when @p outcome represents the cell's real simulated result
 * (as opposed to a supervision artifact — timed out, interrupted, or
 * quarantined) and may therefore be persisted in the result cache.
 */
bool outcomeIsCacheable(const RunOutcome &outcome);

/** Convenience: specs for (configs x schemes x whole suite). */
std::vector<RunSpec> suiteSpecs(const std::vector<CoreConfig> &configs,
                                const std::vector<SchemeConfig> &schemes,
                                std::uint64_t measure_insts = 120000);

} // namespace sb

#endif // SB_HARNESS_EXPERIMENT_HH
