#include "harness/conformance.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/core.hh"
#include "harness/engine.hh"
#include "harness/scenario.hh"
#include "secure/factory.hh"

namespace sb
{

namespace
{

constexpr const char *fuzzPrefix = "fuzz:";

/** The fixed campaign behind the "conformance" scenario. */
FuzzParams
scenarioParams()
{
    FuzzParams params;
    params.baseSeed = 0xC0FFEE;
    params.programs = 8;
    return params;
}

} // anonymous namespace

std::string
fuzzWorkloadName(OpMixProfile profile, std::uint64_t seed,
                 unsigned iterations)
{
    std::string name = fuzzPrefix;
    name += opMixProfileName(profile);
    name += ":seed=" + std::to_string(seed);
    name += ":iters=" + std::to_string(iterations);
    return name;
}

bool
isFuzzWorkload(const std::string &workload)
{
    return workload.rfind(fuzzPrefix, 0) == 0;
}

bool
parseFuzzWorkload(const std::string &workload, OpMixProfile &profile,
                  std::uint64_t &seed, unsigned &iterations)
{
    if (!isFuzzWorkload(workload))
        return false;
    const std::size_t profile_begin = std::strlen(fuzzPrefix);
    const std::size_t profile_end = workload.find(':', profile_begin);
    if (profile_end == std::string::npos)
        return false;
    OpMixProfile parsed_profile;
    if (!opMixProfileFromName(
            workload.substr(profile_begin, profile_end - profile_begin),
            parsed_profile))
        return false;

    std::uint64_t parsed_seed = 0;
    unsigned parsed_iters = 0;
    const std::string rest = workload.substr(profile_end);
    if (std::sscanf(rest.c_str(), ":seed=%" SCNu64 ":iters=%u",
                    &parsed_seed, &parsed_iters)
            != 2
        || parsed_iters == 0)
        return false;

    profile = parsed_profile;
    seed = parsed_seed;
    iterations = parsed_iters;
    return true;
}

ConformanceCell
runConformanceCell(const Program &program, const CoreConfig &core_cfg,
                   const SchemeConfig &scheme_config,
                   std::unique_ptr<SecureScheme> scheme,
                   std::uint64_t max_cycles,
                   const TransformedProgram *mitigated)
{
    Core core(core_cfg, scheme_config, std::move(scheme), program);
    core.setInvariantsEnabled(true);
    core.setContractShadowEnabled(true);
    core.setSoftWatchdog(100000);

    // Under a mitigation the fingerprint is taken modulo inserted
    // glue: committed PCs map back through origin(), glue commits
    // vanish from both the digest and the instruction count.
    std::uint64_t commit_hash = fnv1aBasis;
    std::uint64_t useful = 0;
    core.setCommitHook([&](const DynInst &inst, Cycle) {
        std::int64_t opc = inst.pc;
        if (mitigated) {
            opc = mitigated->origin(inst.pc);
            if (opc < 0)
                return;
        }
        commit_hash =
            fnv1aWord(commit_hash, static_cast<std::uint64_t>(opc));
        ++useful;
    });

    const RunResult r =
        core.run(std::numeric_limits<std::uint64_t>::max() / 2,
                 max_cycles);

    ConformanceCell cell;
    cell.instructions = mitigated ? useful : r.instructions;
    cell.cycles = r.cycles;
    cell.halted = r.halted;
    cell.watchdogTripped = r.watchdogTripped;
    cell.commitHash = commit_hash;
    std::uint64_t reg_hash = fnv1aBasis;
    for (ArchReg reg = 0; reg < numArchRegs; ++reg)
        reg_hash = fnv1aWord(reg_hash, core.readArchReg(reg));
    cell.regHash = reg_hash;
    cell.memHash = core.memoryImage().fingerprint();
    cell.invariantViolations = core.invariants().violations();
    cell.transmitViolations = core.monitor().transmitViolations();
    cell.consumeViolations = core.monitor().consumeViolations();
    cell.sandboxViolations = core.contractShadow().sandboxViolations();
    cell.ctViolations = core.contractShadow().ctViolations();
    const ContractViolation &first =
        core.contractShadow().firstSandboxViolation();
    if (first.valid()) {
        cell.firstSandboxCycle = first.cycle;
        cell.firstSandboxPc = first.pc;
    }
    return cell;
}

RunOutcome
runFuzzCell(const RunSpec &spec)
{
    OpMixProfile profile;
    std::uint64_t seed = 0;
    unsigned iterations = 0;
    if (!parseFuzzWorkload(spec.workload, profile, seed, iterations))
        sb_fatal("malformed fuzz workload '", spec.workload, "'");

    GeneratorParams gen;
    gen.seed = seed;
    gen.profile = profile;
    gen.outerIterations = iterations;
    const Program program = generateProgram(gen);

    ConformanceCell cell;
    if (spec.mitigation.enabled()) {
        const TransformedProgram mitigated =
            applyMitigation(spec.mitigation.kind, program);
        cell = runConformanceCell(mitigated.program, spec.core,
                                  spec.scheme, makeScheme(spec.scheme),
                                  spec.maxCycles, &mitigated);
    } else {
        cell = runConformanceCell(program, spec.core, spec.scheme,
                                  makeScheme(spec.scheme),
                                  spec.maxCycles);
    }

    RunOutcome out;
    out.workload = spec.workload;
    out.coreName = spec.core.name;
    out.scheme = spec.scheme.scheme;
    out.cycles = cell.cycles;
    out.instructions = cell.instructions;
    out.ipc = cell.cycles == 0
                  ? 0.0
                  : static_cast<double>(cell.instructions)
                        / static_cast<double>(cell.cycles);
    out.transmitViolations = cell.transmitViolations;
    out.consumeViolations = cell.consumeViolations;
    out.stats["fuzz_reg_hash"] = cell.regHash;
    out.stats["fuzz_mem_hash"] = cell.memHash;
    out.stats["fuzz_commit_hash"] = cell.commitHash;
    out.stats["fuzz_halted"] = cell.halted ? 1 : 0;
    out.stats["fuzz_watchdog"] = cell.watchdogTripped ? 1 : 0;
    out.stats["fuzz_invariant_violations"] = cell.invariantViolations;
    out.stats["fuzz_sandbox_viol"] = cell.sandboxViolations;
    out.stats["fuzz_ct_viol"] = cell.ctViolations;
    out.stats["fuzz_first_sandbox_cycle"] = cell.firstSandboxCycle;
    out.stats["fuzz_first_sandbox_pc"] = cell.firstSandboxPc;
    return out;
}

OpMixProfile
FuzzParams::profileFor(unsigned index) const
{
    const std::vector<OpMixProfile> pool =
        profiles.empty() ? allOpMixProfiles() : profiles;
    return pool[index % pool.size()];
}

std::string
FuzzFailure::repro(const std::string &core_name) const
{
    std::string cmd = "sbsim fuzz --programs 1 --seed "
                      + std::to_string(seed) + " --profile "
                      + opMixProfileName(profile);
    if (!core_name.empty() && core_name != "mega")
        cmd += " --core " + core_name;
    if (mitigation != Mitigation::None)
        cmd += std::string(" --mitigation ") + mitigationName(mitigation);
    return cmd;
}

std::vector<RunSpec>
fuzzSpecs(const FuzzParams &params)
{
    const bool mitigated = params.mitigation != Mitigation::None;
    std::vector<RunSpec> specs;
    specs.reserve(params.programs
                  * (allSchemeConfigs().size() + (mitigated ? 1 : 0)));
    for (unsigned p = 0; p < params.programs; ++p) {
        const std::string workload =
            fuzzWorkloadName(params.profileFor(p), params.programSeed(p),
                             params.outerIterations);
        if (mitigated) {
            // The architectural oracle: the untransformed program on
            // the Baseline core. Every mitigated cell — including the
            // mitigated Baseline — is judged against this one.
            RunSpec oracle;
            oracle.core = params.core;
            oracle.scheme = allSchemeConfigs().front();
            oracle.workload = workload;
            oracle.maxCycles = params.maxCycles;
            specs.push_back(std::move(oracle));
        }
        for (const SchemeConfig &scheme : allSchemeConfigs()) {
            RunSpec spec;
            spec.core = params.core;
            spec.scheme = scheme;
            spec.workload = workload;
            spec.maxCycles = params.maxCycles;
            spec.mitigation.kind = params.mitigation;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

namespace
{

ConformanceCell
cellFromOutcome(const RunOutcome &outcome)
{
    ConformanceCell cell;
    cell.regHash = outcome.stat("fuzz_reg_hash");
    cell.memHash = outcome.stat("fuzz_mem_hash");
    cell.commitHash = outcome.stat("fuzz_commit_hash");
    cell.instructions = outcome.instructions;
    cell.cycles = outcome.cycles;
    cell.halted = outcome.stat("fuzz_halted") != 0;
    cell.watchdogTripped = outcome.stat("fuzz_watchdog") != 0;
    cell.invariantViolations = outcome.stat("fuzz_invariant_violations");
    cell.transmitViolations = outcome.transmitViolations;
    cell.consumeViolations = outcome.consumeViolations;
    cell.sandboxViolations = outcome.stat("fuzz_sandbox_viol");
    cell.ctViolations = outcome.stat("fuzz_ct_viol");
    cell.firstSandboxCycle = outcome.stat("fuzz_first_sandbox_cycle");
    cell.firstSandboxPc = outcome.stat("fuzz_first_sandbox_pc");
    return cell;
}

std::string
hex16(std::uint64_t value)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

} // anonymous namespace

FuzzReport
foldFuzzOutcomes(const FuzzParams &params,
                 const std::vector<RunOutcome> &outcomes)
{
    const std::vector<SchemeConfig> schemes = allSchemeConfigs();
    const bool mitigated = params.mitigation != Mitigation::None;
    const std::size_t stride = schemes.size() + (mitigated ? 1 : 0);
    sb_assert(outcomes.size() == params.programs * stride,
              "fuzz outcome count does not match the campaign");
    sb_assert(!schemes.empty()
                  && schemes.front().scheme == Scheme::Baseline,
              "scheme roster must lead with Baseline");

    FuzzReport report;
    report.programs = params.programs;
    report.cells = static_cast<unsigned>(outcomes.size());
    report.coreName = params.core.name;
    report.mitigation = params.mitigation;

    // The contract each scheme declares is constant per scheme:
    // resolve the descriptors once, not per (program, scheme) cell.
    std::vector<SecurityContract> contracts;
    contracts.reserve(schemes.size());
    for (const SchemeConfig &scfg : schemes)
        contracts.push_back(makeScheme(scfg)->contract());

    for (unsigned p = 0; p < params.programs; ++p) {
        const std::uint64_t seed = params.programSeed(p);
        const OpMixProfile profile = params.profileFor(p);
        const std::size_t base_idx = std::size_t(p) * stride;
        // The oracle: with a mitigation the extra leading unmitigated
        // Baseline cell; otherwise the roster's Baseline cell itself.
        const ConformanceCell baseline =
            cellFromOutcome(outcomes[base_idx]);

        auto add = [&](Scheme scheme, const char *kind,
                       std::string detail,
                       Mitigation m = Mitigation::None) {
            FuzzFailure f;
            f.seed = seed;
            f.profile = profile;
            f.scheme = scheme;
            f.mitigation = m;
            f.kind = kind;
            f.detail = std::move(detail);
            report.failures.push_back(std::move(f));
        };

        if (!baseline.halted || baseline.watchdogTripped) {
            add(Scheme::Baseline, "deadlock",
                baseline.watchdogTripped
                    ? "baseline run tripped the watchdog"
                    : "baseline run exhausted its cycle budget");
            continue; // No trustworthy oracle for this program.
        }
        if (baseline.invariantViolations) {
            add(Scheme::Baseline, "invariant",
                std::to_string(baseline.invariantViolations)
                    + " invariant violation(s) under Baseline");
        }

        // With a mitigation even the (mitigated) Baseline cell is
        // judged against the unmitigated oracle — that comparison IS
        // the transform-correctness check.
        for (std::size_t s = mitigated ? 0 : 1; s < schemes.size();
             ++s) {
            const Scheme scheme = schemes[s].scheme;
            const ConformanceCell cell = cellFromOutcome(
                outcomes[base_idx + s + (mitigated ? 1 : 0)]);

            if (!cell.halted || cell.watchdogTripped) {
                add(scheme, "deadlock",
                    cell.watchdogTripped
                        ? "no commit within the watchdog window"
                        : "cycle budget exhausted before halt",
                    params.mitigation);
                continue;
            }
            if (!cell.architecturallyEqual(baseline)) {
                std::string detail = "vs baseline:";
                if (cell.regHash != baseline.regHash)
                    detail += " regs " + hex16(cell.regHash) + "!="
                              + hex16(baseline.regHash);
                if (cell.memHash != baseline.memHash)
                    detail += " mem " + hex16(cell.memHash) + "!="
                              + hex16(baseline.memHash);
                if (cell.commitHash != baseline.commitHash)
                    detail += " commits " + hex16(cell.commitHash)
                              + "!=" + hex16(baseline.commitHash);
                if (cell.instructions != baseline.instructions)
                    detail += " insts "
                              + std::to_string(cell.instructions) + "!="
                              + std::to_string(baseline.instructions);
                add(scheme, "divergence", std::move(detail),
                    params.mitigation);
            }
            if (cell.invariantViolations) {
                add(scheme, "invariant",
                    std::to_string(cell.invariantViolations)
                        + " invariant violation(s)",
                    params.mitigation);
            }

            // Monitor obligations: only the ones the scheme's
            // contract obliges (DoM declares sandboxing alone, so
            // tainted transmitters executing on L1 hits are by
            // design).
            if (contracts[s].obligesTransmitterSafety
                && cell.transmitViolations) {
                add(scheme, "monitor",
                    std::to_string(cell.transmitViolations)
                        + " transmit violation(s) against a "
                          "transmitter-safety obligation",
                    params.mitigation);
            }
            if (contracts[s].obligesConsumeSafety
                && cell.consumeViolations) {
                add(scheme, "monitor",
                    std::to_string(cell.consumeViolations)
                        + " consume violation(s) against a "
                          "consume-safety obligation",
                    params.mitigation);
            }

            // Contract shadow check, on the generated programs'
            // secret-labelled buffers: a dataflow policy must keep
            // transiently-acquired secrets away from every
            // transmitter operand. Observational-only policies
            // (DoM's sandboxing) are judged by the differential
            // oracle instead — a speculative L1 hit on a secret is
            // by design there.
            const ContractPolicy policy = contracts[s].policy;
            if ((policy == ContractPolicy::TransmitterSafe
                 || policy == ContractPolicy::ConsumeSafe)
                && cell.sandboxViolations) {
                add(scheme, "contract",
                    std::to_string(cell.sandboxViolations)
                        + " sandboxing violation(s) against the "
                        + contractPolicyName(policy)
                        + " contract; first at cycle "
                        + std::to_string(cell.firstSandboxCycle)
                        + " pc " + std::to_string(cell.firstSandboxPc),
                    params.mitigation);
            }
        }
    }
    return report;
}

FuzzReport
runFuzz(const FuzzParams &params)
{
    ExperimentEngine::Options options;
    options.jobs = params.jobs;
    options.cacheDir = params.cacheDir;
    ExperimentEngine engine(options);
    const std::vector<RunSpec> specs = fuzzSpecs(params);
    return foldFuzzOutcomes(params, engine.run(specs));
}

Json
toJson(const FuzzReport &report)
{
    Json doc = Json::object();
    doc.set("programs", Json::num(std::uint64_t(report.programs)));
    doc.set("cells", Json::num(std::uint64_t(report.cells)));
    doc.set("core", Json::str(report.coreName));
    doc.set("mitigation", Json::str(mitigationName(report.mitigation)));
    doc.set("ok", Json::boolean(report.ok()));
    Json failures = Json::array();
    for (const FuzzFailure &f : report.failures) {
        Json entry = Json::object();
        entry.set("seed", Json::num(f.seed));
        entry.set("profile", Json::str(opMixProfileName(f.profile)));
        entry.set("scheme", Json::str(schemeName(f.scheme)));
        entry.set("mitigation", Json::str(mitigationName(f.mitigation)));
        entry.set("kind", Json::str(f.kind));
        entry.set("detail", Json::str(f.detail));
        entry.set("repro", Json::str(f.repro(report.coreName)));
        failures.push(std::move(entry));
    }
    doc.set("failures", std::move(failures));
    return doc;
}

void
printFuzzReport(const FuzzReport &report, std::FILE *out)
{
    if (report.mitigation != Mitigation::None) {
        std::fprintf(out,
                     "=== Differential conformance: %u program(s) x "
                     "%zu scheme(s) on %s, mitigation=%s ===\n",
                     report.programs, allSchemeConfigs().size(),
                     report.coreName.c_str(),
                     mitigationName(report.mitigation));
    } else {
        std::fprintf(out,
                     "=== Differential conformance: %u program(s) x "
                     "%zu scheme(s) on %s ===\n",
                     report.programs, allSchemeConfigs().size(),
                     report.coreName.c_str());
    }
    if (report.failures.empty()) {
        std::fprintf(out,
                     "all %u cells architecturally %s to "
                     "Baseline; no deadlocks, no invariant "
                     "violations\nverdict: PASS\n",
                     report.cells,
                     report.mitigation != Mitigation::None
                         ? "equivalent (modulo transform glue)"
                         : "identical");
        return;
    }
    for (const FuzzFailure &f : report.failures) {
        std::fprintf(out,
                     "FAIL [%s] seed=%llu profile=%s scheme=%s: %s\n"
                     "      repro: %s\n",
                     f.kind.c_str(),
                     static_cast<unsigned long long>(f.seed),
                     opMixProfileName(f.profile), schemeName(f.scheme),
                     f.detail.c_str(),
                     f.repro(report.coreName).c_str());
    }
    std::fprintf(out, "verdict: FAIL (%zu failure(s))\n",
                 report.failures.size());
}

void
printContractReport(const FuzzParams &params,
                    const std::vector<RunOutcome> &outcomes,
                    std::FILE *out)
{
    const std::vector<SchemeConfig> schemes = allSchemeConfigs();
    std::fprintf(out,
                 "=== Contract check: shadow engine over %u generated "
                 "program(s) x %zu scheme(s) on %s ===\n\n",
                 params.programs, schemes.size(),
                 params.core.name.c_str());

    // Per-scheme totals across the campaign: what each declared
    // contract permitted vs what the shadow engine observed.
    std::fprintf(out, "%-12s %-16s %12s %12s\n", "scheme", "contract",
                 "sandbox-viol", "ct-viol");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        SchemeConfig scfg = schemes[s];
        const SecurityContract contract = makeScheme(scfg)->contract();
        std::uint64_t sandbox = 0, ct = 0;
        for (unsigned p = 0; p < params.programs; ++p) {
            const RunOutcome &o =
                outcomes[std::size_t(p) * schemes.size() + s];
            sandbox += o.stat("fuzz_sandbox_viol");
            ct += o.stat("fuzz_ct_viol");
        }
        std::fprintf(out, "%-12s %-16s %12llu %12llu\n",
                     schemeName(scfg.scheme),
                     contractPolicyName(contract.policy),
                     static_cast<unsigned long long>(sandbox),
                     static_cast<unsigned long long>(ct));
    }
    std::fprintf(out, "\n");

    // The verdict rides the normal fold; only contract failures are
    // surfaced here (everything else belongs to the conformance
    // scenario's report over the same cells).
    const FuzzReport report = foldFuzzOutcomes(params, outcomes);
    unsigned contract_failures = 0;
    for (const FuzzFailure &f : report.failures) {
        if (f.kind != "contract")
            continue;
        ++contract_failures;
        std::fprintf(out,
                     "FAIL [contract] seed=%llu profile=%s scheme=%s: "
                     "%s\n      repro: %s\n",
                     static_cast<unsigned long long>(f.seed),
                     opMixProfileName(f.profile), schemeName(f.scheme),
                     f.detail.c_str(),
                     f.repro(report.coreName).c_str());
    }
    if (contract_failures == 0) {
        std::fprintf(out,
                     "every declared dataflow contract held: no "
                     "transiently-acquired secret reached a "
                     "transmitter operand\n");
    }
    std::fprintf(out, "verdict: %s\n",
                 contract_failures == 0 ? "PASS" : "FAIL");
}

void
registerConformanceScenarios(ScenarioRegistry &registry)
{
    Scenario s;
    s.name = "conformance";
    s.title = "Differential conformance fuzz (8 seeds x full roster)";
    s.specs = [] { return fuzzSpecs(scenarioParams()); };
    s.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        printFuzzReport(foldFuzzOutcomes(scenarioParams(), outcomes),
                        out);
    };
    registry.add(std::move(s));

    // Same cells as "conformance" (the engine dedups shared specs),
    // different lens: the contract shadow engine's verdict over the
    // generated programs' secret-labelled buffers.
    Scenario c;
    c.name = "contract_check";
    c.title = "Contract shadow check (secret-labelled fuzz programs "
              "x full roster)";
    c.specs = [] { return fuzzSpecs(scenarioParams()); };
    c.report = [](const std::vector<RunOutcome> &outcomes,
                  std::FILE *out) {
        printContractReport(scenarioParams(), outcomes, out);
    };
    registry.add(std::move(c));
}

} // namespace sb
