#include "harness/reporting.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sb
{

SuiteAggregate
aggregate(const std::vector<RunOutcome> &outcomes)
{
    sb_assert(!outcomes.empty(), "aggregate of no outcomes");
    SuiteAggregate agg;
    agg.coreName = outcomes.front().coreName;
    agg.scheme = outcomes.front().scheme;

    double sum_cycles = 0.0;
    double sum_insts = 0.0;
    for (const auto &o : outcomes) {
        sb_assert(o.coreName == agg.coreName && o.scheme == agg.scheme,
                  "aggregate over mixed outcomes");
        sum_cycles += static_cast<double>(o.cycles);
        sum_insts += static_cast<double>(o.instructions);
        agg.perBench[o.workload] = o.ipc;
    }
    // Paper Sec. 8.1: arithmetic mean of cycles and of instructions,
    // separately; the suite IPC is their ratio.
    agg.meanIpc = sum_cycles == 0.0 ? 0.0 : sum_insts / sum_cycles;
    return agg;
}

std::vector<RunOutcome>
filter(const std::vector<RunOutcome> &all, const std::string &core_name,
       Scheme scheme)
{
    std::vector<RunOutcome> out;
    for (const auto &o : all) {
        if (o.coreName == core_name && o.scheme == scheme)
            out.push_back(o);
    }
    return out;
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    sb_assert(xs.size() == ys.size() && xs.size() >= 2,
              "fitLine needs >= 2 points");
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    sb_assert(std::abs(denom) > 1e-12, "degenerate fit");
    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    return fit;
}

std::string
bar(double normalized, unsigned width)
{
    const double clamped = std::clamp(normalized, 0.0, 1.25);
    const unsigned filled =
        static_cast<unsigned>(std::lround(clamped * width));
    std::string s;
    for (unsigned i = 0; i < filled; ++i)
        s += '#';
    return s;
}

} // namespace sb
