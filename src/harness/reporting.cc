#include "harness/reporting.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sb
{

SuiteAggregate
aggregate(const std::vector<RunOutcome> &outcomes)
{
    SuiteAggregate agg;
    if (outcomes.empty())
        return agg;
    agg.coreName = outcomes.front().coreName;
    agg.scheme = outcomes.front().scheme;

    double sum_cycles = 0.0;
    double sum_insts = 0.0;
    for (const auto &o : outcomes) {
        sb_assert(o.coreName == agg.coreName && o.scheme == agg.scheme,
                  "aggregate over mixed outcomes");
        sum_cycles += static_cast<double>(o.cycles);
        sum_insts += static_cast<double>(o.instructions);
        agg.perBench[o.workload] = o.ipc;
    }
    // Paper Sec. 8.1: arithmetic mean of cycles and of instructions,
    // separately; the suite IPC is their ratio.
    agg.meanIpc = sum_cycles == 0.0 ? 0.0 : sum_insts / sum_cycles;
    return agg;
}

std::vector<RunOutcome>
filter(const std::vector<RunOutcome> &all, const std::string &core_name,
       Scheme scheme)
{
    std::vector<RunOutcome> out;
    for (const auto &o : all) {
        if (o.coreName == core_name && o.scheme == scheme)
            out.push_back(o);
    }
    return out;
}

Json
toJson(const RunOutcome &outcome)
{
    Json stats = Json::object();
    for (const auto &kv : outcome.stats)
        stats.set(kv.first, Json::num(kv.second));

    Json j = Json::object();
    j.set("workload", Json::str(outcome.workload));
    j.set("core", Json::str(outcome.coreName));
    j.set("scheme", Json::str(schemeName(outcome.scheme)));
    j.set("cycles", Json::num(outcome.cycles));
    j.set("instructions", Json::num(outcome.instructions));
    j.set("ipc", Json::num(outcome.ipc));
    j.set("transmit_violations", Json::num(outcome.transmitViolations));
    j.set("consume_violations", Json::num(outcome.consumeViolations));
    j.set("stats", std::move(stats));
    return j;
}

Json
toJson(const SuiteAggregate &aggregate)
{
    Json per_bench = Json::object();
    for (const auto &kv : aggregate.perBench)
        per_bench.set(kv.first, Json::num(kv.second));

    Json j = Json::object();
    j.set("core", Json::str(aggregate.coreName));
    j.set("scheme", Json::str(schemeName(aggregate.scheme)));
    j.set("mean_ipc", Json::num(aggregate.meanIpc));
    j.set("per_bench", std::move(per_bench));
    return j;
}

bool
outcomeFromJson(const Json &json, RunOutcome &out)
{
    if (!json.isObject())
        return false;
    const auto hasKind = [&json](const char *key, Json::Kind kind) {
        return json.has(key) && json.at(key).kind() == kind;
    };
    for (const char *key : {"workload", "core", "scheme"}) {
        if (!hasKind(key, Json::Kind::String))
            return false;
    }
    for (const char *key : {"cycles", "instructions",
                            "transmit_violations",
                            "consume_violations"}) {
        if (!hasKind(key, Json::Kind::Uint))
            return false;
    }
    if (!hasKind("stats", Json::Kind::Object))
        return false;
    for (const auto &kv : json.at("stats").fields()) {
        if (kv.second.kind() != Json::Kind::Uint)
            return false;
    }
    RunOutcome o;
    o.workload = json.at("workload").asString();
    o.coreName = json.at("core").asString();
    if (!schemeFromName(json.at("scheme").asString(), o.scheme))
        return false;
    o.cycles = json.at("cycles").asUint();
    o.instructions = json.at("instructions").asUint();
    o.ipc = o.cycles == 0
                ? 0.0
                : static_cast<double>(o.instructions)
                      / static_cast<double>(o.cycles);
    o.transmitViolations = json.at("transmit_violations").asUint();
    o.consumeViolations = json.at("consume_violations").asUint();
    for (const auto &kv : json.at("stats").fields())
        o.stats[kv.first] = kv.second.asUint();
    out = std::move(o);
    return true;
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    sb_assert(xs.size() == ys.size() && xs.size() >= 2,
              "fitLine needs >= 2 points");
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    sb_assert(std::abs(denom) > 1e-12, "degenerate fit");
    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    return fit;
}

std::string
bar(double normalized, unsigned width)
{
    const double clamped = std::clamp(normalized, 0.0, 1.25);
    const unsigned filled =
        static_cast<unsigned>(std::lround(clamped * width));
    std::string s;
    for (unsigned i = 0; i < filled; ++i)
        s += '#';
    return s;
}

} // namespace sb
