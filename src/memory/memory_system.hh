/**
 * @file
 * Two-level memory hierarchy: L1D + L2 + fixed-latency DRAM, with
 * MSHR-limited outstanding misses and stride prefetchers at both
 * levels. This is the timing side only; functional data is read from
 * the program's MemoryImage plus a store-forwarding overlay owned by
 * the core.
 */

#ifndef SB_MEMORY_MEMORY_SYSTEM_HH
#define SB_MEMORY_MEMORY_SYSTEM_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memory/cache.hh"
#include "memory/prefetcher.hh"

namespace sb
{

/** Result of a demand access. */
struct MemAccessResult
{
    bool accepted = true;  ///< false: out of MSHRs, retry next cycle.
    bool l1Hit = false;
    Cycle completeAt = 0;  ///< Cycle the data is available.
};

/** Cached counter handles for the memory system's demand path. */
struct MemStats
{
    explicit MemStats(StatGroup &g)
        : loads(g.counter("loads")),
          stores(g.counter("stores")),
          mshrRejects(g.counter("mshr_rejects")),
          prefetchFills(g.counter("prefetch_fills"))
    {
    }

    Counter &loads;
    Counter &stores;
    Counter &mshrRejects;
    Counter &prefetchFills;
};

/** L1D + L2 + DRAM with per-level stride prefetchers. */
class MemorySystem
{
  public:
    explicit MemorySystem(const CoreConfig &config);

    /**
     * Issue a demand access (load or store) for @p addr by static
     * instruction @p pc at time @p now.
     */
    MemAccessResult access(Addr addr, std::uint64_t pc, Cycle now,
                           bool is_store);

    /**
     * Functional-warmup access (fast-forward mode): walks the same
     * probe/insert/prefetch-train path as a demand access so cache
     * contents and stride state match a detailed run, but allocates
     * no MSHRs, can never be rejected, and touches no demand-path
     * stats (the measurement window owns those).
     */
    void warmAccess(Addr addr, std::uint64_t pc, Cycle now);

    /** Probe L1 residency without side effects (covert-channel probe). */
    bool l1Contains(Addr addr) const { return l1.contains(addr); }

    /** Residency anywhere in the hierarchy (covert-channel oracle). */
    bool
    cached(Addr addr) const
    {
        return l1.contains(addr) || l2.contains(addr);
    }

    /** Evict one line from the whole hierarchy (attack setup / tests). */
    void invalidate(Addr addr);

    /** Empty both cache levels. */
    void flushAll();

    Cache &l1Cache() { return l1; }
    Cache &l2Cache() { return l2; }

    StatGroup &stats() { return statGroup; }

  private:
    /** Reclaim MSHRs whose fills completed. */
    void reapMshrs(Cycle now);

    /** Timing-only fill walk for prefetches. */
    void prefetchInto(Addr addr, Cycle now);

    CoreConfig cfg;
    Cache l1;
    Cache l2;
    StridePrefetcher l1Prefetcher;
    StridePrefetcher l2Prefetcher;
    std::vector<Cycle> mshrs;  ///< Completion times of in-flight misses.
    std::vector<Addr> prefetchQueue;
    StatGroup statGroup;
    MemStats st;
};

} // namespace sb

#endif // SB_MEMORY_MEMORY_SYSTEM_HH
