#include "memory/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sb
{

MemorySystem::MemorySystem(const CoreConfig &config)
    : cfg(config),
      l1("l1d", config.l1d),
      l2("l2", config.l2),
      l1Prefetcher("l1d.prefetcher", 64, config.l1d.prefetchDegree),
      l2Prefetcher("l2.prefetcher", 64, config.l2.prefetchDegree),
      statGroup("mem"),
      st(statGroup)
{
}

void
MemorySystem::reapMshrs(Cycle now)
{
    mshrs.erase(std::remove_if(mshrs.begin(), mshrs.end(),
                               [now](Cycle c) { return c <= now; }),
                mshrs.end());
}

MemAccessResult
MemorySystem::access(Addr addr, std::uint64_t pc, Cycle now, bool is_store)
{
    reapMshrs(now);

    MemAccessResult res;
    prefetchQueue.clear();
    if (cfg.l1d.stridePrefetcher)
        l1Prefetcher.observe(pc, addr, prefetchQueue);

    if (auto hit = l1.probe(addr, now)) {
        res.l1Hit = true;
        res.completeAt = *hit;
    } else {
        // L1 miss: need an MSHR.
        if (mshrs.size() >= cfg.l1d.mshrs) {
            ++st.mshrRejects;
            res.accepted = false;
            return res;
        }
        Cycle fill;
        if (auto l2hit = l2.probe(addr, now)) {
            fill = *l2hit;
            if (cfg.l2.stridePrefetcher)
                l2Prefetcher.observe(pc, addr, prefetchQueue);
        } else {
            fill = now + cfg.l2.latency + cfg.memLatency;
            l2.insert(addr, now, fill - cfg.l1d.latency);
        }
        l1.insert(addr, now, fill);
        mshrs.push_back(fill);
        res.l1Hit = false;
        res.completeAt = fill + cfg.l1d.latency;
    }

    if (is_store)
        ++st.stores;
    else
        ++st.loads;

    // Prefetches are timing-only and do not consume MSHRs in this
    // model (they ride the miss pipe in the background).
    for (Addr p : prefetchQueue)
        prefetchInto(p, now);

    return res;
}

void
MemorySystem::warmAccess(Addr addr, std::uint64_t pc, Cycle now)
{
    prefetchQueue.clear();
    if (cfg.l1d.stridePrefetcher)
        l1Prefetcher.observe(pc, addr, prefetchQueue);

    if (!l1.probe(addr, now)) {
        Cycle fill;
        if (auto l2hit = l2.probe(addr, now)) {
            fill = *l2hit;
            if (cfg.l2.stridePrefetcher)
                l2Prefetcher.observe(pc, addr, prefetchQueue);
        } else {
            fill = now + cfg.l2.latency + cfg.memLatency;
            l2.insert(addr, now, fill - cfg.l1d.latency);
        }
        l1.insert(addr, now, fill);
    }

    for (Addr p : prefetchQueue)
        prefetchInto(p, now);
}

void
MemorySystem::prefetchInto(Addr addr, Cycle now)
{
    if (l1.contains(addr))
        return;
    Cycle fill;
    if (auto l2hit = l2.probe(addr, now)) {
        fill = *l2hit;
    } else {
        fill = now + cfg.l2.latency + cfg.memLatency;
        l2.insert(addr, now, fill - cfg.l1d.latency);
    }
    l1.insert(addr, now, fill);
    ++st.prefetchFills;
}

void
MemorySystem::invalidate(Addr addr)
{
    l1.invalidate(addr);
    l2.invalidate(addr);
}

void
MemorySystem::flushAll()
{
    l1.flushAll();
    l2.flushAll();
}

} // namespace sb
