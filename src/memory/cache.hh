/**
 * @file
 * Set-associative cache tag model with LRU replacement and in-flight
 * fills. Only timing state is kept here; functional data lives in the
 * MemoryImage. Lines carry a readyAt cycle so accesses that hit a
 * line still being filled (hit-under-miss) see the residual latency.
 */

#ifndef SB_MEMORY_CACHE_HH
#define SB_MEMORY_CACHE_HH

#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sb
{

/** Cached counter handles for one cache level (hot-path increments). */
struct CacheStats
{
    explicit CacheStats(StatGroup &g)
        : hits(g.counter("hits")),
          misses(g.counter("misses")),
          evictions(g.counter("evictions")),
          fills(g.counter("fills"))
    {
    }

    Counter &hits;
    Counter &misses;
    Counter &evictions;
    Counter &fills;
};

/** One cache level (tags only). */
class Cache
{
  public:
    Cache(const std::string &name, const CacheConfig &config);

    /**
     * Look up @p addr at time @p now.
     * @return the cycle the data is available if present (>= now),
     *         or std::nullopt on a miss. Updates LRU on hit.
     */
    std::optional<Cycle> probe(Addr addr, Cycle now);

    /** Look up without updating replacement state or stats. */
    bool contains(Addr addr) const;

    /** Allocate a line that becomes ready at @p ready_at. */
    void insert(Addr addr, Cycle now, Cycle ready_at);

    /** Invalidate one line if present (used by tests and the attack). */
    void invalidate(Addr addr);

    /** Invalidate everything. */
    void flushAll();

    unsigned lineBytes() const { return cfg.lineBytes; }
    unsigned hitLatency() const { return cfg.latency; }

    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

  private:
    struct Line
    {
        Addr tag = 0;
        Cycle lastUse = 0;
        Cycle readyAt = 0;
        bool valid = false;
    };

    Addr lineAddr(Addr addr) const { return addr / cfg.lineBytes; }
    unsigned setIndex(Addr line) const { return line % numSets; }
    Addr tagOf(Addr line) const { return line / numSets; }

    CacheConfig cfg;
    unsigned numSets;
    std::vector<Line> lines;  ///< numSets x assoc, row-major.
    StatGroup statGroup;
    CacheStats st;
};

} // namespace sb

#endif // SB_MEMORY_CACHE_HH
