#include "memory/prefetcher.hh"

#include "common/logging.hh"

namespace sb
{

StridePrefetcher::StridePrefetcher(const std::string &name,
                                   unsigned table_entries, unsigned degree)
    : table(table_entries), degree(degree), statGroup(name),
      st(statGroup)
{
    sb_assert(table_entries > 0, "prefetcher needs a table");
}

void
StridePrefetcher::observe(std::uint64_t pc, Addr addr,
                          std::vector<Addr> &prefetches)
{
    Entry &e = table[pc % table.size()];
    if (e.pc != pc) {
        e.pc = pc;
        e.lastAddr = addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }
    const std::int64_t stride =
        static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 4)
            ++e.confidence;
    } else {
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
        e.stride = stride;
    }
    e.lastAddr = addr;

    if (e.confidence >= 2 && e.stride != 0) {
        for (unsigned d = 1; d <= degree; ++d) {
            const std::int64_t target =
                static_cast<std::int64_t>(addr) + e.stride * (d + 1);
            if (target >= 0) {
                prefetches.push_back(static_cast<Addr>(target));
                ++st.issued;
            }
        }
    }
}

} // namespace sb
