#include "memory/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sb
{

namespace
{

bool
isPow2(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // anonymous namespace

Cache::Cache(const std::string &name, const CacheConfig &config)
    : cfg(config), statGroup(name), st(statGroup)
{
    sb_assert(cfg.lineBytes > 0 && cfg.assoc > 0, "bad cache geometry");
    sb_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
              "cache size not divisible by way size");
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    sb_assert(isPow2(numSets), "cache must have a power-of-two set count");
    lines.resize(static_cast<std::size_t>(numSets) * cfg.assoc);
}

std::optional<Cycle>
Cache::probe(Addr addr, Cycle now)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[static_cast<std::size_t>(set) * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            l.lastUse = now;
            ++st.hits;
            return std::max(now + cfg.latency, l.readyAt + cfg.latency);
        }
    }
    ++st.misses;
    return std::nullopt;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Line &l = lines[static_cast<std::size_t>(set) * cfg.assoc + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
Cache::insert(Addr addr, Cycle now, Cycle ready_at)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);

    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[static_cast<std::size_t>(set) * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            // Already present (e.g. racing prefetch): keep earliest fill.
            l.readyAt = std::min(l.readyAt, ready_at);
            return;
        }
        if (!l.valid) {
            // Prefer any invalid way.
            if (!victim || victim->valid)
                victim = &l;
        } else if (!victim || (victim->valid
                               && l.lastUse < victim->lastUse)) {
            victim = &l;
        }
    }
    sb_assert(victim, "cache set with no victim");
    if (victim->valid)
        ++st.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = now;
    victim->readyAt = ready_at;
    ++st.fills;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[static_cast<std::size_t>(set) * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            l.valid = false;
            return;
        }
    }
}

void
Cache::flushAll()
{
    for (auto &l : lines)
        l.valid = false;
}

} // namespace sb
