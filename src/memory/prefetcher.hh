/**
 * @file
 * Per-PC stride prefetcher (Table 2 of the paper configures stride
 * prefetchers at both L1D and L2).
 *
 * A small table indexed by a hash of the requesting PC tracks the
 * last address and the last observed stride. Once the same stride is
 * seen twice, prefetch candidates at addr + stride .. addr + degree *
 * stride are emitted.
 */

#ifndef SB_MEMORY_PREFETCHER_HH
#define SB_MEMORY_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sb
{

/** Cached counter handles for the prefetcher's observe path. */
struct PrefetchStats
{
    explicit PrefetchStats(StatGroup &g) : issued(g.counter("issued")) {}

    Counter &issued;
};

/** Reference stride prefetcher. */
class StridePrefetcher
{
  public:
    /** @param table_entries tracking-table size; @param degree lines ahead */
    explicit StridePrefetcher(const std::string &name,
                              unsigned table_entries = 64,
                              unsigned degree = 2);

    /**
     * Observe a demand access and collect prefetch addresses.
     * @param pc the static code index of the load/store.
     * @param addr the accessed byte address.
     * @param[out] prefetches addresses to prefetch (appended).
     */
    void observe(std::uint64_t pc, Addr addr, std::vector<Addr> &prefetches);

    StatGroup &stats() { return statGroup; }

  private:
    struct Entry
    {
        std::uint64_t pc = ~0ULL;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    std::vector<Entry> table;
    unsigned degree;
    StatGroup statGroup;
    PrefetchStats st;
};

} // namespace sb

#endif // SB_MEMORY_PREFETCHER_HH
