/**
 * @file
 * Compiler-style software-mitigation passes over Program.
 *
 * The hardware roster (src/security/) closes Spectre channels in the
 * pipeline; this layer closes them the way deployed software does —
 * by rewriting the program. Three passes, mirroring the real tools:
 *
 *  - Slh: Speculative Load Hardening (LLVM's design). A poison mask
 *    is recomputed on every conditional-branch edge as a *data*
 *    function of the branch condition (exact Slt/Sltu compares, no
 *    control dependence), accumulated with OR, and folded into every
 *    load's address. On the architectural path the mask is 0 and the
 *    program is unchanged; on a mispredicted path the mask is all
 *    ones, the hardened address collapses to ~0 + offset, and the
 *    secret value never enters the pipeline.
 *  - Fence: conservative serialization. Every conditional branch is
 *    followed, on both edges, by an Op::Fence that stalls rename
 *    until the ROB drains, so no load issues under an unresolved
 *    bounds check.
 *  - Retpoline: every Op::JmpReg is lowered to Op::JmpRegRet plus a
 *    self-looping capture pad. The front end falls through into the
 *    pad instead of consulting the BTB, so an attacker-trained BTB
 *    entry can never steer transient execution (Spectre v2).
 *
 * Rewrites are *in place*: programs store code indices in data
 * memory (the v2 gadget's chase nodes, the generator's dispatch
 * tables), so original instructions must keep their PCs. A patched
 * instruction becomes a Jmp to a thunk appended after the original
 * code; the thunk re-emits the instruction (hardened) and jumps
 * back. TransformedProgram::originPc maps every PC of the rewritten
 * program to the original PC it stands for (or -1 for inserted
 * glue), so harnesses can compare committed-PC streams and attack
 * receivers can keep probe-PC arithmetic exact.
 */

#ifndef SB_ISA_TRANSFORM_HH
#define SB_ISA_TRANSFORM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sb
{

/** Software mitigation applied to a Program before simulation. */
enum class Mitigation : std::uint8_t
{
    None,      ///< Identity: run the program as written.
    Slh,       ///< Speculative load hardening (mask-on-misspeculation).
    Fence,     ///< Speculation barrier on both edges of every branch.
    Retpoline, ///< BTB-starving lowering of indirect branches.
};

const char *mitigationName(Mitigation m);

/** Parse @p name ("none"|"slh"|"fence"|"retpoline"). */
bool mitigationFromName(const std::string &name, Mitigation &out);

/** Full roster, None first (grid sweeps iterate this). */
const std::vector<Mitigation> &allMitigations();

/** "none|slh|fence|retpoline" — for CLI error messages. */
std::string mitigationVocabulary();

/**
 * The mitigation slice of a RunSpec. A struct (not a bare enum) so
 * future pass options (e.g. SLH value hardening) join the canonical
 * serialization in one place.
 */
struct MitigationConfig
{
    Mitigation kind = Mitigation::None;

    bool enabled() const { return kind != Mitigation::None; }

    /** Canonical piece for RunSpec::canonical(): "mitigation=slh". */
    std::string canonical() const;
};

/** What a pass did, for reports and structural tests. */
struct TransformStats
{
    unsigned hardenedLoads = 0;       ///< Loads rewritten with the mask.
    unsigned instrumentedBranches = 0; ///< Cond branches given thunks.
    unsigned fencesInserted = 0;
    unsigned loweredIndirects = 0;    ///< JmpReg -> JmpRegRet.
    /** Scratch registers claimed by SLH (invalidArchReg if unused). */
    ArchReg maskReg = invalidArchReg;
    ArchReg tmpReg = invalidArchReg;
    ArchReg zeroReg = invalidArchReg;
};

/** A rewritten program plus the PC provenance map. */
struct TransformedProgram
{
    Program program;
    /**
     * originPc[pc] = the original program's PC this instruction
     * stands for, or -1 for inserted glue (thunk jumps, mask
     * updates, fences, capture pads). Identity for PCs the pass
     * left untouched.
     */
    std::vector<std::int64_t> originPc;
    TransformStats stats;

    /** Origin of @p pc, or -1 if inserted / out of range. */
    std::int64_t
    origin(std::uint32_t pc) const
    {
        return pc < originPc.size() ? originPc[pc] : -1;
    }
};

/**
 * Apply @p m to @p prog. Mitigation::None returns an identity
 * transform (originPc[i] == i). SLH asserts that the program leaves
 * at least three architectural registers entirely unused (the mask,
 * scratch, and zero registers).
 */
TransformedProgram applyMitigation(Mitigation m, const Program &prog);

/**
 * SLH with the poison predicate knob exposed for tests. With
 * @p data_dependent_mask false the pass keeps the same shape but
 * derives the mask from control flow alone (each edge's pad asserts
 * "this edge is architectural" with an immediate 0) — exactly the
 * mistake SLH exists to avoid, since transient execution runs the
 * wrong pad. The closure tests prove the verifier still catches it.
 */
TransformedProgram applySlh(const Program &prog, bool data_dependent_mask);

} // namespace sb

#endif // SB_ISA_TRANSFORM_HH
