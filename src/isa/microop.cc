#include "isa/microop.hh"

#include <sstream>

#include "common/logging.hh"

namespace sb
{

OpClass
MicroOp::opClass() const
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Fence:
        return OpClass::Nop;
      case Op::Slt:
      case Op::Sltu:
      case Op::MovImm:
      case Op::Add:
      case Op::AddImm:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
        return OpClass::IntAlu;
      case Op::Mul:
        return OpClass::IntMul;
      case Op::Div:
        return OpClass::IntDiv;
      case Op::FAdd:
        return OpClass::FpAlu;
      case Op::FMul:
        return OpClass::FpMul;
      case Op::FDiv:
        return OpClass::FpDiv;
      case Op::Load:
        return OpClass::MemRead;
      case Op::Store:
        return OpClass::MemWrite;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
      case Op::JmpReg:
      case Op::JmpRegRet:
        return OpClass::Branch;
    }
    sb_panic("unknown op");
}

bool
MicroOp::isBranch() const
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
      case Op::JmpReg:
      case Op::JmpRegRet:
        return true;
      default:
        return false;
    }
}

Word
evalAlu(const MicroOp &uop, Word src1, Word src2)
{
    switch (uop.op) {
      case Op::MovImm:
        return static_cast<Word>(uop.imm);
      case Op::Add:
        return src1 + src2;
      case Op::AddImm:
        return src1 + static_cast<Word>(uop.imm);
      case Op::Sub:
        return src1 - src2;
      case Op::And:
        return src1 & src2;
      case Op::Or:
        return src1 | src2;
      case Op::Xor:
        return src1 ^ src2;
      case Op::Shl:
        return src1 << (src2 & 63);
      case Op::Shr:
        return src1 >> (src2 & 63);
      case Op::Mul:
        return src1 * src2;
      case Op::Div:
        return src2 == 0 ? ~Word(0) : src1 / src2;
      // FP ops are modelled on the integer datapath: the *latency* is
      // what matters for scheduling, not IEEE semantics.
      case Op::FAdd:
        return src1 + src2 + 1;
      case Op::FMul:
        return src1 * src2 + 1;
      case Op::FDiv:
        return src2 == 0 ? ~Word(0) : (src1 / src2) + 1;
      case Op::Slt:
        return static_cast<std::int64_t>(src1)
                       < static_cast<std::int64_t>(src2)
                   ? 1
                   : 0;
      case Op::Sltu:
        return src1 < src2 ? 1 : 0;
      case Op::Nop:
      case Op::Halt:
      case Op::Fence:
        return 0;
      default:
        sb_panic("evalAlu on non-ALU op ", uop.disassemble());
    }
}

bool
evalBranch(const MicroOp &uop, Word src1, Word src2)
{
    switch (uop.op) {
      case Op::Beq:
        return src1 == src2;
      case Op::Bne:
        return src1 != src2;
      case Op::Blt:
        return static_cast<std::int64_t>(src1)
               < static_cast<std::int64_t>(src2);
      case Op::Bge:
        return static_cast<std::int64_t>(src1)
               >= static_cast<std::int64_t>(src2);
      case Op::Jmp:
      case Op::JmpReg:
      case Op::JmpRegRet:
        return true;
      default:
        sb_panic("evalBranch on non-branch op");
    }
}

std::string
MicroOp::disassemble() const
{
    static const char *names[] = {
        "nop", "movi", "add", "addi", "sub", "and", "or", "xor", "shl",
        "shr", "mul", "div", "fadd", "fmul", "fdiv", "ld", "st", "beq",
        "bne", "blt", "bge", "jmp", "jr", "halt", "slt", "sltu",
        "fence", "jrr",
    };
    std::ostringstream oss;
    oss << names[static_cast<unsigned>(op)];
    if (hasDst())
        oss << " r" << dst;
    if (hasSrc1())
        oss << ", r" << src1;
    if (hasSrc2())
        oss << ", r" << src2;
    if (op == Op::MovImm || op == Op::AddImm || op == Op::Load
        || op == Op::Store) {
        oss << ", " << imm;
    }
    if (isBranch() && !isIndirect())
        oss << " -> " << target;
    return oss.str();
}

} // namespace sb
