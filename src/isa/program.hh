/**
 * @file
 * Program representation and assembler-style builder.
 *
 * A Program is a flat vector of micro-ops (the "PC" is an index into
 * the vector) plus an initial memory image. Uninitialised memory
 * reads return a deterministic per-address hash so large footprints
 * need no explicit initialisation.
 */

#ifndef SB_ISA_PROGRAM_HH
#define SB_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/microop.hh"

namespace sb
{

/**
 * Sparse functional memory image. Word-granular (8 bytes), addresses
 * are rounded down to the containing word.
 */
class MemoryImage
{
  public:
    /** Write one 64-bit word. */
    void write(Addr addr, Word value);

    /** Read one word; uninitialised locations yield hash(addr). */
    Word read(Addr addr) const;

    /** True if the word was explicitly written. */
    bool contains(Addr addr) const;

    std::size_t size() const { return count; }

    /**
     * Order-independent content hash over every explicitly written
     * (address, word) pair. Two images with the same committed writes
     * fingerprint identically whatever order the writes landed in —
     * the architectural-memory half of the conformance oracle
     * (src/harness/conformance.hh).
     */
    Word fingerprint() const;

    /** Deterministic background value for untouched memory. */
    static Word backgroundValue(Addr addr);

  private:
    /**
     * Flat open-addressing table (linear probe, power-of-two size).
     * The image only ever inserts — no deletions, no tombstones —
     * which makes this layout exact and keeps the three hot
     * operations (the per-committed-store write, the load-miss read,
     * and the whole-image copy into each Core's working memory) a
     * probe or a memcpy instead of node-based hashing.
     *
     * Stored addresses are 8-aligned, so an odd address can serve as
     * the empty-slot sentinel.
     */
    struct Slot
    {
        Addr addr = emptySlot;
        Word value = 0;
    };

    static constexpr Addr emptySlot = 1;

    static Addr align(Addr addr) { return addr & ~Addr(7); }

    static std::size_t
    probeStart(Addr addr, std::size_t mask)
    {
        // splitmix64-style multiply-shift on the word index.
        return static_cast<std::size_t>(
                   ((addr >> 3) * 0x9e3779b97f4a7c15ULL) >> 24)
               & mask;
    }

    const Slot *findSlot(Addr aligned) const;
    void grow(std::size_t min_capacity);

    std::vector<Slot> slots; ///< Empty until the first write.
    std::size_t count = 0;
};

/**
 * A byte range of the initial memory image holding secret data. The
 * contract shadow engine (src/core/contract_shadow.hh) seeds its
 * memory labels from these regions and propagates them taint-style
 * alongside values; everything outside is public.
 */
struct SecretRegion
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** Protection domain that owns this secret. The contract shadow
     *  threads the owner through its labels, so a transmit of secret
     *  data inside a *different* tenant's instruction stream is
     *  distinguishable as a cross-tenant violation. */
    TenantId tenant = 0;
};

/**
 * A context-switch point: when the instruction at @p pc commits, the
 * core switches to protection domain @p to — architectural registers
 * are banked out/in, every in-flight younger instruction is squashed,
 * and predictor state is flushed or kept per
 * CoreConfig::flushPredictorsOnSwitch.
 */
struct SwitchPoint
{
    std::uint32_t pc = 0;
    TenantId to = 0;
};

/** First-dispatch entry point of one tenant's instruction stream. */
struct TenantEntry
{
    TenantId tenant = 0;
    std::uint32_t pc = 0;
};

/** A complete runnable program: code, entry point, and initial memory. */
struct Program
{
    std::vector<MicroOp> code;
    std::uint32_t entry = 0;
    MemoryImage memory;
    std::string name = "program";

    /** Byte ranges of `memory` holding secret-labelled data. */
    std::vector<SecretRegion> secretRegions;

    /** Commit-time context-switch markers (empty = single-tenant). */
    std::vector<SwitchPoint> switchPoints;

    /** Where each tenant's stream starts the first time it is
     *  scheduled (tenants absent here start at the switch target's
     *  fall-through; tenant 0 starts at `entry`). */
    std::vector<TenantEntry> tenantEntries;

    std::size_t size() const { return code.size(); }

    /** Does this program ever switch protection domains? */
    bool multiTenant() const { return !switchPoints.empty(); }

    /** Disassemble the whole program, one op per line. */
    std::string disassemble() const;
};

/**
 * Builder with labels and backpatching. Typical use:
 * @code
 *   ProgramBuilder b;
 *   b.movi(1, 0);
 *   auto loop = b.here();
 *   b.addi(1, 1, 1);
 *   b.blt(1, 2, loop);
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    using Label = std::uint32_t;

    /** Current position (for backward branches). */
    Label here() const { return code.size(); }

    /** Create an unbound label for a forward branch. */
    Label futureLabel();

    /** Bind a future label to the current position. */
    void bind(Label label);

    // --- Instruction emitters (return the op's code index) -----------
    std::uint32_t nop();
    std::uint32_t movi(ArchReg dst, std::int64_t imm);
    std::uint32_t add(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t addi(ArchReg dst, ArchReg src1, std::int64_t imm);
    std::uint32_t sub(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t and_(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t or_(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t xor_(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t shl(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t shr(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t mul(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t div(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t slt(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t sltu(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t fadd(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t fmul(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t fdiv(ArchReg dst, ArchReg src1, ArchReg src2);
    std::uint32_t load(ArchReg dst, ArchReg base, std::int64_t offset);
    std::uint32_t store(ArchReg base, ArchReg data, std::int64_t offset);
    std::uint32_t beq(ArchReg src1, ArchReg src2, Label target);
    std::uint32_t bne(ArchReg src1, ArchReg src2, Label target);
    std::uint32_t blt(ArchReg src1, ArchReg src2, Label target);
    std::uint32_t bge(ArchReg src1, ArchReg src2, Label target);
    std::uint32_t jmp(Label target);
    std::uint32_t jr(ArchReg target_reg); ///< Indirect jump via register.
    std::uint32_t jrr(ArchReg target_reg); ///< BTB-free indirect (retpoline).
    std::uint32_t fence(); ///< Speculation barrier (drains the ROB).
    std::uint32_t halt();

    /** Direct access to the memory image being built. */
    MemoryImage &memory() { return mem; }

    /** Annotate a byte range of the initial image as secret-labelled
     *  (word-granular; the range is widened to 8-byte alignment),
     *  owned by tenant @p owner. */
    void markSecret(Addr base, std::uint64_t bytes, TenantId owner = 0);

    /** Record the current position as tenant @p t's entry point. */
    void tenantEntry(TenantId t);

    /**
     * Emit a context-switch marker (a nop): when it commits, the core
     * switches to tenant @p to. Returns the marker's code index.
     */
    std::uint32_t switchTenant(TenantId to);

    /** Finalise: checks all labels bound and targets in range. */
    Program build(std::string name = "program");

  private:
    std::uint32_t emit(MicroOp uop);
    std::uint32_t emitBranch(Op op, ArchReg src1, ArchReg src2,
                             Label target);

    static constexpr std::uint32_t unboundBase = 0x80000000u;

    std::vector<MicroOp> code;
    std::vector<std::int64_t> futureTargets; ///< -1 until bound.
    MemoryImage mem;
    std::vector<SecretRegion> secrets;
    std::vector<SwitchPoint> switches;
    std::vector<TenantEntry> tenantStarts;
};

} // namespace sb

#endif // SB_ISA_PROGRAM_HH
