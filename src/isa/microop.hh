/**
 * @file
 * The simulated micro-op ISA.
 *
 * A small RISC-V-flavoured micro-op set with full functional semantics:
 * enough to write real kernels (array sweeps, pointer chases, hash
 * loops, Spectre gadgets) whose branch outcomes and memory addresses
 * are computed from data, not scripted. Stores are a single micro-op
 * with separate address and data operands so the core can model BOOM's
 * partial store issue (paper Sec. 9.2).
 */

#ifndef SB_ISA_MICROOP_HH
#define SB_ISA_MICROOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace sb
{

/** Functional operation of a micro-op. */
enum class Op : std::uint8_t
{
    Nop,
    MovImm,  ///< dst = imm
    Add,     ///< dst = src1 + src2
    AddImm,  ///< dst = src1 + imm
    Sub,
    And,
    Or,
    Xor,
    Shl,     ///< dst = src1 << (src2 & 63)
    Shr,     ///< dst = src1 >> (src2 & 63)
    Mul,
    Div,     ///< dst = src1 / src2 (0 divisor yields all-ones)
    FAdd,    ///< modelled on the integer datapath with FP latency
    FMul,
    FDiv,
    Load,    ///< dst = mem[src1 + imm]
    Store,   ///< mem[src1 + imm] = src2 (src1: address, src2: data)
    Beq,     ///< branch to target if src1 == src2
    Bne,
    Blt,     ///< signed less-than
    Bge,
    Jmp,     ///< unconditional branch to target
    JmpReg,  ///< indirect branch: jump to the address held in src1
    Halt,    ///< stop the program (drains and ends simulation)
    // Appended after Halt so pre-existing encodings stay stable.
    Slt,     ///< dst = (signed) src1 < src2 ? 1 : 0
    Sltu,    ///< dst = (unsigned) src1 < src2 ? 1 : 0
    Fence,   ///< speculation barrier: rename stalls until the ROB drains
    JmpRegRet, ///< indirect branch that never touches the BTB: the
               ///< front end falls through (retpoline capture pad)
               ///< while execute redirects to the value in src1
};

/** Scheduling class of an operation (selects latency and ports). */
enum class OpClass : std::uint8_t
{
    Nop,
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    MemRead,
    MemWrite,
    Branch,
};

/** A single static micro-op. */
struct MicroOp
{
    Op op = Op::Nop;
    ArchReg dst = invalidArchReg;
    ArchReg src1 = invalidArchReg;
    ArchReg src2 = invalidArchReg;
    std::int64_t imm = 0;
    /** Branch target (code index). Unused by JmpReg, whose target is
     *  the runtime value of src1 (predicted through the BTB). */
    std::uint32_t target = 0;

    /** Scheduling class for this op. */
    OpClass opClass() const;

    bool isLoad() const { return op == Op::Load; }
    bool isStore() const { return op == Op::Store; }
    bool isBranch() const;
    bool isHalt() const { return op == Op::Halt; }
    /** Indirect branches: target is the runtime value of src1. */
    bool
    isIndirect() const
    {
        return op == Op::JmpReg || op == Op::JmpRegRet;
    }
    bool hasDst() const { return dst != invalidArchReg; }
    bool hasSrc1() const { return src1 != invalidArchReg; }
    bool hasSrc2() const { return src2 != invalidArchReg; }

    /**
     * Transmitter classification per STT (Sec. 3.1): an instruction
     * whose execution has an observable, operand-dependent effect.
     * Loads and stores transmit through their address; branches
     * through their direction.
     */
    bool
    isTransmitter() const
    {
        return isLoad() || isStore() || isBranch();
    }

    /** Human-readable disassembly. */
    std::string disassemble() const;
};

/** Evaluate the functional result of a non-memory, non-branch op. */
Word evalAlu(const MicroOp &uop, Word src1, Word src2);

/** Evaluate a branch condition. */
bool evalBranch(const MicroOp &uop, Word src1, Word src2);

} // namespace sb

#endif // SB_ISA_MICROOP_HH
