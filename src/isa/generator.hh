/**
 * @file
 * Seeded random-program generator for differential conformance
 * testing.
 *
 * Where src/trace/random_program.cc emits flat blocks of ops, this
 * generator builds *structured* programs — nested bounded loops,
 * if/else diamonds, indirect-jump dispatch tables, branches trained
 * to mispredict, and load/store clusters with deliberate aliasing
 * pressure — from a 64-bit seed and an op-mix profile. Every program
 * is guaranteed to terminate (all backward branches are counted
 * loops with data-independent trip counts; every data-dependent
 * branch is a bounded forward skip), every memory access is masked
 * into a private data region, and generation is bit-reproducible for
 * a (seed, profile) pair across hosts.
 *
 * The conformance harness (src/harness/conformance.hh) runs each
 * generated program under every secure scheme and demands
 * bit-identical architectural results against the Baseline.
 */

#ifndef SB_ISA_GENERATOR_HH
#define SB_ISA_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sb
{

/**
 * Op-mix profile: which structural constructs and operation classes
 * dominate the generated program. Profiles stress different
 * scheme machinery: MemHeavy leans on forwarding/disambiguation and
 * DoM's miss handling, BranchHeavy on shadow tracking and squash
 * recovery, AluHeavy on taint propagation chains.
 */
enum class OpMixProfile : std::uint8_t
{
    Mixed,       ///< Balanced construct and op mix.
    AluHeavy,    ///< Long ALU/mul/div dependency chains.
    MemHeavy,    ///< Aliasing load/store clusters, forwarding pressure.
    BranchHeavy, ///< Diamonds, trained-to-mispredict skips, dispatch.
};

/** Printable profile name (the `sbsim fuzz --profile` vocabulary). */
const char *opMixProfileName(OpMixProfile profile);

/**
 * Inverse of opMixProfileName(). Returns false (leaving @p out
 * untouched) on an unknown name.
 */
bool opMixProfileFromName(const std::string &name, OpMixProfile &out);

/** Every profile, in declaration order. */
std::vector<OpMixProfile> allOpMixProfiles();

/** Shape of one generated program. */
struct GeneratorParams
{
    std::uint64_t seed = 1;
    OpMixProfile profile = OpMixProfile::Mixed;
    /** Outer-loop trips before halt (the program's dynamic length). */
    unsigned outerIterations = 32;
    /** Structured segments generated inside the loop body. */
    unsigned segments = 6;
    /** Power-of-two data region every access is masked into. */
    std::uint64_t memBytes = 4096;
    /** Power-of-two hot sub-region used by aliasing clusters. */
    std::uint64_t aliasBytes = 128;
};

/** Generate a program; deterministic in (@p seed, @p profile). */
Program generateProgram(const GeneratorParams &params);

/** First architectural register the generator mutates (r4..r15). */
constexpr ArchReg generatorFirstWorkReg = 4;
/** Last architectural register the generator mutates. */
constexpr ArchReg generatorLastWorkReg = 15;
/** Base address of the generated data region. */
constexpr Addr generatorMemBase = 1ULL << 23;
/** Base address of the read-only indirect-dispatch tables. */
constexpr Addr generatorTableBase = 1ULL << 20;

} // namespace sb

#endif // SB_ISA_GENERATOR_HH
