#include "isa/transform.hh"

#include <numeric>

#include "common/logging.hh"

namespace sb
{

const char *
mitigationName(Mitigation m)
{
    switch (m) {
      case Mitigation::None:
        return "none";
      case Mitigation::Slh:
        return "slh";
      case Mitigation::Fence:
        return "fence";
      case Mitigation::Retpoline:
        return "retpoline";
    }
    sb_panic("unknown mitigation");
}

bool
mitigationFromName(const std::string &name, Mitigation &out)
{
    for (Mitigation m : allMitigations()) {
        if (name == mitigationName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

const std::vector<Mitigation> &
allMitigations()
{
    static const std::vector<Mitigation> roster = {
        Mitigation::None,
        Mitigation::Slh,
        Mitigation::Fence,
        Mitigation::Retpoline,
    };
    return roster;
}

std::string
mitigationVocabulary()
{
    std::string s;
    for (Mitigation m : allMitigations()) {
        if (!s.empty())
            s += '|';
        s += mitigationName(m);
    }
    return s;
}

std::string
MitigationConfig::canonical() const
{
    return std::string("mitigation=") + mitigationName(kind);
}

namespace
{

/**
 * In-place patching scaffold: the output starts as a copy of the
 * input; patched slots become a Jmp into a thunk appended after the
 * original code, so every original PC keeps its meaning (programs
 * store code indices in data memory).
 */
struct Patcher
{
    explicit Patcher(const Program &in) : out(in)
    {
        origin.resize(in.code.size());
        std::iota(origin.begin(), origin.end(), std::int64_t(0));
    }

    /** Append one op as glue (@p orig -1) or as the relocated
     *  original instruction (@p orig = its old PC). */
    std::uint32_t
    emit(const MicroOp &uop, std::int64_t orig = -1)
    {
        out.code.push_back(uop);
        origin.push_back(orig);
        return static_cast<std::uint32_t>(out.code.size() - 1);
    }

    /** Replace slot @p pc with a jump to the next appended op. */
    void
    beginThunk(std::uint32_t pc)
    {
        MicroOp j;
        j.op = Op::Jmp;
        j.target = static_cast<std::uint32_t>(out.code.size());
        out.code[pc] = j;
        origin[pc] = -1;
    }

    std::uint32_t
    jmpTo(std::uint32_t target)
    {
        MicroOp j;
        j.op = Op::Jmp;
        j.target = target;
        return emit(j);
    }

    Program out;
    std::vector<std::int64_t> origin;
};

MicroOp
aluOp(Op op, ArchReg dst, ArchReg src1, ArchReg src2)
{
    MicroOp uop;
    uop.op = op;
    uop.dst = dst;
    uop.src1 = src1;
    uop.src2 = src2;
    return uop;
}

MicroOp
moviOp(ArchReg dst, std::int64_t imm)
{
    MicroOp uop;
    uop.op = Op::MovImm;
    uop.dst = dst;
    uop.imm = imm;
    return uop;
}

MicroOp
addiOp(ArchReg dst, ArchReg src1, std::int64_t imm)
{
    MicroOp uop;
    uop.op = Op::AddImm;
    uop.dst = dst;
    uop.src1 = src1;
    uop.imm = imm;
    return uop;
}

bool
isCondBranch(const MicroOp &uop)
{
    return uop.op == Op::Beq || uop.op == Op::Bne || uop.op == Op::Blt
           || uop.op == Op::Bge;
}

/** Scan for three architectural registers the program never names. */
bool
findScratchRegs(const Program &prog, ArchReg out[3])
{
    bool used[numArchRegs] = {};
    for (const MicroOp &uop : prog.code) {
        if (uop.hasDst() && uop.dst < numArchRegs)
            used[uop.dst] = true;
        if (uop.hasSrc1() && uop.src1 < numArchRegs)
            used[uop.src1] = true;
        if (uop.hasSrc2() && uop.src2 < numArchRegs)
            used[uop.src2] = true;
    }
    unsigned found = 0;
    for (ArchReg r = 0; r < numArchRegs && found < 3; ++r) {
        if (!used[r])
            out[found++] = r;
    }
    return found == 3;
}

TransformedProgram
identityTransform(const Program &prog)
{
    TransformedProgram t;
    t.program = prog;
    t.originPc.resize(prog.code.size());
    std::iota(t.originPc.begin(), t.originPc.end(), std::int64_t(0));
    return t;
}

/**
 * SLH. Every conditional branch is rewritten into a thunk that
 * computes the branch condition as a value (Slt/Sltu — exact, no
 * sign-bit tricks), re-emits the branch, and lands each edge on a
 * private pad that folds "was this edge architectural?" into the
 * poison mask as pure data:
 *
 *     B:  jmp  thunk                    ; was: beq s1, s2 -> T
 *   thunk: xor  tmp, s1, s2
 *          sltu tmp, zero, tmp          ; tmp = (s1 != s2)
 *          beq  s1, s2 -> taken_pad
 *          addi tmp, tmp, -1            ; fall pad: 0 iff fell correctly
 *          or   mask, mask, tmp
 *          jmp  B+1
 *   taken_pad:
 *          sub  tmp, zero, tmp          ; 0 iff taken correctly
 *          or   mask, mask, tmp
 *          jmp  T
 *
 * On the architectural path every pad contributes 0; on a transient
 * wrong path the mis-fetched pad computes all-ones. Every load then
 * ORs the mask into its address:
 *
 *     L:  jmp  thunk                    ; was: ld dst, base, imm
 *   thunk: or   tmp, base, mask
 *          ld   dst, tmp, imm
 *          jmp  L+1
 *
 * so a transient load collapses to address ~0 + imm and the secret
 * value never enters the pipeline. Each Halt gains an epilogue that
 * clears the scratch registers, keeping the architectural register
 * digest identical to the untransformed program.
 */
TransformedProgram
slhPass(const Program &prog, bool data_dependent_mask)
{
    bool any_branch = false;
    for (const MicroOp &uop : prog.code)
        any_branch = any_branch || isCondBranch(uop);
    if (!any_branch)
        return identityTransform(prog);

    ArchReg scratch[3];
    sb_assert(findScratchRegs(prog, scratch),
              "SLH needs 3 unused architectural registers in ",
              prog.name);
    const ArchReg mask = scratch[0];
    const ArchReg tmp = scratch[1];
    const ArchReg zero = scratch[2];

    Patcher p(prog);
    TransformStats st;
    st.maskReg = mask;
    st.tmpReg = tmp;
    st.zeroReg = zero;

    const std::uint32_t n = static_cast<std::uint32_t>(prog.code.size());
    for (std::uint32_t pc = 0; pc < n; ++pc) {
        const MicroOp uop = prog.code[pc];
        if (isCondBranch(uop)) {
            p.beginThunk(pc);
            // tmp := condition-as-value. Beq/Bne key on (s1 != s2),
            // Blt/Bge on signed (s1 < s2).
            if (data_dependent_mask) {
                if (uop.op == Op::Beq || uop.op == Op::Bne) {
                    p.emit(aluOp(Op::Xor, tmp, uop.src1, uop.src2));
                    p.emit(aluOp(Op::Sltu, tmp, zero, tmp));
                } else {
                    p.emit(aluOp(Op::Slt, tmp, uop.src1, uop.src2));
                }
            } else {
                // Deliberately broken variant (tests only): the mask
                // is derived from control flow — each pad *assumes*
                // its edge is architectural. Transient execution is
                // exactly the condition under which that is false.
                p.emit(moviOp(tmp, 0));
            }
            // Does the taken edge correspond to tmp == 1?
            const bool taken_iff_tmp =
                uop.op == Op::Bne || uop.op == Op::Blt;
            MicroOp branch = uop;
            const std::uint32_t branch_at = p.emit(branch, pc);
            // Fall-through pad: poison = 0 iff this edge was correct.
            if (data_dependent_mask) {
                p.emit(taken_iff_tmp ? aluOp(Op::Sub, tmp, zero, tmp)
                                     : addiOp(tmp, tmp, -1));
            } else {
                p.emit(moviOp(tmp, 0));
            }
            p.emit(aluOp(Op::Or, mask, mask, tmp));
            p.jmpTo(pc + 1);
            // Taken pad.
            const std::uint32_t taken_pad =
                static_cast<std::uint32_t>(p.out.code.size());
            if (data_dependent_mask) {
                p.emit(taken_iff_tmp ? addiOp(tmp, tmp, -1)
                                     : aluOp(Op::Sub, tmp, zero, tmp));
            } else {
                p.emit(moviOp(tmp, 0));
            }
            p.emit(aluOp(Op::Or, mask, mask, tmp));
            p.jmpTo(uop.target);
            p.out.code[branch_at].target = taken_pad;
            ++st.instrumentedBranches;
        } else if (uop.isLoad()) {
            p.beginThunk(pc);
            p.emit(aluOp(Op::Or, tmp, uop.src1, mask));
            MicroOp hardened = uop;
            hardened.src1 = tmp;
            p.emit(hardened, pc);
            p.jmpTo(pc + 1);
            ++st.hardenedLoads;
        } else if (uop.isHalt()) {
            // Epilogue: restore the claimed registers to their
            // initial (zero) state so the register digest matches.
            p.beginThunk(pc);
            p.emit(moviOp(mask, 0));
            p.emit(moviOp(tmp, 0));
            p.emit(uop, pc);
        }
    }

    TransformedProgram t;
    t.program = std::move(p.out);
    t.originPc = std::move(p.origin);
    t.stats = st;
    return t;
}

/**
 * Conservative fencing: both edges of every conditional branch pass
 * through an Op::Fence before rejoining the original code, so
 * nothing issues under an unresolved (bounds-check) branch.
 */
TransformedProgram
fencePass(const Program &prog)
{
    Patcher p(prog);
    TransformStats st;

    const std::uint32_t n = static_cast<std::uint32_t>(prog.code.size());
    for (std::uint32_t pc = 0; pc < n; ++pc) {
        const MicroOp uop = prog.code[pc];
        if (!isCondBranch(uop))
            continue;
        p.beginThunk(pc);
        MicroOp branch = uop;
        const std::uint32_t branch_at = p.emit(branch, pc);
        p.emit(MicroOp{Op::Fence});
        p.jmpTo(pc + 1);
        const std::uint32_t taken_pad =
            static_cast<std::uint32_t>(p.out.code.size());
        p.emit(MicroOp{Op::Fence});
        p.jmpTo(uop.target);
        p.out.code[branch_at].target = taken_pad;
        ++st.instrumentedBranches;
        st.fencesInserted += 2;
    }

    TransformedProgram t;
    t.program = std::move(p.out);
    t.originPc = std::move(p.origin);
    t.stats = st;
    return t;
}

/**
 * Retpoline lowering: each JmpReg becomes a JmpRegRet followed by a
 * self-looping capture pad. JmpRegRet never consults or trains the
 * BTB; the front end falls through into the pad and spins there
 * until execute redirects to the real target, so attacker-trained
 * BTB entries can never steer transient fetch.
 */
TransformedProgram
retpolinePass(const Program &prog)
{
    Patcher p(prog);
    TransformStats st;

    const std::uint32_t n = static_cast<std::uint32_t>(prog.code.size());
    for (std::uint32_t pc = 0; pc < n; ++pc) {
        const MicroOp uop = prog.code[pc];
        if (uop.op != Op::JmpReg)
            continue;
        p.beginThunk(pc);
        MicroOp lowered = uop;
        lowered.op = Op::JmpRegRet;
        p.emit(lowered, pc);
        // Capture pad: fetch falls through to here and spins.
        const std::uint32_t pad =
            static_cast<std::uint32_t>(p.out.code.size());
        p.jmpTo(pad);
        ++st.loweredIndirects;
    }

    TransformedProgram t;
    t.program = std::move(p.out);
    t.originPc = std::move(p.origin);
    t.stats = st;
    return t;
}

} // anonymous namespace

TransformedProgram
applySlh(const Program &prog, bool data_dependent_mask)
{
    TransformedProgram t = slhPass(prog, data_dependent_mask);
    t.program.name = prog.name + "+slh";
    return t;
}

TransformedProgram
applyMitigation(Mitigation m, const Program &prog)
{
    TransformedProgram t;
    switch (m) {
      case Mitigation::None:
        return identityTransform(prog);
      case Mitigation::Slh:
        t = slhPass(prog, true);
        break;
      case Mitigation::Fence:
        t = fencePass(prog);
        break;
      case Mitigation::Retpoline:
        t = retpolinePass(prog);
        break;
    }
    t.program.name = prog.name + "+" + mitigationName(m);
    return t;
}

} // namespace sb
