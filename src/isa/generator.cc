#include "isa/generator.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sb
{

namespace
{

// Registers reserved for generator plumbing. Work registers
// (generatorFirstWorkReg..generatorLastWorkReg, r4..r15) are the only
// ones random ops write; everything below is initialised once in the
// prologue or owned by a single construct.
constexpr ArchReg regBase = 1;       ///< Data-region base address.
constexpr ArchReg regMask = 2;       ///< Full word-aligned offset mask.
constexpr ArchReg regAddr = 3;       ///< Scratch for sanitised addresses.
constexpr ArchReg regAliasMask = 16; ///< Narrow mask (hot sub-region).
constexpr ArchReg regLfsr = 17;      ///< Mispredict source, churned per trip.
constexpr ArchReg regInnerCnt = 18;
constexpr ArchReg regInnerLim = 19;
constexpr ArchReg regOuterCnt = 20;
constexpr ArchReg regOuterLim = 21;
constexpr ArchReg regOne = 22;
constexpr ArchReg regTable = 23;     ///< Dispatch-table base address.
constexpr ArchReg regThree = 24;     ///< Mask 3 and word-shift 3.
constexpr ArchReg regCond = 25;      ///< Scratch for branch conditions.
constexpr ArchReg regZero = 26;
constexpr ArchReg regSeven = 27;
constexpr ArchReg regLfsrMul = 28;   ///< Odd multiplier for the churn.
constexpr ArchReg regAddr2 = 29;     ///< Second address scratch.

/** Structural constructs the loop body is assembled from. */
enum class Construct : unsigned
{
    AluBlock,       ///< Straight-line dependency chains.
    Diamond,        ///< Data-dependent if/else, both arms real.
    InnerLoop,      ///< Bounded counted loop (data-independent trips).
    MispredictSkip, ///< Forward skip steered by the per-trip LFSR bit.
    AliasCluster,   ///< Store/load pairs in the narrow hot region.
    WideMem,        ///< Loads/stores over the whole data region.
    Dispatch,       ///< Indirect-jump switch through a memory table.
    NumConstructs,
};

constexpr unsigned numConstructs =
    static_cast<unsigned>(Construct::NumConstructs);

/** Per-profile construct weights, indexed by Construct. */
struct ProfileWeights
{
    unsigned construct[numConstructs];
    /** Relative weight of mul/div/fp inside ALU picks (percent). */
    unsigned heavyAluPercent;
};

ProfileWeights
weightsFor(OpMixProfile profile)
{
    switch (profile) {
      case OpMixProfile::Mixed:
        return {{25, 15, 10, 10, 15, 15, 10}, 20};
      case OpMixProfile::AluHeavy:
        return {{55, 10, 10, 5, 5, 10, 5}, 40};
      case OpMixProfile::MemHeavy:
        return {{10, 5, 10, 5, 40, 25, 5}, 10};
      case OpMixProfile::BranchHeavy:
        return {{10, 25, 15, 25, 5, 5, 15}, 15};
    }
    sb_panic("unknown op-mix profile");
}

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Everything one generation run threads through its emitters. */
struct GenState
{
    ProgramBuilder b;
    Rng rng;
    ProfileWeights weights;
    /** Dispatch tables to patch into the image after code is final:
     *  (table byte offset, the four case code indices). */
    std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>>
        tables;
    std::uint64_t nextTableOffset = 0;

    explicit GenState(const GeneratorParams &p)
        : rng(p.seed), weights(weightsFor(p.profile))
    {
    }

    ArchReg
    workReg()
    {
        return generatorFirstWorkReg
               + static_cast<ArchReg>(rng.below(
                     generatorLastWorkReg - generatorFirstWorkReg + 1));
    }
};

/** One random register-to-register op (no memory, no branches). */
void
emitAluOp(GenState &g)
{
    const ArchReg d = g.workReg();
    const ArchReg s1 = g.workReg();
    const ArchReg s2 = g.workReg();
    if (g.rng.below(100) < g.weights.heavyAluPercent) {
        switch (g.rng.below(5)) {
          case 0:
            g.b.mul(d, s1, s2);
            return;
          case 1:
            g.b.div(d, s1, s2); // Zero divisor yields all-ones: defined.
            return;
          case 2:
            g.b.fadd(d, s1, s2);
            return;
          case 3:
            g.b.fmul(d, s1, s2);
            return;
          default:
            g.b.fdiv(d, s1, s2);
            return;
        }
    }
    switch (g.rng.below(7)) {
      case 0:
        g.b.add(d, s1, s2);
        return;
      case 1:
        g.b.sub(d, s1, s2);
        return;
      case 2:
        g.b.xor_(d, s1, s2);
        return;
      case 3:
        g.b.or_(d, s1, s2);
        return;
      case 4:
        g.b.and_(d, s1, s2);
        return;
      case 5:
        g.b.shl(d, s1, regThree);
        return;
      default:
        g.b.shr(d, s1, regSeven);
        return;
    }
}

/** Sanitise @p src into a valid data-region address in @p into. */
void
emitSanitise(GenState &g, ArchReg into, ArchReg src, ArchReg mask)
{
    g.b.and_(into, src, mask);
    g.b.or_(into, into, regBase);
}

void
emitAluBlock(GenState &g)
{
    const unsigned n = 3 + static_cast<unsigned>(g.rng.below(6));
    for (unsigned i = 0; i < n; ++i)
        emitAluOp(g);
}

void
emitDiamond(GenState &g)
{
    // cond = work & 7; usually nonzero, so the else arm trains
    // "taken" with data-dependent exceptions.
    g.b.and_(regCond, g.workReg(), regSeven);
    const auto else_arm = g.b.futureLabel();
    const auto join = g.b.futureLabel();
    g.b.beq(regCond, regZero, else_arm);
    const unsigned then_ops = 1 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < then_ops; ++i)
        emitAluOp(g);
    g.b.jmp(join);
    g.b.bind(else_arm);
    const unsigned else_ops = 1 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < else_ops; ++i)
        emitAluOp(g);
    g.b.bind(join);
}

void
emitInnerLoop(GenState &g)
{
    // Trip count is a generation-time constant, so the loop is
    // bounded whatever values flow through the work registers.
    const unsigned trips = 2 + static_cast<unsigned>(g.rng.below(3));
    g.b.movi(regInnerCnt, 0);
    g.b.movi(regInnerLim, trips);
    const auto top = g.b.here();
    const unsigned body = 2 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < body; ++i) {
        if (g.rng.chance(0.3)) {
            emitSanitise(g, regAddr, g.workReg(), regMask);
            if (g.rng.chance(0.5))
                g.b.load(g.workReg(), regAddr, 0);
            else
                g.b.store(regAddr, g.workReg(), 0);
        } else {
            emitAluOp(g);
        }
    }
    g.b.addi(regInnerCnt, regInnerCnt, 1);
    g.b.blt(regInnerCnt, regInnerLim, top);
}

void
emitMispredictSkip(GenState &g)
{
    // The LFSR register is churned once per outer trip, so this
    // branch's direction is a pseudo-random per-iteration bit: TAGE
    // keeps mispredicting it, which keeps C-shadows open and squash
    // recovery busy.
    g.b.and_(regCond, regLfsr, regOne);
    const auto skip = g.b.futureLabel();
    g.b.bne(regCond, regZero, skip);
    const unsigned body = 1 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < body; ++i)
        emitAluOp(g);
    g.b.bind(skip);
}

void
emitAliasCluster(GenState &g)
{
    // Forced store-to-load forward: the load reads through the same
    // (unredefined) address register the store wrote through.
    emitSanitise(g, regAddr, g.workReg(), regAliasMask);
    g.b.store(regAddr, g.workReg(), 0);
    const unsigned filler = static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < filler; ++i)
        emitAluOp(g);
    g.b.load(g.workReg(), regAddr, 0);

    // Slow-address store followed by a younger load in the same
    // narrow region: the load usually bypasses the unknown-address
    // store (optimistic disambiguation) and sometimes collides,
    // forcing a memory-order violation flush.
    g.b.mul(regCond, g.workReg(), regLfsrMul);
    emitSanitise(g, regAddr, regCond, regAliasMask);
    g.b.store(regAddr, g.workReg(), 0);
    emitSanitise(g, regAddr2, g.workReg(), regAliasMask);
    g.b.load(g.workReg(), regAddr2, 0);
}

void
emitWideMem(GenState &g)
{
    const unsigned n = 2 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < n; ++i) {
        emitSanitise(g, regAddr, g.workReg(), regMask);
        if (g.rng.chance(0.6))
            g.b.load(g.workReg(), regAddr, 0);
        else
            g.b.store(regAddr, g.workReg(), 0);
    }
}

void
emitDispatch(GenState &g)
{
    // Four-way switch through an indirect jump: the target is loaded
    // from a read-only table outside the store-reachable data region,
    // so every committed jr lands on one of the recorded case labels.
    constexpr unsigned cases = 4;
    const std::uint64_t table_off = g.nextTableOffset;
    g.nextTableOffset += cases * 8;

    g.b.and_(regCond, g.workReg(), regThree);
    g.b.shl(regCond, regCond, regThree);
    g.b.add(regCond, regCond, regTable);
    g.b.load(regCond, regCond,
             static_cast<std::int64_t>(table_off));
    g.b.jr(regCond);

    const auto join = g.b.futureLabel();
    std::vector<std::uint32_t> case_entries;
    for (unsigned c = 0; c < cases; ++c) {
        case_entries.push_back(g.b.here());
        const unsigned ops = 1 + static_cast<unsigned>(g.rng.below(2));
        for (unsigned i = 0; i < ops; ++i)
            emitAluOp(g);
        g.b.jmp(join);
    }
    g.b.bind(join);
    g.tables.emplace_back(table_off, std::move(case_entries));
}

void
emitConstruct(GenState &g)
{
    unsigned total = 0;
    for (unsigned w : g.weights.construct)
        total += w;
    std::uint64_t roll = g.rng.below(total);
    unsigned pick = 0;
    while (roll >= g.weights.construct[pick]) {
        roll -= g.weights.construct[pick];
        ++pick;
    }
    switch (static_cast<Construct>(pick)) {
      case Construct::AluBlock:
        emitAluBlock(g);
        return;
      case Construct::Diamond:
        emitDiamond(g);
        return;
      case Construct::InnerLoop:
        emitInnerLoop(g);
        return;
      case Construct::MispredictSkip:
        emitMispredictSkip(g);
        return;
      case Construct::AliasCluster:
        emitAliasCluster(g);
        return;
      case Construct::WideMem:
        emitWideMem(g);
        return;
      case Construct::Dispatch:
        emitDispatch(g);
        return;
      case Construct::NumConstructs:
        break;
    }
    sb_panic("construct pick out of range");
}

} // anonymous namespace

const char *
opMixProfileName(OpMixProfile profile)
{
    switch (profile) {
      case OpMixProfile::Mixed:
        return "mixed";
      case OpMixProfile::AluHeavy:
        return "alu";
      case OpMixProfile::MemHeavy:
        return "mem";
      case OpMixProfile::BranchHeavy:
        return "branch";
    }
    sb_panic("unknown op-mix profile");
}

bool
opMixProfileFromName(const std::string &name, OpMixProfile &out)
{
    for (OpMixProfile p : allOpMixProfiles()) {
        if (name == opMixProfileName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

std::vector<OpMixProfile>
allOpMixProfiles()
{
    return {OpMixProfile::Mixed, OpMixProfile::AluHeavy,
            OpMixProfile::MemHeavy, OpMixProfile::BranchHeavy};
}

Program
generateProgram(const GeneratorParams &p)
{
    sb_assert(isPow2(p.memBytes) && p.memBytes >= 64,
              "memBytes must be a power of two >= 64");
    sb_assert(isPow2(p.aliasBytes) && p.aliasBytes >= 16
                  && p.aliasBytes <= p.memBytes,
              "aliasBytes must be a power of two in [16, memBytes]");
    sb_assert(p.outerIterations >= 1, "program must iterate");
    sb_assert(p.segments >= 1, "program needs at least one segment");
    sb_assert(p.memBytes <= generatorTableBase,
              "data region must not reach the dispatch tables");

    GenState g(p);

    // --- Prologue: plumbing registers and seeded work values ---------
    g.b.movi(regBase, static_cast<std::int64_t>(generatorMemBase));
    g.b.movi(regMask,
             static_cast<std::int64_t>((p.memBytes - 1)
                                       & ~std::uint64_t(7)));
    g.b.movi(regAliasMask,
             static_cast<std::int64_t>((p.aliasBytes - 1)
                                       & ~std::uint64_t(7)));
    g.b.movi(regTable, static_cast<std::int64_t>(generatorTableBase));
    g.b.movi(regOuterCnt, 0);
    g.b.movi(regOuterLim, p.outerIterations);
    g.b.movi(regOne, 1);
    g.b.movi(regZero, 0);
    g.b.movi(regThree, 3);
    g.b.movi(regSeven, 7);
    g.b.movi(regLfsrMul, 0x5851f42d4c957f2dLL); // Odd (PCG multiplier).
    g.b.movi(regLfsr, static_cast<std::int64_t>(g.rng.next() | 1));
    for (ArchReg r = generatorFirstWorkReg; r <= generatorLastWorkReg;
         ++r) {
        g.b.movi(r, static_cast<std::int64_t>(g.rng.next() >> 8));
    }

    // Seed the head of the data region so early loads read varied
    // explicit values (the rest reads the deterministic background).
    for (unsigned w = 0; w < 32 && w * 8 < p.memBytes; ++w)
        g.b.memory().write(generatorMemBase + w * 8, g.rng.next());

    // Secret-label the top half of the data region: every generated
    // access is masked into [base, base + memBytes), so random loads
    // regularly pull secret-labelled words through the pipeline and
    // the contract shadow engine gets organic coverage of every
    // scheme's declared contract for free.
    g.b.markSecret(generatorMemBase + p.memBytes / 2, p.memBytes / 2);

    // --- Outer loop: the structured body, then the LFSR churn --------
    const auto loop = g.b.here();
    for (unsigned s = 0; s < p.segments; ++s)
        emitConstruct(g);
    g.b.mul(regLfsr, regLfsr, regLfsrMul);
    g.b.add(regLfsr, regLfsr, regOuterCnt);
    g.b.addi(regOuterCnt, regOuterCnt, 1);
    g.b.blt(regOuterCnt, regOuterLim, loop);
    g.b.halt();

    // --- Patch the dispatch tables now the case indices are final ----
    for (const auto &table : g.tables) {
        for (std::size_t c = 0; c < table.second.size(); ++c) {
            g.b.memory().write(generatorTableBase + table.first + c * 8,
                               table.second[c]);
        }
    }

    std::string name = "gen-";
    name += opMixProfileName(p.profile);
    name += "-" + std::to_string(p.seed);
    return g.b.build(std::move(name));
}

} // namespace sb
