#include "isa/program.hh"

#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"

namespace sb
{

const MemoryImage::Slot *
MemoryImage::findSlot(Addr aligned) const
{
    if (slots.empty())
        return nullptr;
    const std::size_t mask = slots.size() - 1;
    std::size_t i = probeStart(aligned, mask);
    while (slots[i].addr != emptySlot) {
        if (slots[i].addr == aligned)
            return &slots[i];
        i = (i + 1) & mask;
    }
    return &slots[i]; // First empty slot on the probe path.
}

void
MemoryImage::grow(std::size_t min_capacity)
{
    std::size_t cap = 64;
    while (cap < min_capacity)
        cap <<= 1;
    std::vector<Slot> old;
    old.swap(slots);
    slots.assign(cap, Slot{});
    const std::size_t mask = cap - 1;
    for (const Slot &s : old) {
        if (s.addr == emptySlot)
            continue;
        std::size_t i = probeStart(s.addr, mask);
        while (slots[i].addr != emptySlot)
            i = (i + 1) & mask;
        slots[i] = s;
    }
}

void
MemoryImage::write(Addr addr, Word value)
{
    // Keep the load factor under ~70% (count is pre-incremented for
    // the possible insert).
    if ((count + 1) * 10 >= slots.size() * 7)
        grow(2 * slots.size() + ((count + 1) * 2));

    const Addr a = align(addr);
    Slot *s = const_cast<Slot *>(findSlot(a));
    if (s->addr == emptySlot) {
        s->addr = a;
        ++count;
    }
    s->value = value;
}

Word
MemoryImage::read(Addr addr) const
{
    const Addr a = align(addr);
    const Slot *s = findSlot(a);
    if (s && s->addr == a)
        return s->value;
    return backgroundValue(a);
}

bool
MemoryImage::contains(Addr addr) const
{
    const Addr a = align(addr);
    const Slot *s = findSlot(a);
    return s && s->addr == a;
}

Word
MemoryImage::fingerprint() const
{
    // Hash each (addr, value) pair independently and combine with a
    // commutative fold, so the table's slot order (which differs with
    // capacity and insertion history) cannot leak into the digest.
    Word sum = 0x9ae16a3b2f90404fULL;
    Word mix = 0;
    for (const Slot &s : slots) {
        if (s.addr == emptySlot)
            continue;
        const Word h =
            fnv1aWord(fnv1aWord(fnv1aBasis, s.addr), s.value);
        sum += h;
        mix ^= h;
    }
    return (sum ^ (mix * 0xff51afd7ed558ccdULL)) + count;
}

Word
MemoryImage::backgroundValue(Addr addr)
{
    // splitmix64 finaliser: deterministic pseudo-data per address.
    Word z = addr + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < code.size(); ++i)
        oss << i << ":\t" << code[i].disassemble() << '\n';
    return oss.str();
}

ProgramBuilder::Label
ProgramBuilder::futureLabel()
{
    futureTargets.push_back(-1);
    return unboundBase + static_cast<std::uint32_t>(futureTargets.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    sb_assert(label >= unboundBase, "bind() of a non-future label");
    const std::size_t idx = label - unboundBase;
    sb_assert(idx < futureTargets.size(), "bind() of unknown label");
    sb_assert(futureTargets[idx] < 0, "label bound twice");
    futureTargets[idx] = static_cast<std::int64_t>(code.size());
}

std::uint32_t
ProgramBuilder::emit(MicroOp uop)
{
    code.push_back(uop);
    return static_cast<std::uint32_t>(code.size() - 1);
}

std::uint32_t
ProgramBuilder::emitBranch(Op op, ArchReg src1, ArchReg src2, Label target)
{
    MicroOp uop;
    uop.op = op;
    uop.src1 = src1;
    uop.src2 = src2;
    uop.target = target;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::nop()
{
    return emit(MicroOp{});
}

std::uint32_t
ProgramBuilder::movi(ArchReg dst, std::int64_t imm)
{
    MicroOp uop;
    uop.op = Op::MovImm;
    uop.dst = dst;
    uop.imm = imm;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::addi(ArchReg dst, ArchReg src1, std::int64_t imm)
{
    MicroOp uop;
    uop.op = Op::AddImm;
    uop.dst = dst;
    uop.src1 = src1;
    uop.imm = imm;
    return emit(uop);
}

namespace
{

MicroOp
threeReg(Op op, ArchReg dst, ArchReg src1, ArchReg src2)
{
    MicroOp uop;
    uop.op = op;
    uop.dst = dst;
    uop.src1 = src1;
    uop.src2 = src2;
    return uop;
}

} // anonymous namespace

std::uint32_t
ProgramBuilder::add(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Add, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::sub(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Sub, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::and_(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::And, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::or_(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Or, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::xor_(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Xor, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::shl(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Shl, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::shr(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Shr, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::mul(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Mul, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::div(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Div, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::slt(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Slt, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::sltu(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::Sltu, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::fadd(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::FAdd, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::fmul(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::FMul, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::fdiv(ArchReg dst, ArchReg src1, ArchReg src2)
{
    return emit(threeReg(Op::FDiv, dst, src1, src2));
}

std::uint32_t
ProgramBuilder::load(ArchReg dst, ArchReg base, std::int64_t offset)
{
    MicroOp uop;
    uop.op = Op::Load;
    uop.dst = dst;
    uop.src1 = base;
    uop.imm = offset;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::store(ArchReg base, ArchReg data, std::int64_t offset)
{
    MicroOp uop;
    uop.op = Op::Store;
    uop.src1 = base;
    uop.src2 = data;
    uop.imm = offset;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::beq(ArchReg src1, ArchReg src2, Label target)
{
    return emitBranch(Op::Beq, src1, src2, target);
}

std::uint32_t
ProgramBuilder::bne(ArchReg src1, ArchReg src2, Label target)
{
    return emitBranch(Op::Bne, src1, src2, target);
}

std::uint32_t
ProgramBuilder::blt(ArchReg src1, ArchReg src2, Label target)
{
    return emitBranch(Op::Blt, src1, src2, target);
}

std::uint32_t
ProgramBuilder::bge(ArchReg src1, ArchReg src2, Label target)
{
    return emitBranch(Op::Bge, src1, src2, target);
}

std::uint32_t
ProgramBuilder::jmp(Label target)
{
    return emitBranch(Op::Jmp, invalidArchReg, invalidArchReg, target);
}

std::uint32_t
ProgramBuilder::jr(ArchReg target_reg)
{
    MicroOp uop;
    uop.op = Op::JmpReg;
    uop.src1 = target_reg;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::jrr(ArchReg target_reg)
{
    MicroOp uop;
    uop.op = Op::JmpRegRet;
    uop.src1 = target_reg;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::fence()
{
    MicroOp uop;
    uop.op = Op::Fence;
    return emit(uop);
}

std::uint32_t
ProgramBuilder::halt()
{
    MicroOp uop;
    uop.op = Op::Halt;
    return emit(uop);
}

void
ProgramBuilder::markSecret(Addr base, std::uint64_t bytes, TenantId owner)
{
    if (bytes == 0)
        return;
    secrets.push_back({base, bytes, owner});
}

void
ProgramBuilder::tenantEntry(TenantId t)
{
    for (const TenantEntry &e : tenantStarts)
        sb_assert(e.tenant != t, "tenant entry recorded twice");
    tenantStarts.push_back({t, here()});
}

std::uint32_t
ProgramBuilder::switchTenant(TenantId to)
{
    const std::uint32_t pc = nop();
    switches.push_back({pc, to});
    return pc;
}

Program
ProgramBuilder::build(std::string name)
{
    // Resolve future labels. JmpReg carries no static target: its
    // destination is the runtime value of src1.
    for (auto &uop : code) {
        if (uop.isIndirect())
            continue;
        if (uop.isBranch() && uop.target >= unboundBase) {
            const std::size_t idx = uop.target - unboundBase;
            sb_assert(idx < futureTargets.size(), "unknown label in branch");
            sb_assert(futureTargets[idx] >= 0,
                      "unbound label referenced by branch");
            uop.target = static_cast<std::uint32_t>(futureTargets[idx]);
        }
    }
    for (const auto &uop : code) {
        if (uop.isBranch() && !uop.isIndirect()) {
            sb_assert(uop.target < code.size(),
                      "branch target out of range");
        }
    }
    Program p;
    p.code = std::move(code);
    p.memory = std::move(mem);
    p.name = std::move(name);
    p.secretRegions = std::move(secrets);
    p.switchPoints = std::move(switches);
    p.tenantEntries = std::move(tenantStarts);
    return p;
}

} // namespace sb
