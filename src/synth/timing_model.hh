/**
 * @file
 * Analytical synthesis timing model (the substitution for the
 * paper's AMD Vitis / Alveo U250 synthesis runs).
 *
 * The achievable frequency of a design is K / criticalPathDepth,
 * where the critical path is the max over per-stage gate-depth
 * models. The structure encodes the paper's timing arguments:
 *
 *  - Baseline: the critical path lives outside rename/issue (bypass
 *    and wakeup networks), growing superlinearly with core width.
 *  - STT-Rename adds the serial YRoT comparator chain to the rename
 *    stage (Fig. 3): depth grows ~quadratically with rename width,
 *    invisible at width 1-2 (slack) and dominant at width 4+
 *    (Sec. 4.1, Sec. 8.3).
 *  - STT-Issue adds a flat taint-unit to the timing-sensitive issue
 *    stage: a cost visible already at medium width, but scaling
 *    gently (no same-cycle dependency chain, Sec. 4.3).
 *  - NDA removes the speculative L1-hit scheduling logic, matching
 *    or slightly beating baseline frequency (Sec. 5.1, Sec. 8.3).
 *
 * Constants are calibrated against the frequencies the paper reports
 * in Figure 9 for the four BOOM presets; the per-stage structure
 * makes the extrapolation to wider designs follow the same reasoning
 * as the paper's Sec. 9.4.
 */

#ifndef SB_SYNTH_TIMING_MODEL_HH
#define SB_SYNTH_TIMING_MODEL_HH

#include "common/config.hh"

namespace sb
{

/** Per-stage critical-path breakdown (gate-depth units). */
struct TimingBreakdown
{
    double renameStage = 0.0;
    double issueStage = 0.0;
    double bypassNetwork = 0.0; ///< Baseline critical path.
    double criticalPath = 0.0;  ///< max of the stages.
    double frequencyMhz = 0.0;
};

/** Synthesis timing model. */
class TimingModel
{
  public:
    /** Full per-stage breakdown for (config, scheme). */
    static TimingBreakdown analyze(const CoreConfig &config,
                                   Scheme scheme);

    /** Achieved frequency in MHz. */
    static double frequencyMhz(const CoreConfig &config, Scheme scheme);

    /** Frequency relative to the unsafe baseline on the same config. */
    static double relativeFrequency(const CoreConfig &config,
                                    Scheme scheme);
};

} // namespace sb

#endif // SB_SYNTH_TIMING_MODEL_HH
