/**
 * @file
 * Structure-counting area model: FPGA lookup tables (LUTs) and
 * flip-flops (FFs) per design, calibrated at the Mega preset against
 * the paper's Table 4 (synthesised at 50 MHz):
 *
 *             LUTs    FFs     source of the cost
 *  STT-Rename 1.060   1.094   comparator chain + taint-RAT checkpoints
 *  STT-Issue  1.059   1.039   phys-reg taint table, no checkpoints
 *  NDA        0.980   1.027   drops spec-sched logic, adds bcast queue
 */

#ifndef SB_SYNTH_AREA_MODEL_HH
#define SB_SYNTH_AREA_MODEL_HH

#include "common/config.hh"

namespace sb
{

/** Absolute area estimate (arbitrary LUT/FF units). */
struct AreaEstimate
{
    double luts = 0.0;
    double ffs = 0.0;
};

/** Structure-counting area model. */
class AreaModel
{
  public:
    /** Area of (config, scheme). */
    static AreaEstimate estimate(const CoreConfig &config, Scheme scheme);

    /** Area normalised to the unsafe baseline on the same config. */
    static AreaEstimate relative(const CoreConfig &config, Scheme scheme);
};

} // namespace sb

#endif // SB_SYNTH_AREA_MODEL_HH
