#include "synth/area_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace sb
{

namespace
{

double
log2i(double x)
{
    return std::log2(x);
}

/** Unprotected core area from structure sizes. */
AreaEstimate
baselineArea(const CoreConfig &c)
{
    AreaEstimate a;
    // LUTs: datapath muxing, CAMs, and per-width replication.
    a.luts = 30.0 * c.robEntries           // ROB control
             + 90.0 * c.iqEntries          // wakeup CAM / select
             + 140.0 * c.numPhysRegs       // regfile read/write muxing
             + 5000.0 * c.coreWidth        // rename/decode/bypass
             + 220.0 * (c.ldqEntries + c.stqEntries); // LSU CAMs
    // FFs: architectural and microarchitectural state.
    a.ffs = 64.0 * c.numPhysRegs           // register file
            + 70.0 * c.robEntries
            + 30.0 * c.iqEntries
            + 25.0 * (c.ldqEntries + c.stqEntries)
            + 900.0 * c.coreWidth          // pipeline registers
            + 6000.0;                      // predictor tables
    return a;
}

} // anonymous namespace

AreaEstimate
AreaModel::estimate(const CoreConfig &c, Scheme scheme)
{
    AreaEstimate a = baselineArea(c);
    const double w = c.coreWidth;
    const double rootBits = log2i(c.robEntries);

    switch (scheme) {
      case Scheme::Baseline:
        break;

      case Scheme::SttRename: {
        // Serial comparator/select chain across the rename group
        // (area grows with the square of the width, like its depth).
        a.luts += 160.0 * w * w;
        // Taint-RAT read/write ports beside the RAT.
        a.luts += 8.0 * numArchRegs * w;
        // Taint-RAT storage plus per-branch checkpoints (Sec. 4.2);
        // checkpoints are the FF cost the paper calls out. The 0.5
        // factor models narrower checkpoint entries (valid + root).
        const double taint_rat = numArchRegs * rootBits;
        a.ffs += taint_rat * (1.0 + 0.5 * c.maxBranches);
        a.ffs += 80.0 * w; // YRoT pipeline registers.
        break;
      }

      case Scheme::SttIssue: {
        // Taint unit: per-port lookups into a physical-register-
        // indexed table plus youngest-root selects.
        a.luts += 20.0 * c.numPhysRegs + 250.0 * w;
        // Table storage: one root per physical register (an order of
        // magnitude more entries than architectural registers,
        // Sec. 4.3) — but no checkpoints at all.
        a.ffs += c.numPhysRegs * rootBits;
        // Back-propagated YRoT mask per issue-queue entry.
        a.ffs += c.iqEntries * rootBits;
        break;
      }

      case Scheme::Nda:
      case Scheme::NdaStrict: {
        // Removes the speculative L1-hit scheduling logic
        // (Sec. 5.1), a net LUT saving.
        a.luts -= 180.0 * w + 12.0 * c.iqEntries;
        // Split data-write/broadcast mux.
        a.luts += 50.0 * c.memPorts;
        // Pending-broadcast queue: one entry per LQ slot.
        a.ffs += 16.0 * c.ldqEntries + 286.0;
        break;
      }

      case Scheme::DelayOnMiss: {
        // L1 residency probe port per memory port, plus park/release
        // control per LQ entry.
        a.luts += 60.0 * c.memPorts + 6.0 * c.ldqEntries;
        // Parked bit + release bookkeeping per LQ entry.
        a.ffs += 5.0 * c.ldqEntries;
        break;
      }

      case Scheme::DelayAll: {
        // Visibility-point comparator folded into the load ready
        // logic: per IQ entry and per select port.
        a.luts += 3.0 * c.iqEntries + 35.0 * w;
        // Latched shadow/visibility state beside the select tree.
        a.ffs += 10.0 * w + 48.0;
        break;
      }
    }
    return a;
}

AreaEstimate
AreaModel::relative(const CoreConfig &c, Scheme scheme)
{
    const AreaEstimate base = baselineArea(c);
    const AreaEstimate s = estimate(c, scheme);
    AreaEstimate r;
    r.luts = s.luts / base.luts;
    r.ffs = s.ffs / base.ffs;
    return r;
}

} // namespace sb
