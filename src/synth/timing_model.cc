#include "synth/timing_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sb
{

namespace
{

// Depth units are scaled so frequency = kFreqScale / depth (MHz).
constexpr double kFreqScale = 10000.0;

// --- Baseline stage models (fitted to Fig. 9 baseline bars:
// 152 / 126 / 93 / 78 MHz for the Small..Mega presets) -------------

/** Bypass/wakeup network: the baseline critical path. */
double
bypassDepth(double w)
{
    return 54.5 + 11.35 * std::pow(w, 1.35);
}

/** Rename stage: RAT read + free-list write, linear port growth. */
double
renameDepth(double w)
{
    return 30.0 + 6.0 * w;
}

/** Issue stage: wakeup CAM + select tree. */
double
issueDepth(double w, double iq_entries)
{
    return 40.0 + 6.0 * w + 3.0 * std::log2(iq_entries);
}

// --- Scheme additions ------------------------------------------------

/**
 * STT-Rename YRoT chain (Fig. 3): w serial compare+select steps that
 * must finish in one cycle, plus RAT-adjacent taint read/write.
 * Fitted so the Mega preset lands at 80% of baseline frequency.
 */
double
sttRenameChain(double w)
{
    return 5.70 * w + 5.34 * w * w;
}

/**
 * STT-Issue taint unit: per-port physical-register taint lookups and
 * a youngest-root select; no intra-group serial chain.
 */
double
sttIssueTax(double w, double phys_regs)
{
    return 3.0 + 5.8 * std::pow(w, 1.7)
           + 0.8 * std::log2(phys_regs / 32.0);
}

/** NDA removes the speculative-wakeup logic from the issue path. */
constexpr double ndaBypassBonus = 0.8;

/**
 * Delay-on-Miss: a residency probe against the already-read L1 tags
 * plus per-LQ-entry park state, all off the select critical path —
 * charged to the issue stage, where every preset has slack.
 */
constexpr double domIssueTax = 3.5;

/**
 * DelayAll: one seq-vs-visibility-point comparator per select port
 * folded into the load ready logic.
 */
double
delayAllTax(double w)
{
    return 2.0 + 0.6 * w;
}

} // anonymous namespace

TimingBreakdown
TimingModel::analyze(const CoreConfig &config, Scheme scheme)
{
    const double w = config.coreWidth;

    TimingBreakdown b;
    b.renameStage = renameDepth(w);
    b.issueStage = issueDepth(w, config.iqEntries);
    b.bypassNetwork = bypassDepth(w);

    switch (scheme) {
      case Scheme::Baseline:
        break;
      case Scheme::SttRename:
        b.renameStage += sttRenameChain(w);
        break;
      case Scheme::SttIssue:
        b.issueStage += sttIssueTax(w, config.numPhysRegs);
        break;
      case Scheme::Nda:
      case Scheme::NdaStrict:
        // Dropping the L1-hit speculation logic slightly shortens
        // the wakeup path; the split write/broadcast mux is small.
        b.bypassNetwork -= ndaBypassBonus;
        break;
      case Scheme::DelayOnMiss:
        // Neither the park decision nor the release check touches
        // the bypass network: DoM rides the issue stage's slack and
        // keeps baseline frequency (its cost is all IPC).
        b.issueStage += domIssueTax;
        break;
      case Scheme::DelayAll:
        b.issueStage += delayAllTax(w);
        break;
    }

    b.criticalPath = std::max({b.renameStage, b.issueStage,
                               b.bypassNetwork});
    b.frequencyMhz = kFreqScale / b.criticalPath;
    return b;
}

double
TimingModel::frequencyMhz(const CoreConfig &config, Scheme scheme)
{
    return analyze(config, scheme).frequencyMhz;
}

double
TimingModel::relativeFrequency(const CoreConfig &config, Scheme scheme)
{
    return frequencyMhz(config, scheme)
           / frequencyMhz(config, Scheme::Baseline);
}

} // namespace sb
