#include "synth/power_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "synth/area_model.hh"

namespace sb
{

namespace
{

/** Share of power proportional to area (clock tree + static). */
constexpr double kAreaWeight = 0.6;
/** Share of power proportional to switching activity. */
constexpr double kActivityWeight = 0.4;

/** Calibrated per-scheme switching factors (Table 4). */
double
schemeActivity(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return 1.0;
      case Scheme::SttRename:
        return 0.93;  // Fewer issued/executed ops while blocked.
      case Scheme::SttIssue:
        return 0.976; // Kills and replays re-toggle select logic.
      case Scheme::Nda:
        return 0.87;  // No speculative wakeups, fewer broadcasts.
      case Scheme::NdaStrict:
        return 0.84;
      case Scheme::DelayOnMiss:
        return 0.965; // Squashed wrong-path misses never walk DRAM.
      case Scheme::DelayAll:
        return 0.80;  // Loads idle under every shadow: least toggling.
    }
    sb_panic("unknown scheme");
}

} // anonymous namespace

double
PowerModel::relative(const CoreConfig &config, Scheme scheme)
{
    const AreaEstimate rel = AreaModel::relative(config, scheme);
    return kAreaWeight * rel.luts
           + kActivityWeight * schemeActivity(scheme);
}

double
PowerModel::relative(const CoreConfig &config, Scheme scheme,
                     const ActivityProfile &activity)
{
    // Measured activity nudges the calibrated factor: extra kills and
    // squashed wrong-path work burn energy; deferred broadcasts save
    // wakeup-network toggles.
    double factor = schemeActivity(scheme);
    factor += 0.05 * std::min(activity.issueKillsPerInst, 1.0);
    factor += 0.03 * std::min(activity.squashedPerInst, 1.0);
    factor -= 0.04 * std::min(activity.deferredPerInst, 1.0);
    const AreaEstimate rel = AreaModel::relative(config, scheme);
    return kAreaWeight * rel.luts + kActivityWeight * factor;
}

} // namespace sb
