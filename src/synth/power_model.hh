/**
 * @file
 * Activity-based power model, calibrated at the Mega preset against
 * the paper's Table 4 (synthesised at 50 MHz): STT-Rename 1.008,
 * STT-Issue 1.026, NDA 0.936, relative to the unsafe baseline.
 *
 * Power splits into a static/area-proportional share and a dynamic
 * share scaled by a per-scheme switching-activity factor:
 *  - STT-Rename issues fewer instructions per cycle (blocked
 *    transmitters), roughly offsetting its added area;
 *  - STT-Issue's killed issues and replays re-toggle the select and
 *    taint-unit logic, a net increase;
 *  - NDA removes speculative wakeups and broadcasts less, a clear
 *    saving — the paper's sustainability argument (Sec. 8.5, 9.4).
 */

#ifndef SB_SYNTH_POWER_MODEL_HH
#define SB_SYNTH_POWER_MODEL_HH

#include "common/config.hh"

namespace sb
{

/** Optional measured-activity inputs (per committed instruction). */
struct ActivityProfile
{
    double issueKillsPerInst = 0.0;     ///< STT-Issue wasted slots.
    double deferredPerInst = 0.0;       ///< NDA deferred broadcasts.
    double squashedPerInst = 0.0;       ///< Wrong-path instructions.
};

/** Activity-based power model. */
class PowerModel
{
  public:
    /** Power normalised to the unsafe baseline on the same config. */
    static double relative(const CoreConfig &config, Scheme scheme);

    /** Same, modulated by measured activity from a simulation. */
    static double relative(const CoreConfig &config, Scheme scheme,
                           const ActivityProfile &activity);
};

} // namespace sb

#endif // SB_SYNTH_POWER_MODEL_HH
