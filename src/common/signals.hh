/**
 * @file
 * Cooperative interrupt handling for long grid runs.
 *
 * installSignalHandlers() arms SIGINT/SIGTERM to set a process-wide
 * flag (and ignores SIGPIPE, so a dispatcher writing to a dead worker
 * gets EPIPE instead of dying). Long-running loops — the engine's
 * batch loop, the shard dispatcher's poll loop, and the core's run
 * loop — poll interruptRequested() and wind down instead of dropping
 * completed work on the floor: the result cache keeps everything
 * already flushed, workers are terminated and reaped, and the driver
 * prints partial stats before exiting nonzero.
 *
 * A second SIGINT while the first is still winding down exits
 * immediately (the escape hatch when a drain itself wedges).
 */

#ifndef SB_COMMON_SIGNALS_HH
#define SB_COMMON_SIGNALS_HH

namespace sb
{

/** Arm SIGINT/SIGTERM to request a cooperative stop; idempotent. */
void installSignalHandlers();

/** True once SIGINT or SIGTERM was received. */
bool interruptRequested();

/** The signal that requested the stop (0 when none), for exit codes. */
int interruptSignal();

/** Clear the flag (tests only). */
void clearInterruptForTesting();

} // namespace sb

#endif // SB_COMMON_SIGNALS_HH
