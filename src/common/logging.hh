/**
 * @file
 * gem5-style logging primitives: panic(), fatal(), warn(), inform().
 *
 * panic() is for simulator bugs (conditions that must never happen
 * regardless of user input) and aborts. fatal() is for user errors
 * (bad configuration, invalid arguments) and exits cleanly with an
 * error code. warn()/inform() never stop the simulation.
 */

#ifndef SB_COMMON_LOGGING_HH
#define SB_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace sb
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail
{

/** Concatenate a parameter pack into a string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace sb

/** Abort: an internal invariant was violated (simulator bug). */
#define sb_panic(...) \
    ::sb::panicImpl(__FILE__, __LINE__, ::sb::detail::concat(__VA_ARGS__))

/** Exit(1): the user supplied an impossible configuration. */
#define sb_fatal(...) \
    ::sb::fatalImpl(__FILE__, __LINE__, ::sb::detail::concat(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define sb_warn(...) \
    ::sb::warnImpl(::sb::detail::concat(__VA_ARGS__))

/** Informational message to stdout. */
#define sb_inform(...) \
    ::sb::informImpl(::sb::detail::concat(__VA_ARGS__))

/** Checked invariant: panics with the condition text when violated. */
#define sb_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::sb::panicImpl(__FILE__, __LINE__,                           \
                ::sb::detail::concat("assertion failed: " #cond " ",      \
                                     ##__VA_ARGS__));                     \
        }                                                                 \
    } while (0)

#endif // SB_COMMON_LOGGING_HH
