#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace sb
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    sb_assert(cells.size() == head.size(),
              "table row width ", cells.size(), " != header width ",
              head.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::pct(double ratio, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << (ratio * 100.0)
        << '%';
    return oss.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(head.size(), 0);
    for (std::size_t i = 0; i < head.size(); ++i)
        widths[i] = head[i].size();
    for (const auto &r : rows)
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());

    auto line = [&](char fill, char join) {
        std::string s = "+";
        for (auto w : widths) {
            s += std::string(w + 2, fill);
            s += join;
        }
        s.back() = '+';
        return s + "\n";
    };
    auto fmt_row = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            s += ' ';
            s += cells[i];
            s += std::string(widths[i] - cells[i].size() + 1, ' ');
            s += '|';
        }
        return s + "\n";
    };

    std::string out = line('-', '+');
    out += fmt_row(head);
    out += line('=', '+');
    for (const auto &r : rows)
        out += fmt_row(r);
    out += line('-', '+');
    return out;
}

} // namespace sb
