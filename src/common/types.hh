/**
 * @file
 * Fundamental scalar types shared by every ShadowBinding module.
 *
 * The simulator models a BOOM-class out-of-order core, so the vocabulary
 * mirrors the hardware: cycles, sequence numbers (ROB order), architectural
 * and physical register indices, and memory addresses.
 */

#ifndef SB_COMMON_TYPES_HH
#define SB_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace sb
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (program order). */
using SeqNum = std::uint64_t;

/** Architectural (ISA-visible) register index. */
using ArchReg = std::uint16_t;

/** Physical register index (post-rename). */
using PhysReg = std::uint16_t;

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** 64-bit data value flowing through the simulated datapath. */
using Word = std::uint64_t;

/** Sentinel for "no register". */
constexpr ArchReg invalidArchReg = std::numeric_limits<ArchReg>::max();

/** Sentinel for "no physical register". */
constexpr PhysReg invalidPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "no sequence number" / "not speculative". */
constexpr SeqNum invalidSeqNum = std::numeric_limits<SeqNum>::max();

/**
 * Youngest Root of Taint (STT): the sequence number of the youngest
 * speculative load an instruction (transitively) depends on.
 * invalidSeqNum means "untainted".
 */
using YRoT = SeqNum;

/** Number of integer architectural registers in the modelled ISA. */
constexpr unsigned numArchRegs = 32;

/**
 * Protection-domain (tenant) identifier. Every instruction executes on
 * behalf of exactly one tenant, and every secret region is owned by
 * one; context switches (program switch points) move the core between
 * them. Single-tenant programs run entirely as tenant 0.
 */
using TenantId = std::uint16_t;

/** Sentinel for "no tenant" (e.g. an unowned label). */
constexpr TenantId invalidTenant = std::numeric_limits<TenantId>::max();

} // namespace sb

#endif // SB_COMMON_TYPES_HH
