/**
 * @file
 * ASCII table renderer used by the benchmark harness to print the
 * paper's tables and figure data series in a uniform format.
 */

#ifndef SB_COMMON_TABLE_HH
#define SB_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace sb
{

/** Column-aligned ASCII table with a header row. */
class TextTable
{
  public:
    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 3);

    /** Convenience: format a ratio as a percentage string. */
    static std::string pct(double ratio, int precision = 1);

    /** Render the table with box-drawing separators. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace sb

#endif // SB_COMMON_TABLE_HH
