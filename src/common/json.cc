#include "common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace sb
{

Json
Json::boolean(bool value)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = value;
    return j;
}

Json
Json::num(std::uint64_t value)
{
    Json j;
    j.kind_ = Kind::Uint;
    j.uint_ = value;
    return j;
}

Json
Json::num(double value)
{
    Json j;
    j.kind_ = Kind::Double;
    j.double_ = value;
    return j;
}

Json
Json::str(std::string value)
{
    Json j;
    j.kind_ = Kind::String;
    j.string_ = std::move(value);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    sb_assert(kind_ == Kind::Bool, "json: not a bool");
    return bool_;
}

std::uint64_t
Json::asUint() const
{
    sb_assert(kind_ == Kind::Uint, "json: not a uint");
    return uint_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Uint)
        return static_cast<double>(uint_);
    sb_assert(kind_ == Kind::Double, "json: not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    sb_assert(kind_ == Kind::String, "json: not a string");
    return string_;
}

const std::vector<Json> &
Json::items() const
{
    sb_assert(kind_ == Kind::Array, "json: not an array");
    return items_;
}

const std::map<std::string, Json> &
Json::fields() const
{
    sb_assert(kind_ == Kind::Object, "json: not an object");
    return fields_;
}

bool
Json::has(const std::string &key) const
{
    return kind_ == Kind::Object && fields_.count(key) != 0;
}

const Json &
Json::at(const std::string &key) const
{
    sb_assert(kind_ == Kind::Object, "json: not an object");
    auto it = fields_.find(key);
    sb_assert(it != fields_.end(), "json: missing key '", key, "'");
    return it->second;
}

Json &
Json::set(const std::string &key, Json value)
{
    sb_assert(kind_ == Kind::Object, "json: set on non-object");
    fields_[key] = std::move(value);
    return *this;
}

Json &
Json::push(Json value)
{
    sb_assert(kind_ == Kind::Array, "json: push on non-array");
    items_.push_back(std::move(value));
    return *this;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
Json::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Uint: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        return buf;
      }
      case Kind::Double: {
        if (!std::isfinite(double_))
            return "null";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        return buf;
      }
      case Kind::String:
        return "\"" + jsonEscape(string_) + "\"";
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ",";
            out += items_[i].dump();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &kv : fields_) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(kv.first) + "\":" + kv.second.dump();
        }
        return out + "}";
      }
    }
    sb_panic("json: unknown kind");
}

namespace
{

/** Recursive-descent parser over a [begin, end) character range. */
struct JsonParser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &message)
    {
        if (err.empty())
            err = message;
        return false;
    }

    void
    skipWs()
    {
        while (p < end
               && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    literal(const char *text)
    {
        for (const char *t = text; *t; ++t, ++p) {
            if (p >= end || *p != *t)
                return fail(std::string("expected '") + text + "'");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                switch (*p) {
                  case '"':  out += '"';  break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/';  break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("truncated \\u escape");
                    char hex[5] = {p[1], p[2], p[3], p[4], 0};
                    char *hend = nullptr;
                    const unsigned long cp = std::strtoul(hex, &hend, 16);
                    if (hend != hex + 4)
                        return fail("bad \\u escape");
                    // BMP-only UTF-8 encoding (no surrogate pairs):
                    // sufficient for the ASCII artifacts we produce.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    p += 4;
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // Closing quote.
        return true;
    }

    bool
    parseNumber(Json &out)
    {
        const char *start = p;
        bool floating = false;
        if (p < end && (*p == '-' || *p == '+'))
            ++p;
        while (p < end
               && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e'
                   || *p == 'E' || *p == '-' || *p == '+')) {
            if (*p == '.' || *p == 'e' || *p == 'E')
                floating = true;
            ++p;
        }
        if (p == start)
            return fail("expected number");
        const std::string text(start, p);
        if (!floating && text[0] != '-') {
            char *tend = nullptr;
            errno = 0;
            const unsigned long long v =
                std::strtoull(text.c_str(), &tend, 10);
            if (tend != text.c_str() + text.size())
                return fail("bad integer");
            if (errno == ERANGE)
                return fail("integer out of range");
            out = Json::num(static_cast<std::uint64_t>(v));
        } else {
            char *tend = nullptr;
            errno = 0;
            const double v = std::strtod(text.c_str(), &tend);
            if (tend != text.c_str() + text.size())
                return fail("bad number");
            if (errno == ERANGE && !std::isfinite(v))
                return fail("number out of range");
            out = Json::num(v);
        }
        return true;
    }

    /**
     * Nesting bound so a corrupt line of repeated '['/'{' fails
     * cleanly instead of overflowing the stack: malformed cache
     * input must degrade to a skipped line, never a crash.
     */
    static constexpr int maxDepth = 96;

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out = Json::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Json value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.set(key, std::move(value));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out = Json::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                Json value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.push(std::move(value));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json::str(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = Json::boolean(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Json::boolean(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = Json();
            return true;
          default:
            return parseNumber(out);
        }
    }
};

} // anonymous namespace

bool
Json::parse(const std::string &text, Json &out, std::string *err)
{
    JsonParser parser{text.data(), text.data() + text.size(), {}};
    if (!parser.parseValue(out, 0)) {
        if (err)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err)
            *err = "trailing characters";
        return false;
    }
    return true;
}

} // namespace sb
