/**
 * @file
 * Shared FNV-1a 64 hashing.
 *
 * One definition of the constants and the byte-fold, so every digest
 * in the repository (spec keys, observation traces, conformance
 * fingerprints) stays comparable with itself across modules. FNV-1a
 * is used everywhere a content hash is needed because it is trivially
 * portable and bit-stable across hosts — none of these digests are
 * security-sensitive.
 */

#ifndef SB_COMMON_HASH_HH
#define SB_COMMON_HASH_HH

#include <cstdint>
#include <string>

namespace sb
{

/** FNV-1a 64 offset basis (the seed for an empty digest). */
constexpr std::uint64_t fnv1aBasis = 0xcbf29ce484222325ULL;

/** Fold one 64-bit word into @p hash, least-significant byte first. */
constexpr std::uint64_t
fnv1aWord(std::uint64_t hash, std::uint64_t word)
{
    for (unsigned byte = 0; byte < 8; ++byte) {
        hash ^= (word >> (8 * byte)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** Fold a byte string into @p hash. */
inline std::uint64_t
fnv1aString(std::uint64_t hash, const std::string &text)
{
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace sb

#endif // SB_COMMON_HASH_HH
