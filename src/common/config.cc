#include "common/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace sb
{

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:    return "Baseline";
      case Scheme::SttRename:   return "STT-Rename";
      case Scheme::SttIssue:    return "STT-Issue";
      case Scheme::Nda:         return "NDA";
      case Scheme::NdaStrict:   return "NDA-Strict";
      case Scheme::DelayOnMiss: return "DoM";
      case Scheme::DelayAll:    return "DelayAll";
    }
    sb_panic("unknown scheme");
}

bool
schemeFromName(const std::string &name, Scheme &out)
{
    for (Scheme s : allSchemes()) {
        if (name == schemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::vector<Scheme>
paperSchemes()
{
    return {Scheme::SttRename, Scheme::SttIssue, Scheme::Nda};
}

std::vector<Scheme>
allSchemes()
{
    return {Scheme::Baseline,  Scheme::SttRename,   Scheme::SttIssue,
            Scheme::Nda,       Scheme::NdaStrict,   Scheme::DelayOnMiss,
            Scheme::DelayAll};
}

std::vector<SchemeConfig>
allSchemeConfigs()
{
    std::vector<SchemeConfig> configs;
    for (Scheme s : allSchemes()) {
        SchemeConfig c;
        c.scheme = s;
        configs.push_back(c);
    }
    return configs;
}

std::string
CacheConfig::canonical() const
{
    std::ostringstream oss;
    oss << "size=" << sizeBytes << ";assoc=" << assoc
        << ";line=" << lineBytes << ";lat=" << latency
        << ";mshrs=" << mshrs << ";pf=" << (stridePrefetcher ? 1 : 0)
        << ";pfdeg=" << prefetchDegree;
    return oss.str();
}

std::string
CoreConfig::canonical() const
{
    std::ostringstream oss;
    oss << "name=" << name << ";fw=" << fetchWidth
        << ";fbuf=" << fetchBufferEntries << ";cw=" << coreWidth
        << ";iw=" << issueWidth << ";memp=" << memPorts
        << ";fpp=" << fpPorts << ";rob=" << robEntries
        << ";iq=" << iqEntries << ";ldq=" << ldqEntries
        << ";stq=" << stqEntries << ";pregs=" << numPhysRegs
        << ";br=" << maxBranches << ";alu=" << aluLatency
        << ";mul=" << mulLatency << ";div=" << divLatency
        << ";fp=" << fpLatency << ";fpdiv=" << fpDivLatency
        << ";brlat=" << branchResolveLatency
        << ";l1d{" << l1d.canonical() << "};l2{" << l2.canonical()
        << "};mem=" << memLatency
        << ";specsched=" << (speculativeScheduling ? 1 : 0)
        << ";festages=" << frontendStages;
    // Appended only when set so every pre-existing spec key (and the
    // result-cache cells addressed by it) stays byte-identical.
    if (warmupInsts != 0)
        oss << ";ffwd=" << warmupInsts;
    // Same gating: the tenant knobs only reach the key when they
    // differ from the single-tenant defaults.
    if (flushPredictorsOnSwitch)
        oss << ";swflush=1";
    if (contextSwitchPenalty != 48)
        oss << ";swpen=" << contextSwitchPenalty;
    return oss.str();
}

std::string
SchemeConfig::canonical() const
{
    std::ostringstream oss;
    oss << "scheme=" << schemeName(scheme)
        << ";2taint=" << (twoTaintStores ? 1 : 0)
        << ";ndaspec=" << (ndaKeepSpeculativeScheduling ? 1 : 0);
    return oss.str();
}

CoreConfig
CoreConfig::small()
{
    CoreConfig c;
    c.name = "small";
    c.fetchWidth = 4;
    c.coreWidth = 1;
    c.issueWidth = 1;
    c.memPorts = 1;
    c.fpPorts = 1;
    c.robEntries = 32;
    c.iqEntries = 10;
    c.ldqEntries = 8;
    c.stqEntries = 8;
    c.numPhysRegs = 52;
    c.maxBranches = 8;
    c.l1d.mshrs = 2;
    return c;
}

CoreConfig
CoreConfig::medium()
{
    CoreConfig c;
    c.name = "medium";
    c.fetchWidth = 4;
    c.coreWidth = 2;
    c.issueWidth = 2;
    c.memPorts = 1;
    c.fpPorts = 1;
    c.robEntries = 64;
    c.iqEntries = 20;
    c.ldqEntries = 16;
    c.stqEntries = 16;
    c.numPhysRegs = 80;
    c.maxBranches = 12;
    c.l1d.mshrs = 4;
    return c;
}

CoreConfig
CoreConfig::large()
{
    CoreConfig c;
    c.name = "large";
    c.fetchWidth = 8;
    c.coreWidth = 3;
    c.issueWidth = 3;
    c.memPorts = 1;
    c.fpPorts = 2;
    c.robEntries = 96;
    c.iqEntries = 30;
    c.ldqEntries = 24;
    c.stqEntries = 24;
    c.numPhysRegs = 100;
    c.maxBranches = 16;
    c.l1d.mshrs = 6;
    return c;
}

CoreConfig
CoreConfig::mega()
{
    CoreConfig c;
    c.name = "mega";
    c.fetchWidth = 8;
    c.coreWidth = 4;
    c.issueWidth = 4;
    c.memPorts = 2;
    c.robEntries = 128;
    c.iqEntries = 40;
    c.ldqEntries = 32;
    c.stqEntries = 32;
    c.numPhysRegs = 128;
    c.maxBranches = 20;
    c.l1d.mshrs = 8;
    return c;
}

CoreConfig
CoreConfig::megaFlush()
{
    CoreConfig c = mega();
    c.name = "mega-flush";
    c.flushPredictorsOnSwitch = true;
    return c;
}

CoreConfig
CoreConfig::gem5Stt()
{
    // The original STT evaluation: 8-wide window-rich core with a
    // single-cycle L1 (Sec. 9.5 calls out the optimistic L1 latency).
    CoreConfig c = mega();
    c.name = "gem5-stt";
    c.coreWidth = 4;
    c.issueWidth = 6;
    c.memPorts = 2;
    c.robEntries = 224;
    c.iqEntries = 64;
    c.ldqEntries = 72;
    c.stqEntries = 56;
    c.numPhysRegs = 256;
    c.maxBranches = 32;
    c.l1d.latency = 1;
    c.memLatency = 70;
    return c;
}

CoreConfig
CoreConfig::gem5Nda()
{
    // The original NDA evaluation: Haswell-like 4-wide core with a
    // smaller window and a longer memory latency.
    CoreConfig c = mega();
    c.name = "gem5-nda";
    c.coreWidth = 4;
    c.issueWidth = 4;
    c.memPorts = 1;
    c.robEntries = 192;
    c.iqEntries = 60;
    c.ldqEntries = 32;
    c.stqEntries = 32;
    c.numPhysRegs = 168;
    c.maxBranches = 24;
    c.l1d.latency = 4;
    c.memLatency = 100;
    return c;
}

std::vector<CoreConfig>
CoreConfig::boomPresets()
{
    return {small(), medium(), large(), mega()};
}

} // namespace sb
