#include "common/signals.hh"

#include <csignal>
#include <unistd.h>

namespace sb
{

namespace
{

volatile std::sig_atomic_t g_interrupted = 0;
volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onInterrupt(int sig)
{
    if (g_interrupted) {
        // Second request: the drain itself is stuck; bail out now.
        // 128+sig matches the shell convention for signal deaths.
        _exit(128 + sig);
    }
    g_interrupted = 1;
    g_signal = sig;
    // Async-signal-safe progress note (write(2) is on the safe list).
    static const char msg[] =
        "\nsbsim: interrupt received, finishing in-flight work "
        "(repeat to abort)\n";
    const ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

} // anonymous namespace

void
installSignalHandlers()
{
    struct sigaction sa;
    sa.sa_handler = onInterrupt;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking poll()/read() in the dispatcher must
    // return EINTR so the loop notices the flag promptly.
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A worker that died mid-frame must surface as EPIPE on write,
    // not kill the dispatcher.
    std::signal(SIGPIPE, SIG_IGN);
}

bool
interruptRequested()
{
    return g_interrupted != 0;
}

int
interruptSignal()
{
    return static_cast<int>(g_signal);
}

void
clearInterruptForTesting()
{
    g_interrupted = 0;
    g_signal = 0;
}

} // namespace sb
