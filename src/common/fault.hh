/**
 * @file
 * Deterministic fault injection for the sharded experiment tier.
 *
 * The SB_FAULT environment variable arms faults that fire at exact,
 * reproducible points, so the supervision and recovery paths (worker
 * respawn, retry, quarantine, torn-record recovery) can be exercised
 * by tests instead of waiting for real crashes. The value is a
 * comma-separated list of directives:
 *
 *   crash:<n>       the process exits abruptly (no reply, no cleanup)
 *                   at the n-th crash point it reaches
 *   hang:<n>        the process stops making progress (sleeps
 *                   indefinitely) at the n-th hang point
 *   torn-write:<n>  the n-th armed cache append writes only a prefix
 *                   of its record, simulating a writer killed mid-write
 *   poison:<substr> every cell whose workload contains <substr>
 *                   crashes the worker that executes it (a poisoned
 *                   cell: fails on every attempt, on every worker)
 *
 * Counters are per-process: a respawned worker re-reads SB_FAULT and
 * starts counting from zero. With SB_FAULT unset every hook is a
 * no-op costing one branch.
 */

#ifndef SB_COMMON_FAULT_HH
#define SB_COMMON_FAULT_HH

#include <string>

namespace sb
{

/**
 * Reach the @p kind fault point ("crash", "hang", "torn-write").
 * Returns true exactly when this is the n-th time this process
 * reaches a point of that kind and SB_FAULT armed `kind:n`. The
 * caller performs the fault (exit, sleep, short write).
 */
bool faultPoint(const char *kind);

/** True when SB_FAULT armed `poison:<substr>` and @p workload
 *  contains the substring. */
bool faultPoisoned(const std::string &workload);

/** True when any SB_FAULT directive is armed (cheap pre-check for
 *  logging). */
bool faultsArmed();

/** Re-read SB_FAULT and reset all counters (tests only). */
void faultResetForTesting();

} // namespace sb

#endif // SB_COMMON_FAULT_HH
