#include "common/fault.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace sb
{

namespace
{

struct Directive
{
    std::string kind;      ///< "crash", "hang", "torn-write", "poison".
    unsigned long n = 0;   ///< Trigger ordinal (counted kinds).
    std::string substr;    ///< Workload substring (poison).
    unsigned long count = 0; ///< Points of this kind reached so far.
};

struct FaultState
{
    bool armed = false;
    std::vector<Directive> directives;
};

std::mutex g_mutex;
FaultState g_state;
bool g_parsed = false;

void
parseLocked()
{
    g_parsed = true;
    g_state = FaultState{};
    const char *env = std::getenv("SB_FAULT");
    if (!env || !*env)
        return;
    // kind:value[,kind:value...]; malformed entries are ignored (the
    // injector must never turn a typo into a production fault).
    const std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0
            || colon + 1 >= item.size())
            continue;
        Directive d;
        d.kind = item.substr(0, colon);
        const std::string value = item.substr(colon + 1);
        if (d.kind == "poison") {
            d.substr = value;
        } else {
            char *end = nullptr;
            d.n = std::strtoul(value.c_str(), &end, 10);
            if (!end || *end != '\0' || d.n == 0)
                continue;
        }
        g_state.directives.push_back(std::move(d));
        g_state.armed = true;
    }
}

} // anonymous namespace

bool
faultPoint(const char *kind)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_parsed)
        parseLocked();
    if (!g_state.armed)
        return false;
    for (Directive &d : g_state.directives) {
        if (d.kind != kind || d.substr.size())
            continue;
        return ++d.count == d.n;
    }
    return false;
}

bool
faultPoisoned(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_parsed)
        parseLocked();
    if (!g_state.armed)
        return false;
    for (const Directive &d : g_state.directives) {
        if (d.kind == "poison" && !d.substr.empty()
            && workload.find(d.substr) != std::string::npos)
            return true;
    }
    return false;
}

bool
faultsArmed()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_parsed)
        parseLocked();
    return g_state.armed;
}

void
faultResetForTesting()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_parsed = false;
}

} // namespace sb
