/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every experiment in the repository must be bit-reproducible, so all
 * randomness flows through this xoshiro256** implementation seeded
 * explicitly by the caller. std::mt19937 is avoided because its
 * distributions are not guaranteed identical across standard libraries.
 */

#ifndef SB_COMMON_RNG_HH
#define SB_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace sb
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialise the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        sb_assert(bound > 0, "Rng::below with zero bound");
        // Lemire's nearly-divisionless bounded sampling (biased by at most
        // 2^-64, irrelevant for workload synthesis).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        sb_assert(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish dependency distance: returns a value >= 1 with mean
     * roughly @p mean, used to pick how far back in the instruction
     * stream an operand producer sits.
     */
    unsigned
    geometric(double mean)
    {
        sb_assert(mean >= 1.0, "geometric mean must be >= 1");
        const double p = 1.0 / mean;
        unsigned n = 1;
        while (!chance(p) && n < 1024)
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace sb

#endif // SB_COMMON_RNG_HH
