#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace sb
{

Histogram::Histogram(unsigned num_buckets, unsigned bucket_width)
    : buckets(num_buckets, 0), width(bucket_width)
{
    sb_assert(num_buckets > 0 && bucket_width > 0,
              "histogram must have geometry");
}

void
Histogram::sample(std::uint64_t value)
{
    unsigned idx = value / width;
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
    ++samples;
    sum += value;
    maxSeen = std::max(maxSeen, value);
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (samples == 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the quantile sample, 1-based: ceil(q * samples), with
    // q=0 mapping to the first sample.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(samples) + 0.9999999999);
    if (rank == 0)
        rank = 1;
    if (rank > samples)
        rank = samples;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            if (i + 1 == buckets.size())
                return maxSeen; // Overflow bucket: unbounded above.
            return static_cast<std::uint64_t>(i) * width + (width - 1);
        }
    }
    return maxSeen;
}

double
Histogram::mean() const
{
    return samples == 0 ? 0.0
                        : static_cast<double>(sum)
                              / static_cast<double>(samples);
}

std::uint64_t
Histogram::bucketCount(unsigned idx) const
{
    sb_assert(idx < buckets.size(), "histogram bucket out of range");
    return buckets[idx];
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    samples = 0;
    sum = 0;
    maxSeen = 0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return ctrs[name];
}

Histogram &
StatGroup::histogram(const std::string &name, unsigned num_buckets,
                     unsigned bucket_width)
{
    auto it = hists.find(name);
    if (it == hists.end()) {
        it = hists.emplace(name, Histogram(num_buckets, bucket_width)).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = ctrs.find(name);
    return it == ctrs.end() ? 0 : it->second.value();
}

void
StatGroup::reset()
{
    for (auto &kv : ctrs)
        kv.second.reset();
    for (auto &kv : hists)
        kv.second.reset();
}

std::string
StatGroup::render() const
{
    std::ostringstream oss;
    for (const auto &kv : ctrs)
        oss << groupName << '.' << kv.first << ' ' << kv.second.value()
            << '\n';
    for (const auto &kv : hists) {
        oss << groupName << '.' << kv.first << ".mean " << kv.second.mean()
            << '\n';
        oss << groupName << '.' << kv.first << ".count " << kv.second.count()
            << '\n';
    }
    return oss.str();
}

} // namespace sb
