/**
 * @file
 * Lightweight statistics package: named scalar counters, histograms,
 * and derived formulas, registered in a StatGroup that can render
 * itself for reports.
 *
 * Deliberately minimal compared to gem5's stats package, but follows
 * the same model: stats are owned by the component that increments
 * them and harvested by name at the end of simulation.
 */

#ifndef SB_COMMON_STATS_HH
#define SB_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sb
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Fixed-bucket histogram for latency / occupancy distributions. */
class Histogram
{
  public:
    /** @param num_buckets bucket count; @param bucket_width per-bucket span */
    explicit Histogram(unsigned num_buckets = 16, unsigned bucket_width = 1);

    /** Record one sample; values past the top land in the overflow bucket. */
    void sample(std::uint64_t value);

    std::uint64_t count() const { return samples; }
    std::uint64_t total() const { return sum; }
    double mean() const;
    std::uint64_t bucketCount(unsigned idx) const;
    unsigned numBuckets() const { return buckets.size(); }

    /**
     * Value at quantile @p q in [0, 1] (q=0.5 is the median): the
     * upper edge of the bucket holding the ceil(q * count)-th sample,
     * i.e. an upper bound at bucket_width resolution. Returns 0 with
     * no samples; the overflow bucket reports the largest sample seen
     * (the histogram has no upper edge there).
     */
    std::uint64_t quantile(double q) const;

    /** Drop all samples (bucket geometry is kept). */
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    unsigned width;
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A flat registry of counters and histograms owned by one component.
 * Components expose `StatGroup &stats()` so harnesses can harvest
 * every counter by dotted name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    /**
     * Register (or fetch) a counter under this group.
     *
     * The returned reference stays valid for the life of the group
     * (node-based map), so components resolve their counters once at
     * construction into a struct of `Counter &` handles instead of
     * paying a string-keyed lookup on every increment.
     */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a histogram under this group. */
    Histogram &histogram(const std::string &name, unsigned num_buckets = 16,
                         unsigned bucket_width = 1);

    /** Value of a counter, 0 if never registered. */
    std::uint64_t value(const std::string &name) const;

    const std::string &name() const { return groupName; }
    const std::map<std::string, Counter> &counters() const { return ctrs; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists;
    }

    /** Zero every stat in the group. */
    void reset();

    /** Render "group.name value" lines. */
    std::string render() const;

  private:
    std::string groupName;
    std::map<std::string, Counter> ctrs;
    std::map<std::string, Histogram> hists;
};

} // namespace sb

#endif // SB_COMMON_STATS_HH
