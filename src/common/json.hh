/**
 * @file
 * Minimal JSON value: build, serialize, and parse — just enough for
 * the content-addressed result cache (JSONL lines) and the
 * machine-readable BENCH_*.json / SBSIM_*.json artifacts.
 *
 * Deliberately not a general-purpose JSON library: numbers are kept
 * as uint64 when they are non-negative integrals (so cycle and
 * instruction counts round-trip bit-exactly) and double otherwise;
 * object keys are stored sorted; non-finite doubles serialize as
 * null.
 */

#ifndef SB_COMMON_JSON_HH
#define SB_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sb
{

class Json
{
  public:
    enum class Kind { Null, Bool, Uint, Double, String, Array, Object };

    /** A null value. */
    Json() = default;

    static Json boolean(bool value);
    static Json num(std::uint64_t value);
    static Json num(double value);
    static Json str(std::string value);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Typed access; panics when the kind does not match. */
    bool asBool() const;
    std::uint64_t asUint() const;
    /** Double value; a Uint promotes. */
    double asDouble() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::map<std::string, Json> &fields() const;

    bool has(const std::string &key) const;
    /** Member lookup; panics when missing or not an object. */
    const Json &at(const std::string &key) const;

    /** Set an object member (panics on non-objects). */
    Json &set(const std::string &key, Json value);
    /** Append an array element (panics on non-arrays). */
    Json &push(Json value);

    /** Compact single-line serialization. */
    std::string dump() const;

    /**
     * Parse @p text into @p out. Returns false on malformed input and,
     * when @p err is non-null, stores a description there.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *err = nullptr);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::map<std::string, Json> fields_;
};

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace sb

#endif // SB_COMMON_JSON_HH
