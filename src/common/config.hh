/**
 * @file
 * Core configurations and secure-scheme selection.
 *
 * The four BOOM configurations follow Table 1 of the paper (Small,
 * Medium, Large, Mega) with structure sizes taken from the public
 * SonicBOOM configurations. Two extra configurations (Gem5Stt,
 * Gem5Nda) mirror the simulator setups of the original STT and NDA
 * papers for the Table 5 comparison.
 */

#ifndef SB_COMMON_CONFIG_HH
#define SB_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sb
{

/** Which secure speculation scheme the core runs. */
enum class Scheme
{
    Baseline,    ///< Unsafe, unprotected core.
    SttRename,   ///< STT with taint computation in the rename stage.
    SttIssue,    ///< STT with taint computation at instruction issue.
    Nda,         ///< NDA-Permissive: delayed load broadcast.
    NdaStrict,   ///< NDA-Strict extension: speculation is a full barrier.
    DelayOnMiss, ///< Speculative loads that miss in L1 wait for the
                 ///< visibility point; speculative hits proceed.
    DelayAll,    ///< Eager baseline: no load issues while speculative.
};

/** Printable scheme name, matching the paper's labels. */
const char *schemeName(Scheme scheme);

/**
 * Inverse of schemeName(). Returns false (leaving @p out untouched)
 * on an unknown name, so stale cache lines degrade to a miss instead
 * of an abort.
 */
bool schemeFromName(const std::string &name, Scheme &out);

/** All schemes evaluated in the paper, in presentation order. */
std::vector<Scheme> paperSchemes();

/** Every implemented scheme (baseline first), in roster order. */
std::vector<Scheme> allSchemes();

struct SchemeConfig;

/** allSchemes() as default-knob SchemeConfigs (the roster the
 *  battery, scheme_compare, and the examples all sweep). */
std::vector<SchemeConfig> allSchemeConfigs();

/** Geometry of one cache level. */
struct CacheConfig
{
    unsigned sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    unsigned latency = 3;      ///< Hit latency in cycles.
    unsigned mshrs = 8;        ///< Outstanding-miss capacity.
    bool stridePrefetcher = true;
    unsigned prefetchDegree = 6;  ///< Lines fetched ahead per trigger.

    /**
     * Stable `key=value` serialization covering every field, used to
     * content-address simulation results (RunSpec::specKey()). Any
     * new field must be appended here or identical-looking configs
     * would alias in the result cache.
     */
    std::string canonical() const;
};

/**
 * Full configuration of one simulated core. Widths follow Table 1;
 * buffer sizes follow the SonicBOOM open-source configurations.
 */
struct CoreConfig
{
    std::string name = "mega";

    // --- Front end ---------------------------------------------------
    unsigned fetchWidth = 8;      ///< Instructions fetched per cycle.
    unsigned fetchBufferEntries = 32;

    // --- Width (Table 1 "Core Width") --------------------------------
    unsigned coreWidth = 4;       ///< Decode/rename/dispatch/commit width.
    unsigned issueWidth = 4;      ///< Issue (select) ports per cycle.
    unsigned memPorts = 2;        ///< Loads/stores issued per cycle.
    unsigned fpPorts = 2;         ///< FP operations issued per cycle.

    // --- Buffers ------------------------------------------------------
    unsigned robEntries = 128;
    unsigned iqEntries = 40;      ///< Unified issue-queue capacity.
    unsigned ldqEntries = 32;
    unsigned stqEntries = 32;
    unsigned numPhysRegs = 128;   ///< Physical register file size.
    unsigned maxBranches = 20;    ///< In-flight branches (checkpoints).

    // --- Execution latencies ------------------------------------------
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 12;
    unsigned fpLatency = 4;
    unsigned fpDivLatency = 16;
    unsigned branchResolveLatency = 1;

    // --- Memory hierarchy ----------------------------------------------
    CacheConfig l1d;
    CacheConfig l2{512 * 1024, 8, 64, 14, 16, true};
    unsigned memLatency = 80;     ///< DRAM access latency in cycles.

    // --- Scheduling -----------------------------------------------------
    /**
     * Speculatively wake dependents of a load assuming an L1 hit and
     * replay them on a miss (Kim & Lipasti style). The baseline and
     * STT designs keep this; the NDA design removes it (Sec. 5.1).
     */
    bool speculativeScheduling = true;

    /** Pipeline depth from fetch to execute, for squash penalties. */
    unsigned frontendStages = 7;

    /**
     * Fast-forward: functionally execute this many instructions
     * before detailed simulation begins (architectural state, caches,
     * and predictors are warmed; no cycles are modelled). 0 = off.
     * Run from Core::run() exactly once, on a fresh core.
     */
    std::uint64_t warmupInsts = 0;

    // --- Protection domains --------------------------------------------
    /**
     * Flush predictor state (TAGE tables, BTB, global history) on a
     * context switch. The default (keep) models hardware without
     * cross-domain predictor isolation — the state trained by one
     * tenant steers the next tenant's speculation, which is exactly
     * the Spectre v2 / swapgs training channel. Programs without
     * switch points never exercise either policy.
     */
    bool flushPredictorsOnSwitch = false;

    /**
     * Fetch-stall cycles charged on every context switch (pipeline
     * refill + privileged-state swap cost), on top of the squash.
     */
    unsigned contextSwitchPenalty = 48;

    /** Named presets (Table 1). */
    static CoreConfig small();
    static CoreConfig medium();
    static CoreConfig large();
    static CoreConfig mega();

    /** mega() with the flush-on-switch predictor policy. */
    static CoreConfig megaFlush();

    /** gem5 setups of the original papers (Table 5, Sec. 9.5). */
    static CoreConfig gem5Stt();
    static CoreConfig gem5Nda();

    /** The four BOOM presets in width order. */
    static std::vector<CoreConfig> boomPresets();

    /** Stable full-field serialization (see CacheConfig::canonical). */
    std::string canonical() const;
};

/** Per-scheme knobs, including the paper's ablations. */
struct SchemeConfig
{
    Scheme scheme = Scheme::Baseline;

    /**
     * Sec. 9.2 optimization: give stores two taints (address and data)
     * so STT-Rename can partially issue an untainted address half.
     */
    bool twoTaintStores = false;

    /**
     * Ablation of Sec. 5.1: keep speculative L1-hit scheduling enabled
     * under NDA instead of removing it.
     */
    bool ndaKeepSpeculativeScheduling = false;

    /** Stable full-field serialization (see CacheConfig::canonical). */
    std::string canonical() const;
};

/**
 * Reference point used for the paper's Redwood Cove extrapolations
 * (Table 1 rightmost column and Table 3).
 */
struct IntelReference
{
    static constexpr double specIpc = 2.03;
    static constexpr unsigned coreWidth = 6;
};

} // namespace sb

#endif // SB_COMMON_CONFIG_HH
