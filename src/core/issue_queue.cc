#include "core/issue_queue.hh"

#include "common/logging.hh"

namespace sb
{

IssueQueue::IssueQueue(unsigned capacity) : cap(capacity)
{
    sb_assert(cap > 0, "issue queue needs capacity");
    slots.resize(cap);
    freeSlots.reserve(cap);
    for (std::int32_t i = static_cast<std::int32_t>(cap) - 1; i >= 0; --i)
        freeSlots.push_back(i);
    orderView.reserve(cap);
}

void
IssueQueue::addConsumer(PhysReg preg, std::int32_t slot)
{
    if (preg >= consumers.size())
        consumers.resize(preg + 1);
    consumers[preg].push_back(ConsumerRef{slot, slots[slot].gen});
}

void
IssueQueue::insert(const DynInstPtr &inst, bool src1_ready, bool src2_ready)
{
    sb_assert(!full(), "insert into full issue queue");

    const std::int32_t idx = freeSlots.back();
    freeSlots.pop_back();
    IqEntry &e = slots[idx];
    e.inst = inst;
    e.src1Ready = src1_ready || !inst->uop.hasSrc1();
    e.src2Ready = src2_ready || !inst->uop.hasSrc2();

    // Find the insertion point from the young end. Dispatch runs in
    // program order (and squashes only cut the young end), so the
    // core always lands on the tail in O(1); the walk only happens
    // for out-of-order unit-test insertions.
    std::int32_t succ = -1; // Entry that will follow the new one.
    std::int32_t pred = ageTail;
    while (pred >= 0 && slots[pred].inst->seq > inst->seq) {
        succ = pred;
        pred = slots[pred].agePrev;
    }
    e.agePrev = pred;
    e.ageNext = succ;
    if (pred >= 0)
        slots[pred].ageNext = idx;
    else
        ageHead = idx;
    if (succ >= 0)
        slots[succ].agePrev = idx;
    else
        ageTail = idx;

    if (!e.src1Ready)
        addConsumer(inst->psrc1, idx);
    if (!e.src2Ready)
        addConsumer(inst->psrc2, idx);

    inst->inIq = true;
    inst->iqSlot = idx;
    ++count;
    orderDirty = true;
}

void
IssueQueue::wakeup(PhysReg preg)
{
    if (preg >= consumers.size())
        return;
    auto &list = consumers[preg];
    for (const ConsumerRef &ref : list) {
        IqEntry &e = slots[ref.slot];
        if (e.gen != ref.gen || !e.inst)
            continue; // Stale: the slot was freed (and maybe reused).
        if (e.inst->uop.hasSrc1() && e.inst->psrc1 == preg)
            e.src1Ready = true;
        if (e.inst->uop.hasSrc2() && e.inst->psrc2 == preg)
            e.src2Ready = true;
    }
    // A physical register broadcasts once per allocation; anything
    // still listed is stale by construction.
    list.clear();
}

void
IssueQueue::freeSlot(std::int32_t idx)
{
    IqEntry &e = slots[idx];
    if (e.agePrev >= 0)
        slots[e.agePrev].ageNext = e.ageNext;
    else
        ageHead = e.ageNext;
    if (e.ageNext >= 0)
        slots[e.ageNext].agePrev = e.agePrev;
    else
        ageTail = e.agePrev;

    e.inst->inIq = false;
    e.inst->iqSlot = -1;
    e.inst.reset();
    e.src1Ready = false;
    e.src2Ready = false;
    e.agePrev = -1;
    e.ageNext = -1;
    ++e.gen;
    freeSlots.push_back(idx);
    --count;
    orderDirty = true;
}

void
IssueQueue::squash(SeqNum seq)
{
    // Age order makes the squash set a suffix, but also sweep for
    // entries flagged squashed by an earlier flush (parity with the
    // seed's predicate).
    std::int32_t idx = ageTail;
    while (idx >= 0) {
        const std::int32_t prev = slots[idx].agePrev;
        const DynInstPtr &inst = slots[idx].inst;
        if (inst->seq > seq || inst->squashed)
            freeSlot(idx);
        idx = prev;
    }
}

void
IssueQueue::remove(const DynInstPtr &inst)
{
    const std::int32_t idx = inst->iqSlot;
    sb_assert(idx >= 0 && idx < static_cast<std::int32_t>(cap)
                  && slots[idx].inst == inst,
              "removing instruction not in IQ");
    freeSlot(idx);
}

const std::vector<IqEntry *> &
IssueQueue::inOrder()
{
    if (orderDirty) {
        orderView.clear();
        for (std::int32_t idx = ageHead; idx >= 0;
             idx = slots[idx].ageNext) {
            orderView.push_back(&slots[idx]);
        }
        orderDirty = false;
    }
    return orderView;
}

void
IssueQueue::clear()
{
    std::int32_t idx = ageTail;
    while (idx >= 0) {
        const std::int32_t prev = slots[idx].agePrev;
        freeSlot(idx);
        idx = prev;
    }
}

} // namespace sb
