#include "core/issue_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sb
{

void
IssueQueue::insert(const DynInstPtr &inst, bool src1_ready, bool src2_ready)
{
    sb_assert(!full(), "insert into full issue queue");
    IqEntry e;
    e.inst = inst;
    e.src1Ready = src1_ready || !inst->uop.hasSrc1();
    e.src2Ready = src2_ready || !inst->uop.hasSrc2();
    inst->inIq = true;
    entries.push_back(std::move(e));
}

void
IssueQueue::wakeup(PhysReg preg)
{
    for (auto &e : entries) {
        if (e.inst->uop.hasSrc1() && e.inst->psrc1 == preg)
            e.src1Ready = true;
        if (e.inst->uop.hasSrc2() && e.inst->psrc2 == preg)
            e.src2Ready = true;
    }
}

void
IssueQueue::squash(SeqNum seq)
{
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [seq](const IqEntry &e) {
                                     return e.inst->seq > seq
                                            || e.inst->squashed;
                                 }),
                  entries.end());
}

void
IssueQueue::remove(const DynInstPtr &inst)
{
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&](const IqEntry &e) { return e.inst == inst; });
    sb_assert(it != entries.end(), "removing instruction not in IQ");
    inst->inIq = false;
    entries.erase(it);
}

std::vector<IqEntry *>
IssueQueue::inOrder()
{
    std::vector<IqEntry *> out;
    out.reserve(entries.size());
    for (auto &e : entries)
        out.push_back(&e);
    std::sort(out.begin(), out.end(), [](const IqEntry *a, const IqEntry *b) {
        return a->inst->seq < b->inst->seq;
    });
    return out;
}

} // namespace sb
