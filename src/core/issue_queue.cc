#include "core/issue_queue.hh"

#include "common/logging.hh"

namespace sb
{

IssueQueue::IssueQueue(unsigned capacity) : cap(capacity)
{
    sb_assert(cap > 0, "issue queue needs capacity");
    slots.resize(cap);
    freeSlots.reserve(cap);
    for (std::int32_t i = static_cast<std::int32_t>(cap) - 1; i >= 0; --i)
        freeSlots.push_back(i);
    orderView.reserve(cap);
}

void
IssueQueue::addConsumer(PhysReg preg, std::int32_t slot)
{
    if (preg >= consumers.size())
        consumers.resize(preg + 1);
    consumers[preg].push_back(ConsumerRef{slot, slots[slot].gen});
}

void
IssueQueue::insert(InstHandle h, DynInst &inst, bool src1_ready,
                   bool src2_ready)
{
    sb_assert(!full(), "insert into full issue queue");

    const std::int32_t idx = freeSlots.back();
    freeSlots.pop_back();
    IqEntry &e = slots[idx];
    e.handle = h;
    e.seq = inst.seq;
    e.psrc1 = inst.psrc1;
    e.psrc2 = inst.psrc2;
    e.hasSrc1 = inst.uop.hasSrc1();
    e.hasSrc2 = inst.uop.hasSrc2();
    e.isStore = inst.isStore();
    e.src1Ready = src1_ready || !e.hasSrc1;
    e.src2Ready = src2_ready || !e.hasSrc2;

    // Find the insertion point from the young end. Dispatch runs in
    // program order (and squashes only cut the young end), so the
    // core always lands on the tail in O(1); the walk only happens
    // for out-of-order unit-test insertions.
    std::int32_t succ = -1; // Entry that will follow the new one.
    std::int32_t pred = ageTail;
    while (pred >= 0 && slots[pred].seq > inst.seq) {
        succ = pred;
        pred = slots[pred].agePrev;
    }
    e.agePrev = pred;
    e.ageNext = succ;
    if (pred >= 0)
        slots[pred].ageNext = idx;
    else
        ageHead = idx;
    if (succ >= 0)
        slots[succ].agePrev = idx;
    else
        ageTail = idx;

    if (!e.src1Ready)
        addConsumer(e.psrc1, idx);
    if (!e.src2Ready)
        addConsumer(e.psrc2, idx);
    if (candidate(e))
        readyLink(idx);

    inst.inIq = true;
    inst.iqSlot = idx;
    ++count;
    orderDirty = true;
}

void
IssueQueue::wakeup(PhysReg preg)
{
    if (preg >= consumers.size())
        return;
    auto &list = consumers[preg];
    for (const ConsumerRef &ref : list) {
        IqEntry &e = slots[ref.slot];
        if (e.gen != ref.gen)
            continue; // Stale: the slot was freed (and maybe reused).
        if (e.hasSrc1 && e.psrc1 == preg)
            e.src1Ready = true;
        if (e.hasSrc2 && e.psrc2 == preg)
            e.src2Ready = true;
        if (!e.inReady && candidate(e))
            readyLink(ref.slot);
    }
    // A physical register broadcasts once per allocation; anything
    // still listed is stale by construction.
    list.clear();
}

void
IssueQueue::readyLink(std::int32_t idx)
{
    IqEntry &e = slots[idx];
    // Ordered insert by age, from the young end: freshly dispatched
    // and freshly woken entries are usually the youngest candidates.
    std::int32_t succ = -1;
    std::int32_t pred = rdyTail;
    while (pred >= 0 && slots[pred].seq > e.seq) {
        succ = pred;
        pred = slots[pred].rdyPrev;
    }
    e.rdyPrev = pred;
    e.rdyNext = succ;
    if (pred >= 0)
        slots[pred].rdyNext = idx;
    else
        rdyHead = idx;
    if (succ >= 0)
        slots[succ].rdyPrev = idx;
    else
        rdyTail = idx;
    e.inReady = true;
}

void
IssueQueue::readyUnlink(std::int32_t idx)
{
    IqEntry &e = slots[idx];
    if (e.rdyPrev >= 0)
        slots[e.rdyPrev].rdyNext = e.rdyNext;
    else
        rdyHead = e.rdyNext;
    if (e.rdyNext >= 0)
        slots[e.rdyNext].rdyPrev = e.rdyPrev;
    else
        rdyTail = e.rdyPrev;
    e.rdyPrev = -1;
    e.rdyNext = -1;
    e.inReady = false;
}

void
IssueQueue::freeSlot(std::int32_t idx)
{
    IqEntry &e = slots[idx];
    if (e.inReady)
        readyUnlink(idx);
    if (e.agePrev >= 0)
        slots[e.agePrev].ageNext = e.ageNext;
    else
        ageHead = e.ageNext;
    if (e.ageNext >= 0)
        slots[e.ageNext].agePrev = e.agePrev;
    else
        ageTail = e.agePrev;

    // The record may already be freed (squash walks the ROB before
    // sweeping the IQ), so revalidate through the slab.
    if (slab) {
        if (DynInst *r = slab->tryGet(e.handle)) {
            r->inIq = false;
            r->iqSlot = -1;
        }
    }
    e.handle = invalidInstHandle;
    e.src1Ready = false;
    e.src2Ready = false;
    e.agePrev = -1;
    e.ageNext = -1;
    ++e.gen;
    freeSlots.push_back(idx);
    --count;
    orderDirty = true;
}

void
IssueQueue::squash(SeqNum seq)
{
    // Age order makes the squash set a suffix, but also sweep entries
    // whose records an earlier flush already freed.
    std::int32_t idx = ageTail;
    while (idx >= 0) {
        const std::int32_t prev = slots[idx].agePrev;
        const bool stale = slab && !slab->alive(slots[idx].handle);
        if (slots[idx].seq > seq || stale)
            freeSlot(idx);
        idx = prev;
    }
}

void
IssueQueue::remove(const DynInst &inst)
{
    const std::int32_t idx = inst.iqSlot;
    sb_assert(idx >= 0 && idx < static_cast<std::int32_t>(cap)
                  && slots[idx].seq == inst.seq,
              "removing instruction not in IQ");
    freeSlot(idx);
}

const std::vector<IqEntry *> &
IssueQueue::inOrder()
{
    if (orderDirty) {
        orderView.clear();
        for (std::int32_t idx = ageHead; idx >= 0;
             idx = slots[idx].ageNext) {
            orderView.push_back(&slots[idx]);
        }
        orderDirty = false;
    }
    return orderView;
}

void
IssueQueue::clear()
{
    std::int32_t idx = ageTail;
    while (idx >= 0) {
        const std::int32_t prev = slots[idx].agePrev;
        freeSlot(idx);
        idx = prev;
    }
}

} // namespace sb
