#include "core/rename_map.hh"

namespace sb
{

RenameMap::RenameMap(unsigned arch_regs, unsigned phys_regs)
    : rat(arch_regs), physCount(phys_regs)
{
    sb_assert(phys_regs > arch_regs,
              "need more physical than architectural registers");
    // Identity-map the first arch_regs physical registers; the rest
    // start on the free list.
    for (unsigned i = 0; i < arch_regs; ++i)
        rat[i] = static_cast<PhysReg>(i);
    freeList.reserve(phys_regs - arch_regs);
    for (unsigned i = phys_regs; i-- > arch_regs;)
        freeList.push_back(static_cast<PhysReg>(i));
}

PhysReg
RenameMap::allocate(ArchReg reg, PhysReg &stale)
{
    sb_assert(reg < rat.size(), "RAT allocate out of range");
    sb_assert(!freeList.empty(), "allocate with empty free list");
    const PhysReg fresh = freeList.back();
    freeList.pop_back();
    stale = rat[reg];
    rat[reg] = fresh;
    return fresh;
}

void
RenameMap::release(PhysReg reg)
{
    sb_assert(reg != invalidPhysReg, "releasing invalid register");
    freeList.push_back(reg);
}

void
RenameMap::unwind(ArchReg reg, PhysReg allocated, PhysReg stale)
{
    sb_assert(reg < rat.size(), "RAT unwind out of range");
    sb_assert(rat[reg] == allocated, "unwind out of order");
    rat[reg] = stale;
    freeList.push_back(allocated);
}

} // namespace sb
