/**
 * @file
 * In-core contract shadow engine.
 *
 * A shadow copy of architectural state that tracks the
 * contract-permitted observation set cycle by cycle, after Tan et
 * al., "RTL Verification for Secure Speculation Using Contract Shadow
 * Logic". Program data carries secret labels (Program::secretRegions
 * seeds them; the register file and memory image propagate them
 * taint-style alongside values), and at every transmitter site the
 * core already instruments for LoadObservation the engine checks
 * whether the observed operand is inside the active contract's
 * permitted set. On violation it records (cycle, seqNum, pc) — the
 * pinpointed repro behind the differential verifier's verdict.
 *
 * Two contracts are modelled simultaneously:
 *
 *  - **sandboxing** — the leak-freedom notion the differential
 *    verifier polices: a transmitter may not execute with an operand
 *    carrying a secret acquired through a still-speculative load
 *    (out-of-sandbox transient access).
 *  - **constant-time** — ProSpeCT (Daniel et al.): secret-labelled
 *    data may never reach a transmitter operand at all, even
 *    architecturally.
 *
 * The engine is a pure observer: every hook is gated on on() and no
 * result feeds timing, so goldens are bit-identical with it on or
 * off. Like the invariant checkers it defaults on in debug builds
 * and off in release, with SB_INVARIANTS=0/1 forcing either way.
 */

#ifndef SB_CORE_CONTRACT_SHADOW_HH
#define SB_CORE_CONTRACT_SHADOW_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/dyn_inst.hh"

namespace sb
{

/** One pinpointed contract violation: the exact retire-stream
 *  coordinates of the offending transmitter execution. */
struct ContractViolation
{
    Cycle cycle = 0;
    SeqNum seq = invalidSeqNum;
    std::uint32_t pc = 0;

    bool valid() const { return seq != invalidSeqNum; }
};

/** Shadow label/permitted-set tracker and contract checker. */
class ContractShadow
{
  public:
    explicit ContractShadow(unsigned num_phys_regs);

    /** Mirror of InvariantChecker::defaultActive(): SB_INVARIANTS=1
     *  forces the shadow on even in release builds. */
    static bool defaultActive();

    bool on() const { return active; }
    void setActive(bool enable) { active = enable; }

    /** Seed memory labels from a program secret region; @p owner is
     *  the protection domain the secret belongs to. */
    void markSecretRegion(Addr base, std::uint64_t bytes,
                          TenantId owner = 0);

    /** True if the word containing @p addr is secret-labelled. */
    bool memSecret(Addr addr) const;

    /** Owning tenant of a secret word (invalidTenant if not secret). */
    TenantId memOwner(Addr addr) const;

    // --- Core hooks (all no-ops unless on()) --------------------------

    /** A physical register was newly allocated: clear its label. */
    void onAllocate(PhysReg reg);

    /** A load's value was read from memory / forwarded from a store
     *  (Core::finishLoad): capture the value's label, keyed by seq,
     *  until the result drains to the register file. */
    void onLoadValue(const DynInst &load, SeqNum forward_source);

    /** The load's result reached the register file: apply the label
     *  captured by onLoadValue, rooted at the load itself if it is
     *  still speculative. */
    void onLoadData(const DynInst &load, bool still_speculative);

    /** A store's data half executed: capture the data label. */
    void onStoreData(const DynInst &store);

    /** A store committed: move its captured data label into the
     *  memory labels (clean data scrubs a previously secret word). */
    void onStoreCommit(const DynInst &store);

    /**
     * An instruction consumed operands; the label analogue of
     * SecurityMonitor::onConsume. @p now is the current cycle and
     * @p vp the visibility point (a secret root older than it is
     * architecturally sanctioned). @p transmits marks observable
     * uses (load/store address, branch), where both contracts are
     * checked.
     */
    void onConsume(const DynInst &inst, Cycle now, SeqNum vp,
                   bool use_src1, bool use_src2, bool transmits);

    /** Squash: purge captured labels of killed loads/stores. */
    void onSquash(SeqNum youngest_surviving);

    // --- Architectural (fast-forward) path ----------------------------
    // The functional interpreter bypasses the pipeline, so the label
    // flow collapses to architectural reads/writes; only the
    // constant-time contract can fire there (nothing is speculative).

    struct Label
    {
        bool secret = false;
        /** Youngest still-speculative load the secret flowed through;
         *  invalidSeqNum = architecturally acquired. */
        SeqNum root = invalidSeqNum;
        /** Protection domain the secret belongs to (meaningful only
         *  while secret is set). */
        TenantId owner = 0;
    };

    Label regLabel(PhysReg reg) const { return regs[reg]; }
    void setRegLabel(PhysReg reg, Label label) { regs[reg] = label; }
    void setMemSecret(Addr addr, bool secret, TenantId owner = 0);

    /** A transmitter executed architecturally (fast-forward) with
     *  @p secret_operand: constant-time check only. */
    void onArchTransmit(std::uint32_t pc, bool secret_operand);

    // --- Verdicts ------------------------------------------------------

    std::uint64_t sandboxViolations() const { return sandboxViol; }
    std::uint64_t ctViolations() const { return ctViol; }
    /** Transmitters that executed with a secret operand owned by a
     *  *different* tenant than the executing instruction's — the
     *  protection-domain escalation of a constant-time violation. */
    std::uint64_t crossTenantViolations() const { return crossTenantViol; }
    const ContractViolation &firstSandboxViolation() const
    {
        return firstSandbox;
    }
    const ContractViolation &firstCtViolation() const { return firstCt; }
    const ContractViolation &firstCrossTenantViolation() const
    {
        return firstCrossTenant;
    }

    void reset();

  private:
    static Addr alignWord(Addr addr) { return addr & ~Addr(7); }

    /** Secret root of a register live at @p vp, invalid otherwise. */
    SeqNum liveRoot(PhysReg reg, SeqNum vp) const;

    bool active = false;
    std::vector<Label> regs;

    /** 8-aligned word addresses currently holding secret data, mapped
     *  to the protection domain that owns the secret. */
    std::unordered_map<Addr, TenantId> secretWords;

    /** Labels captured at finishLoad, pending writeback (by seq). */
    std::unordered_map<SeqNum, Label> pendingLoads;

    /** Store data labels captured at executeStoreData (by seq). */
    std::unordered_map<SeqNum, Label> storeData;

    std::uint64_t sandboxViol = 0;
    std::uint64_t ctViol = 0;
    std::uint64_t crossTenantViol = 0;
    ContractViolation firstSandbox;
    ContractViolation firstCt;
    ContractViolation firstCrossTenant;
};

} // namespace sb

#endif // SB_CORE_CONTRACT_SHADOW_HH
