/**
 * @file
 * In-core invariant checkers.
 *
 * Pure observers over the pipeline's structural invariants — they
 * never touch simulated state or timing, only record violations:
 *
 *  - ROB commit order: committed sequence numbers strictly increase,
 *    and only completed, unsquashed instructions retire;
 *  - shadow-tracker stamp monotonicity: the visibility point the
 *    core observes never moves backwards across ticks (the tracker
 *    additionally hard-asserts its own per-update step);
 *  - issue-queue wakeup consistency: an instruction (or store half)
 *    that wins select must have its scoreboard operands broadcast;
 *  - LSU forwarding sanity: a load only forwards from a strictly
 *    older store with a valid address.
 *
 * Activation: `SB_INVARIANTS=1` forces the checks on, `=0` forces
 * them off; unset, they are on in debug builds (!NDEBUG) and off in
 * release. The conformance harness force-enables them per core
 * (Core::setInvariantsEnabled) whatever the default, and fails any
 * fuzz cell whose violation count is nonzero — so a checker trip is
 * reported with a replayable seed instead of aborting the batch.
 */

#ifndef SB_CORE_INVARIANTS_HH
#define SB_CORE_INVARIANTS_HH

#include <cstdint>
#include <string>

#include "core/dyn_inst.hh"

namespace sb
{

class InvariantChecker
{
  public:
    InvariantChecker() : active(defaultActive()) {}

    /** Build/environment default (see file comment). */
    static bool defaultActive();

    bool on() const { return active; }
    void setActive(bool enable) { active = enable; }

    // --- Check points (call only when on()) --------------------------
    /** An instruction is retiring from the ROB head. */
    void onCommit(const DynInst &inst);

    /** The shadow tracker published a new visibility point. */
    void onVisibilityPoint(SeqNum vp);

    /**
     * An instruction (or store half) won a select port; @p src1_done
     * / @p src2_done are the scoreboard bits for the operands the op
     * actually reads (true for absent operands).
     */
    void onIssue(const DynInst &inst, bool src1_done, bool src2_done);

    /** A load is forwarding from store @p source. */
    void onForward(const DynInst &load, SeqNum source);

    // --- Results -----------------------------------------------------
    std::uint64_t violations() const { return count; }
    /** First violation's description; empty when clean. */
    const std::string &firstViolation() const { return first; }

  private:
    void fail(std::string message);

    bool active;
    SeqNum lastCommitSeq = 0;
    SeqNum lastVp = 0;
    std::uint64_t count = 0;
    std::string first;
};

} // namespace sb

#endif // SB_CORE_INVARIANTS_HH
