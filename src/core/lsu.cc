#include "core/lsu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sb
{

Lsu::Lsu(unsigned lq_capacity, unsigned sq_capacity)
    : lqCap(lq_capacity), sqCap(sq_capacity)
{
    sb_assert(lqCap > 0 && sqCap > 0, "LSU needs queue capacity");
}

void
Lsu::allocateLoad(const DynInstPtr &inst)
{
    sb_assert(!lqFull(), "LQ overflow");
    sb_assert(lq.empty() || lq.back().inst->seq < inst->seq,
              "LQ must stay program-ordered");
    LqEntry e;
    e.inst = inst;
    lq.push_back(std::move(e));
}

void
Lsu::allocateStore(const DynInstPtr &inst)
{
    sb_assert(!sqFull(), "SQ overflow");
    sb_assert(sq.empty() || sq.back().inst->seq < inst->seq,
              "SQ must stay program-ordered");
    SqEntry e;
    e.inst = inst;
    sq.push_back(std::move(e));
}

ForwardOutcome
Lsu::checkForwarding(const DynInst &load) const
{
    sb_assert(load.effAddrValid, "forwarding scan before address gen");
    ForwardOutcome out;
    const Addr target = wordAddr(load.effAddr);

    // Scan youngest-older-store first.
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &e = *it;
        if (e.inst->seq > load.seq)
            continue;
        if (!e.inst->effAddrValid) {
            // Unknown address: optimistically bypass, remember it.
            out.bypassedUnknown = true;
            continue;
        }
        if (wordAddr(e.inst->effAddr) != target)
            continue;
        if (e.dataValid) {
            out.kind = ForwardOutcome::Kind::Forward;
            out.data = e.data;
            out.source = e.inst->seq;
            return out;
        }
        // Address matches but the data half has not issued: the load
        // must wait (retry) rather than read stale memory.
        out.kind = ForwardOutcome::Kind::StallData;
        out.source = e.inst->seq;
        return out;
    }
    out.kind = ForwardOutcome::Kind::NoMatch;
    return out;
}

void
Lsu::loadDataReturned(const DynInst &load, SeqNum source)
{
    for (auto &e : lq) {
        if (e.inst->seq == load.seq) {
            e.dataReturned = true;
            e.forwardedFrom = source;
            return;
        }
    }
    sb_panic("loadDataReturned: load not in LQ");
}

void
Lsu::storeDataReady(const DynInst &store, Word data)
{
    for (auto &e : sq) {
        if (e.inst->seq == store.seq) {
            e.dataValid = true;
            e.data = data;
            return;
        }
    }
    sb_panic("storeDataReady: store not in SQ");
}

DynInstPtr
Lsu::checkViolation(const DynInst &store) const
{
    sb_assert(store.effAddrValid, "violation scan before address gen");
    const Addr target = wordAddr(store.effAddr);
    for (const auto &e : lq) {
        if (e.inst->seq < store.seq || e.inst->squashed)
            continue;
        if (!e.dataReturned || !e.inst->effAddrValid)
            continue;
        if (wordAddr(e.inst->effAddr) != target)
            continue;
        // The load already has data. It is stale unless it forwarded
        // from this store or from a younger one.
        if (e.forwardedFrom == invalidSeqNum
            || e.forwardedFrom < store.seq) {
            return e.inst;
        }
    }
    return nullptr;
}

void
Lsu::markStoreCommitted(const DynInst &store)
{
    for (auto &e : sq) {
        if (e.inst->seq == store.seq) {
            sb_assert(e.inst->effAddrValid && e.dataValid,
                      "committing incomplete store");
            e.committed = true;
            return;
        }
    }
    sb_panic("markStoreCommitted: store not in SQ");
}

SqEntry *
Lsu::drainableStore()
{
    if (!sq.empty() && sq.front().committed)
        return &sq.front();
    return nullptr;
}

void
Lsu::popDrainedStore()
{
    sb_assert(!sq.empty() && sq.front().committed, "bad SQ drain");
    sq.pop_front();
}

void
Lsu::releaseLoad(const DynInst &load)
{
    sb_assert(!lq.empty(), "releasing load from empty LQ");
    sb_assert(lq.front().inst->seq == load.seq,
              "loads must commit in order");
    lq.pop_front();
}

bool
Lsu::functionalBypass(const DynInst &load, Word &data) const
{
    const Addr target = wordAddr(load.effAddr);
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &e = *it;
        if (e.inst->seq > load.seq)
            continue;
        if (e.inst->effAddrValid && e.dataValid
            && wordAddr(e.inst->effAddr) == target) {
            data = e.data;
            return true;
        }
    }
    return false;
}

void
Lsu::squash(SeqNum seq)
{
    while (!lq.empty() && lq.back().inst->seq > seq)
        lq.pop_back();
    while (!sq.empty() && sq.back().inst->seq > seq) {
        sb_assert(!sq.back().committed, "squashing a committed store");
        sq.pop_back();
    }
}

void
Lsu::clear()
{
    lq.clear();
    sq.clear();
}

} // namespace sb
