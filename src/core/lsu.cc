#include "core/lsu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sb
{

Lsu::Lsu(unsigned lq_capacity, unsigned sq_capacity)
    : lqCap(lq_capacity), sqCap(sq_capacity)
{
    sb_assert(lqCap > 0 && sqCap > 0, "LSU needs queue capacity");
}

void
Lsu::allocateLoad(InstHandle h, const DynInst &inst)
{
    sb_assert(!lqFull(), "LQ overflow");
    sb_assert(lq.empty() || lq.back().seq < inst.seq,
              "LQ must stay program-ordered");
    LqEntry e;
    e.handle = h;
    e.seq = inst.seq;
    e.pc = inst.pc;
    lq.push_back(std::move(e));
}

void
Lsu::allocateStore(InstHandle h, const DynInst &inst)
{
    sb_assert(!sqFull(), "SQ overflow");
    sb_assert(sq.empty() || sq.back().seq < inst.seq,
              "SQ must stay program-ordered");
    SqEntry e;
    e.handle = h;
    e.seq = inst.seq;
    e.pc = inst.pc;
    sq.push_back(std::move(e));
}

void
Lsu::storeAddrReady(const DynInst &store)
{
    sb_assert(store.effAddrValid, "caching store address before gen");
    for (auto &e : sq) {
        if (e.seq == store.seq) {
            e.addr = store.effAddr;
            e.addrValid = true;
            return;
        }
    }
    sb_panic("storeAddrReady: store not in SQ");
}

ForwardOutcome
Lsu::checkForwarding(const DynInst &load) const
{
    sb_assert(load.effAddrValid, "forwarding scan before address gen");
    ForwardOutcome out;
    const Addr target = wordAddr(load.effAddr);

    // Scan youngest-older-store first.
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &e = *it;
        if (e.seq > load.seq)
            continue;
        if (!e.addrValid) {
            // Unknown address: optimistically bypass, remember it.
            out.bypassedUnknown = true;
            continue;
        }
        if (wordAddr(e.addr) != target)
            continue;
        if (e.dataValid) {
            out.kind = ForwardOutcome::Kind::Forward;
            out.data = e.data;
            out.source = e.seq;
            return out;
        }
        // Address matches but the data half has not issued: the load
        // must wait (retry) rather than read stale memory.
        out.kind = ForwardOutcome::Kind::StallData;
        out.source = e.seq;
        return out;
    }
    out.kind = ForwardOutcome::Kind::NoMatch;
    return out;
}

void
Lsu::addForwardWaiter(SeqNum store_seq, InstHandle waiter)
{
    for (auto &e : sq) {
        if (e.seq == store_seq) {
            e.waiters.push_back(waiter);
            return;
        }
    }
    sb_panic("addForwardWaiter: store not in SQ");
}

void
Lsu::loadDataReturned(const DynInst &load, SeqNum source)
{
    for (auto &e : lq) {
        if (e.seq == load.seq) {
            e.dataReturned = true;
            e.forwardedFrom = source;
            e.addr = load.effAddr;
            return;
        }
    }
    sb_panic("loadDataReturned: load not in LQ");
}

void
Lsu::storeDataReady(const DynInst &store, Word data,
                    std::vector<InstHandle> &woken)
{
    for (auto &e : sq) {
        if (e.seq == store.seq) {
            e.dataValid = true;
            e.data = data;
            woken.insert(woken.end(), e.waiters.begin(), e.waiters.end());
            e.waiters.clear();
            return;
        }
    }
    sb_panic("storeDataReady: store not in SQ");
}

const LqEntry *
Lsu::checkViolation(const DynInst &store) const
{
    sb_assert(store.effAddrValid, "violation scan before address gen");
    const Addr target = wordAddr(store.effAddr);
    for (const auto &e : lq) {
        if (e.seq < store.seq)
            continue;
        // dataReturned implies the cached address is valid.
        if (!e.dataReturned)
            continue;
        if (wordAddr(e.addr) != target)
            continue;
        // The load already has data. It is stale unless it forwarded
        // from this store or from a younger one.
        if (e.forwardedFrom == invalidSeqNum
            || e.forwardedFrom < store.seq) {
            return &e;
        }
    }
    return nullptr;
}

void
Lsu::markStoreCommitted(const DynInst &store)
{
    for (auto &e : sq) {
        if (e.seq == store.seq) {
            sb_assert(e.addrValid && e.dataValid,
                      "committing incomplete store");
            e.committed = true;
            return;
        }
    }
    sb_panic("markStoreCommitted: store not in SQ");
}

SqEntry *
Lsu::drainableStore()
{
    if (!sq.empty() && sq.front().committed)
        return &sq.front();
    return nullptr;
}

void
Lsu::popDrainedStore()
{
    sb_assert(!sq.empty() && sq.front().committed, "bad SQ drain");
    sq.pop_front();
}

void
Lsu::releaseLoad(const DynInst &load)
{
    sb_assert(!lq.empty(), "releasing load from empty LQ");
    sb_assert(lq.front().seq == load.seq,
              "loads must commit in order");
    lq.pop_front();
}

bool
Lsu::functionalBypass(const DynInst &load, Word &data) const
{
    const Addr target = wordAddr(load.effAddr);
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &e = *it;
        if (e.seq > load.seq)
            continue;
        if (e.addrValid && e.dataValid && wordAddr(e.addr) == target) {
            data = e.data;
            return true;
        }
    }
    return false;
}

void
Lsu::squash(SeqNum seq)
{
    while (!lq.empty() && lq.back().seq > seq)
        lq.pop_back();
    while (!sq.empty() && sq.back().seq > seq) {
        sb_assert(!sq.back().committed, "squashing a committed store");
        sq.pop_back();
    }
}

void
Lsu::clear()
{
    lq.clear();
    sq.clear();
}

} // namespace sb
