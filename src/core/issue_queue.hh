/**
 * @file
 * Unified issue queue with broadcast wakeup and oldest-first select
 * support. Stores occupy one entry but expose two independently
 * issueable halves (address and data), modelling BOOM's partial store
 * issue (paper Sec. 9.2). Selection policy lives in the core; the
 * queue provides storage, wakeup, and age-ordered iteration.
 */

#ifndef SB_CORE_ISSUE_QUEUE_HH
#define SB_CORE_ISSUE_QUEUE_HH

#include <vector>

#include "core/dyn_inst.hh"

namespace sb
{

/** One issue-queue slot. */
struct IqEntry
{
    DynInstPtr inst;
    bool src1Ready = false;
    bool src2Ready = false;
};

/** Fixed-capacity unified issue queue. */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity) : cap(capacity) {}

    bool full() const { return entries.size() >= cap; }
    std::size_t size() const { return entries.size(); }
    unsigned capacity() const { return cap; }

    /** Insert a dispatched instruction with its initial ready bits. */
    void insert(const DynInstPtr &inst, bool src1_ready, bool src2_ready);

    /** Broadcast: wake every entry sourcing @p preg. */
    void wakeup(PhysReg preg);

    /** Remove entries younger than @p seq (squash). */
    void squash(SeqNum seq);

    /** Remove one fully issued instruction. */
    void remove(const DynInstPtr &inst);

    /** Entries sorted oldest-first (rebuilt each call). */
    std::vector<IqEntry *> inOrder();

    void clear() { entries.clear(); }

  private:
    unsigned cap;
    std::vector<IqEntry> entries;
};

} // namespace sb

#endif // SB_CORE_ISSUE_QUEUE_HH
