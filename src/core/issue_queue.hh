/**
 * @file
 * Unified issue queue with indexed wakeup and incrementally
 * maintained age order. Stores occupy one entry but expose two
 * independently issueable halves (address and data), modelling BOOM's
 * partial store issue (paper Sec. 9.2). Selection policy lives in the
 * core; the queue provides storage, wakeup, and age-ordered
 * iteration.
 *
 * Hot-path design:
 *  - Entries live in a fixed slot array with a free list; a slot
 *    index is stamped on the DynInst so remove() is O(1).
 *  - Entries hold an InstHandle plus a cached copy of the fields the
 *    wakeup/squash/select scans touch (seq, operand registers, store
 *    flag, ready bits). Wakeup and the not-ready skip in the select
 *    scan never dereference the slab record — the queue is its own
 *    dense struct-of-arrays slice.
 *  - Age order is an intrusive doubly-linked list kept sorted on
 *    insert. Dispatch happens in program order (sequence numbers are
 *    monotonic, and squashes only cut the young end), so the core's
 *    insertions always land on the tail in O(1) and inOrder() never
 *    sorts — it replays a cached view that is rebuilt, without
 *    allocating, only after the queue changed.
 *  - wakeup(preg) walks a per-physical-register consumer list
 *    instead of scanning every entry. Consumer references are lazy:
 *    a generation tag per slot invalidates stale references left
 *    behind by remove/squash, and a list is cleared wholesale once
 *    its register broadcasts (a physical register wakes at most once
 *    per allocation).
 */

#ifndef SB_CORE_ISSUE_QUEUE_HH
#define SB_CORE_ISSUE_QUEUE_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/inst_slab.hh"

namespace sb
{

/** One issue-queue slot: handle + cached scan fields. */
struct IqEntry
{
    InstHandle handle = invalidInstHandle;
    SeqNum seq = 0;
    PhysReg psrc1 = invalidPhysReg;
    PhysReg psrc2 = invalidPhysReg;
    bool hasSrc1 = false;
    bool hasSrc2 = false;
    bool isStore = false;
    bool src1Ready = false;
    bool src2Ready = false;

    // Intrusive bookkeeping (owned by IssueQueue).
    std::int32_t agePrev = -1;
    std::int32_t ageNext = -1;
    std::int32_t rdyPrev = -1; ///< Ready-list links (candidate scan).
    std::int32_t rdyNext = -1;
    bool inReady = false;
    std::uint32_t gen = 0; ///< Bumped on free; guards consumer refs.

    bool ready() const { return src1Ready && src2Ready; }
};

/** Fixed-capacity unified issue queue. */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity);

    /** Bind the backing slab (used to clear inIq/iqSlot on free). */
    void attachSlab(InstSlab *s) { slab = s; }

    bool full() const { return count >= cap; }
    std::size_t size() const { return count; }
    unsigned capacity() const { return cap; }

    /** Insert a dispatched instruction with its initial ready bits. */
    void insert(InstHandle h, DynInst &inst, bool src1_ready,
                bool src2_ready);

    /** Broadcast: wake every entry sourcing @p preg. */
    void wakeup(PhysReg preg);

    /** Remove entries younger than @p seq (squash). */
    void squash(SeqNum seq);

    /** Remove one fully issued instruction. */
    void remove(const DynInst &inst);

    /**
     * Entries oldest-first. The returned view is owned by the queue
     * and stays valid until the next insert/remove/squash/clear; it
     * is rebuilt without sorting or steady-state allocation.
     */
    const std::vector<IqEntry *> &inOrder();

    /**
     * Zero-materialization age-order walk for the select scan: start
     * at oldestSlot(), advance with nextSlot(), stop at -1. The links
     * are stable as long as no insert/remove/squash happens mid-walk
     * (the core defers removal of issued entries to after the scan).
     */
    std::int32_t oldestSlot() const { return ageHead; }
    std::int32_t nextSlot(std::int32_t idx) const
    {
        return slots[idx].ageNext;
    }
    IqEntry &entryAt(std::int32_t idx) { return slots[idx]; }

    /**
     * Age-ordered walk over issue *candidates* only — entries with at
     * least one ready, unissued half. Entries the full scan would
     * skip without side effects (operands outstanding) never appear,
     * so walking this list is behaviorally identical to the full
     * age-order scan while touching ~issue-width entries instead of
     * the whole queue. Membership is maintained by insert/wakeup
     * (join) and freeSlot (leave); entries stay listed until they
     * leave the queue, so scheme-vetoed or port-starved candidates
     * are rescanned next cycle exactly as before.
     */
    std::int32_t firstReady() const { return rdyHead; }
    std::int32_t nextReady(std::int32_t idx) const
    {
        return slots[idx].rdyNext;
    }

    void clear();

  private:
    /** A lazy reference into the slot array from a consumer list. */
    struct ConsumerRef
    {
        std::int32_t slot;
        std::uint32_t gen;
    };

    void addConsumer(PhysReg preg, std::int32_t slot);
    void freeSlot(std::int32_t slot);

    /** Any ready, potentially unissued half? (Stores issue in halves.) */
    static bool
    candidate(const IqEntry &e)
    {
        return e.isStore ? (e.src1Ready || e.src2Ready)
                         : (e.src1Ready && e.src2Ready);
    }

    void readyLink(std::int32_t slot);
    void readyUnlink(std::int32_t slot);

    unsigned cap;
    InstSlab *slab = nullptr;
    std::vector<IqEntry> slots;          ///< cap entries, index-stable.
    std::vector<std::int32_t> freeSlots;
    std::int32_t ageHead = -1;           ///< Oldest entry.
    std::int32_t ageTail = -1;           ///< Youngest entry.
    std::int32_t rdyHead = -1;           ///< Oldest candidate.
    std::int32_t rdyTail = -1;           ///< Youngest candidate.
    std::size_t count = 0;

    /** Consumer lists indexed by physical register (grown on demand). */
    std::vector<std::vector<ConsumerRef>> consumers;

    std::vector<IqEntry *> orderView;    ///< Cached inOrder() result.
    bool orderDirty = true;
};

} // namespace sb

#endif // SB_CORE_ISSUE_QUEUE_HH
