/**
 * @file
 * Unified issue queue with indexed wakeup and incrementally
 * maintained age order. Stores occupy one entry but expose two
 * independently issueable halves (address and data), modelling BOOM's
 * partial store issue (paper Sec. 9.2). Selection policy lives in the
 * core; the queue provides storage, wakeup, and age-ordered
 * iteration.
 *
 * Hot-path design (vs. the seed's flat vector):
 *  - Entries live in a fixed slot array with a free list; a slot
 *    index is stamped on the DynInst so remove() is O(1).
 *  - Age order is an intrusive doubly-linked list kept sorted on
 *    insert. Dispatch happens in program order (sequence numbers are
 *    monotonic, and squashes only cut the young end), so the core's
 *    insertions always land on the tail in O(1) and inOrder() never
 *    sorts — it replays a cached view that is rebuilt, without
 *    allocating, only after the queue changed.
 *  - wakeup(preg) walks a per-physical-register consumer list
 *    instead of scanning every entry. Consumer references are lazy:
 *    a generation tag per slot invalidates stale references left
 *    behind by remove/squash, and a list is cleared wholesale once
 *    its register broadcasts (a physical register wakes at most once
 *    per allocation).
 */

#ifndef SB_CORE_ISSUE_QUEUE_HH
#define SB_CORE_ISSUE_QUEUE_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"

namespace sb
{

/** One issue-queue slot. */
struct IqEntry
{
    DynInstPtr inst;
    bool src1Ready = false;
    bool src2Ready = false;

    // Intrusive bookkeeping (owned by IssueQueue).
    std::int32_t agePrev = -1;
    std::int32_t ageNext = -1;
    std::uint32_t gen = 0; ///< Bumped on free; guards consumer refs.
};

/** Fixed-capacity unified issue queue. */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity);

    bool full() const { return count >= cap; }
    std::size_t size() const { return count; }
    unsigned capacity() const { return cap; }

    /** Insert a dispatched instruction with its initial ready bits. */
    void insert(const DynInstPtr &inst, bool src1_ready, bool src2_ready);

    /** Broadcast: wake every entry sourcing @p preg. */
    void wakeup(PhysReg preg);

    /** Remove entries younger than @p seq (squash). */
    void squash(SeqNum seq);

    /** Remove one fully issued instruction. */
    void remove(const DynInstPtr &inst);

    /**
     * Entries oldest-first. The returned view is owned by the queue
     * and stays valid until the next insert/remove/squash/clear; it
     * is rebuilt without sorting or steady-state allocation.
     */
    const std::vector<IqEntry *> &inOrder();

    void clear();

  private:
    /** A lazy reference into the slot array from a consumer list. */
    struct ConsumerRef
    {
        std::int32_t slot;
        std::uint32_t gen;
    };

    void addConsumer(PhysReg preg, std::int32_t slot);
    void freeSlot(std::int32_t slot);

    unsigned cap;
    std::vector<IqEntry> slots;          ///< cap entries, index-stable.
    std::vector<std::int32_t> freeSlots;
    std::int32_t ageHead = -1;           ///< Oldest entry.
    std::int32_t ageTail = -1;           ///< Youngest entry.
    std::size_t count = 0;

    /** Consumer lists indexed by physical register (grown on demand). */
    std::vector<std::vector<ConsumerRef>> consumers;

    std::vector<IqEntry *> orderView;    ///< Cached inOrder() result.
    bool orderDirty = true;
};

} // namespace sb

#endif // SB_CORE_ISSUE_QUEUE_HH
