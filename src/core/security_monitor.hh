/**
 * @file
 * Ground-truth security invariant monitor.
 *
 * Independently of any scheme's own bookkeeping, the monitor tracks
 * the true speculative data flow through the physical register file
 * and counts violations of the two obligations (paper Sec. 2):
 *
 *  - STT obligation: no *transmitter* (load/store address, branch)
 *    executes with an operand that transitively derives from a load
 *    that is still speculative ("tainted").
 *  - NDA obligation: no instruction at all consumes a value produced
 *    directly by a load that is still speculative.
 *
 * The unprotected baseline is expected to violate both; STT designs
 * must have zero transmitter violations; NDA must have zero
 * consumption violations (which implies zero transmitter violations).
 */

#ifndef SB_CORE_SECURITY_MONITOR_HH
#define SB_CORE_SECURITY_MONITOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/dyn_inst.hh"

namespace sb
{

/** Ground-truth taint tracker and obligation checker. */
class SecurityMonitor
{
  public:
    explicit SecurityMonitor(unsigned num_phys_regs);

    /** A physical register was newly allocated: clear its state. */
    void onAllocate(PhysReg reg);

    /** A load's data arrived; taint its dest if still speculative. */
    void onLoadData(const DynInst &load, bool still_speculative);

    /**
     * An instruction consumed operands. @p vp is the current
     * visibility point (roots older than it are no longer secret).
     * @param use_src1 / @p use_src2 which operands this event reads.
     * @param transmits whether the use is observable (transmitter).
     */
    void onConsume(const DynInst &inst, SeqNum vp, bool use_src1,
                   bool use_src2, bool transmits);

    std::uint64_t transmitViolations() const { return transmitViol; }
    std::uint64_t consumeViolations() const { return consumeViol; }

    void reset();

  private:
    struct RegState
    {
        /** Youngest speculative-load root this value derives from. */
        SeqNum root = invalidSeqNum;
        /** Load that directly produced this value, if any. */
        SeqNum producerLoad = invalidSeqNum;
    };

    /** Taint root of a register, invalid if effectively clean. */
    SeqNum liveRoot(PhysReg reg, SeqNum vp) const;

    std::vector<RegState> regs;
    std::uint64_t transmitViol = 0;
    std::uint64_t consumeViol = 0;
};

} // namespace sb

#endif // SB_CORE_SECURITY_MONITOR_HH
