/**
 * @file
 * Recycling allocator for DynInst.
 *
 * The seed engine paid one std::make_shared heap allocation per
 * fetched micro-op — millions per simulated second, and the single
 * largest source of allocator traffic in the whole simulator. The
 * pool hands out DynInstPtr (still a std::shared_ptr, so every
 * existing consumer and test keeps working) built with
 * std::allocate_shared over a slab arena: object and control block
 * live in one pooled block that returns to a free list when the last
 * reference drops (commit, squash, or queue eviction), and is reused
 * by a later fetch with no malloc/free round trip.
 *
 * The arena is shared-pointer-owned by both the pool and every live
 * allocation's control block, so blocks released after the pool (or
 * the owning Core) is destroyed are still returned safely.
 *
 * Thread model: one pool per Core, used only from that Core's
 * simulation thread (ExperimentRunner runs distinct Cores per
 * thread). The arena is deliberately unsynchronized.
 */

#ifndef SB_CORE_DYN_INST_POOL_HH
#define SB_CORE_DYN_INST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace sb
{

/** Slab arena recycling fixed-size blocks (one size per arena). */
class DynInstArena
{
  public:
    DynInstArena() = default;
    DynInstArena(const DynInstArena &) = delete;
    DynInstArena &operator=(const DynInstArena &) = delete;

    void *
    allocate(std::size_t bytes)
    {
        if (blockBytes == 0) {
            // First call fixes the block size (allocate_shared always
            // requests the same combined object+control-block type).
            blockBytes = roundUp(bytes);
        }
        sb_assert(roundUp(bytes) == blockBytes,
                  "DynInstArena serves a single block size");
        if (freeList.empty())
            grow();
        void *p = freeList.back();
        freeList.pop_back();
        return p;
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        (void)bytes;
        freeList.push_back(p);
    }

    std::size_t freeCount() const { return freeList.size(); }
    std::size_t slabCount() const { return slabs.size(); }

    /** Total blocks carved so far (live + free). */
    std::size_t totalBlocks() const { return slabs.size() * slabBlocks; }

  private:
    static constexpr std::size_t slabBlocks = 256;

    static std::size_t
    roundUp(std::size_t bytes)
    {
        constexpr std::size_t align = alignof(std::max_align_t);
        return (bytes + align - 1) & ~(align - 1);
    }

    void
    grow()
    {
        slabs.push_back(
            std::make_unique<std::byte[]>(blockBytes * slabBlocks));
        std::byte *base = slabs.back().get();
        for (std::size_t i = 0; i < slabBlocks; ++i)
            freeList.push_back(base + i * blockBytes);
    }

    std::size_t blockBytes = 0;
    std::vector<void *> freeList;
    std::vector<std::unique_ptr<std::byte[]>> slabs;
};

/** STL allocator adapter over a shared DynInstArena. */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(std::shared_ptr<DynInstArena> a)
        : arena(std::move(a))
    {
    }

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena(other.arena)
    {
    }

    T *
    allocate(std::size_t n)
    {
        sb_assert(n == 1, "arena serves single-object allocations");
        return static_cast<T *>(arena->allocate(sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        arena->deallocate(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &o) const
    {
        return arena == o.arena;
    }

    template <typename U>
    bool
    operator!=(const ArenaAllocator<U> &o) const
    {
        return !(*this == o);
    }

    std::shared_ptr<DynInstArena> arena;
};

/** Per-core DynInst factory backed by a recycling arena. */
class DynInstPool
{
  public:
    DynInstPool() : arena(std::make_shared<DynInstArena>()) {}

    /** A fresh, default-initialized DynInst from the pool. */
    DynInstPtr
    acquire()
    {
        return std::allocate_shared<DynInst>(
            ArenaAllocator<DynInst>(arena));
    }

    /** Blocks currently sitting in the free list (tests/diagnostics). */
    std::size_t freeCount() const { return arena->freeCount(); }

    /** Blocks carved from slabs so far (live + free). */
    std::size_t totalBlocks() const { return arena->totalBlocks(); }

  private:
    std::shared_ptr<DynInstArena> arena;
};

} // namespace sb

#endif // SB_CORE_DYN_INST_POOL_HH
