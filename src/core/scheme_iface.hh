/**
 * @file
 * Extension point for secure speculation schemes.
 *
 * The core calls these hooks at the microarchitectural points the
 * paper's designs modify: the rename group (STT-Rename taint
 * computation, Sec. 4.1), issue select (STT-Issue taint unit,
 * Sec. 4.3), result broadcast (NDA delayed broadcast, Sec. 5.1), and
 * squash walk-back (checkpoint restore, Sec. 4.2).
 *
 * The base class implements the *unsafe baseline*: every hook is a
 * no-op / pass-through.
 */

#ifndef SB_CORE_SCHEME_IFACE_HH
#define SB_CORE_SCHEME_IFACE_HH

#include <vector>

#include "common/config.hh"
#include "core/dyn_inst.hh"
#include "core/inst_slab.hh"
#include "core/security_contract.hh"

namespace sb
{

class Core;

/** Secure speculation scheme hooks; base class = unsafe baseline. */
class SecureScheme
{
  public:
    virtual ~SecureScheme() = default;

    virtual const char *name() const { return "Baseline"; }
    virtual Scheme kind() const { return Scheme::Baseline; }

    /** Bind to a core. Called once before simulation. */
    virtual void attach(Core &core) { coreRef = &core; }

    /**
     * Rename-stage hook: the group of instructions renamed this
     * cycle, oldest first. STT-Rename performs the serial YRoT chain
     * here (Fig. 3).
     */
    virtual void onRenameGroup(const std::vector<DynInst *> &) {}

    /**
     * Ready-signal veto evaluated during select: return true to keep
     * the instruction (or the given store half) from being selected
     * this cycle.
     */
    virtual bool
    selectVeto(const DynInst &, bool /* addr_half */)
    {
        return false;
    }

    /**
     * Taint unit at issue (STT-Issue): called when an instruction (or
     * store half) wins a select port. Return false to kill the issue
     * into a nop, wasting the slot (Fig. 4, step 4).
     */
    virtual bool
    onSelect(DynInst &, bool /* addr_half */)
    {
        return true;
    }

    /**
     * Broadcast interposer: called when a result would wake its
     * dependents (ALU results at schedule time, load results at
     * completion). Return true to take ownership of the broadcast —
     * the scheme must later call Core::scheduleWakeup itself (NDA's
     * delayed, port-limited broadcast). Schemes that hold the
     * instruction past this call keep the handle and revalidate it
     * through the slab; a stale handle means the instruction was
     * squashed.
     */
    virtual bool
    deferBroadcast(InstHandle, const DynInst &, Cycle /* ready_at */)
    {
        return false;
    }

    /**
     * Miss-delay interposer (Delay-on-Miss): called from the load
     * memory stage when @p load is about to launch a demand access
     * (its address is known; store forwarding was already ruled out).
     * The scheme probes L1 residency / speculation state itself.
     * Return true to take ownership of the load — the scheme must
     * park it and later re-inject it via Core::retryLoad() (typically
     * once the visibility point has passed it). Returning false lets
     * the access proceed normally.
     */
    virtual bool delayLoadMiss(InstHandle, const DynInst &) { return false; }

    /** Per-cycle scheme machinery (e.g. draining broadcast queues). */
    virtual void tick() {}

    /**
     * Squash walk-back: called per squashed instruction, youngest
     * first, so rename-stage taint state can be unwound exactly
     * (the functional equivalent of checkpoint restore +
     * stale-invalidate, Sec. 4.2).
     */
    virtual void onSquashWalk(const DynInst &) {}

    /** Called once per squash after the walk, with the new tail seq. */
    virtual void onSquash(SeqNum /* youngest_surviving */) {}

    /** NDA removes speculative L1-hit scheduling (Sec. 5.1). */
    virtual bool allowsSpeculativeScheduling() const { return true; }

    /**
     * Security contract self-description, consumed by the gadget
     * battery (src/harness/verify.hh), the conformance fuzzer and the
     * in-core contract shadow engine: the descriptor names the
     * declared policy and the monitor obligations the harness holds
     * the scheme to. A scheme that obliges transmitter safety (no
     * transmitter executes with speculatively-tainted operands) must
     * show zero leaks and zero differential divergence across every
     * gadget; the verifier fails the run otherwise. The unsafe
     * baseline declares SecurityContract::none(), so the verifier
     * instead *requires* it to leak (proof the gadgets are armed).
     */
    virtual SecurityContract
    contract() const
    {
        return SecurityContract::none();
    }

    /** Reset all scheme state (between runs). */
    virtual void reset() {}

  protected:
    Core *coreRef = nullptr;
};

} // namespace sb

#endif // SB_CORE_SCHEME_IFACE_HH
