/**
 * @file
 * Speculation-shadow tracking (paper Sec. 6).
 *
 * Tracks C-shadows (unresolved branches) and D-shadows (stores whose
 * address is not yet known). Shadows resolve in program order: the
 * visibility point is the sequence number of the oldest unresolved
 * shadow, and every instruction older than it is bound-to-commit.
 * Speculative loads are registered at rename and handed back (oldest
 * first) as the visibility point passes them, which drives STT's
 * untaint broadcast and NDA's delayed broadcast.
 *
 * Entries are {handle, seq} pairs; a front entry whose handle no
 * longer resolves in the slab was squashed (its record freed during
 * the squash walk) and is retired like the shared_ptr engine retired
 * `squashed` fronts. Commit cannot free a tracked front first: a
 * shadow source must resolve (branch) or generate its address (store)
 * before it can complete, and a speculative load cannot reach the ROB
 * head while an older shadow is still open.
 */

#ifndef SB_CORE_SHADOW_TRACKER_HH
#define SB_CORE_SHADOW_TRACKER_HH

#include <deque>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/inst_slab.hh"

namespace sb
{

/** In-order C/D-shadow tracker with a monotonic visibility point. */
class ShadowTracker
{
  public:
    /** Bind the backing slab (handle revalidation). */
    void attachSlab(const InstSlab *s) { slab = s; }

    /** Register a renamed instruction (branches, stores, loads). */
    void onRename(InstHandle h, DynInst &inst);

    /**
     * Advance the visibility point.
     * @param next_seq the next sequence number to be assigned; the
     *        visibility point equals it when no shadows are live.
     * @param[out] now_safe loads that just became non-speculative,
     *        oldest first (appended).
     */
    void update(SeqNum next_seq, std::vector<InstHandle> &now_safe);

    /** Current visibility point. */
    SeqNum visibilityPoint() const { return vp; }

    /** Visibility point as of the end of the previous cycle. */
    SeqNum visibilityPointPrev() const { return vpPrev; }

    /** Latch the previous-cycle visibility point (call at tick start). */
    void latchPrev() { vpPrev = vp; }

    /** Is an instruction speculative (younger than an open shadow)? */
    bool isSpeculative(SeqNum seq) const { return seq > vp; }

    /** Count of live speculative loads (diagnostics). */
    std::size_t speculativeLoads() const { return specLoads.size(); }

    /** Drop all state (full reset). */
    void reset();

  private:
    struct Entry
    {
        InstHandle handle;
        SeqNum seq;
    };

    const InstSlab *slab = nullptr;
    std::deque<Entry> branches;  ///< Unresolved C-shadow sources.
    std::deque<Entry> stores;    ///< Unknown-address D-shadow sources.
    std::deque<Entry> specLoads; ///< Loads awaiting the point.
    SeqNum vp = 0;
    SeqNum vpPrev = 0;
};

} // namespace sb

#endif // SB_CORE_SHADOW_TRACKER_HH
