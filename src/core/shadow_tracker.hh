/**
 * @file
 * Speculation-shadow tracking (paper Sec. 6).
 *
 * Tracks C-shadows (unresolved branches) and D-shadows (stores whose
 * address is not yet known). Shadows resolve in program order: the
 * visibility point is the sequence number of the oldest unresolved
 * shadow, and every instruction older than it is bound-to-commit.
 * Speculative loads are registered at rename and handed back (oldest
 * first) as the visibility point passes them, which drives STT's
 * untaint broadcast and NDA's delayed broadcast.
 */

#ifndef SB_CORE_SHADOW_TRACKER_HH
#define SB_CORE_SHADOW_TRACKER_HH

#include <deque>
#include <vector>

#include "core/dyn_inst.hh"

namespace sb
{

/** In-order C/D-shadow tracker with a monotonic visibility point. */
class ShadowTracker
{
  public:
    /** Register a renamed instruction (branches, stores, loads). */
    void onRename(const DynInstPtr &inst);

    /**
     * Advance the visibility point.
     * @param next_seq the next sequence number to be assigned; the
     *        visibility point equals it when no shadows are live.
     * @param[out] now_safe loads that just became non-speculative,
     *        oldest first (appended).
     */
    void update(SeqNum next_seq, std::vector<DynInstPtr> &now_safe);

    /** Current visibility point. */
    SeqNum visibilityPoint() const { return vp; }

    /** Visibility point as of the end of the previous cycle. */
    SeqNum visibilityPointPrev() const { return vpPrev; }

    /** Latch the previous-cycle visibility point (call at tick start). */
    void latchPrev() { vpPrev = vp; }

    /** Is an instruction speculative (younger than an open shadow)? */
    bool isSpeculative(SeqNum seq) const { return seq > vp; }

    /** Count of live speculative loads (diagnostics). */
    std::size_t speculativeLoads() const { return specLoads.size(); }

    /** Drop all state (full reset). */
    void reset();

  private:
    std::deque<DynInstPtr> branches;  ///< Unresolved C-shadow sources.
    std::deque<DynInstPtr> stores;    ///< Unknown-address D-shadow sources.
    std::deque<DynInstPtr> specLoads; ///< Loads awaiting the point.
    SeqNum vp = 0;
    SeqNum vpPrev = 0;
};

} // namespace sb

#endif // SB_CORE_SHADOW_TRACKER_HH
