/**
 * @file
 * Dynamic instruction record.
 *
 * One DynInst is created per fetched micro-op and carries all
 * per-instance pipeline state: rename mappings, issue/execute status,
 * functional values, branch resolution, LSU indices, and the secure
 * schemes' taint fields (YRoT = youngest root of taint, paper
 * Sec. 3.1).
 *
 * Records live in the core's InstSlab (core/inst_slab.hh) and are
 * addressed by 32-bit generation-tagged InstHandles; pipeline
 * structures store handles, never pointers.
 */

#ifndef SB_CORE_DYN_INST_HH
#define SB_CORE_DYN_INST_HH

#include "common/types.hh"
#include "isa/microop.hh"

namespace sb
{

/** One in-flight dynamic instruction. */
struct DynInst
{
    // --- Identity -----------------------------------------------------
    SeqNum seq = 0;           ///< Global program-order sequence number.
    std::uint32_t pc = 0;     ///< Static code index.
    /** Protection domain this instruction was fetched under. */
    TenantId tenant = 0;
    MicroOp uop;

    // --- Rename -------------------------------------------------------
    PhysReg pdst = invalidPhysReg;
    PhysReg psrc1 = invalidPhysReg;
    PhysReg psrc2 = invalidPhysReg;
    PhysReg stalePdst = invalidPhysReg; ///< Previous mapping of dst.
    bool renamed = false;

    // --- Pipeline status ------------------------------------------------
    bool inIq = false;
    std::int32_t iqSlot = -1; ///< Issue-queue slot index while inIq.
    bool addrIssued = false;  ///< Loads & store address halves.
    bool dataIssued = false;  ///< Store data halves; ALU "the" issue.
    bool executed = false;    ///< Functional work done.
    bool storeDataDone = false; ///< Store data half has executed.
    bool completed = false;   ///< Result final; eligible to commit.
    bool squashed = false;
    bool committed = false;

    // --- Functional values ----------------------------------------------
    Word src1Val = 0;
    Word src2Val = 0;
    Word result = 0;
    Addr effAddr = 0;
    bool effAddrValid = false;

    // --- Branch state -----------------------------------------------------
    bool predTaken = false;
    bool actualTaken = false;
    bool resolved = false;
    bool mispredicted = false;
    std::uint64_t histSnapshot = 0; ///< Global history before this branch.
    /** Fetch-time predicted next PC (BTB output for JmpReg). */
    std::uint32_t predTarget = 0;
    /** Resolved next PC (commit-time BTB training for JmpReg). */
    std::uint32_t actualTarget = 0;

    // --- Memory state -----------------------------------------------------
    int lqIdx = -1;
    int sqIdx = -1;
    bool l1Hit = false;
    bool forwarded = false;          ///< Got data from the store queue.
    bool bypassedUnknownStore = false;
    Cycle completeAt = 0;

    // --- Secure-scheme state (STT / NDA) -----------------------------------
    /** Unified YRoT assigned at rename (STT-Rename). */
    YRoT yrot = invalidSeqNum;
    /** Per-operand YRoTs (two-taint store ablation, Sec. 9.2). */
    YRoT yrotAddr = invalidSeqNum;
    YRoT yrotData = invalidSeqNum;
    /** Back-propagated YRoT masking ready in the IQ (STT-Issue). */
    YRoT yrotMask = invalidSeqNum;
    /** taint-RAT value this instruction overwrote (walk-back undo). */
    YRoT staleYrot = invalidSeqNum;
    /** Load registered as speculative at rename (has a taint root). */
    bool specAtRename = false;
    /** Load was still speculative when its data returned. */
    bool specAtComplete = false;

    // --- Convenience ------------------------------------------------------
    bool isLoad() const { return uop.isLoad(); }
    bool isStore() const { return uop.isStore(); }
    bool isBranch() const { return uop.isBranch(); }

    /** Stores issue in two halves; everything else in one. */
    bool
    fullyIssued() const
    {
        if (isStore())
            return addrIssued && dataIssued;
        return addrIssued || dataIssued;
    }
};

} // namespace sb

#endif // SB_CORE_DYN_INST_HH
