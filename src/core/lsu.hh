/**
 * @file
 * Load-store unit: load queue, store queue, store-to-load forwarding,
 * and memory-order violation detection.
 *
 * Loads may speculatively bypass older stores whose addresses are not
 * yet known (BOOM's optimistic memory disambiguation). When such a
 * store later generates a conflicting address, the load (and
 * everything younger) is flushed and refetched — these flushes are
 * the "store-to-load forwarding errors" of paper Sec. 9.2, which STT
 * inflates by delaying store address generation.
 *
 * Queue entries hold an InstHandle plus cached copies of every field
 * the scans touch (seq, pc, address, data, validity bits), so the
 * forwarding/violation/bypass scans never dereference slab records,
 * and the post-commit store drain works after the store's record has
 * been freed. Each SQ entry also owns the flat waiter list of loads
 * stalled on its data half — the replacement for the core's old
 * ordered-map forwardWaiters.
 *
 * Matching granularity is the 8-byte word (all modelled accesses are
 * word-sized).
 */

#ifndef SB_CORE_LSU_HH
#define SB_CORE_LSU_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "core/dyn_inst.hh"
#include "core/inst_slab.hh"

namespace sb
{

/** Store-queue entry; every drained/scanned field is cached here. */
struct SqEntry
{
    InstHandle handle = invalidInstHandle;
    SeqNum seq = 0;
    std::uint32_t pc = 0;
    Addr addr = 0;
    bool addrValid = false;
    bool dataValid = false;
    Word data = 0;
    bool committed = false;
    /** Loads stalled on this store's data half (StallData outcome). */
    std::vector<InstHandle> waiters;
};

/** Load-queue entry. */
struct LqEntry
{
    InstHandle handle = invalidInstHandle;
    SeqNum seq = 0;
    std::uint32_t pc = 0;
    Addr addr = 0;       ///< Cached when data returns.
    bool dataReturned = false;
    /** Store the load forwarded from, or invalidSeqNum. */
    SeqNum forwardedFrom = invalidSeqNum;
};

/** Outcome of the forwarding scan at load execute. */
struct ForwardOutcome
{
    enum class Kind
    {
        NoMatch,      ///< No older conflicting store: access memory.
        Forward,      ///< Forward @ref data from store @ref source.
        StallData,    ///< Conflicting store's data not ready: retry.
    };
    Kind kind = Kind::NoMatch;
    Word data = 0;
    SeqNum source = invalidSeqNum;
    /** True if an older store's address was still unknown. */
    bool bypassedUnknown = false;
};

/** Load and store queues (program-ordered deques). */
class Lsu
{
  public:
    Lsu(unsigned lq_capacity, unsigned sq_capacity);

    bool lqFull() const { return lq.size() >= lqCap; }
    bool sqFull() const { return sq.size() >= sqCap; }
    std::size_t lqSize() const { return lq.size(); }
    std::size_t sqSize() const { return sq.size(); }

    /** Allocate at rename (program order). */
    void allocateLoad(InstHandle h, const DynInst &inst);
    void allocateStore(InstHandle h, const DynInst &inst);

    /** Cache a store's generated address (at address execute). */
    void storeAddrReady(const DynInst &store);

    /** Scan older stores for a forwarding source for @p load. */
    ForwardOutcome checkForwarding(const DynInst &load) const;

    /** Register @p waiter as stalled on store @p store_seq's data. */
    void addForwardWaiter(SeqNum store_seq, InstHandle waiter);

    /** Record that @p load received data (from @p source, if any). */
    void loadDataReturned(const DynInst &load, SeqNum source);

    /**
     * Record the data half of a store; hands back (appends) the
     * waiter list so the core can retry the stalled loads.
     */
    void storeDataReady(const DynInst &store, Word data,
                        std::vector<InstHandle> &woken);

    /**
     * After a store's address generation, find the oldest younger
     * load that already read data it should have received from this
     * store. Returns nullptr if none (no violation).
     */
    const LqEntry *checkViolation(const DynInst &store) const;

    /** Mark the store-queue entry committed (drains later). */
    void markStoreCommitted(const DynInst &store);

    /** Committed store at the SQ head ready to drain, else nullptr. */
    SqEntry *drainableStore();

    /** Pop the drained SQ head. */
    void popDrainedStore();

    /** Release the LQ entry of a committing load. */
    void releaseLoad(const DynInst &load);

    /** Functional data for @p load: SQ bypass else invalid. */
    bool functionalBypass(const DynInst &load, Word &data) const;

    /** Remove all entries younger than @p seq. */
    void squash(SeqNum seq);

    void clear();

  private:
    static Addr wordAddr(Addr a) { return a & ~Addr(7); }

    unsigned lqCap;
    unsigned sqCap;
    std::deque<LqEntry> lq;
    std::deque<SqEntry> sq;
};

} // namespace sb

#endif // SB_CORE_LSU_HH
