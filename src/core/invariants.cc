#include "core/invariants.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace sb
{

bool
InvariantChecker::defaultActive()
{
    if (const char *env = std::getenv("SB_INVARIANTS")) {
        if (std::strcmp(env, "0") == 0)
            return false;
        if (std::strcmp(env, "1") == 0)
            return true;
        sb_warn("ignoring SB_INVARIANTS='", env, "' (want 0 or 1)");
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

void
InvariantChecker::fail(std::string message)
{
    if (count == 0) {
        first = std::move(message);
        sb_warn("invariant violation: ", first);
    }
    ++count;
}

void
InvariantChecker::onCommit(const DynInst &inst)
{
    if (inst.seq <= lastCommitSeq) {
        fail(detail::concat("ROB commit order: seq ", inst.seq,
                            " retiring after seq ", lastCommitSeq,
                            " (pc=", inst.pc, ")"));
    }
    if (!inst.completed) {
        fail(detail::concat("ROB commit: incomplete seq ", inst.seq,
                            " retiring (pc=", inst.pc, ")"));
    }
    if (inst.squashed) {
        fail(detail::concat("ROB commit: squashed seq ", inst.seq,
                            " retiring (pc=", inst.pc, ")"));
    }
    lastCommitSeq = std::max(lastCommitSeq, inst.seq);
}

void
InvariantChecker::onVisibilityPoint(SeqNum vp)
{
    if (vp < lastVp) {
        fail(detail::concat("shadow tracker: visibility point moved "
                            "backwards (",
                            lastVp, " -> ", vp, ")"));
    }
    lastVp = std::max(lastVp, vp);
}

void
InvariantChecker::onIssue(const DynInst &inst, bool src1_done,
                          bool src2_done)
{
    if (!src1_done || !src2_done) {
        fail(detail::concat(
            "issue-queue wakeup: seq ", inst.seq, " (pc=", inst.pc,
            ") selected with unbroadcast operand (src1=", src1_done,
            " src2=", src2_done, ")"));
    }
    if (inst.squashed) {
        fail(detail::concat("issue-queue: squashed seq ", inst.seq,
                            " selected (pc=", inst.pc, ")"));
    }
}

void
InvariantChecker::onForward(const DynInst &load, SeqNum source)
{
    if (source == invalidSeqNum)
        return;
    if (source >= load.seq) {
        fail(detail::concat("LSU forwarding: load seq ", load.seq,
                            " forwarded from non-older store seq ",
                            source));
    }
    if (!load.effAddrValid) {
        fail(detail::concat("LSU forwarding: load seq ", load.seq,
                            " forwarded without a resolved address"));
    }
}

} // namespace sb
