/**
 * @file
 * Decoded-micro-op block cache keyed by static PC.
 *
 * Fetch used to redo the same work on every dynamic instance of a hot
 * loop body: classify the op, preset static prediction bits, fill the
 * identity fields of a fresh DynInst. The program's code vector is
 * immutable for the life of a Core, so all of that is a pure function
 * of the static PC — this cache memoizes it. A hit stamps one
 * prebuilt DynInst template into the slab record (a single struct
 * copy that also serves as the record reset) and dispatches fetch on
 * a precomputed FetchKind instead of re-deriving it from the op.
 *
 * Invalidation rules:
 *  - Entries are valid as long as the backing Program's code at that
 *    PC is unchanged. The simulator never mutates code mid-run, so
 *    the core itself never invalidates.
 *  - A harness that patches code in place must call invalidate(pc)
 *    per patched slot (or invalidateAll() after a bulk rewrite)
 *    before the next fetch of that PC.
 *  - attach() (re)sizes the table for a new program and implies
 *    invalidateAll().
 *
 * Hit/miss counters are owned here and published into CoreStats by
 * Core::syncEngineStats().
 */

#ifndef SB_CORE_DECODE_CACHE_HH
#define SB_CORE_DECODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "core/dyn_inst.hh"
#include "isa/program.hh"

namespace sb
{

/** Static fetch classification, precomputed per PC. */
enum class FetchKind : std::uint8_t
{
    Plain,      ///< Falls through; no front-end redirect.
    CondBranch, ///< Predicted by TAGE; may redirect.
    Jmp,        ///< Always taken to the static target.
    JmpReg,     ///< Always taken; target predicted through the BTB.
    Halt,       ///< Stops fetch.
};

/** One decoded static micro-op. */
struct DecodedOp
{
    /** Template record: identity fields and static prediction bits
     *  preset, everything else default — assigning it into a slab
     *  slot both resets and initializes the record. */
    DynInst tmpl;
    FetchKind kind = FetchKind::Plain;
    bool valid = false;
};

/** Direct-mapped (one entry per static PC) decode cache. */
class DecodeCache
{
  public:
    /** Bind to @p prog: size the table to its code, drop all entries. */
    void
    attach(const Program &prog)
    {
        program = &prog;
        table.assign(prog.code.size(), DecodedOp{});
        hitCount = 0;
        missCount = 0;
    }

    /** Decoded entry for @p pc; built (a miss) on first touch. */
    const DecodedOp &
    lookup(std::uint32_t pc)
    {
        sb_assert(program && pc < table.size(),
                  "decode-cache lookup out of range");
        DecodedOp &d = table[pc];
        if (d.valid) {
            ++hitCount;
            return d;
        }
        ++missCount;
        build(d, pc);
        return d;
    }

    /** Drop the entry for one (patched) PC. */
    void
    invalidate(std::uint32_t pc)
    {
        if (pc < table.size())
            table[pc] = DecodedOp{};
    }

    /** Drop every entry (bulk code rewrite). */
    void
    invalidateAll()
    {
        for (DecodedOp &d : table)
            d = DecodedOp{};
    }

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

  private:
    void
    build(DecodedOp &d, std::uint32_t pc)
    {
        const MicroOp &uop = program->code[pc];
        d.tmpl = DynInst{};
        d.tmpl.pc = pc;
        d.tmpl.uop = uop;
        if (uop.isHalt()) {
            d.kind = FetchKind::Halt;
        } else if (uop.op == Op::JmpReg) {
            d.kind = FetchKind::JmpReg;
            d.tmpl.predTaken = true;
        } else if (uop.op == Op::Jmp) {
            d.kind = FetchKind::Jmp;
            d.tmpl.predTaken = true;
        } else if (uop.op == Op::JmpRegRet) {
            // Retpoline-style indirect: the front end deliberately
            // falls through (into the capture pad) and never consults
            // or trains the BTB; execute redirects to src1's value.
            d.kind = FetchKind::Plain;
        } else if (uop.isBranch()) {
            d.kind = FetchKind::CondBranch;
        } else {
            d.kind = FetchKind::Plain;
        }
        d.valid = true;
    }

    const Program *program = nullptr;
    std::vector<DecodedOp> table;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace sb

#endif // SB_CORE_DECODE_CACHE_HH
