#include "core/security_monitor.hh"

#include "common/logging.hh"

namespace sb
{

SecurityMonitor::SecurityMonitor(unsigned num_phys_regs)
    : regs(num_phys_regs)
{
}

void
SecurityMonitor::onAllocate(PhysReg reg)
{
    sb_assert(reg < regs.size(), "monitor register out of range");
    regs[reg] = RegState{};
}

void
SecurityMonitor::onLoadData(const DynInst &load, bool still_speculative)
{
    if (load.pdst == invalidPhysReg)
        return;
    RegState &s = regs[load.pdst];
    if (still_speculative) {
        s.root = load.seq;
        s.producerLoad = load.seq;
    } else {
        s.root = invalidSeqNum;
        s.producerLoad = invalidSeqNum;
    }
}

SeqNum
SecurityMonitor::liveRoot(PhysReg reg, SeqNum vp) const
{
    const SeqNum root = regs[reg].root;
    // A root older than the visibility point is bound-to-commit: its
    // data is architecturally sanctioned, hence no longer a secret.
    if (root != invalidSeqNum && root > vp)
        return root;
    return invalidSeqNum;
}

void
SecurityMonitor::onConsume(const DynInst &inst, SeqNum vp, bool use_src1,
                           bool use_src2, bool transmits)
{
    SeqNum taint = invalidSeqNum;
    bool spec_producer = false;

    auto check_src = [&](PhysReg reg) {
        if (reg == invalidPhysReg)
            return;
        const SeqNum r = liveRoot(reg, vp);
        if (r != invalidSeqNum
            && (taint == invalidSeqNum || r > taint)) {
            taint = r;
        }
        const SeqNum pl = regs[reg].producerLoad;
        if (pl != invalidSeqNum && pl > vp)
            spec_producer = true;
    };

    if (use_src1 && inst.uop.hasSrc1())
        check_src(inst.psrc1);
    if (use_src2 && inst.uop.hasSrc2())
        check_src(inst.psrc2);

    if (spec_producer)
        ++consumeViol;
    if (transmits && taint != invalidSeqNum)
        ++transmitViol;

    // Propagate taint to the destination (loads handled separately in
    // onLoadData, which overwrites with the load's own root).
    if (inst.pdst != invalidPhysReg && !inst.isLoad()) {
        regs[inst.pdst].root = taint;
        regs[inst.pdst].producerLoad = invalidSeqNum;
    }
}

void
SecurityMonitor::reset()
{
    for (auto &r : regs)
        r = RegState{};
    transmitViol = 0;
    consumeViol = 0;
}

} // namespace sb
