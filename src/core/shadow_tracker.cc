#include "core/shadow_tracker.hh"

#include "common/logging.hh"

namespace sb
{

void
ShadowTracker::onRename(InstHandle h, DynInst &inst)
{
    if (inst.isBranch()) {
        branches.push_back(Entry{h, inst.seq});
    } else if (inst.isStore()) {
        stores.push_back(Entry{h, inst.seq});
    } else if (inst.isLoad()) {
        // Only loads renamed under an open shadow are speculative;
        // older instructions all renamed earlier, so no later shadow
        // can appear behind this load.
        if (isSpeculative(inst.seq)) {
            inst.specAtRename = true;
            specLoads.push_back(Entry{h, inst.seq});
        }
    }
}

void
ShadowTracker::update(SeqNum next_seq, std::vector<InstHandle> &now_safe)
{
    // Retire resolved / squashed shadow sources from the front. A
    // handle that no longer resolves was freed by the squash walk.
    while (!branches.empty()) {
        const DynInst *r = slab->tryGet(branches.front().handle);
        if (r && !r->resolved)
            break;
        branches.pop_front();
    }
    while (!stores.empty()) {
        const DynInst *r = slab->tryGet(stores.front().handle);
        if (r && !r->effAddrValid)
            break;
        stores.pop_front();
    }

    SeqNum new_vp = next_seq;
    if (!branches.empty())
        new_vp = std::min(new_vp, branches.front().seq);
    if (!stores.empty())
        new_vp = std::min(new_vp, stores.front().seq);
    sb_assert(new_vp >= vp, "visibility point must be monotonic");
    vp = new_vp;

    while (!specLoads.empty()) {
        const Entry &front = specLoads.front();
        if (!slab->alive(front.handle)) { // Squashed (freed).
            specLoads.pop_front();
            continue;
        }
        if (front.seq > vp)
            break;
        // seq == vp cannot happen (vp points at a branch or store).
        now_safe.push_back(front.handle);
        specLoads.pop_front();
    }
}

void
ShadowTracker::reset()
{
    branches.clear();
    stores.clear();
    specLoads.clear();
    vp = 0;
    vpPrev = 0;
}

} // namespace sb
