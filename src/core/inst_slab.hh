/**
 * @file
 * Index-addressed, generation-tagged storage for in-flight DynInst
 * records.
 *
 * Every pipeline structure (queues, ROB, issue queue, LSU, event
 * wheels, scheme-owned lists) refers to instructions by a 32-bit
 * InstHandle instead of a shared_ptr: 4-byte queue elements, no
 * atomic refcount traffic, and records packed in one flat array the
 * stage loops walk cache-linearly.
 *
 * Lifetime is explicit and single-owner:
 *  - allocated at fetch,
 *  - freed at commit (the record's fields the LSU still needs for the
 *    post-commit store drain are cached in its SqEntry), or
 *  - freed during the squash walk.
 *
 * Safety comes from the generation tag: the handle's upper half must
 * match the slot's current generation, which is bumped on every
 * free. Any structure that can legitimately outlive its instruction
 * (completion events, retry queues, forwarding waiter lists, parked
 * loads) revalidates through tryGet() and treats nullptr as "the
 * instruction was squashed" — the exact places the shared_ptr engine
 * checked a `squashed` flag.
 */

#ifndef SB_CORE_INST_SLAB_HH
#define SB_CORE_INST_SLAB_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace sb
{

/** Handle to a slab slot: low 16 bits index, high 16 bits generation. */
using InstHandle = std::uint32_t;

/** Sentinel: never matches a live slot. */
constexpr InstHandle invalidInstHandle = 0xFFFFFFFFu;

/** Fixed-capacity slab of DynInst records with generation tags. */
class InstSlab
{
  public:
    /**
     * @param capacity maximum simultaneously live records. The core
     * sizes this from its geometry (every live instruction sits in
     * exactly one of the fetch queue, decode queue, or ROB), so
     * alloc() never grows storage and record references stay stable
     * for the life of the slab.
     */
    explicit InstSlab(std::size_t capacity)
    {
        sb_assert(capacity > 0 && capacity < slotMask,
                  "slab capacity must fit in the handle's index bits");
        records.resize(capacity);
        gens.assign(capacity, 0);
        freeList.reserve(capacity);
        for (std::size_t i = capacity; i-- > 0;)
            freeList.push_back(static_cast<std::uint32_t>(i));
    }

    /**
     * Allocate a slot. The record is returned as-is (stale contents);
     * the caller overwrites it wholesale (the core assigns a decoded
     * template; tests assign DynInst{}).
     */
    InstHandle
    alloc()
    {
        sb_assert(!freeList.empty(), "instruction slab overflow");
        const std::uint32_t idx = freeList.back();
        freeList.pop_back();
        ++liveNow;
        if (liveNow > hiWater)
            hiWater = liveNow;
        return (static_cast<InstHandle>(gens[idx]) << indexBits) | idx;
    }

    /** Free a live slot; its generation bumps, staling all handles. */
    void
    free(InstHandle h)
    {
        const std::uint32_t idx = h & slotMask;
        sb_assert(idx < records.size() && gens[idx] == (h >> indexBits),
                  "freeing a stale or invalid instruction handle");
        ++gens[idx]; // uint16 wrap is fine: stale handles die young.
        freeList.push_back(idx);
        --liveNow;
        ++recycledCount;
    }

    /** Record for a live handle (asserts liveness in debug builds). */
    DynInst &
    get(InstHandle h)
    {
        sb_assert(alive(h), "dereferencing a stale instruction handle");
        return records[h & slotMask];
    }

    const DynInst &
    get(InstHandle h) const
    {
        sb_assert(alive(h), "dereferencing a stale instruction handle");
        return records[h & slotMask];
    }

    /** Record if @p h is live, nullptr if freed (= squashed). */
    DynInst *
    tryGet(InstHandle h)
    {
        const std::uint32_t idx = h & slotMask;
        if (idx >= records.size() || gens[idx] != (h >> indexBits))
            return nullptr;
        return &records[idx];
    }

    const DynInst *
    tryGet(InstHandle h) const
    {
        const std::uint32_t idx = h & slotMask;
        if (idx >= records.size() || gens[idx] != (h >> indexBits))
            return nullptr;
        return &records[idx];
    }

    /** Does @p h still address the record it was created for? */
    bool
    alive(InstHandle h) const
    {
        const std::uint32_t idx = h & slotMask;
        return idx < records.size() && gens[idx] == (h >> indexBits);
    }

    std::size_t capacity() const { return records.size(); }
    std::size_t liveCount() const { return liveNow; }

    /** Most records simultaneously live over the slab's lifetime. */
    std::size_t highWater() const { return hiWater; }

    /** Total slots freed (= handles recycled) over the lifetime. */
    std::uint64_t recycled() const { return recycledCount; }

  private:
    static constexpr unsigned indexBits = 16;
    static constexpr std::uint32_t slotMask = (1u << indexBits) - 1;

    std::vector<DynInst> records;        ///< Never reallocated.
    std::vector<std::uint16_t> gens;     ///< Current generation per slot.
    std::vector<std::uint32_t> freeList;
    std::size_t liveNow = 0;
    std::size_t hiWater = 0;
    std::uint64_t recycledCount = 0;
};

} // namespace sb

#endif // SB_CORE_INST_SLAB_HH
