/**
 * @file
 * Bucketed timing wheel for the core's event queues.
 *
 * The completion/wakeup events of a cycle-level core all land within
 * a small, configuration-bounded latency horizon (the longest memory
 * round trip plus the longest functional-unit latency). A wheel of
 * power-of-two bucket count larger than that horizon makes push and
 * per-cycle drain O(1) amortized with no comparisons and no per-event
 * heap traffic, replacing the std::priority_queues of the original
 * engine. Events beyond the horizon (possible for scheme-owned
 * deferred broadcasts) spill into a rarely-touched overflow vector.
 *
 * Invariant: drainDue(now) is called once per cycle with `now`
 * advancing by exactly 1, so bucket[now & mask] only ever holds
 * events due exactly at `now`.
 */

#ifndef SB_CORE_TIMING_WHEEL_HH
#define SB_CORE_TIMING_WHEEL_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace sb
{

template <typename Event>
class TimingWheel
{
  public:
    /** @param horizon longest push delay expected (rounded up to pow2). */
    explicit TimingWheel(unsigned horizon = 256)
    {
        std::size_t n = 2;
        while (n <= horizon)
            n <<= 1;
        buckets.resize(n);
        mask = n - 1;
    }

    bool empty() const { return liveEvents == 0; }
    std::size_t size() const { return liveEvents; }
    std::size_t bucketCount() const { return buckets.size(); }

    /**
     * Schedule @p ev at cycle @p at. Events at or before @p now are
     * clamped to now + 1, matching the old priority-queue engine
     * where a same-cycle push was drained on the following cycle
     * (the drain for @p now has already run).
     */
    void
    push(Cycle at, Cycle now, Event ev)
    {
        if (at <= now)
            at = now + 1;
        ++liveEvents;
        if (at - now <= mask) {
            buckets[at & mask].push_back(std::move(ev));
        } else {
            overflow.emplace_back(at, std::move(ev));
        }
    }

    /**
     * Invoke @p fn on every event due at @p now, in FIFO push order.
     * @p fn may push new (strictly future) events.
     */
    template <typename Fn>
    void
    drainDue(Cycle now, Fn &&fn)
    {
        if (liveEvents == 0)
            return;
        if (!overflow.empty())
            reapOverflow(now);
        auto &bucket = buckets[now & mask];
        // Handlers push only into other cycles' buckets (delay >= 1),
        // so iterating by index while the wheel grows elsewhere is
        // safe; `bucket` itself cannot be appended to.
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            --liveEvents;
            fn(bucket[i]);
        }
        bucket.clear(); // Keeps capacity: zero steady-state allocation.
    }

    void
    clear()
    {
        for (auto &b : buckets)
            b.clear();
        overflow.clear();
        liveEvents = 0;
    }

  private:
    /** Move matured overflow events into their wheel buckets. */
    void
    reapOverflow(Cycle now)
    {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < overflow.size(); ++i) {
            auto &entry = overflow[i];
            if (entry.first - now <= mask) {
                // Due this cycle or within the horizon: wheel it.
                buckets[entry.first & mask].push_back(
                    std::move(entry.second));
            } else {
                overflow[kept++] = std::move(entry);
            }
        }
        overflow.resize(kept);
    }

    std::vector<std::vector<Event>> buckets;
    std::vector<std::pair<Cycle, Event>> overflow;
    std::size_t mask = 0;
    std::size_t liveEvents = 0;
};

} // namespace sb

#endif // SB_CORE_TIMING_WHEEL_HH
