/**
 * @file
 * Declarative security-contract descriptor for secure schemes.
 *
 * A scheme no longer answers three ad-hoc claims* booleans; it returns
 * one SecurityContract naming the hardware-software contract it
 * promises (Tan et al., "RTL Verification for Secure Speculation Using
 * Contract Shadow Logic"; Daniel et al., "ProSpeCT"), plus the monitor
 * obligations the harness may hold it to. The gadget battery
 * (src/harness/verify.hh), the conformance fuzzer
 * (src/harness/conformance.hh) and the in-core contract shadow engine
 * (src/core/contract_shadow.hh) all judge against this descriptor.
 */

#ifndef SB_CORE_SECURITY_CONTRACT_HH
#define SB_CORE_SECURITY_CONTRACT_HH

#include <string>

namespace sb
{

/**
 * The contract a scheme declares, ordered weakest to strongest along
 * the observational axis. Policies are not a strict lattice — the
 * dataflow policies (TransmitterSafe, ConsumeSafe) imply Sandboxing,
 * but ConstantTime is a different axis (it also forbids
 * *architectural* secret transmission) that no modelled scheme
 * declares; it exists as a verifier override (`sbsim verify
 * --contract constant-time`).
 */
enum class ContractPolicy {
    /** No promise at all (the unsafe baseline). The verifier instead
     *  requires such a core to leak — proof the gadgets are armed. */
    None,

    /** STT obligation: no transmitter (load/store address, branch)
     *  executes with speculatively-tainted operands. */
    TransmitterSafe,

    /** NDA obligation: no instruction consumes a speculative load's
     *  value at all. Strictly stronger than TransmitterSafe. */
    ConsumeSafe,

    /** The observational leak-freedom notion: transiently-accessed
     *  (out-of-sandbox) secrets never reach a transmitter operand,
     *  and paired secret-flipped runs neither recover the secret nor
     *  diverge. Delay-on-Miss declares exactly this: tainted
     *  transmitters may *hit*, only the misses are hidden. */
    Sandboxing,

    /** ProSpeCT constant-time: secret-labelled data never reaches a
     *  transmitter operand, even architecturally. */
    ConstantTime,
};

/**
 * A scheme's full self-description: the declared policy plus the
 * concrete obligations the harness polices. The obligation flags are
 * derivable from the policy for every stock contract (use the named
 * constructors); they are kept explicit so a test scheme can declare
 * deliberately inconsistent combinations.
 */
struct SecurityContract {
    ContractPolicy policy = ContractPolicy::None;

    /** Ground-truth SecurityMonitor transmit count must be zero. */
    bool obligesTransmitterSafety = false;

    /** Monitor consume count must be zero (implies the above). */
    bool obligesConsumeSafety = false;

    /** Differential obligation: paired secret-flipped runs must
     *  neither recover the secret nor diverge in committed-load
     *  observation traces; the contract shadow engine additionally
     *  requires zero sandboxing violations. */
    bool obligesLeakFreedom = false;

    /** The unsafe baseline: promises nothing. */
    static constexpr SecurityContract
    none()
    {
        return {};
    }

    /** STT-style schemes. */
    static constexpr SecurityContract
    transmitterSafe()
    {
        return {ContractPolicy::TransmitterSafe, true, false, true};
    }

    /** NDA / full-delay schemes. */
    static constexpr SecurityContract
    consumeSafe()
    {
        return {ContractPolicy::ConsumeSafe, true, true, true};
    }

    /** Observational-only schemes (Delay-on-Miss). */
    static constexpr SecurityContract
    sandboxing()
    {
        return {ContractPolicy::Sandboxing, false, false, true};
    }

    /** ProSpeCT constant-time (verifier override; no stock scheme
     *  declares it). */
    static constexpr SecurityContract
    constantTime()
    {
        return {ContractPolicy::ConstantTime, false, false, true};
    }
};

/** Stable lowercase policy name, used in JSON and CLI surfaces. */
inline const char *
contractPolicyName(ContractPolicy policy)
{
    switch (policy) {
      case ContractPolicy::None: return "none";
      case ContractPolicy::TransmitterSafe: return "transmitter-safe";
      case ContractPolicy::ConsumeSafe: return "consume-safe";
      case ContractPolicy::Sandboxing: return "sandboxing";
      case ContractPolicy::ConstantTime: return "constant-time";
    }
    return "none";
}

/** Parse a policy name as printed by contractPolicyName(). Returns
 *  false (leaving `out` untouched) on an unknown name. */
inline bool
contractPolicyFromName(const std::string &name, ContractPolicy &out)
{
    if (name == "none") { out = ContractPolicy::None; return true; }
    if (name == "transmitter-safe") {
        out = ContractPolicy::TransmitterSafe;
        return true;
    }
    if (name == "consume-safe") {
        out = ContractPolicy::ConsumeSafe;
        return true;
    }
    if (name == "sandboxing") { out = ContractPolicy::Sandboxing; return true; }
    if (name == "constant-time") {
        out = ContractPolicy::ConstantTime;
        return true;
    }
    return false;
}

} // namespace sb

#endif // SB_CORE_SECURITY_CONTRACT_HH
