/**
 * @file
 * BOOM-class out-of-order core model.
 *
 * A cycle-level model of the SonicBOOM pipeline with the structures
 * the paper's microarchitectures modify made explicit:
 *
 *   fetch -> decode -> rename (RAT/free list) -> dispatch -> unified
 *   issue queue (wakeup/select) -> execute / LSU -> writeback ->
 *   in-order commit (ROB)
 *
 * including speculative L1-hit scheduling, partial store issue,
 * optimistic memory disambiguation with violation flushes, branch
 * mispredict recovery by exact walk-back, and C/D-shadow tracking
 * with an in-order visibility point. Secure speculation schemes plug
 * in through the SecureScheme hook interface.
 *
 * Stages are evaluated back-to-front each tick so an instruction
 * advances at most one stage per cycle and same-cycle wakeup/select
 * behaves like hardware.
 *
 * In-flight instructions live in a fixed-capacity, generation-tagged
 * slab (core/inst_slab.hh); every pipeline structure stores 32-bit
 * InstHandles. Records are allocated at fetch, freed at commit or
 * during the squash walk; structures that can outlive an instruction
 * revalidate handles through the slab. Fetch+decode of hot loop
 * bodies is memoized per static PC (core/decode_cache.hh), and an
 * optional functional fast-forward (CoreConfig::warmupInsts) skips
 * detailed simulation of warmup instructions entirely.
 */

#ifndef SB_CORE_CORE_HH
#define SB_CORE_CORE_HH

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/btb.hh"
#include "branch/tage.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/contract_shadow.hh"
#include "core/decode_cache.hh"
#include "core/dyn_inst.hh"
#include "core/inst_slab.hh"
#include "core/invariants.hh"
#include "core/issue_queue.hh"
#include "core/timing_wheel.hh"
#include "core/lsu.hh"
#include "core/rename_map.hh"
#include "core/scheme_iface.hh"
#include "core/security_monitor.hh"
#include "core/shadow_tracker.hh"
#include "isa/program.hh"
#include "memory/memory_system.hh"

namespace sb
{

/**
 * Cached handles to the core's counters, resolved once at
 * construction. The per-cycle paths increment through these
 * references; the string-keyed StatGroup registry stays authoritative
 * for harvesting (ExperimentRunner reads `stats().counters()`).
 */
struct CoreStats
{
    explicit CoreStats(StatGroup &g)
        : cycles(g.counter("cycles")),
          committedInsts(g.counter("committed_insts")),
          committedLoads(g.counter("committed_loads")),
          committedStores(g.counter("committed_stores")),
          committedBranches(g.counter("committed_branches")),
          storeDrains(g.counter("store_drains")),
          deferredBroadcasts(g.counter("deferred_broadcasts")),
          branchMispredicts(g.counter("branch_mispredicts")),
          forwardStalls(g.counter("forward_stalls")),
          disambiguationBypasses(g.counter("disambiguation_bypasses")),
          loadForwards(g.counter("load_forwards")),
          mshrRetries(g.counter("mshr_retries")),
          loadL1Misses(g.counter("load_l1_misses")),
          memOrderViolations(g.counter("mem_order_violations")),
          loadsBecameSafe(g.counter("loads_became_safe")),
          schemeSelectBlocks(g.counter("scheme_select_blocks")),
          schemeIssueKills(g.counter("scheme_issue_kills")),
          schemeMissDelays(g.counter("scheme_miss_delays")),
          iqFullStalls(g.counter("iq_full_stalls")),
          robFullStalls(g.counter("rob_full_stalls")),
          freelistStalls(g.counter("freelist_stalls")),
          branchCapStalls(g.counter("branch_cap_stalls")),
          lsuFullStalls(g.counter("lsu_full_stalls")),
          fenceStalls(g.counter("fence_stalls")),
          squashedInsts(g.counter("squashed_insts")),
          squashes(g.counter("squashes")),
          decodeCacheHits(g.counter("decode_cache_hits")),
          decodeCacheMisses(g.counter("decode_cache_misses")),
          slabHighWater(g.counter("slab_high_water")),
          handlesRecycled(g.counter("handles_recycled")),
          contextSwitches(g.counter("context_switches"))
    {
    }

    Counter &cycles;
    Counter &committedInsts;
    Counter &committedLoads;
    Counter &committedStores;
    Counter &committedBranches;
    Counter &storeDrains;
    Counter &deferredBroadcasts;
    Counter &branchMispredicts;
    Counter &forwardStalls;
    Counter &disambiguationBypasses;
    Counter &loadForwards;
    Counter &mshrRetries;
    Counter &loadL1Misses;
    Counter &memOrderViolations;
    Counter &loadsBecameSafe;
    Counter &schemeSelectBlocks;
    Counter &schemeIssueKills;
    Counter &schemeMissDelays;
    Counter &iqFullStalls;
    Counter &robFullStalls;
    Counter &freelistStalls;
    Counter &branchCapStalls;
    Counter &lsuFullStalls;
    /** Cycles rename held a Fence back waiting for the ROB to drain. */
    Counter &fenceStalls;
    Counter &squashedInsts;
    Counter &squashes;
    /** Engine health: decode-cache effectiveness + slab churn. */
    Counter &decodeCacheHits;
    Counter &decodeCacheMisses;
    Counter &slabHighWater;
    Counter &handlesRecycled;
    /** Protection-domain switches performed (commit-time markers). */
    Counter &contextSwitches;
};

/**
 * One attacker-visible memory observation, recorded at commit time.
 * The sequence of these records over a run is the core's observation
 * trace: everything a same-address-space timing adversary can measure
 * about the committed loads (program point, when the value committed,
 * how long memory took, and whether it hit in the L1). The
 * differential leakage verifier (src/harness/verify.hh) runs paired
 * executions that differ only in a secret byte and requires the two
 * traces to be identical under a secure scheme.
 */
struct LoadObservation
{
    std::uint32_t pc = 0;   ///< Static code index of the load.
    Cycle commitCycle = 0;  ///< Cycle the load committed.
    Cycle completeCycle = 0;///< Cycle the data became available.
    bool l1Hit = false;     ///< Demand access hit in the L1.

    bool
    operator==(const LoadObservation &o) const
    {
        return pc == o.pc && commitCycle == o.commitCycle
               && completeCycle == o.completeCycle && l1Hit == o.l1Hit;
    }
};

/** Result of a simulation run. */
struct RunResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    bool halted = false;
    /** The soft watchdog detected a commit-less stall (liveness
     *  failure) and ended the run; see Core::setSoftWatchdog. */
    bool watchdogTripped = false;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions)
                                 / static_cast<double>(cycles);
    }
};

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @param config core geometry (Table 1 presets in CoreConfig).
     * @param scheme_config scheme selection and ablation knobs.
     * @param scheme hook implementation; nullptr = unsafe baseline.
     * @param program the program to run (copied functionally).
     */
    Core(const CoreConfig &config, const SchemeConfig &scheme_config,
         std::unique_ptr<SecureScheme> scheme, const Program &program);

    /** Run until @p max_insts commits, @p max_cycles, or a halt. */
    RunResult run(std::uint64_t max_insts, std::uint64_t max_cycles);

    /** Advance one cycle. */
    void tick();

    // --- Accessors ------------------------------------------------------
    Cycle now() const { return cycle; }
    bool halted() const { return haltedFlag; }
    std::uint64_t committedInstructions() const { return committedCount; }
    /** Instructions executed functionally by fast-forward warmup. */
    std::uint64_t fastForwardedInstructions() const { return ffwdCount; }
    const CoreConfig &config() const { return cfg; }
    const SchemeConfig &schemeConfig() const { return schemeCfg; }
    StatGroup &stats() { return statGroup; }
    const SecurityMonitor &monitor() const { return secMonitor; }
    MemorySystem &memorySystem() { return mem; }
    SecureScheme &scheme() { return *schemePtr; }

    /** The in-flight instruction slab (engine-health diagnostics). */
    const InstSlab &instSlab() const { return slab; }

    /** The per-PC decode cache (tests drive invalidation directly). */
    DecodeCache &decodeCache() { return dcache; }

    /** Does @p h still address a live in-flight instruction? */
    bool slabAlive(InstHandle h) const { return slab.alive(h); }

    /** Visibility point (oldest unresolved C/D shadow). */
    SeqNum visibilityPoint() const
    {
        return shadows.visibilityPoint();
    }

    /** Visibility point as of the previous cycle (rename-broadcast
     *  latency: STT-Rename sees untaints one cycle late, Sec. 9.1). */
    SeqNum visibilityPointPrev() const
    {
        return shadows.visibilityPointPrev();
    }

    /** Is @p seq younger than an open shadow? */
    bool isSpeculative(SeqNum seq) const
    {
        return shadows.isSpeculative(seq);
    }

    /**
     * Schedule a wakeup broadcast of @p preg at cycle @p at (used by
     * schemes that own deferred broadcasts, e.g. NDA). The broadcast
     * is dropped if @p preg is re-allocated before it fires.
     */
    void scheduleWakeup(PhysReg preg, Cycle at);

    /**
     * Re-inject a load the scheme took ownership of through
     * SecureScheme::delayLoadMiss(): it re-arbitrates for a memory
     * port like an MSHR-rejected retry (scheme tick() runs before the
     * select phase, so a load released there retries the same cycle).
     */
    void retryLoad(InstHandle load) { retryLoads.push_back(load); }

    /** Per-commit observer (used by examples, e.g. the attack PoC). */
    using CommitHook = std::function<void(const DynInst &, Cycle)>;
    void setCommitHook(CommitHook hook) { commitHook = std::move(hook); }

    /**
     * Record a LoadObservation for every committed load from now on
     * (the observation hook the differential leakage verifier runs
     * on). Off by default: the recording branch costs one predictable
     * test per commit, and perf runs never enable it.
     */
    void enableObservationTrace() { observing = true; }

    /** Committed-load observations recorded so far (program order). */
    const std::vector<LoadObservation> &observationTrace() const
    {
        return observations;
    }

    /**
     * Pipeline-event observer (the stand-in for the paper's
     * TraceDoctor instrumentation): called with an event name at
     * rename / block / kill / issue / execute / complete / squash.
     */
    using TraceHook =
        std::function<void(const char *, const DynInst &, Cycle)>;
    void setTraceHook(TraceHook hook) { traceHook = std::move(hook); }

    /** Protection domain instructions are currently fetched under. */
    TenantId activeTenant() const { return currentTenant; }

    /** Context switches performed so far. */
    std::uint64_t contextSwitchCount() const { return switchCount; }

    /** Read an architectural register (through the RAT; for tests). */
    Word readArchReg(ArchReg reg) const;

    /** Read functional memory (committed state; for tests/examples). */
    Word readMemory(Addr addr) const { return workingMem.read(addr); }

    /** The committed functional memory image (conformance oracle). */
    const MemoryImage &memoryImage() const { return workingMem; }

    /** In-core invariant checkers (pure observers; see invariants.hh). */
    const InvariantChecker &invariants() const { return inv; }

    /** Force the invariant checkers on/off, overriding the
     *  build/environment default (the fuzz harness always enables). */
    void setInvariantsEnabled(bool enable) { inv.setActive(enable); }

    /** Contract shadow engine verdicts (pure observer; see
     *  contract_shadow.hh). */
    const ContractShadow &contractShadow() const { return cshadow; }

    /** Force the contract shadow engine on/off, overriding the
     *  build/environment default (the verify and conformance
     *  harnesses always enable). */
    void setContractShadowEnabled(bool enable)
    {
        cshadow.setActive(enable);
    }

    /**
     * Replace the hard 100k-cycle commit-stall panic with a soft
     * watchdog: after @p stall_cycles without a commit the run ends
     * with RunResult::watchdogTripped set instead of aborting the
     * process, so a fuzz harness can report the failing seed. 0
     * restores the hard panic (the default).
     */
    void setSoftWatchdog(Cycle stall_cycles)
    {
        softWatchdogCycles = stall_cycles;
    }

    /** True once the soft watchdog ended the run. */
    bool watchdogTripped() const { return watchdogTrippedFlag; }

    /**
     * Arm a wall-clock deadline for run(): once @p seconds of real
     * time elapse the run ends with RunResult::watchdogTripped set
     * (and wallDeadlineHit() true, so callers can tell a timed-out
     * cell from a commit-stall). Checked every few thousand cycles —
     * the steady-state loop stays branch-cheap and timing-identical.
     * 0 disarms.
     */
    void setWallDeadline(double seconds);

    /** Also end run() early (as a watchdog trip) once an interrupt
     *  was requested (common/signals.hh). Off by default. */
    void setInterruptible(bool enable) { interruptibleFlag = enable; }

    /** True once the wall-clock deadline ended the run. */
    bool wallDeadlineHit() const { return wallDeadlineHitFlag; }

  private:
    // --- Pipeline phases (called back-to-front from tick()) -----------
    void commitPhase();
    void drainStores();
    void writebackPhase();
    void executePhase();
    void shadowPhase();
    void selectPhase();
    void dispatchPhase();
    void renamePhase();
    void decodePhase();
    void fetchPhase();

    // --- Helpers ----------------------------------------------------------
    void executeLoadAddr(InstHandle h, DynInst &inst);
    void loadMemoryStage(InstHandle h, DynInst &inst);
    void executeStoreAddr(DynInst &inst);
    void executeStoreData(DynInst &inst);
    void executeBranch(DynInst &inst);
    void executeAluAtSelect(InstHandle h, DynInst &inst);
    void finishLoad(InstHandle h, DynInst &inst, Cycle complete_at,
                    Word value, SeqNum forward_source);

    /**
     * Functional-only warmup (CoreConfig::warmupInsts): interpret up
     * to @p max_insts instructions architecturally, training caches,
     * the branch predictor, and the BTB, without modelling cycles.
     * Requires a fresh core; detailed simulation resumes at the next
     * un-executed pc.
     */
    void fastForward(std::uint64_t max_insts);

    /** Latency of an op class from the configuration. */
    unsigned opLatency(OpClass cls) const;

    /** Apply (or enqueue) a wakeup broadcast of @p preg. */
    void applyWakeup(PhysReg preg, Cycle at);

    /** Publish slab/decode-cache health into CoreStats (delta-based,
     *  so mid-run StatGroup resets keep window semantics). */
    void syncEngineStats();

    /**
     * Squash everything younger than @p from_seq and refetch at
     * @p new_pc. Restores RAT/free-list/taint by walk-back and frees
     * the squashed slab records.
     */
    void squash(SeqNum from_seq, std::uint32_t new_pc);

    /**
     * Switch to protection domain @p to: squash every in-flight
     * instruction younger than the committed marker at (@p marker_seq,
     * @p marker_pc), bank out the outgoing tenant's architectural
     * registers (and shadow labels), bank in the incoming tenant's,
     * flush predictor state per CoreConfig::flushPredictorsOnSwitch,
     * and charge CoreConfig::contextSwitchPenalty of fetch stall.
     */
    void performContextSwitch(SeqNum marker_seq,
                              std::uint32_t marker_pc, TenantId to);

    bool speculativeSchedulingEnabled() const;

    // --- Configuration -----------------------------------------------------
    CoreConfig cfg;
    SchemeConfig schemeCfg;
    std::unique_ptr<SecureScheme> schemePtr;
    const Program *program;

    // --- Substrate ----------------------------------------------------------
    MemorySystem mem;
    TagePredictor predictor;
    RenameMap renameMap;
    ShadowTracker shadows;
    SecurityMonitor secMonitor;
    ContractShadow cshadow;
    MemoryImage workingMem;   ///< Committed functional memory.

    /**
     * In-flight instruction storage. Capacity is exact by
     * construction: every live record sits in exactly one of the
     * fetch queue, the decode queue, or the ROB (dispatch-queue
     * entries are already in the ROB), so the sum of those bounds
     * (plus slack for same-cycle handoffs) can never overflow.
     */
    InstSlab slab;
    DecodeCache dcache;       ///< Per-PC decoded micro-op cache.

    // --- Register state --------------------------------------------------
    std::vector<Word> regVal;
    std::vector<std::uint8_t> wakeupDone;
    /** Allocation epoch per physical register; a queued wakeup fires
     *  only if its register has not been re-allocated since. */
    std::vector<std::uint32_t> pregEpoch;

    // --- Pipeline buffers ---------------------------------------------------
    struct DecodeSlot
    {
        InstHandle inst = invalidInstHandle;
        Cycle readyAt = 0;
    };
    std::deque<InstHandle> fetchQueue;
    std::deque<DecodeSlot> decodeQueue;
    std::deque<InstHandle> dispatchQueue;
    std::deque<InstHandle> rob;
    IssueQueue iq;
    Lsu lsu;

    // --- Event machinery ------------------------------------------------------
    struct CompletionEvent
    {
        InstHandle inst;
    };
    struct WakeupEvent
    {
        PhysReg preg;
        std::uint32_t epoch; ///< pregEpoch at scheduling time.
    };
    /** Longest possible event delay, from the configured latencies. */
    unsigned eventHorizon() const;
    TimingWheel<CompletionEvent> completions;
    TimingWheel<WakeupEvent> wakeups;
    std::vector<InstHandle> execNow;   ///< Executing this cycle.
    std::vector<InstHandle> execNext;  ///< Selected, executes next cycle.
    std::deque<InstHandle> retryLoads; ///< MSHR-reject retries.
    /** Per-cycle scratch buffers (members so their capacity is kept
     *  across cycles: the steady-state hot path never allocates). */
    std::vector<InstHandle> issuedScratch;
    std::vector<DynInst *> renameScratch;
    std::vector<InstHandle> safeScratch;
    std::vector<InstHandle> wokenScratch;

    // --- Front-end state -------------------------------------------------------
    std::uint32_t pc = 0;
    std::uint64_t ghist = 0;
    /** Branch target buffer for indirect jumps (JmpReg): fixed
     *  set-associative table of last committed targets per static PC.
     *  Trained at commit so wrong-path execution cannot pollute it
     *  (keeps runs deterministic); flushed on a context switch under
     *  CoreConfig::flushPredictorsOnSwitch. */
    BranchTargetBuffer btb;
    Cycle fetchStallUntil = 0;
    bool fetchHalted = false;
    unsigned frontendExtraDelay = 0;

    // --- Protection-domain state ------------------------------------------------
    /** Banked architectural state of a descheduled tenant. */
    struct TenantCtx
    {
        std::vector<Word> archRegs;
        std::vector<ContractShadow::Label> archLabels;
        std::uint32_t resumePc = 0;
        bool started = false; ///< Has run before (resumePc is valid).
    };
    /** Commit-time switch markers: marker pc -> incoming tenant. */
    std::unordered_map<std::uint32_t, TenantId> switchAt;
    /** First-dispatch entry pc per tenant (Program::tenantEntries). */
    std::unordered_map<TenantId, std::uint32_t> tenantEntry;
    std::unordered_map<TenantId, TenantCtx> tenantCtxs;
    TenantId currentTenant = 0;
    std::uint64_t switchCount = 0;

    // --- Execution state ---------------------------------------------------------
    Cycle cycle = 0;
    SeqNum nextSeq = 1;
    SeqNum lastRenamedSeq = 0;
    unsigned branchesInFlight = 0;
    unsigned memPortsUsed = 0;
    Cycle divBusyUntil = 0;
    Cycle fdivBusyUntil = 0;
    bool haltedFlag = false;
    std::uint64_t committedCount = 0;
    std::uint64_t ffwdCount = 0;    ///< Fast-forwarded instructions.
    bool ffwdDone = false;
    Cycle lastCommitCycle = 0;
    Cycle softWatchdogCycles = 0;   ///< 0 = hard panic on stall.
    bool watchdogTrippedFlag = false;
    /** Wall-clock supervision (setWallDeadline / setInterruptible);
     *  polled from run(), never from tick(), so the pipeline loop is
     *  untouched. */
    std::chrono::steady_clock::time_point wallDeadline{};
    bool wallDeadlineArmed = false;
    bool wallDeadlineHitFlag = false;
    bool interruptibleFlag = false;
    /** Poll the wall-clock supervision; true ends the run. */
    bool wallStopRequested();
    InvariantChecker inv;

    /** Emit a trace event if a hook is attached. */
    void
    trace(const char *event, const DynInst &inst)
    {
        if (traceHook)
            traceHook(event, inst, cycle);
    }

    /** syncEngineStats() watermarks (deltas survive group resets). */
    std::uint64_t lastPubDcacheHits = 0;
    std::uint64_t lastPubDcacheMisses = 0;
    std::uint64_t lastPubRecycled = 0;

    StatGroup statGroup;
    CoreStats st;           ///< Cached handles into statGroup.
    CommitHook commitHook;
    TraceHook traceHook;
    bool observing = false; ///< Record LoadObservations at commit.
    std::vector<LoadObservation> observations;
};

} // namespace sb

#endif // SB_CORE_CORE_HH
