#include "core/contract_shadow.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace sb
{

ContractShadow::ContractShadow(unsigned num_phys_regs)
    : regs(num_phys_regs)
{
    active = defaultActive();
}

bool
ContractShadow::defaultActive()
{
    if (const char *env = std::getenv("SB_INVARIANTS")) {
        if (std::strcmp(env, "0") == 0)
            return false;
        if (std::strcmp(env, "1") == 0)
            return true;
        // InvariantChecker::defaultActive already warned about the
        // malformed value; fall through silently to the build default.
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

void
ContractShadow::markSecretRegion(Addr base, std::uint64_t bytes,
                                 TenantId owner)
{
    if (bytes == 0)
        return;
    const Addr first = alignWord(base);
    const Addr last = alignWord(base + bytes - 1);
    for (Addr a = first; a <= last; a += 8)
        secretWords[a] = owner;
}

bool
ContractShadow::memSecret(Addr addr) const
{
    return secretWords.count(alignWord(addr)) != 0;
}

TenantId
ContractShadow::memOwner(Addr addr) const
{
    auto it = secretWords.find(alignWord(addr));
    return it == secretWords.end() ? invalidTenant : it->second;
}

void
ContractShadow::setMemSecret(Addr addr, bool secret, TenantId owner)
{
    if (secret)
        secretWords[alignWord(addr)] = owner;
    else
        secretWords.erase(alignWord(addr));
}

void
ContractShadow::onAllocate(PhysReg reg)
{
    sb_assert(reg < regs.size(), "shadow register out of range");
    regs[reg] = Label{};
}

void
ContractShadow::onLoadValue(const DynInst &load, SeqNum forward_source)
{
    Label label;
    if (forward_source != invalidSeqNum) {
        // Store-to-load forwarding: the value never touched memory;
        // it carries the forwarding store's data label.
        auto it = storeData.find(forward_source);
        if (it != storeData.end())
            label = it->second;
    } else if (load.effAddrValid && memSecret(load.effAddr)) {
        label.secret = true;
        label.owner = memOwner(load.effAddr);
    }
    pendingLoads[load.seq] = label;
}

void
ContractShadow::onLoadData(const DynInst &load, bool still_speculative)
{
    Label label;
    auto it = pendingLoads.find(load.seq);
    if (it != pendingLoads.end()) {
        label = it->second;
        pendingLoads.erase(it);
    }
    if (load.pdst == invalidPhysReg)
        return;
    // The load itself is the youngest point the secret crossed the
    // sandbox boundary; once the load is bound to commit the access
    // is architecturally sanctioned and only the constant-time
    // contract still cares about the label.
    label.root = (label.secret && still_speculative) ? load.seq
                                                     : invalidSeqNum;
    regs[load.pdst] = label;
}

void
ContractShadow::onStoreData(const DynInst &store)
{
    if (!store.uop.hasSrc2())
        return;
    storeData[store.seq] = regs[store.psrc2];
}

void
ContractShadow::onStoreCommit(const DynInst &store)
{
    Label label;
    auto it = storeData.find(store.seq);
    if (it != storeData.end()) {
        label = it->second;
        storeData.erase(it);
    }
    if (store.effAddrValid)
        setMemSecret(store.effAddr, label.secret, label.owner);
}

SeqNum
ContractShadow::liveRoot(PhysReg reg, SeqNum vp) const
{
    const Label &label = regs[reg];
    if (label.secret && label.root != invalidSeqNum && label.root > vp)
        return label.root;
    return invalidSeqNum;
}

void
ContractShadow::onConsume(const DynInst &inst, Cycle now, SeqNum vp,
                          bool use_src1, bool use_src2, bool transmits)
{
    bool secret = false;
    SeqNum root = invalidSeqNum;
    TenantId owner = 0;

    auto check_src = [&](PhysReg reg) {
        if (reg == invalidPhysReg)
            return;
        if (!regs[reg].secret)
            return;
        secret = true;
        owner = regs[reg].owner;
        const SeqNum r = liveRoot(reg, vp);
        if (r != invalidSeqNum && (root == invalidSeqNum || r > root))
            root = r;
    };

    if (use_src1 && inst.uop.hasSrc1())
        check_src(inst.psrc1);
    if (use_src2 && inst.uop.hasSrc2())
        check_src(inst.psrc2);

    if (transmits && secret) {
        // Constant-time (ProSpeCT): a secret operand reached a
        // transmitter, speculatively or not.
        ++ctViol;
        if (!firstCt.valid())
            firstCt = {now, inst.seq, inst.pc};
        // Protection domains: the transmitting instruction ran under
        // one tenant while the secret belongs to another — the
        // cross-tenant escalation of the same observation.
        if (owner != inst.tenant) {
            ++crossTenantViol;
            if (!firstCrossTenant.valid())
                firstCrossTenant = {now, inst.seq, inst.pc};
        }
        // Sandboxing: only out-of-sandbox (still-speculative) secret
        // acquisition violates the observational contract.
        if (root != invalidSeqNum) {
            ++sandboxViol;
            if (!firstSandbox.valid())
                firstSandbox = {now, inst.seq, inst.pc};
        }
    }

    // Propagate the joined label to the destination (loads are
    // handled in onLoadData, which overwrites with the load's own
    // label).
    if (inst.pdst != invalidPhysReg && !inst.isLoad()) {
        regs[inst.pdst].secret = secret;
        regs[inst.pdst].root = root;
        regs[inst.pdst].owner = owner;
    }
}

void
ContractShadow::onSquash(SeqNum youngest_surviving)
{
    auto purge = [&](std::unordered_map<SeqNum, Label> &map) {
        for (auto it = map.begin(); it != map.end();) {
            if (it->first > youngest_surviving)
                it = map.erase(it);
            else
                ++it;
        }
    };
    purge(pendingLoads);
    purge(storeData);
}

void
ContractShadow::onArchTransmit(std::uint32_t pc, bool secret_operand)
{
    if (!secret_operand)
        return;
    ++ctViol;
    if (!firstCt.valid())
        firstCt = {0, 0, pc};
}

void
ContractShadow::reset()
{
    for (auto &r : regs)
        r = Label{};
    pendingLoads.clear();
    storeData.clear();
    sandboxViol = 0;
    ctViol = 0;
    crossTenantViol = 0;
    firstSandbox = ContractViolation{};
    firstCt = ContractViolation{};
    firstCrossTenant = ContractViolation{};
}

} // namespace sb
