#include "core/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/signals.hh"

namespace sb
{

Core::Core(const CoreConfig &config, const SchemeConfig &scheme_config,
           std::unique_ptr<SecureScheme> scheme, const Program &prog)
    : cfg(config),
      schemeCfg(scheme_config),
      schemePtr(scheme ? std::move(scheme)
                       : std::make_unique<SecureScheme>()),
      program(&prog),
      mem(config),
      predictor(10),
      renameMap(numArchRegs, config.numPhysRegs),
      secMonitor(config.numPhysRegs),
      cshadow(config.numPhysRegs),
      workingMem(prog.memory),
      // Exact by construction: a live record is in the fetch queue,
      // the decode queue, or the ROB (dispatch-queue entries are also
      // ROB entries), whose capacities bound it; the slack covers the
      // decode queue (capped at 4*coreWidth) plus same-cycle handoffs.
      slab(config.fetchBufferEntries + 4 * config.coreWidth
           + config.robEntries + 8),
      regVal(config.numPhysRegs, 0),
      wakeupDone(config.numPhysRegs, 1),
      pregEpoch(config.numPhysRegs, 0),
      iq(config.iqEntries),
      lsu(config.ldqEntries, config.stqEntries),
      completions(eventHorizon()),
      wakeups(eventHorizon()),
      pc(prog.entry),
      statGroup("core"),
      st(statGroup)
{
    sb_assert(cfg.coreWidth >= 1 && cfg.issueWidth >= 1
                  && cfg.memPorts >= 1,
              "core widths must be positive");
    frontendExtraDelay =
        cfg.frontendStages > 5 ? cfg.frontendStages - 5 : 0;
    iq.attachSlab(&slab);
    shadows.attachSlab(&slab);
    dcache.attach(prog);
    for (const SecretRegion &region : prog.secretRegions)
        cshadow.markSecretRegion(region.base, region.bytes,
                                 region.tenant);
    for (const SwitchPoint &sp : prog.switchPoints)
        switchAt[sp.pc] = sp.to;
    for (const TenantEntry &te : prog.tenantEntries)
        tenantEntry[te.tenant] = te.pc;
    schemePtr->attach(*this);
}

unsigned
Core::eventHorizon() const
{
    // Longest completion delay: an L2+DRAM round trip observed
    // through a hit-under-miss L1 probe, plus the slowest functional
    // unit. Wakeups ride at most one cycle behind completions, and
    // anything a scheme schedules further out spills into the
    // wheel's overflow lane, so this only has to bound the common
    // case.
    unsigned fu = cfg.aluLatency;
    for (unsigned lat : {cfg.mulLatency, cfg.divLatency, cfg.fpLatency,
                         cfg.fpDivLatency, cfg.branchResolveLatency})
        fu = std::max(fu, lat);
    return 2 * cfg.l1d.latency + 2 * cfg.l2.latency + cfg.memLatency
           + fu + 8;
}

unsigned
Core::opLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::Nop:
      case OpClass::IntAlu:
        return cfg.aluLatency;
      case OpClass::IntMul:
        return cfg.mulLatency;
      case OpClass::IntDiv:
        return cfg.divLatency;
      case OpClass::FpAlu:
      case OpClass::FpMul:
        return cfg.fpLatency;
      case OpClass::FpDiv:
        return cfg.fpDivLatency;
      case OpClass::Branch:
        return cfg.branchResolveLatency;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return 1; // Address generation; memory adds its own latency.
    }
    sb_panic("unknown op class");
}

bool
Core::speculativeSchedulingEnabled() const
{
    return cfg.speculativeScheduling
           && schemePtr->allowsSpeculativeScheduling();
}

Word
Core::readArchReg(ArchReg reg) const
{
    return regVal[renameMap.lookup(reg)];
}

void
Core::scheduleWakeup(PhysReg preg, Cycle at)
{
    applyWakeup(preg, at);
}

void
Core::applyWakeup(PhysReg preg, Cycle at)
{
    if (at <= cycle) {
        // Immediate broadcasts come straight from a live producer
        // (completion drain or schedule time), so no staleness check
        // is needed.
        wakeupDone[preg] = 1;
        iq.wakeup(preg);
        return;
    }
    // A queued broadcast can outlive its producer (squash). It is
    // valid exactly while the register has not been re-allocated: the
    // epoch captured here is compared at drain time.
    wakeups.push(at, cycle, WakeupEvent{preg, pregEpoch[preg]});
}

RunResult
Core::run(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    if (cfg.warmupInsts != 0 && !ffwdDone) {
        ffwdDone = true;
        fastForward(cfg.warmupInsts);
    }
    const std::uint64_t target = committedCount + max_insts;
    const Cycle limit = cycle + max_cycles;
    // Wall-clock supervision is sampled every 4096 cycles: cheap
    // enough to vanish in the run loop, frequent enough that a wedged
    // or interrupted cell ends within milliseconds of its deadline.
    const bool supervised = wallDeadlineArmed || interruptibleFlag;
    unsigned untilCheck = 4096;
    while (!haltedFlag && !watchdogTrippedFlag && committedCount < target
           && cycle < limit) {
        tick();
        if (supervised && --untilCheck == 0) {
            untilCheck = 4096;
            if (wallStopRequested())
                watchdogTrippedFlag = true;
        }
    }
    // After a halt, keep ticking until committed stores have drained
    // to memory, so the functional image reflects all committed work.
    while (haltedFlag && lsu.sqSize() > 0 && cycle < limit)
        tick();
    syncEngineStats();
    RunResult r;
    r.cycles = cycle;
    r.instructions = committedCount;
    r.halted = haltedFlag;
    r.watchdogTripped = watchdogTrippedFlag;
    return r;
}

void
Core::syncEngineStats()
{
    // The decode cache and the slab own their counters; publish them
    // into the core's StatGroup as deltas since the last publication,
    // so a harness that resets the group between a warmup and a
    // measurement run() gets window-local values like for every other
    // core counter.
    const std::uint64_t dh = dcache.hits();
    const std::uint64_t dm = dcache.misses();
    const std::uint64_t rc = slab.recycled();
    st.decodeCacheHits += dh - lastPubDcacheHits;
    st.decodeCacheMisses += dm - lastPubDcacheMisses;
    st.handlesRecycled += rc - lastPubRecycled;
    lastPubDcacheHits = dh;
    lastPubDcacheMisses = dm;
    lastPubRecycled = rc;
    // High water is a level, not a flow: always the absolute value.
    st.slabHighWater.reset();
    st.slabHighWater += slab.highWater();
}

void
Core::setWallDeadline(double seconds)
{
    if (seconds <= 0) {
        wallDeadlineArmed = false;
        return;
    }
    wallDeadline = std::chrono::steady_clock::now()
                   + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
    wallDeadlineArmed = true;
}

bool
Core::wallStopRequested()
{
    if (interruptibleFlag && interruptRequested())
        return true;
    if (wallDeadlineArmed
        && std::chrono::steady_clock::now() >= wallDeadline) {
        wallDeadlineHitFlag = true;
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Fast-forward (functional warmup)
// ---------------------------------------------------------------------

void
Core::fastForward(std::uint64_t max_insts)
{
    sb_assert(cycle == 0 && committedCount == 0 && nextSeq == 1,
              "fast-forward requires a fresh core");
    // Multi-tenant programs context-switch at commit, which the
    // functional interpreter does not model; such cells run with
    // warmup disabled.
    sb_assert(program->switchPoints.empty(),
              "fast-forward cannot cross context switches");
    // With no instructions in flight the RAT is the architectural
    // map, so architectural state lives directly in regVal through
    // renameMap.lookup — exactly what readArchReg() reads and what
    // the first detailed rename will look up.
    std::uint64_t n = 0;
    while (n < max_insts && pc < program->code.size()) {
        const MicroOp &uop = program->code[pc];
        if (uop.isHalt()) {
            // Leave pc on the halt so the detailed window commits it
            // and ends the run normally.
            break;
        }
        if (uop.isIndirect()) {
            const std::uint32_t target = static_cast<std::uint32_t>(
                regVal[renameMap.lookup(uop.src1)]);
            if (cshadow.on()) {
                cshadow.onArchTransmit(
                    pc, cshadow.regLabel(renameMap.lookup(uop.src1))
                            .secret);
            }
            // Train the BTB exactly like commit does. JmpRegRet
            // never touches the BTB, in warmup or in the core.
            if (uop.op == Op::JmpReg)
                btb.train(pc, target);
            pc = target;
            ++n;
            continue;
        }
        if (uop.op == Op::Jmp) {
            pc = uop.target;
            ++n;
            continue;
        }
        if (uop.isBranch()) {
            const Word s1 =
                uop.hasSrc1() ? regVal[renameMap.lookup(uop.src1)] : 0;
            const Word s2 =
                uop.hasSrc2() ? regVal[renameMap.lookup(uop.src2)] : 0;
            if (cshadow.on()) {
                // Architectural transmit: the branch outcome is
                // observable, so a secret operand violates the
                // constant-time contract even without speculation.
                const bool sec1 =
                    uop.hasSrc1()
                    && cshadow.regLabel(renameMap.lookup(uop.src1))
                           .secret;
                const bool sec2 =
                    uop.hasSrc2()
                    && cshadow.regLabel(renameMap.lookup(uop.src2))
                           .secret;
                cshadow.onArchTransmit(pc, sec1 || sec2);
            }
            const bool taken = evalBranch(uop, s1, s2);
            // Same training as commit: update against the history the
            // predictor would have seen, then shift the outcome in.
            predictor.update(pc, ghist, taken);
            ghist = (ghist << 1) | (taken ? 1u : 0u);
            pc = taken ? uop.target : pc + 1;
            ++n;
            continue;
        }
        const OpClass cls = uop.opClass();
        if (cls == OpClass::MemRead) {
            const Addr addr = regVal[renameMap.lookup(uop.src1)]
                              + static_cast<Word>(uop.imm);
            regVal[renameMap.lookup(uop.dst)] = workingMem.read(addr);
            if (cshadow.on()) {
                cshadow.onArchTransmit(
                    pc, cshadow.regLabel(renameMap.lookup(uop.src1))
                            .secret);
                const bool sec = cshadow.memSecret(addr);
                cshadow.setRegLabel(
                    renameMap.lookup(uop.dst),
                    {sec, invalidSeqNum,
                     sec ? cshadow.memOwner(addr) : TenantId(0)});
            }
            mem.warmAccess(addr, pc, 0);
            ++pc;
            ++n;
            continue;
        }
        if (cls == OpClass::MemWrite) {
            const Addr addr = regVal[renameMap.lookup(uop.src1)]
                              + static_cast<Word>(uop.imm);
            workingMem.write(addr,
                             regVal[renameMap.lookup(uop.src2)]);
            if (cshadow.on()) {
                cshadow.onArchTransmit(
                    pc, cshadow.regLabel(renameMap.lookup(uop.src1))
                            .secret);
                const ContractShadow::Label data =
                    cshadow.regLabel(renameMap.lookup(uop.src2));
                cshadow.setMemSecret(addr, data.secret, data.owner);
            }
            mem.warmAccess(addr, pc, 0);
            ++pc;
            ++n;
            continue;
        }
        // Nop and the integer/FP ALU classes.
        const Word s1 =
            uop.hasSrc1() ? regVal[renameMap.lookup(uop.src1)] : 0;
        const Word s2 =
            uop.hasSrc2() ? regVal[renameMap.lookup(uop.src2)] : 0;
        if (uop.hasDst()) {
            regVal[renameMap.lookup(uop.dst)] = evalAlu(uop, s1, s2);
            if (cshadow.on()) {
                const bool sec =
                    (uop.hasSrc1()
                     && cshadow.regLabel(renameMap.lookup(uop.src1))
                            .secret)
                    || (uop.hasSrc2()
                        && cshadow.regLabel(renameMap.lookup(uop.src2))
                               .secret);
                cshadow.setRegLabel(renameMap.lookup(uop.dst),
                                    {sec, invalidSeqNum});
            }
        }
        ++pc;
        ++n;
    }
    ffwdCount = n;
}

void
Core::tick()
{
    ++cycle;
    ++st.cycles;
    memPortsUsed = 0;
    shadows.latchPrev();

    commitPhase();
    writebackPhase();
    executePhase();
    shadowPhase();
    schemePtr->tick();
    selectPhase();
    dispatchPhase();
    renamePhase();
    decodePhase();
    fetchPhase();

    std::swap(execNow, execNext);
    execNext.clear();

    // Monotonicity of the *published* visibility point across ticks.
    // The tracker's own update() hard-asserts the per-step invariant
    // (and would abort before this observer sees it); this check
    // covers what that assert cannot — a reset() slipped into a live
    // run, or a future tracker rewrite publishing stale values.
    if (inv.on())
        inv.onVisibilityPoint(shadows.visibilityPoint());

    // Forward-progress watchdog: a stuck pipeline is a simulator bug.
    // In soft mode (fuzz harness) the run ends with a liveness flag
    // instead of aborting, so the failing seed can be reported.
    const Cycle stall_limit =
        softWatchdogCycles ? softWatchdogCycles : 100000;
    if (!haltedFlag && !rob.empty()
        && cycle - lastCommitCycle > stall_limit) {
        if (softWatchdogCycles) {
            watchdogTrippedFlag = true;
            return;
        }
        const DynInst &head = slab.get(rob.front());
        sb_panic("no commit for 100000 cycles; head seq=", head.seq,
                 " pc=", head.pc, " op=", head.uop.disassemble(),
                 " completed=", head.completed,
                 " inIq=", head.inIq, " vp=",
                 shadows.visibilityPoint());
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
Core::commitPhase()
{
    drainStores();

    unsigned n = 0;
    while (n < cfg.coreWidth && !rob.empty()) {
        const InstHandle h = rob.front();
        DynInst &inst = slab.get(h);
        if (!inst.completed)
            break;
        if (inv.on())
            inv.onCommit(inst);

        if (inst.isStore()) {
            lsu.markStoreCommitted(inst);
            if (cshadow.on())
                cshadow.onStoreCommit(inst);
        }
        if (inst.isLoad()) {
            lsu.releaseLoad(inst);
            ++st.committedLoads;
            if (observing) {
                observations.push_back(LoadObservation{
                    inst.pc, cycle, inst.completeAt, inst.l1Hit});
            }
        }
        if (inst.isBranch()) {
            sb_assert(branchesInFlight > 0, "branch count underflow");
            --branchesInFlight;
            if (inst.uop.op == Op::JmpReg) {
                btb.train(inst.pc, inst.actualTarget);
            } else if (inst.uop.op != Op::Jmp
                       && inst.uop.op != Op::JmpRegRet) {
                // JmpRegRet is the retpoline indirect: it trains
                // neither the BTB nor the direction predictor.
                predictor.update(inst.pc, inst.histSnapshot,
                                 inst.actualTaken);
            }
            ++st.committedBranches;
        }
        if (inst.isStore())
            ++st.committedStores;
        if (inst.stalePdst != invalidPhysReg)
            renameMap.release(inst.stalePdst);

        inst.committed = true;
        ++committedCount;
        ++st.committedInsts;
        lastCommitCycle = cycle;
        if (commitHook)
            commitHook(inst, cycle);

        rob.pop_front();
        ++n;

        // The record dies with its ROB entry; the store drain below
        // commit works entirely from the SQ entry's cached fields.
        const bool is_halt = inst.uop.isHalt();
        const SeqNum seq = inst.seq;
        const std::uint32_t inst_pc = inst.pc;
        slab.free(h);

        if (is_halt) {
            haltedFlag = true;
            break;
        }

        // A committed context-switch marker hands the core to the
        // next protection domain; commit stops for this cycle (the
        // squash empties the ROB anyway).
        if (!switchAt.empty()) {
            auto sw = switchAt.find(inst_pc);
            if (sw != switchAt.end()) {
                performContextSwitch(seq, inst_pc, sw->second);
                break;
            }
        }
    }
}

void
Core::drainStores()
{
    while (memPortsUsed < cfg.memPorts) {
        SqEntry *entry = lsu.drainableStore();
        if (!entry)
            break;
        MemAccessResult res =
            mem.access(entry->addr, entry->pc, cycle, true);
        if (!res.accepted)
            break;
        workingMem.write(entry->addr, entry->data);
        lsu.popDrainedStore();
        ++memPortsUsed;
        ++st.storeDrains;
    }
}

// ---------------------------------------------------------------------
// Writeback: wakeup events and completion events
// ---------------------------------------------------------------------

void
Core::writebackPhase()
{
    wakeups.drainDue(cycle, [this](WakeupEvent &ev) {
        // Stale epoch: the register was re-allocated, so the producer
        // that scheduled this broadcast was squashed.
        if (pregEpoch[ev.preg] != ev.epoch)
            return;
        wakeupDone[ev.preg] = 1;
        iq.wakeup(ev.preg);
    });

    completions.drainDue(cycle, [this](CompletionEvent &ev) {
        DynInst *inst = slab.tryGet(ev.inst);
        if (!inst)
            return; // Squashed (record freed) before completion.
        inst->completed = true;
        trace("complete", *inst);
        if (inst->isLoad()) {
            const bool still_spec = shadows.isSpeculative(inst->seq);
            inst->specAtComplete = still_spec;
            secMonitor.onLoadData(*inst, still_spec);
            if (cshadow.on())
                cshadow.onLoadData(*inst, still_spec);
            regVal[inst->pdst] = inst->result;
            const Cycle ready =
                speculativeSchedulingEnabled() ? cycle : cycle + 1;
            if (!schemePtr->deferBroadcast(ev.inst, *inst, ready)) {
                applyWakeup(inst->pdst, ready);
            } else {
                ++st.deferredBroadcasts;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Execute (instructions selected last cycle)
// ---------------------------------------------------------------------

void
Core::executePhase()
{
    // Oldest first so an older mispredict squashes younger work
    // before it takes effect. Handles may already be stale here: a
    // context-switch marker committing this cycle squashes every
    // in-flight younger instruction during the commit phase, so the
    // comparator must revalidate (stale entries order last); the loop
    // below revalidates again per element because an older branch may
    // squash the rest of the list mid-phase.
    constexpr std::uint64_t staleSeq = ~std::uint64_t(0);
    std::sort(execNow.begin(), execNow.end(),
              [this](InstHandle a, InstHandle b) {
                  const DynInst *ia = slab.tryGet(a);
                  const DynInst *ib = slab.tryGet(b);
                  return (ia ? ia->seq : staleSeq)
                         < (ib ? ib->seq : staleSeq);
              });
    for (InstHandle h : execNow) {
        DynInst *instp = slab.tryGet(h);
        if (!instp)
            continue; // Squashed by an older branch this phase.
        DynInst &inst = *instp;
        trace("execute", inst);
        if (inst.isBranch()) {
            executeBranch(inst);
        } else if (inst.isLoad()) {
            executeLoadAddr(h, inst);
        } else if (inst.isStore()) {
            // A store may have both halves scheduled this cycle.
            if (inst.addrIssued && !inst.effAddrValid)
                executeStoreAddr(inst);
            if (inst.dataIssued && !inst.storeDataDone)
                executeStoreData(inst);
        } else {
            sb_panic("unexpected op in execute: ",
                     inst.uop.disassemble());
        }
    }
}

void
Core::executeBranch(DynInst &inst)
{
    const Word s1 = inst.uop.hasSrc1() ? regVal[inst.psrc1] : 0;
    const Word s2 = inst.uop.hasSrc2() ? regVal[inst.psrc2] : 0;
    inst.src1Val = s1;
    inst.src2Val = s2;
    secMonitor.onConsume(inst, shadows.visibilityPoint(), true, true,
                         true);
    if (cshadow.on()) {
        cshadow.onConsume(inst, cycle, shadows.visibilityPoint(), true,
                          true, true);
    }

    inst.actualTaken = evalBranch(inst.uop, s1, s2);
    inst.resolved = true;
    inst.completed = true;

    // An indirect jump's destination is its operand value; direct
    // branches take the static target or fall through. JmpRegRet is
    // fetched as a fall-through (predTaken false, no BTB lookup), so
    // its generic predicted_next is pc + 1: the capture pad.
    const std::uint32_t correct_next =
        inst.uop.isIndirect()
            ? static_cast<std::uint32_t>(s1)
            : (inst.actualTaken ? inst.uop.target : inst.pc + 1);
    const std::uint32_t predicted_next =
        inst.uop.op == Op::JmpReg
            ? inst.predTarget
            : (inst.predTaken ? inst.uop.target : inst.pc + 1);
    inst.actualTarget = correct_next;
    if (correct_next != predicted_next) {
        inst.mispredicted = true;
        ++st.branchMispredicts;
        trace("mispredict", inst);
        squash(inst.seq, correct_next);
        if (inst.uop.op != Op::Jmp && !inst.uop.isIndirect()) {
            ghist = (inst.histSnapshot << 1)
                    | (inst.actualTaken ? 1u : 0u);
        }
    }
}

void
Core::executeLoadAddr(InstHandle h, DynInst &inst)
{
    inst.src1Val = regVal[inst.psrc1];
    inst.effAddr = inst.src1Val + static_cast<Word>(inst.uop.imm);
    inst.effAddrValid = true;
    secMonitor.onConsume(inst, shadows.visibilityPoint(), true, false,
                         true);
    if (cshadow.on()) {
        cshadow.onConsume(inst, cycle, shadows.visibilityPoint(), true,
                          false, true);
    }
    loadMemoryStage(h, inst);
}

void
Core::loadMemoryStage(InstHandle h, DynInst &inst)
{
    const ForwardOutcome fwd = lsu.checkForwarding(inst);
    if (fwd.kind == ForwardOutcome::Kind::StallData) {
        // Sleep until the matching store's data half executes (the
        // waiter list lives on that store's SQ entry).
        ++st.forwardStalls;
        lsu.addForwardWaiter(fwd.source, h);
        return;
    }
    if (fwd.bypassedUnknown) {
        inst.bypassedUnknownStore = true;
        ++st.disambiguationBypasses;
    }
    if (fwd.kind == ForwardOutcome::Kind::Forward) {
        inst.forwarded = true;
        inst.l1Hit = true;
        ++st.loadForwards;
        finishLoad(h, inst, cycle + cfg.l1d.latency, fwd.data,
                   fwd.source);
        return;
    }
    // Delay-on-Miss interposition: the scheme may park the demand
    // access instead of launching it (it probes L1 residency itself;
    // store forwarding above is in-core and never delayed). The
    // memory port charged at select is wasted, like an issue kill.
    if (schemePtr->delayLoadMiss(h, inst)) {
        ++st.schemeMissDelays;
        trace("delay-miss", inst);
        return;
    }
    MemAccessResult res = mem.access(inst.effAddr, inst.pc, cycle,
                                     false);
    if (!res.accepted) {
        ++st.mshrRetries;
        retryLoads.push_back(h);
        return;
    }
    inst.l1Hit = res.l1Hit;
    if (!res.l1Hit)
        ++st.loadL1Misses;
    Word value;
    if (!lsu.functionalBypass(inst, value))
        value = workingMem.read(inst.effAddr);
    finishLoad(h, inst, res.completeAt, value, invalidSeqNum);
}

void
Core::finishLoad(InstHandle h, DynInst &inst, Cycle complete_at,
                 Word value, SeqNum forward_source)
{
    if (inv.on())
        inv.onForward(inst, forward_source);
    if (cshadow.on())
        cshadow.onLoadValue(inst, forward_source);
    inst.result = value;
    inst.completeAt = complete_at;
    lsu.loadDataReturned(inst, forward_source);
    completions.push(complete_at, cycle, CompletionEvent{h});
}

void
Core::executeStoreAddr(DynInst &inst)
{
    inst.src1Val = regVal[inst.psrc1];
    inst.effAddr = inst.src1Val + static_cast<Word>(inst.uop.imm);
    inst.effAddrValid = true;
    // Publish the address to the SQ entry before anything can scan it.
    lsu.storeAddrReady(inst);
    secMonitor.onConsume(inst, shadows.visibilityPoint(), true, false,
                         true);
    if (cshadow.on()) {
        cshadow.onConsume(inst, cycle, shadows.visibilityPoint(), true,
                          false, true);
    }

    if (const LqEntry *victim = lsu.checkViolation(inst)) {
        // Memory-order violation (store-to-load forwarding error,
        // paper Sec. 9.2): flush from the load and refetch it. The
        // squash frees the victim's record and pops its LQ entry, so
        // everything needed afterwards is copied out first.
        const SeqNum victim_seq = victim->seq;
        const std::uint32_t victim_pc = victim->pc;
        ++st.memOrderViolations;
        trace("violation", slab.get(victim->handle));
        squash(victim_seq - 1, victim_pc);
    }
    if (inst.storeDataDone)
        inst.completed = true;
}

void
Core::executeStoreData(DynInst &inst)
{
    inst.src2Val = regVal[inst.psrc2];
    inst.storeDataDone = true;
    secMonitor.onConsume(inst, shadows.visibilityPoint(), false, true,
                         false);
    if (cshadow.on()) {
        cshadow.onConsume(inst, cycle, shadows.visibilityPoint(), false,
                          true, false);
        cshadow.onStoreData(inst);
    }
    wokenScratch.clear();
    lsu.storeDataReady(inst, inst.src2Val, wokenScratch);
    if (inst.effAddrValid)
        inst.completed = true;
    // Wake loads that stalled on this store's data.
    for (InstHandle waiter : wokenScratch) {
        if (slab.alive(waiter))
            retryLoads.push_back(waiter);
    }
}

// ---------------------------------------------------------------------
// Shadow tracking
// ---------------------------------------------------------------------

void
Core::shadowPhase()
{
    safeScratch.clear();
    shadows.update(lastRenamedSeq + 1, safeScratch);
    // Schemes observe the visibility point directly (and drain their
    // own pending queues in tick()); the monitor needs no callback.
    st.loadsBecameSafe += safeScratch.size();
}

// ---------------------------------------------------------------------
// Select / issue
// ---------------------------------------------------------------------

void
Core::selectPhase()
{
    // Retry loads stalled on MSHRs or forwarding data first: they
    // already own an issue, only the memory port is re-arbitrated.
    std::size_t retries = retryLoads.size();
    while (retries-- > 0 && !retryLoads.empty()
           && memPortsUsed < cfg.memPorts) {
        const InstHandle h = retryLoads.front();
        retryLoads.pop_front();
        DynInst *load = slab.tryGet(h);
        if (!load)
            continue; // Squashed while parked.
        ++memPortsUsed;
        loadMemoryStage(h, *load);
    }

    unsigned slots = cfg.issueWidth;
    unsigned fp_slots = cfg.fpPorts;
    std::vector<InstHandle> &fully_issued = issuedScratch;
    fully_issued.clear();

    // Every IQ entry references a live record: squashes sweep the
    // queue synchronously. The scan walks the queue's candidate list
    // (entries with a ready, unissued half) in age order instead of
    // the whole queue — entries it no longer visits are exactly the
    // ones the full scan skipped without side effects. Issued entries
    // are batched in fully_issued and removed after the scan, and no
    // same-cycle wakeup fires from inside it (every execution latency
    // is at least one cycle), so the links cannot move underneath it.
    for (std::int32_t idx = iq.firstReady(); idx >= 0;
         idx = iq.nextReady(idx)) {
        IqEntry *entry = &iq.entryAt(idx);
        if (slots == 0)
            break;

        if (entry->isStore) {
            DynInst &inst = slab.get(entry->handle);
            bool addr_ready = entry->src1Ready && !inst.addrIssued;
            bool data_ready = entry->src2Ready && !inst.dataIssued;
            if (addr_ready && schemePtr->selectVeto(inst, true)) {
                addr_ready = false;
                ++st.schemeSelectBlocks;
                trace("block-addr", inst);
            }
            if (data_ready && schemePtr->selectVeto(inst, false)) {
                data_ready = false;
                ++st.schemeSelectBlocks;
                trace("block-data", inst);
            }
            if (addr_ready && memPortsUsed >= cfg.memPorts)
                addr_ready = false;
            if (!addr_ready && !data_ready)
                continue;

            --slots;
            if (inv.on()) {
                inv.onIssue(inst,
                            !addr_ready || wakeupDone[inst.psrc1],
                            !data_ready || wakeupDone[inst.psrc2]);
            }
            bool killed = false;
            bool scheduled = false;
            if (addr_ready) {
                ++memPortsUsed;
                if (schemePtr->onSelect(inst, true)) {
                    inst.addrIssued = true;
                    scheduled = true;
                    trace("issue-addr", inst);
                } else {
                    trace("kill", inst);
                    // Taint unit killed the issue: the slot and the
                    // memory port are wasted this cycle (Fig. 4).
                    killed = true;
                    ++st.schemeIssueKills;
                }
            }
            if (data_ready && !killed) {
                if (schemePtr->onSelect(inst, false)) {
                    inst.dataIssued = true;
                    scheduled = true;
                    trace("issue-data", inst);
                } else {
                    trace("kill", inst);
                    ++st.schemeIssueKills;
                }
            }
            if (scheduled)
                execNext.push_back(entry->handle);
            if (inst.addrIssued && inst.dataIssued)
                fully_issued.push_back(entry->handle);
            continue;
        }

        // Non-store instructions.
        if (!entry->ready())
            continue;
        DynInst &inst = slab.get(entry->handle);
        const OpClass cls = inst.uop.opClass();
        if (schemePtr->selectVeto(inst, inst.isLoad())) {
            ++st.schemeSelectBlocks;
            trace("block", inst);
            continue;
        }
        if (cls == OpClass::MemRead && memPortsUsed >= cfg.memPorts)
            continue;
        if (cls == OpClass::IntDiv && divBusyUntil > cycle)
            continue;
        if (cls == OpClass::FpDiv && fdivBusyUntil > cycle)
            continue;
        const bool is_fp = cls == OpClass::FpAlu || cls == OpClass::FpMul
                           || cls == OpClass::FpDiv;
        if (is_fp && fp_slots == 0)
            continue;

        --slots;
        if (inv.on()) {
            inv.onIssue(inst,
                        !inst.uop.hasSrc1() || wakeupDone[inst.psrc1],
                        !inst.uop.hasSrc2() || wakeupDone[inst.psrc2]);
        }
        if (is_fp)
            --fp_slots;
        if (cls == OpClass::MemRead)
            ++memPortsUsed;
        if (!schemePtr->onSelect(inst, inst.isLoad())) {
            ++st.schemeIssueKills;
            trace("kill", inst);
            continue; // Entry stays; ready is masked by the scheme.
        }
        trace("issue", inst);
        if (cls == OpClass::IntDiv)
            divBusyUntil = cycle + cfg.divLatency;
        if (cls == OpClass::FpDiv)
            fdivBusyUntil = cycle + cfg.fpDivLatency;

        inst.addrIssued = true;
        if (inst.isLoad() || inst.isBranch()) {
            execNext.push_back(entry->handle);
        } else {
            executeAluAtSelect(entry->handle, inst);
        }
        fully_issued.push_back(entry->handle);
    }

    for (InstHandle h : fully_issued)
        iq.remove(slab.get(h));
}

void
Core::executeAluAtSelect(InstHandle h, DynInst &inst)
{
    const Word s1 = inst.uop.hasSrc1() ? regVal[inst.psrc1] : 0;
    const Word s2 = inst.uop.hasSrc2() ? regVal[inst.psrc2] : 0;
    inst.src1Val = s1;
    inst.src2Val = s2;
    secMonitor.onConsume(inst, shadows.visibilityPoint(), true, true,
                         false);
    if (cshadow.on()) {
        cshadow.onConsume(inst, cycle, shadows.visibilityPoint(), true,
                          true, false);
    }
    inst.result = evalAlu(inst.uop, s1, s2);
    inst.executed = true;
    if (inst.pdst != invalidPhysReg)
        regVal[inst.pdst] = inst.result;

    const unsigned lat = opLatency(inst.uop.opClass());
    completions.push(cycle + lat, cycle, CompletionEvent{h});
    if (inst.pdst != invalidPhysReg) {
        if (!schemePtr->deferBroadcast(h, inst, cycle + lat)) {
            applyWakeup(inst.pdst, cycle + lat);
        } else {
            ++st.deferredBroadcasts;
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch and rename
// ---------------------------------------------------------------------

void
Core::dispatchPhase()
{
    unsigned n = 0;
    while (n < cfg.coreWidth && !dispatchQueue.empty()) {
        const InstHandle h = dispatchQueue.front();
        if (iq.full()) {
            ++st.iqFullStalls;
            break;
        }
        DynInst &inst = slab.get(h);
        const bool s1 = !inst.uop.hasSrc1() || wakeupDone[inst.psrc1];
        const bool s2 = !inst.uop.hasSrc2() || wakeupDone[inst.psrc2];
        iq.insert(h, inst, s1, s2);
        dispatchQueue.pop_front();
        ++n;
    }
}

void
Core::renamePhase()
{
    std::vector<DynInst *> &group = renameScratch;
    group.clear();
    unsigned n = 0;
    while (n < cfg.coreWidth && !decodeQueue.empty()) {
        DecodeSlot &slot = decodeQueue.front();
        if (slot.readyAt > cycle)
            break;
        const InstHandle h = slot.inst;
        DynInst &inst = slab.get(h);

        if (rob.size() >= cfg.robEntries) {
            ++st.robFullStalls;
            break;
        }
        if (dispatchQueue.size() >= 2 * cfg.coreWidth)
            break;
        if (inst.uop.hasDst() && renameMap.freeCount() == 0) {
            ++st.freelistStalls;
            break;
        }
        if (inst.isBranch() && branchesInFlight >= cfg.maxBranches) {
            ++st.branchCapStalls;
            break;
        }
        if (inst.isLoad() && lsu.lqFull()) {
            ++st.lsuFullStalls;
            break;
        }
        if (inst.isStore() && lsu.sqFull()) {
            ++st.lsuFullStalls;
            break;
        }
        if (inst.uop.op == Op::Fence && !rob.empty()) {
            // Speculation barrier: serialize at rename until every
            // older instruction has committed. Older in-flight
            // instructions are already renamed (rename is in-order),
            // so they drain independently; a wrong-path fence is
            // removed by the squash of its shadowing branch.
            ++st.fenceStalls;
            break;
        }

        if (inst.uop.hasSrc1())
            inst.psrc1 = renameMap.lookup(inst.uop.src1);
        if (inst.uop.hasSrc2())
            inst.psrc2 = renameMap.lookup(inst.uop.src2);
        if (inst.uop.hasDst()) {
            inst.pdst = renameMap.allocate(inst.uop.dst,
                                           inst.stalePdst);
            wakeupDone[inst.pdst] = 0;
            // New allocation epoch: any wakeup still queued for this
            // register (from a squashed former owner) is now stale.
            ++pregEpoch[inst.pdst];
            secMonitor.onAllocate(inst.pdst);
            if (cshadow.on())
                cshadow.onAllocate(inst.pdst);
        }
        inst.renamed = true;
        lastRenamedSeq = inst.seq;
        trace("rename", inst);

        rob.push_back(h);
        if (inst.isLoad())
            lsu.allocateLoad(h, inst);
        if (inst.isStore())
            lsu.allocateStore(h, inst);
        shadows.onRename(h, inst);
        if (inst.isBranch())
            ++branchesInFlight;

        if (inst.uop.op == Op::Nop || inst.uop.op == Op::Fence
            || inst.uop.isHalt()) {
            // A fence that reaches this point renamed into an empty
            // ROB; it completes immediately, like a Nop.
            inst.completed = true;
        } else {
            dispatchQueue.push_back(h);
        }
        group.push_back(&inst);
        decodeQueue.pop_front();
        ++n;
    }
    if (!group.empty())
        schemePtr->onRenameGroup(group);
}

void
Core::decodePhase()
{
    unsigned n = 0;
    const std::size_t cap = 4 * cfg.coreWidth;
    while (n < cfg.coreWidth && !fetchQueue.empty()
           && decodeQueue.size() < cap) {
        DecodeSlot slot;
        slot.inst = fetchQueue.front();
        slot.readyAt = cycle + 1 + frontendExtraDelay;
        decodeQueue.push_back(slot);
        fetchQueue.pop_front();
        ++n;
    }
}

void
Core::fetchPhase()
{
    if (haltedFlag || fetchHalted || cycle < fetchStallUntil)
        return;
    unsigned n = 0;
    while (n < cfg.fetchWidth
           && fetchQueue.size() < cfg.fetchBufferEntries) {
        if (pc >= program->code.size()) {
            // Wrong-path runoff past the program end: wait for the
            // inevitable squash.
            fetchHalted = true;
            break;
        }
        // The decode cache hands back a prebuilt template (identity
        // fields and static prediction bits preset); stamping it into
        // the freshly allocated slot is also the slot's reset.
        const DecodedOp &d = dcache.lookup(pc);
        const InstHandle h = slab.alloc();
        DynInst &inst = slab.get(h);
        inst = d.tmpl;
        inst.seq = nextSeq++;
        inst.tenant = currentTenant;

        if (d.kind == FetchKind::JmpReg) {
            // Always taken; the BTB supplies the target. An untrained
            // entry predicts fall-through, so laying the preferred
            // target right after the jr makes a cold BTB harmless.
            inst.predTarget = btb.predict(pc);
            fetchQueue.push_back(h);
            ++n;
            pc = inst.predTarget;
            break; // Redirect: resume at the target next cycle.
        }
        if (d.kind == FetchKind::Jmp) {
            fetchQueue.push_back(h);
            ++n;
            pc = inst.uop.target;
            break; // Redirect: resume at the target next cycle.
        }
        if (d.kind == FetchKind::CondBranch) {
            inst.histSnapshot = ghist;
            inst.predTaken = predictor.predict(pc, ghist);
            ghist = (ghist << 1) | (inst.predTaken ? 1u : 0u);
            fetchQueue.push_back(h);
            ++n;
            if (inst.predTaken) {
                pc = inst.uop.target;
                break; // Redirect: resume at the target next cycle.
            }
            ++pc;
            continue;
        }
        if (d.kind == FetchKind::Halt) {
            fetchQueue.push_back(h);
            fetchHalted = true;
            break;
        }
        fetchQueue.push_back(h);
        ++pc;
        ++n;
    }
}

// ---------------------------------------------------------------------
// Squash
// ---------------------------------------------------------------------

void
Core::squash(SeqNum from_seq, std::uint32_t new_pc)
{
    std::uint64_t count = 0;

    // Front-end queues hold the only reference to their records:
    // free directly.
    for (InstHandle h : fetchQueue) {
        slab.free(h);
        ++count;
    }
    fetchQueue.clear();
    for (const DecodeSlot &slot : decodeQueue) {
        slab.free(slot.inst);
        ++count;
    }
    decodeQueue.clear();
    // Dispatch-queue instructions are renamed, so they also sit in
    // the ROB: count them here (matching the engine's historical
    // squash accounting) but leave the free to the ROB walk.
    for (InstHandle h : dispatchQueue) {
        sb_assert(slab.get(h).seq > from_seq,
                  "dispatch queue squash overlap");
        ++count;
    }
    dispatchQueue.clear();

    std::uint64_t ghist_restore = ghist;
    while (!rob.empty()) {
        const InstHandle h = rob.back();
        DynInst &inst = slab.get(h);
        if (inst.seq <= from_seq)
            break;
        inst.squashed = true;
        schemePtr->onSquashWalk(inst);
        if (inst.pdst != invalidPhysReg) {
            renameMap.unwind(inst.uop.dst, inst.pdst,
                             inst.stalePdst);
        }
        if (inst.isBranch()) {
            sb_assert(branchesInFlight > 0, "branch count underflow");
            --branchesInFlight;
            if (inst.uop.op != Op::Jmp && !inst.uop.isIndirect())
                ghist_restore = inst.histSnapshot;
        }
        rob.pop_back();
        slab.free(h); // Every handle to this instruction is now stale.
        ++count;
    }
    lsu.squash(from_seq);
    iq.squash(from_seq);
    if (cshadow.on())
        cshadow.onSquash(from_seq);
    schemePtr->onSquash(from_seq);

    // Every sequence number below nextSeq is now renamed, committed,
    // or squashed, so the visibility-point cap may advance to the
    // next instruction to be fetched (monotonicity is preserved
    // because nextSeq only grows).
    lastRenamedSeq = nextSeq - 1;

    ghist = ghist_restore;
    pc = new_pc;
    fetchStallUntil = cycle + 1;
    fetchHalted = false;
    st.squashedInsts += count;
    ++st.squashes;
}

// ---------------------------------------------------------------------
// Context switch (protection domains)
// ---------------------------------------------------------------------

void
Core::performContextSwitch(SeqNum marker_seq, std::uint32_t marker_pc,
                           TenantId to)
{
    // Kill every in-flight instruction younger than the committed
    // marker. The walk-back restores the committed RAT, so the
    // renameMap lookups below read architectural state.
    squash(marker_seq, marker_pc + 1);

    // Bank out the outgoing tenant's architectural registers (and
    // their shadow labels, so taint does not bleed across domains
    // through physical-register reuse).
    TenantCtx &out = tenantCtxs[currentTenant];
    out.archRegs.assign(numArchRegs, 0);
    out.archLabels.assign(numArchRegs, ContractShadow::Label{});
    for (unsigned r = 0; r < numArchRegs; ++r) {
        const PhysReg p = renameMap.lookup(static_cast<ArchReg>(r));
        out.archRegs[r] = regVal[p];
        if (cshadow.on())
            out.archLabels[r] = cshadow.regLabel(p);
    }
    out.resumePc = marker_pc + 1;
    out.started = true;

    // Bank in the incoming tenant. A tenant never scheduled before
    // starts at its recorded entry point with zeroed registers:
    // domain setup is the tenant's own architectural code.
    TenantCtx &in = tenantCtxs[to];
    std::uint32_t resume;
    if (in.started) {
        for (unsigned r = 0; r < numArchRegs; ++r) {
            const PhysReg p =
                renameMap.lookup(static_cast<ArchReg>(r));
            regVal[p] = in.archRegs[r];
            if (cshadow.on())
                cshadow.setRegLabel(p, in.archLabels[r]);
        }
        resume = in.resumePc;
    } else {
        for (unsigned r = 0; r < numArchRegs; ++r) {
            const PhysReg p =
                renameMap.lookup(static_cast<ArchReg>(r));
            regVal[p] = 0;
            if (cshadow.on())
                cshadow.setRegLabel(p, ContractShadow::Label{});
        }
        auto e = tenantEntry.find(to);
        resume = e != tenantEntry.end() ? e->second : marker_pc + 1;
    }
    currentTenant = to;

    // Predictor hygiene policy: flush models hardware with
    // cross-domain prediction isolation; keep models shared predictor
    // state — the Spectre v2 / swapgs training channel.
    if (cfg.flushPredictorsOnSwitch) {
        predictor.flushSpeculativeState();
        btb.flush();
        ghist = 0;
    }

    pc = resume;
    fetchHalted = false;
    // The squash charged its one-cycle redirect; the switch charges
    // the full pipeline-refill + state-swap cost on top.
    fetchStallUntil = cycle + cfg.contextSwitchPenalty;
    ++switchCount;
    ++st.contextSwitches;
}

} // namespace sb
