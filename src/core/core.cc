#include "core/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/signals.hh"

namespace sb
{

Core::Core(const CoreConfig &config, const SchemeConfig &scheme_config,
           std::unique_ptr<SecureScheme> scheme, const Program &prog)
    : cfg(config),
      schemeCfg(scheme_config),
      schemePtr(scheme ? std::move(scheme)
                       : std::make_unique<SecureScheme>()),
      program(&prog),
      mem(config),
      predictor(10),
      renameMap(numArchRegs, config.numPhysRegs),
      secMonitor(config.numPhysRegs),
      workingMem(prog.memory),
      regVal(config.numPhysRegs, 0),
      wakeupDone(config.numPhysRegs, 1),
      iq(config.iqEntries),
      lsu(config.ldqEntries, config.stqEntries),
      completions(eventHorizon()),
      wakeups(eventHorizon()),
      pc(prog.entry),
      statGroup("core"),
      st(statGroup)
{
    sb_assert(cfg.coreWidth >= 1 && cfg.issueWidth >= 1
                  && cfg.memPorts >= 1,
              "core widths must be positive");
    frontendExtraDelay =
        cfg.frontendStages > 5 ? cfg.frontendStages - 5 : 0;
    schemePtr->attach(*this);
}

unsigned
Core::eventHorizon() const
{
    // Longest completion delay: an L2+DRAM round trip observed
    // through a hit-under-miss L1 probe, plus the slowest functional
    // unit. Wakeups ride at most one cycle behind completions, and
    // anything a scheme schedules further out spills into the
    // wheel's overflow lane, so this only has to bound the common
    // case.
    unsigned fu = cfg.aluLatency;
    for (unsigned lat : {cfg.mulLatency, cfg.divLatency, cfg.fpLatency,
                         cfg.fpDivLatency, cfg.branchResolveLatency})
        fu = std::max(fu, lat);
    return 2 * cfg.l1d.latency + 2 * cfg.l2.latency + cfg.memLatency
           + fu + 8;
}

unsigned
Core::opLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::Nop:
      case OpClass::IntAlu:
        return cfg.aluLatency;
      case OpClass::IntMul:
        return cfg.mulLatency;
      case OpClass::IntDiv:
        return cfg.divLatency;
      case OpClass::FpAlu:
      case OpClass::FpMul:
        return cfg.fpLatency;
      case OpClass::FpDiv:
        return cfg.fpDivLatency;
      case OpClass::Branch:
        return cfg.branchResolveLatency;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return 1; // Address generation; memory adds its own latency.
    }
    sb_panic("unknown op class");
}

bool
Core::speculativeSchedulingEnabled() const
{
    return cfg.speculativeScheduling
           && schemePtr->allowsSpeculativeScheduling();
}

Word
Core::readArchReg(ArchReg reg) const
{
    return regVal[renameMap.lookup(reg)];
}

void
Core::scheduleWakeup(PhysReg preg, Cycle at, const DynInstPtr &producer)
{
    applyWakeup(preg, at, producer);
}

void
Core::applyWakeup(PhysReg preg, Cycle at, const DynInstPtr &producer)
{
    if (at <= cycle) {
        if (!producer || !producer->squashed) {
            wakeupDone[preg] = 1;
            iq.wakeup(preg);
        }
        return;
    }
    wakeups.push(at, cycle, WakeupEvent{preg, producer});
}

RunResult
Core::run(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    const std::uint64_t target = committedCount + max_insts;
    const Cycle limit = cycle + max_cycles;
    // Wall-clock supervision is sampled every 4096 cycles: cheap
    // enough to vanish in the run loop, frequent enough that a wedged
    // or interrupted cell ends within milliseconds of its deadline.
    const bool supervised = wallDeadlineArmed || interruptibleFlag;
    unsigned untilCheck = 4096;
    while (!haltedFlag && !watchdogTrippedFlag && committedCount < target
           && cycle < limit) {
        tick();
        if (supervised && --untilCheck == 0) {
            untilCheck = 4096;
            if (wallStopRequested())
                watchdogTrippedFlag = true;
        }
    }
    // After a halt, keep ticking until committed stores have drained
    // to memory, so the functional image reflects all committed work.
    while (haltedFlag && lsu.sqSize() > 0 && cycle < limit)
        tick();
    RunResult r;
    r.cycles = cycle;
    r.instructions = committedCount;
    r.halted = haltedFlag;
    r.watchdogTripped = watchdogTrippedFlag;
    return r;
}

void
Core::setWallDeadline(double seconds)
{
    if (seconds <= 0) {
        wallDeadlineArmed = false;
        return;
    }
    wallDeadline = std::chrono::steady_clock::now()
                   + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
    wallDeadlineArmed = true;
}

bool
Core::wallStopRequested()
{
    if (interruptibleFlag && interruptRequested())
        return true;
    if (wallDeadlineArmed
        && std::chrono::steady_clock::now() >= wallDeadline) {
        wallDeadlineHitFlag = true;
        return true;
    }
    return false;
}

void
Core::tick()
{
    ++cycle;
    ++st.cycles;
    memPortsUsed = 0;
    shadows.latchPrev();

    commitPhase();
    writebackPhase();
    executePhase();
    shadowPhase();
    schemePtr->tick();
    selectPhase();
    dispatchPhase();
    renamePhase();
    decodePhase();
    fetchPhase();

    std::swap(execNow, execNext);
    execNext.clear();

    // Monotonicity of the *published* visibility point across ticks.
    // The tracker's own update() hard-asserts the per-step invariant
    // (and would abort before this observer sees it); this check
    // covers what that assert cannot — a reset() slipped into a live
    // run, or a future tracker rewrite publishing stale values.
    if (inv.on())
        inv.onVisibilityPoint(shadows.visibilityPoint());

    // Forward-progress watchdog: a stuck pipeline is a simulator bug.
    // In soft mode (fuzz harness) the run ends with a liveness flag
    // instead of aborting, so the failing seed can be reported.
    const Cycle stall_limit =
        softWatchdogCycles ? softWatchdogCycles : 100000;
    if (!haltedFlag && !rob.empty()
        && cycle - lastCommitCycle > stall_limit) {
        if (softWatchdogCycles) {
            watchdogTrippedFlag = true;
            return;
        }
        const DynInstPtr &head = rob.front();
        sb_panic("no commit for 100000 cycles; head seq=", head->seq,
                 " pc=", head->pc, " op=", head->uop.disassemble(),
                 " completed=", head->completed,
                 " inIq=", head->inIq, " vp=",
                 shadows.visibilityPoint());
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
Core::commitPhase()
{
    drainStores();

    unsigned n = 0;
    while (n < cfg.coreWidth && !rob.empty()) {
        DynInstPtr inst = rob.front();
        if (!inst->completed)
            break;
        if (inv.on())
            inv.onCommit(*inst);

        if (inst->isStore())
            lsu.markStoreCommitted(*inst);
        if (inst->isLoad()) {
            lsu.releaseLoad(*inst);
            ++st.committedLoads;
            if (observing) {
                observations.push_back(LoadObservation{
                    inst->pc, cycle, inst->completeAt, inst->l1Hit});
            }
        }
        if (inst->isBranch()) {
            sb_assert(branchesInFlight > 0, "branch count underflow");
            --branchesInFlight;
            if (inst->uop.op == Op::JmpReg) {
                btb[inst->pc] = inst->actualTarget;
            } else if (inst->uop.op != Op::Jmp) {
                predictor.update(inst->pc, inst->histSnapshot,
                                 inst->actualTaken);
            }
            ++st.committedBranches;
        }
        if (inst->isStore())
            ++st.committedStores;
        if (inst->stalePdst != invalidPhysReg)
            renameMap.release(inst->stalePdst);

        inst->committed = true;
        ++committedCount;
        ++st.committedInsts;
        lastCommitCycle = cycle;
        if (commitHook)
            commitHook(*inst, cycle);

        rob.pop_front();
        ++n;

        if (inst->uop.isHalt()) {
            haltedFlag = true;
            break;
        }
    }
}

void
Core::drainStores()
{
    while (memPortsUsed < cfg.memPorts) {
        SqEntry *entry = lsu.drainableStore();
        if (!entry)
            break;
        const DynInstPtr &store = entry->inst;
        MemAccessResult res =
            mem.access(store->effAddr, store->pc, cycle, true);
        if (!res.accepted)
            break;
        workingMem.write(store->effAddr, entry->data);
        lsu.popDrainedStore();
        ++memPortsUsed;
        ++st.storeDrains;
    }
}

// ---------------------------------------------------------------------
// Writeback: wakeup events and completion events
// ---------------------------------------------------------------------

void
Core::writebackPhase()
{
    wakeups.drainDue(cycle, [this](WakeupEvent &ev) {
        if (ev.producer && ev.producer->squashed)
            return;
        wakeupDone[ev.preg] = 1;
        iq.wakeup(ev.preg);
    });

    completions.drainDue(cycle, [this](CompletionEvent &ev) {
        const DynInstPtr &inst = ev.inst;
        if (inst->squashed)
            return;
        inst->completed = true;
        trace("complete", *inst);
        if (inst->isLoad()) {
            const bool still_spec = shadows.isSpeculative(inst->seq);
            inst->specAtComplete = still_spec;
            secMonitor.onLoadData(*inst, still_spec);
            regVal[inst->pdst] = inst->result;
            const Cycle ready =
                speculativeSchedulingEnabled() ? cycle : cycle + 1;
            if (!schemePtr->deferBroadcast(inst, ready)) {
                applyWakeup(inst->pdst, ready, inst);
            } else {
                ++st.deferredBroadcasts;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Execute (instructions selected last cycle)
// ---------------------------------------------------------------------

void
Core::executePhase()
{
    // Oldest first so an older mispredict squashes younger work
    // before it takes effect.
    std::sort(execNow.begin(), execNow.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->seq < b->seq;
              });
    for (const DynInstPtr &inst : execNow) {
        if (inst->squashed)
            continue;
        trace("execute", *inst);
        if (inst->isBranch()) {
            executeBranch(inst);
        } else if (inst->isLoad()) {
            executeLoadAddr(inst);
        } else if (inst->isStore()) {
            // A store may have both halves scheduled this cycle.
            if (inst->addrIssued && !inst->effAddrValid)
                executeStoreAddr(inst);
            if (inst->dataIssued && !inst->storeDataDone)
                executeStoreData(inst);
        } else {
            sb_panic("unexpected op in execute: ",
                     inst->uop.disassemble());
        }
    }
}

void
Core::executeBranch(const DynInstPtr &inst)
{
    const Word s1 =
        inst->uop.hasSrc1() ? regVal[inst->psrc1] : 0;
    const Word s2 =
        inst->uop.hasSrc2() ? regVal[inst->psrc2] : 0;
    inst->src1Val = s1;
    inst->src2Val = s2;
    secMonitor.onConsume(*inst, shadows.visibilityPoint(), true, true,
                         true);

    inst->actualTaken = evalBranch(inst->uop, s1, s2);
    inst->resolved = true;
    inst->completed = true;

    // An indirect jump's destination is its operand value; direct
    // branches take the static target or fall through.
    const std::uint32_t correct_next =
        inst->uop.op == Op::JmpReg
            ? static_cast<std::uint32_t>(s1)
            : (inst->actualTaken ? inst->uop.target : inst->pc + 1);
    const std::uint32_t predicted_next =
        inst->uop.op == Op::JmpReg
            ? inst->predTarget
            : (inst->predTaken ? inst->uop.target : inst->pc + 1);
    inst->actualTarget = correct_next;
    if (correct_next != predicted_next) {
        inst->mispredicted = true;
        ++st.branchMispredicts;
        trace("mispredict", *inst);
        squash(inst->seq, correct_next);
        if (inst->uop.op != Op::Jmp && inst->uop.op != Op::JmpReg) {
            ghist = (inst->histSnapshot << 1)
                    | (inst->actualTaken ? 1u : 0u);
        }
    }
}

void
Core::executeLoadAddr(const DynInstPtr &inst)
{
    inst->src1Val = regVal[inst->psrc1];
    inst->effAddr =
        inst->src1Val + static_cast<Word>(inst->uop.imm);
    inst->effAddrValid = true;
    secMonitor.onConsume(*inst, shadows.visibilityPoint(), true, false,
                         true);
    loadMemoryStage(inst);
}

void
Core::loadMemoryStage(const DynInstPtr &inst)
{
    const ForwardOutcome fwd = lsu.checkForwarding(*inst);
    if (fwd.kind == ForwardOutcome::Kind::StallData) {
        // Sleep until the matching store's data half executes.
        ++st.forwardStalls;
        forwardWaiters[fwd.source].push_back(inst);
        return;
    }
    if (fwd.bypassedUnknown) {
        inst->bypassedUnknownStore = true;
        ++st.disambiguationBypasses;
    }
    if (fwd.kind == ForwardOutcome::Kind::Forward) {
        inst->forwarded = true;
        inst->l1Hit = true;
        ++st.loadForwards;
        finishLoad(inst, cycle + cfg.l1d.latency, fwd.data, fwd.source);
        return;
    }
    // Delay-on-Miss interposition: the scheme may park the demand
    // access instead of launching it (it probes L1 residency itself;
    // store forwarding above is in-core and never delayed). The
    // memory port charged at select is wasted, like an issue kill.
    if (schemePtr->delayLoadMiss(inst)) {
        ++st.schemeMissDelays;
        trace("delay-miss", *inst);
        return;
    }
    MemAccessResult res = mem.access(inst->effAddr, inst->pc, cycle,
                                     false);
    if (!res.accepted) {
        ++st.mshrRetries;
        retryLoads.push_back(inst);
        return;
    }
    inst->l1Hit = res.l1Hit;
    if (!res.l1Hit)
        ++st.loadL1Misses;
    Word value;
    if (!lsu.functionalBypass(*inst, value))
        value = workingMem.read(inst->effAddr);
    finishLoad(inst, res.completeAt, value, invalidSeqNum);
}

void
Core::finishLoad(const DynInstPtr &inst, Cycle complete_at, Word value,
                 SeqNum forward_source)
{
    if (inv.on())
        inv.onForward(*inst, forward_source);
    inst->result = value;
    inst->completeAt = complete_at;
    lsu.loadDataReturned(*inst, forward_source);
    completions.push(complete_at, cycle, CompletionEvent{inst});
}

void
Core::executeStoreAddr(const DynInstPtr &inst)
{
    inst->src1Val = regVal[inst->psrc1];
    inst->effAddr =
        inst->src1Val + static_cast<Word>(inst->uop.imm);
    inst->effAddrValid = true;
    secMonitor.onConsume(*inst, shadows.visibilityPoint(), true, false,
                         true);

    if (DynInstPtr victim = lsu.checkViolation(*inst)) {
        // Memory-order violation (store-to-load forwarding error,
        // paper Sec. 9.2): flush from the load and refetch it.
        ++st.memOrderViolations;
        trace("violation", *victim);
        squash(victim->seq - 1, victim->pc);
    }
    if (inst->storeDataDone)
        inst->completed = true;
}

void
Core::executeStoreData(const DynInstPtr &inst)
{
    inst->src2Val = regVal[inst->psrc2];
    inst->storeDataDone = true;
    secMonitor.onConsume(*inst, shadows.visibilityPoint(), false, true,
                         false);
    lsu.storeDataReady(*inst, inst->src2Val);
    if (inst->effAddrValid)
        inst->completed = true;
    // Wake loads that stalled on this store's data.
    auto waiters = forwardWaiters.find(inst->seq);
    if (waiters != forwardWaiters.end()) {
        for (auto &load : waiters->second) {
            if (!load->squashed)
                retryLoads.push_back(load);
        }
        forwardWaiters.erase(waiters);
    }
}

// ---------------------------------------------------------------------
// Shadow tracking
// ---------------------------------------------------------------------

void
Core::shadowPhase()
{
    safeScratch.clear();
    shadows.update(lastRenamedSeq + 1, safeScratch);
    // Schemes observe the visibility point directly (and drain their
    // own pending queues in tick()); the monitor needs no callback.
    st.loadsBecameSafe += safeScratch.size();
}

// ---------------------------------------------------------------------
// Select / issue
// ---------------------------------------------------------------------

void
Core::selectPhase()
{
    // Retry loads stalled on MSHRs or forwarding data first: they
    // already own an issue, only the memory port is re-arbitrated.
    std::size_t retries = retryLoads.size();
    while (retries-- > 0 && !retryLoads.empty()
           && memPortsUsed < cfg.memPorts) {
        DynInstPtr load = retryLoads.front();
        retryLoads.pop_front();
        if (load->squashed)
            continue;
        ++memPortsUsed;
        loadMemoryStage(load);
    }

    unsigned slots = cfg.issueWidth;
    unsigned fp_slots = cfg.fpPorts;
    std::vector<DynInstPtr> &fully_issued = issuedScratch;
    fully_issued.clear();

    for (IqEntry *entry : iq.inOrder()) {
        if (slots == 0)
            break;
        DynInstPtr inst = entry->inst;
        if (inst->squashed) {
            fully_issued.push_back(inst);
            continue;
        }

        if (inst->isStore()) {
            bool addr_ready = entry->src1Ready && !inst->addrIssued;
            bool data_ready = entry->src2Ready && !inst->dataIssued;
            if (addr_ready && schemePtr->selectVeto(*inst, true)) {
                addr_ready = false;
                ++st.schemeSelectBlocks;
                trace("block-addr", *inst);
            }
            if (data_ready && schemePtr->selectVeto(*inst, false)) {
                data_ready = false;
                ++st.schemeSelectBlocks;
                trace("block-data", *inst);
            }
            if (addr_ready && memPortsUsed >= cfg.memPorts)
                addr_ready = false;
            if (!addr_ready && !data_ready)
                continue;

            --slots;
            if (inv.on()) {
                inv.onIssue(*inst,
                            !addr_ready || wakeupDone[inst->psrc1],
                            !data_ready || wakeupDone[inst->psrc2]);
            }
            bool killed = false;
            bool scheduled = false;
            if (addr_ready) {
                ++memPortsUsed;
                if (schemePtr->onSelect(*inst, true)) {
                    inst->addrIssued = true;
                    scheduled = true;
                    trace("issue-addr", *inst);
                } else {
                    trace("kill", *inst);
                    // Taint unit killed the issue: the slot and the
                    // memory port are wasted this cycle (Fig. 4).
                    killed = true;
                    ++st.schemeIssueKills;
                }
            }
            if (data_ready && !killed) {
                if (schemePtr->onSelect(*inst, false)) {
                    inst->dataIssued = true;
                    scheduled = true;
                    trace("issue-data", *inst);
                } else {
                    trace("kill", *inst);
                    ++st.schemeIssueKills;
                }
            }
            if (scheduled)
                execNext.push_back(inst);
            if (inst->addrIssued && inst->dataIssued)
                fully_issued.push_back(inst);
            continue;
        }

        // Non-store instructions.
        if (!entry->src1Ready || !entry->src2Ready)
            continue;
        const OpClass cls = inst->uop.opClass();
        if (schemePtr->selectVeto(*inst, inst->isLoad())) {
            ++st.schemeSelectBlocks;
            trace("block", *inst);
            continue;
        }
        if (cls == OpClass::MemRead && memPortsUsed >= cfg.memPorts)
            continue;
        if (cls == OpClass::IntDiv && divBusyUntil > cycle)
            continue;
        if (cls == OpClass::FpDiv && fdivBusyUntil > cycle)
            continue;
        const bool is_fp = cls == OpClass::FpAlu || cls == OpClass::FpMul
                           || cls == OpClass::FpDiv;
        if (is_fp && fp_slots == 0)
            continue;

        --slots;
        if (inv.on()) {
            inv.onIssue(*inst,
                        !inst->uop.hasSrc1() || wakeupDone[inst->psrc1],
                        !inst->uop.hasSrc2() || wakeupDone[inst->psrc2]);
        }
        if (is_fp)
            --fp_slots;
        if (cls == OpClass::MemRead)
            ++memPortsUsed;
        if (!schemePtr->onSelect(*inst, inst->isLoad())) {
            ++st.schemeIssueKills;
            trace("kill", *inst);
            continue; // Entry stays; ready is masked by the scheme.
        }
        trace("issue", *inst);
        if (cls == OpClass::IntDiv)
            divBusyUntil = cycle + cfg.divLatency;
        if (cls == OpClass::FpDiv)
            fdivBusyUntil = cycle + cfg.fpDivLatency;

        inst->addrIssued = true;
        if (inst->isLoad() || inst->isBranch()) {
            execNext.push_back(inst);
        } else {
            executeAluAtSelect(inst);
        }
        fully_issued.push_back(inst);
    }

    for (const DynInstPtr &inst : fully_issued)
        iq.remove(inst);
}

void
Core::executeAluAtSelect(const DynInstPtr &inst)
{
    const Word s1 =
        inst->uop.hasSrc1() ? regVal[inst->psrc1] : 0;
    const Word s2 =
        inst->uop.hasSrc2() ? regVal[inst->psrc2] : 0;
    inst->src1Val = s1;
    inst->src2Val = s2;
    secMonitor.onConsume(*inst, shadows.visibilityPoint(), true, true,
                         false);
    inst->result = evalAlu(inst->uop, s1, s2);
    inst->executed = true;
    if (inst->pdst != invalidPhysReg)
        regVal[inst->pdst] = inst->result;

    const unsigned lat = opLatency(inst->uop.opClass());
    completions.push(cycle + lat, cycle, CompletionEvent{inst});
    if (inst->pdst != invalidPhysReg) {
        if (!schemePtr->deferBroadcast(inst, cycle + lat)) {
            applyWakeup(inst->pdst, cycle + lat, inst);
        } else {
            ++st.deferredBroadcasts;
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch and rename
// ---------------------------------------------------------------------

void
Core::dispatchPhase()
{
    unsigned n = 0;
    while (n < cfg.coreWidth && !dispatchQueue.empty()) {
        DynInstPtr inst = dispatchQueue.front();
        if (iq.full()) {
            ++st.iqFullStalls;
            break;
        }
        const bool s1 = !inst->uop.hasSrc1() || wakeupDone[inst->psrc1];
        const bool s2 = !inst->uop.hasSrc2() || wakeupDone[inst->psrc2];
        iq.insert(inst, s1, s2);
        dispatchQueue.pop_front();
        ++n;
    }
}

void
Core::renamePhase()
{
    std::vector<DynInstPtr> &group = renameScratch;
    group.clear();
    unsigned n = 0;
    while (n < cfg.coreWidth && !decodeQueue.empty()) {
        DecodeSlot &slot = decodeQueue.front();
        if (slot.readyAt > cycle)
            break;
        DynInstPtr inst = slot.inst;

        if (rob.size() >= cfg.robEntries) {
            ++st.robFullStalls;
            break;
        }
        if (dispatchQueue.size() >= 2 * cfg.coreWidth)
            break;
        if (inst->uop.hasDst() && renameMap.freeCount() == 0) {
            ++st.freelistStalls;
            break;
        }
        if (inst->isBranch() && branchesInFlight >= cfg.maxBranches) {
            ++st.branchCapStalls;
            break;
        }
        if (inst->isLoad() && lsu.lqFull()) {
            ++st.lsuFullStalls;
            break;
        }
        if (inst->isStore() && lsu.sqFull()) {
            ++st.lsuFullStalls;
            break;
        }

        if (inst->uop.hasSrc1())
            inst->psrc1 = renameMap.lookup(inst->uop.src1);
        if (inst->uop.hasSrc2())
            inst->psrc2 = renameMap.lookup(inst->uop.src2);
        if (inst->uop.hasDst()) {
            inst->pdst = renameMap.allocate(inst->uop.dst,
                                            inst->stalePdst);
            wakeupDone[inst->pdst] = 0;
            secMonitor.onAllocate(inst->pdst);
        }
        inst->renamed = true;
        lastRenamedSeq = inst->seq;
        trace("rename", *inst);

        rob.push_back(inst);
        if (inst->isLoad())
            lsu.allocateLoad(inst);
        if (inst->isStore())
            lsu.allocateStore(inst);
        shadows.onRename(inst);
        if (inst->isBranch())
            ++branchesInFlight;

        if (inst->uop.op == Op::Nop || inst->uop.isHalt()) {
            inst->completed = true;
        } else {
            dispatchQueue.push_back(inst);
        }
        group.push_back(inst);
        decodeQueue.pop_front();
        ++n;
    }
    if (!group.empty())
        schemePtr->onRenameGroup(group);
}

void
Core::decodePhase()
{
    unsigned n = 0;
    const std::size_t cap = 4 * cfg.coreWidth;
    while (n < cfg.coreWidth && !fetchQueue.empty()
           && decodeQueue.size() < cap) {
        DecodeSlot slot;
        slot.inst = fetchQueue.front();
        slot.readyAt = cycle + 1 + frontendExtraDelay;
        decodeQueue.push_back(std::move(slot));
        fetchQueue.pop_front();
        ++n;
    }
}

void
Core::fetchPhase()
{
    if (haltedFlag || fetchHalted || cycle < fetchStallUntil)
        return;
    unsigned n = 0;
    while (n < cfg.fetchWidth
           && fetchQueue.size() < cfg.fetchBufferEntries) {
        if (pc >= program->code.size()) {
            // Wrong-path runoff past the program end: wait for the
            // inevitable squash.
            fetchHalted = true;
            break;
        }
        const MicroOp &uop = program->code[pc];
        DynInstPtr inst = instPool.acquire();
        inst->seq = nextSeq++;
        inst->pc = pc;
        inst->uop = uop;

        if (uop.isBranch()) {
            if (uop.op == Op::JmpReg) {
                // Always taken; the BTB supplies the target. An
                // untrained entry predicts fall-through, so laying the
                // preferred target right after the jr makes a cold
                // BTB harmless.
                inst->predTaken = true;
                const auto hit = btb.find(pc);
                inst->predTarget =
                    hit != btb.end() ? hit->second : pc + 1;
                fetchQueue.push_back(inst);
                ++n;
                pc = inst->predTarget;
                break; // Redirect: resume at the target next cycle.
            }
            if (uop.op == Op::Jmp) {
                inst->predTaken = true;
            } else {
                inst->histSnapshot = ghist;
                inst->predTaken = predictor.predict(pc, ghist);
                ghist = (ghist << 1) | (inst->predTaken ? 1u : 0u);
            }
            fetchQueue.push_back(inst);
            ++n;
            if (inst->predTaken) {
                pc = uop.target;
                break; // Redirect: resume at the target next cycle.
            }
            ++pc;
        } else if (uop.isHalt()) {
            fetchQueue.push_back(inst);
            fetchHalted = true;
            break;
        } else {
            fetchQueue.push_back(inst);
            ++pc;
            ++n;
        }
    }
}

// ---------------------------------------------------------------------
// Squash
// ---------------------------------------------------------------------

void
Core::squash(SeqNum from_seq, std::uint32_t new_pc)
{
    std::uint64_t count = 0;

    for (auto &inst : fetchQueue) {
        inst->squashed = true;
        ++count;
    }
    fetchQueue.clear();
    for (auto &slot : decodeQueue) {
        slot.inst->squashed = true;
        ++count;
    }
    decodeQueue.clear();
    for (auto &inst : dispatchQueue) {
        sb_assert(inst->seq > from_seq, "dispatch queue squash overlap");
        inst->squashed = true;
        ++count;
    }
    dispatchQueue.clear();

    std::uint64_t ghist_restore = ghist;
    while (!rob.empty() && rob.back()->seq > from_seq) {
        DynInstPtr inst = rob.back();
        inst->squashed = true;
        schemePtr->onSquashWalk(*inst);
        if (inst->pdst != invalidPhysReg) {
            renameMap.unwind(inst->uop.dst, inst->pdst,
                             inst->stalePdst);
        }
        if (inst->isBranch()) {
            sb_assert(branchesInFlight > 0, "branch count underflow");
            --branchesInFlight;
            if (inst->uop.op != Op::Jmp && inst->uop.op != Op::JmpReg)
                ghist_restore = inst->histSnapshot;
        }
        rob.pop_back();
        ++count;
    }
    lsu.squash(from_seq);
    iq.squash(from_seq);
    schemePtr->onSquash(from_seq);
    // Waiter lists keyed by squashed stores can be dropped whole
    // (their waiters are younger and squashed with them).
    for (auto it = forwardWaiters.begin();
         it != forwardWaiters.end();) {
        if (it->first > from_seq)
            it = forwardWaiters.erase(it);
        else
            ++it;
    }

    // Every sequence number below nextSeq is now renamed, committed,
    // or squashed, so the visibility-point cap may advance to the
    // next instruction to be fetched (monotonicity is preserved
    // because nextSeq only grows).
    lastRenamedSeq = nextSeq - 1;

    ghist = ghist_restore;
    pc = new_pc;
    fetchStallUntil = cycle + 1;
    fetchHalted = false;
    st.squashedInsts += count;
    ++st.squashes;
}

} // namespace sb
