/**
 * @file
 * Register alias table (RAT) and physical-register free list
 * (paper Fig. 2).
 *
 * Mispredict recovery uses exact walk-back through the ROB (each
 * DynInst remembers the mapping it replaced), which is functionally
 * equivalent to the RAT checkpoints the paper costs in its area
 * model; the synthesis model charges checkpoint storage separately.
 */

#ifndef SB_CORE_RENAME_MAP_HH
#define SB_CORE_RENAME_MAP_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace sb
{

/** RAT + free list. */
class RenameMap
{
  public:
    RenameMap(unsigned arch_regs, unsigned phys_regs);

    /** Current mapping of an architectural register. */
    PhysReg
    lookup(ArchReg reg) const
    {
        sb_assert(reg < rat.size(), "RAT lookup out of range");
        return rat[reg];
    }

    /** Free physical registers available for allocation. */
    unsigned freeCount() const { return freeList.size(); }

    /**
     * Allocate a new physical register for @p reg.
     * @param[out] stale the mapping being replaced (for walk-back).
     */
    PhysReg allocate(ArchReg reg, PhysReg &stale);

    /** Return a physical register to the free list. */
    void release(PhysReg reg);

    /**
     * Walk-back undo of one allocation (youngest first): restore the
     * previous mapping and free the allocated register.
     */
    void unwind(ArchReg reg, PhysReg allocated, PhysReg stale);

    unsigned numPhysRegs() const { return physCount; }

  private:
    std::vector<PhysReg> rat;
    std::vector<PhysReg> freeList;
    unsigned physCount;
};

} // namespace sb

#endif // SB_CORE_RENAME_MAP_HH
