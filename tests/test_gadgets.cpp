/**
 * @file
 * Golden security tests for the Spectre gadget battery: the
 * unprotected baseline must leak the secret on every gadget, and
 * every scheme that claims the STT obligation (STT-Rename, STT-Issue,
 * NDA, NDA-Strict) must leak on none of them, with clean monitor
 * obligations.
 */

#include <gtest/gtest.h>

#include "harness/attack.hh"
#include "secure/factory.hh"

namespace
{

std::string
paramName(sb::GadgetKind gadget, sb::Scheme scheme)
{
    std::string name = std::string(sb::gadgetName(gadget)) + "_"
                       + sb::schemeName(scheme);
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

struct GadgetBatteryTest
    : ::testing::TestWithParam<std::tuple<sb::GadgetKind, sb::Scheme>>
{
};

TEST_P(GadgetBatteryTest, MatchesSchemeSecurityContract)
{
    const auto [gadget, scheme] = GetParam();
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    const auto res =
        sb::runGadget(gadget, sb::CoreConfig::mega(), scfg, 0xA7);

    const auto impl = sb::makeScheme(scfg);
    if (impl->contract().obligesTransmitterSafety) {
        EXPECT_FALSE(res.leaked)
            << sb::gadgetName(gadget) << " leaked under "
            << impl->name();
        EXPECT_EQ(res.oracleByte, -1);
        EXPECT_NE(res.timingByte, 0xA7);
        EXPECT_EQ(res.transmitViolations, 0u);
    } else {
        EXPECT_TRUE(res.leaked)
            << sb::gadgetName(gadget) << " failed to leak on the "
            << "unsafe baseline";
        EXPECT_EQ(res.oracleByte, 0xA7);
        EXPECT_EQ(res.timingByte, 0xA7);
        EXPECT_GT(res.transmitViolations, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Battery, GadgetBatteryTest,
    ::testing::Combine(
        ::testing::Values(sb::GadgetKind::SpectreV1,
                          sb::GadgetKind::SpectreV1Mask,
                          sb::GadgetKind::SpectreV2Indirect,
                          sb::GadgetKind::SpectreV4StoreBypass),
        ::testing::Values(sb::Scheme::Baseline, sb::Scheme::SttRename,
                          sb::Scheme::SttIssue, sb::Scheme::Nda)),
    [](const ::testing::TestParamInfo<
        std::tuple<sb::GadgetKind, sb::Scheme>> &info) {
        return paramName(std::get<0>(info.param),
                         std::get<1>(info.param));
    });

TEST(GadgetPrograms, NamesRoundTrip)
{
    for (const auto kind : sb::allGadgets()) {
        sb::GadgetKind parsed;
        ASSERT_TRUE(sb::gadgetFromName(sb::gadgetName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    sb::GadgetKind parsed;
    EXPECT_FALSE(sb::gadgetFromName("spectre-v9", parsed));
}

TEST(GadgetPrograms, DeterministicBuilds)
{
    for (const auto kind : sb::allGadgets()) {
        const auto a = sb::buildGadgetProgram(kind, 0x5C, 42);
        const auto b = sb::buildGadgetProgram(kind, 0x5C, 42);
        ASSERT_EQ(a.program.code.size(), b.program.code.size());
        EXPECT_EQ(a.barrierPc, b.barrierPc);
        EXPECT_EQ(a.firstProbePc, b.firstProbePc);
        EXPECT_EQ(a.program.disassemble(), b.program.disassemble());
    }
}

TEST(GadgetBattery, NdaStrictBlocksEveryGadget)
{
    for (const auto kind : sb::allGadgets()) {
        sb::SchemeConfig scfg;
        scfg.scheme = sb::Scheme::NdaStrict;
        const auto res =
            sb::runGadget(kind, sb::CoreConfig::mega(), scfg, 0x3C);
        EXPECT_FALSE(res.leaked) << sb::gadgetName(kind);
        EXPECT_EQ(res.oracleByte, -1) << sb::gadgetName(kind);
    }
}

TEST(GadgetBattery, BaselineLeaksAlternativeSecrets)
{
    // A second byte value on every gadget guards against a receiver
    // that only ever flags one magic slot.
    for (const auto kind : sb::allGadgets()) {
        sb::SchemeConfig scfg;
        const auto res = sb::runGadget(kind, sb::CoreConfig::mega(),
                                       scfg, 0x3C, 77);
        EXPECT_TRUE(res.leaked) << sb::gadgetName(kind);
        EXPECT_EQ(res.oracleByte, 0x3C) << sb::gadgetName(kind);
    }
}

} // anonymous namespace
