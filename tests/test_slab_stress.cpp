/**
 * @file
 * Handle-recycling stress: squash/refetch storms against the
 * generation-tagged instruction slab.
 *
 * A branch whose direction is a data-dependent function of untouched
 * memory (splitmix background values, effectively random) defeats
 * TAGE, so the front end continuously fetches wrong paths and the
 * squash walk continuously frees and reallocates slab slots. The
 * tests assert the properties the slab must keep under that churn:
 * bounded occupancy, correct architectural results, heavy recycling
 * visible in the engine-health counters, and — via the generation
 * tag — certain death for any stale handle dereference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>

#include "common/config.hh"
#include "core/core.hh"
#include "isa/program.hh"
#include "secure/factory.hh"

namespace
{

constexpr sb::Scheme allSchemes[] = {
    sb::Scheme::Baseline,    sb::Scheme::SttRename,
    sb::Scheme::SttIssue,    sb::Scheme::Nda,
    sb::Scheme::NdaStrict,   sb::Scheme::DelayOnMiss,
    sb::Scheme::DelayAll,
};

/**
 * Loop whose inner branch keys off the low bit of a background-value
 * load: ~50% taken with no exploitable pattern, so every iteration
 * risks a mispredict-driven squash storm.
 */
sb::Program
branchStorm(unsigned iters)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);                    // Byte offset cursor.
    b.movi(2, 8 * iters);            // End offset.
    b.movi(5, 1);                    // Bit mask.
    b.movi(6, 0);                    // Zero.
    b.movi(7, 0);                    // Taken-path counter.
    b.movi(8, 0);                    // Fallthrough-path counter.
    const auto loop = b.here();
    b.load(3, 1, 1 << 20);           // Untouched memory: pseudo-random.
    b.and_(4, 3, 5);
    b.addi(1, 1, 8);
    const auto skip = b.futureLabel();
    b.bne(4, 6, skip);               // ~50% taken, unpredictable.
    b.addi(8, 8, 1);
    b.bind(skip);
    b.addi(7, 7, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build("branch-storm");
}

std::unique_ptr<sb::Core>
makeCore(const sb::Program &p, sb::Scheme scheme)
{
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    return std::make_unique<sb::Core>(sb::CoreConfig::mega(), scfg,
                                      sb::makeScheme(scfg), p);
}

struct SlabStormTest : ::testing::TestWithParam<sb::Scheme>
{
};

TEST_P(SlabStormTest, SurvivesSquashStormsWithBoundedOccupancy)
{
    constexpr unsigned iters = 2000;
    const sb::Program p = branchStorm(iters);
    auto core = makeCore(p, GetParam());
    const auto r = core->run(5'000'000, 5'000'000);

    ASSERT_TRUE(r.halted);
    // Architectural results are exact whatever the storm did to the
    // pipeline: every iteration bumps r7, and r7 + r8 path counts
    // bound each other through the branch split.
    EXPECT_EQ(core->readArchReg(7), iters);
    EXPECT_EQ(core->readArchReg(1), 8u * iters);
    EXPECT_LE(core->readArchReg(8), iters);

    const sb::InstSlab &slab = core->instSlab();
    EXPECT_EQ(slab.liveCount(), 0u); // Everything committed or squashed.
    EXPECT_LE(slab.highWater(), slab.capacity());

    // The storm actually stormed: wrong-path work was fetched and
    // thrown away. Every committed instruction frees its record, so
    // recycling strictly beyond the commit count is squashed work.
    // (squashed_insts itself double-counts dispatch-queue entries —
    // a counting quirk kept for stat continuity — so it bounds
    // nothing about the slab.)
    EXPECT_GT(core->stats().value("squashed_insts"), 0u);
    EXPECT_GT(core->stats().value("branch_mispredicts"), iters / 8);
    EXPECT_GT(core->stats().value("handles_recycled"),
              core->stats().value("committed_insts"));

    // Decode caching holds up under wrong-path refetch: the working
    // set is the static program, so misses are bounded by code size
    // while hits scale with dynamic (including squashed) fetches.
    EXPECT_LE(core->stats().value("decode_cache_misses"), p.size());
    EXPECT_GT(core->stats().value("decode_cache_hits"),
              core->stats().value("committed_insts") / 2);
}

TEST_P(SlabStormTest, AtMostOneGenerationOfASlotIsEverLive)
{
    const sb::Program p = branchStorm(500);
    auto core = makeCore(p, GetParam());
    ASSERT_TRUE(core->run(5'000'000, 5'000'000).halted);

    const sb::InstSlab &slab = core->instSlab();
    ASSERT_GT(slab.recycled(), 0u);
    for (std::uint32_t slot = 0; slot < slab.capacity(); ++slot) {
        unsigned live_gens = 0;
        for (std::uint32_t gen = 0; gen < 64; ++gen) {
            const sb::InstHandle h = (gen << 16) | slot;
            if (core->slabAlive(h))
                ++live_gens;
        }
        EXPECT_LE(live_gens, 1u) << "slot " << slot;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SlabStormTest,
                         ::testing::ValuesIn(allSchemes),
                         [](const auto &info) {
                             std::string name =
                                 sb::schemeName(info.param);
                             name.erase(
                                 std::remove_if(
                                     name.begin(), name.end(),
                                     [](char c) { return !isalnum(c); }),
                                 name.end());
                             return name;
                         });

TEST(SlabStormDeath, StaleHandleFromAStormedCoreIsCaught)
{
    const sb::Program p = branchStorm(500);
    auto core = makeCore(p, sb::Scheme::Baseline);
    ASSERT_TRUE(core->run(5'000'000, 5'000'000).halted);
    ASSERT_GT(core->instSlab().recycled(), 0u);

    // Slot 0 has at most one live generation; both of these handles
    // address it, so at least one is stale (or never existed). Either
    // way the generation check must refuse to dereference it.
    const sb::InstHandle g0 = (0u << 16) | 0u;
    const sb::InstHandle g1 = (1u << 16) | 0u;
    const sb::InstHandle dead = core->slabAlive(g0) ? g1 : g0;
    EXPECT_DEATH(core->instSlab().get(dead),
                 "stale instruction handle");
}

} // anonymous namespace
