/**
 * @file
 * Synthesis-model tests: the timing/area/power models must reproduce
 * the paper's Figure 9 / Table 4 characteristics and extrapolate in
 * the directions the paper argues (Sec. 8.3, 8.5, 9.4).
 */

#include <gtest/gtest.h>

#include "synth/area_model.hh"
#include "synth/power_model.hh"
#include "synth/timing_model.hh"

namespace
{

using sb::CoreConfig;
using sb::Scheme;

TEST(Timing, BaselineFrequencyFallsWithWidth)
{
    double prev = 1e9;
    for (const auto &cfg : CoreConfig::boomPresets()) {
        const double f =
            sb::TimingModel::frequencyMhz(cfg, Scheme::Baseline);
        EXPECT_LT(f, prev) << cfg.name;
        prev = f;
    }
}

TEST(Timing, BaselineMatchesPaperFigure9)
{
    const double expected[] = {152.0, 126.0, 93.0, 78.0};
    const auto presets = CoreConfig::boomPresets();
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const double f =
            sb::TimingModel::frequencyMhz(presets[i], Scheme::Baseline);
        EXPECT_NEAR(f, expected[i], expected[i] * 0.06)
            << presets[i].name;
    }
}

TEST(Timing, SttRenameDegradesWithWidth)
{
    // Sec. 8.3: small impact on narrow cores, 80% at Mega.
    std::vector<double> rel;
    for (const auto &cfg : CoreConfig::boomPresets())
        rel.push_back(
            sb::TimingModel::relativeFrequency(cfg, Scheme::SttRename));
    EXPECT_GT(rel[0], 0.97);
    EXPECT_NEAR(rel[3], 0.80, 0.03);
    for (std::size_t i = 1; i < rel.size(); ++i)
        EXPECT_LE(rel[i], rel[i - 1] + 1e-9);
}

TEST(Timing, SttIssuePaysFlatCostButScalesBetter)
{
    const auto presets = CoreConfig::boomPresets();
    const double medium_issue = sb::TimingModel::relativeFrequency(
        presets[1], Scheme::SttIssue);
    const double medium_rename = sb::TimingModel::relativeFrequency(
        presets[1], Scheme::SttRename);
    // Flat cost: visible already at Medium, unlike STT-Rename.
    EXPECT_LT(medium_issue, medium_rename);

    const double mega_issue = sb::TimingModel::relativeFrequency(
        presets[3], Scheme::SttIssue);
    const double mega_rename = sb::TimingModel::relativeFrequency(
        presets[3], Scheme::SttRename);
    // Better scaling: ahead again at Mega (paper Fig. 9d).
    EXPECT_GT(mega_issue, mega_rename);
    EXPECT_NEAR(mega_issue, 0.87, 0.03);
}

TEST(Timing, NdaMatchesOrBeatsBaselineEverywhere)
{
    for (const auto &cfg : CoreConfig::boomPresets()) {
        const double rel =
            sb::TimingModel::relativeFrequency(cfg, Scheme::Nda);
        EXPECT_GE(rel, 0.999) << cfg.name;
        EXPECT_LE(rel, 1.05) << cfg.name;
    }
}

TEST(Timing, DelaySchemesKeepBaselineFrequency)
{
    // Neither the DoM park logic nor the DelayAll ready comparator
    // touches the bypass network, so both ride the issue stage's
    // slack: their cost is all IPC, none frequency.
    for (const auto &cfg : CoreConfig::boomPresets()) {
        for (Scheme s : {Scheme::DelayOnMiss, Scheme::DelayAll}) {
            const double rel =
                sb::TimingModel::relativeFrequency(cfg, s);
            EXPECT_GE(rel, 0.999) << cfg.name;
            EXPECT_LE(rel, 1.001) << cfg.name;
        }
    }
}

TEST(Timing, CriticalPathIsMaxOfStages)
{
    for (Scheme s : sb::allSchemes()) {
        const auto b =
            sb::TimingModel::analyze(CoreConfig::mega(), s);
        EXPECT_DOUBLE_EQ(b.criticalPath,
                         std::max({b.renameStage, b.issueStage,
                                   b.bypassNetwork}));
        EXPECT_GT(b.frequencyMhz, 0.0);
    }
}

TEST(Timing, WiderThanMegaKeepsDiverging)
{
    // Sec. 9.4: trends worsen for 6-wide cores.
    CoreConfig wide = CoreConfig::mega();
    wide.coreWidth = 6;
    wide.issueWidth = 6;
    const double rename6 =
        sb::TimingModel::relativeFrequency(wide, Scheme::SttRename);
    const double rename4 = sb::TimingModel::relativeFrequency(
        CoreConfig::mega(), Scheme::SttRename);
    EXPECT_LT(rename6, rename4);
    const double nda6 =
        sb::TimingModel::relativeFrequency(wide, Scheme::Nda);
    EXPECT_GE(nda6, 0.999);
}

TEST(Area, MatchesPaperTable4AtMega)
{
    const CoreConfig mega = CoreConfig::mega();
    const auto rename = sb::AreaModel::relative(mega, Scheme::SttRename);
    EXPECT_NEAR(rename.luts, 1.060, 0.01);
    EXPECT_NEAR(rename.ffs, 1.094, 0.01);
    const auto issue = sb::AreaModel::relative(mega, Scheme::SttIssue);
    EXPECT_NEAR(issue.luts, 1.059, 0.01);
    EXPECT_NEAR(issue.ffs, 1.039, 0.01);
    const auto nda = sb::AreaModel::relative(mega, Scheme::Nda);
    EXPECT_NEAR(nda.luts, 0.980, 0.01);
    EXPECT_NEAR(nda.ffs, 1.027, 0.01);
}

TEST(Area, SttRenameHasTheMostFlipFlops)
{
    // The checkpoint cost (Sec. 4.2 / Table 4).
    const CoreConfig mega = CoreConfig::mega();
    const auto rename = sb::AreaModel::relative(mega, Scheme::SttRename);
    const auto issue = sb::AreaModel::relative(mega, Scheme::SttIssue);
    const auto nda = sb::AreaModel::relative(mega, Scheme::Nda);
    EXPECT_GT(rename.ffs, issue.ffs);
    EXPECT_GT(rename.ffs, nda.ffs);
}

TEST(Area, NdaIsTheOnlyLutSaving)
{
    const CoreConfig mega = CoreConfig::mega();
    EXPECT_LT(sb::AreaModel::relative(mega, Scheme::Nda).luts, 1.0);
    EXPECT_GT(sb::AreaModel::relative(mega, Scheme::SttRename).luts,
              1.0);
    EXPECT_GT(sb::AreaModel::relative(mega, Scheme::SttIssue).luts,
              1.0);
}

TEST(Area, BaselineIsIdentityAndScalesWithWidth)
{
    for (const auto &cfg : CoreConfig::boomPresets()) {
        const auto rel =
            sb::AreaModel::relative(cfg, Scheme::Baseline);
        EXPECT_DOUBLE_EQ(rel.luts, 1.0);
        EXPECT_DOUBLE_EQ(rel.ffs, 1.0);
    }
    const auto small =
        sb::AreaModel::estimate(CoreConfig::small(), Scheme::Baseline);
    const auto mega =
        sb::AreaModel::estimate(CoreConfig::mega(), Scheme::Baseline);
    EXPECT_GT(mega.luts, small.luts);
    EXPECT_GT(mega.ffs, small.ffs);
}

TEST(Power, MatchesPaperTable4AtMega)
{
    const CoreConfig mega = CoreConfig::mega();
    EXPECT_NEAR(sb::PowerModel::relative(mega, Scheme::SttRename),
                1.008, 0.01);
    EXPECT_NEAR(sb::PowerModel::relative(mega, Scheme::SttIssue),
                1.026, 0.01);
    EXPECT_NEAR(sb::PowerModel::relative(mega, Scheme::Nda), 0.936,
                0.01);
}

TEST(Area, DelaySchemesAddOnlyMarginalArea)
{
    // Both new schemes are control-only additions: within 2% of
    // baseline LUTs/FFs, and cheaper than either STT variant.
    const CoreConfig mega = CoreConfig::mega();
    const auto stt = sb::AreaModel::relative(mega, Scheme::SttRename);
    for (Scheme s : {Scheme::DelayOnMiss, Scheme::DelayAll}) {
        const auto rel = sb::AreaModel::relative(mega, s);
        EXPECT_GT(rel.luts, 1.0);
        EXPECT_LT(rel.luts, 1.02);
        EXPECT_GT(rel.ffs, 1.0);
        EXPECT_LT(rel.ffs, 1.02);
        EXPECT_LT(rel.luts, stt.luts);
        EXPECT_LT(rel.ffs, stt.ffs);
    }
}

TEST(Power, DelayAllIdlesTheMost)
{
    // Stalled loads toggle nothing: DelayAll's activity factor is
    // the lowest in the roster, below even NDA-Strict, while DoM
    // stays near baseline (only wrong-path misses are saved).
    const CoreConfig mega = CoreConfig::mega();
    const double delay_all =
        sb::PowerModel::relative(mega, Scheme::DelayAll);
    EXPECT_LT(delay_all, sb::PowerModel::relative(mega, Scheme::Nda));
    EXPECT_LT(delay_all, 1.0);
    const double dom =
        sb::PowerModel::relative(mega, Scheme::DelayOnMiss);
    EXPECT_LT(dom, 1.0);
    EXPECT_GT(dom, delay_all);
}

TEST(Power, NdaIsTheSustainabilityWinner)
{
    // Sec. 8.5 / 9.4: NDA saves power; both STT variants do not.
    const CoreConfig mega = CoreConfig::mega();
    const double nda = sb::PowerModel::relative(mega, Scheme::Nda);
    EXPECT_LT(nda, 1.0);
    EXPECT_LT(nda, sb::PowerModel::relative(mega, Scheme::SttRename));
    EXPECT_LT(nda, sb::PowerModel::relative(mega, Scheme::SttIssue));
}

TEST(Power, ActivityProfileModulates)
{
    const CoreConfig mega = CoreConfig::mega();
    sb::ActivityProfile busy;
    busy.issueKillsPerInst = 0.5;
    busy.squashedPerInst = 0.5;
    EXPECT_GT(sb::PowerModel::relative(mega, Scheme::SttIssue, busy),
              sb::PowerModel::relative(mega, Scheme::SttIssue));
    sb::ActivityProfile quiet;
    quiet.deferredPerInst = 0.5;
    EXPECT_LT(sb::PowerModel::relative(mega, Scheme::Nda, quiet),
              sb::PowerModel::relative(mega, Scheme::Nda));
}

} // anonymous namespace
