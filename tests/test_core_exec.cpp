/**
 * @file
 * Functional correctness of the out-of-order core: small programs
 * must run to completion with architecturally correct results, under
 * every secure scheme (the schemes change timing, never values).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/core.hh"
#include "isa/program.hh"
#include "secure/factory.hh"

namespace
{

sb::RunResult
runToHalt(const sb::Program &p, sb::Core &core)
{
    (void)p;
    return core.run(5'000'000, 5'000'000);
}

struct CoreExecTest : ::testing::TestWithParam<sb::Scheme>
{
    std::unique_ptr<sb::Core>
    makeCore(const sb::Program &p,
             sb::CoreConfig cfg = sb::CoreConfig::mega())
    {
        sb::SchemeConfig scfg;
        scfg.scheme = GetParam();
        return std::make_unique<sb::Core>(cfg, scfg,
                                          sb::makeScheme(scfg), p);
    }
};

TEST_P(CoreExecTest, ArithmeticSumLoop)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);  // i
    b.movi(2, 0);  // sum
    b.movi(3, 100);
    b.movi(4, 1);
    const auto loop = b.here();
    b.add(2, 2, 1);
    b.add(1, 1, 4);
    b.blt(1, 3, loop);
    b.halt();
    const sb::Program p = b.build();

    auto core = makeCore(p);
    const auto r = runToHalt(p, *core);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(core->readArchReg(2), 4950u); // sum 0..99.
}

TEST_P(CoreExecTest, FibonacciViaRegisters)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);
    b.movi(2, 1);
    b.movi(4, 0);
    b.movi(5, 20);
    b.movi(6, 1);
    const auto loop = b.here();
    b.add(3, 1, 2);
    b.add(1, 2, 6);   // r1 = r2 + 1 - 1 trick avoided; plain move:
    b.sub(1, 2, 4);   // r1 = r2 (r4 == 0).
    b.sub(2, 3, 4);   // r2 = r3.
    b.add(4, 4, 6);
    b.movi(4, 0);     // Keep r4 zero (also exercises re-rename).
    b.addi(5, 5, -1);
    b.bne(5, 4, loop);
    b.halt();
    const sb::Program p = b.build();

    auto core = makeCore(p);
    runToHalt(p, *core);
    // 20 iterations of fib starting (0,1): r2 = fib(21) = 10946.
    EXPECT_EQ(core->readArchReg(2), 10946u);
}

TEST_P(CoreExecTest, MemoryCopyLoop)
{
    sb::ProgramBuilder b;
    const sb::Addr src = 0x100000;
    const sb::Addr dst = 0x200000;
    for (int i = 0; i < 16; ++i)
        b.memory().write(src + 8 * i, 1000 + i);
    b.movi(1, src);
    b.movi(2, dst);
    b.movi(3, 0);
    b.movi(4, 16);
    b.movi(5, 1);
    const auto loop = b.here();
    b.load(6, 1, 0);
    b.store(2, 6, 0);
    b.addi(1, 1, 8);
    b.addi(2, 2, 8);
    b.add(3, 3, 5);
    b.blt(3, 4, loop);
    b.halt();
    const sb::Program p = b.build();

    auto core = makeCore(p);
    runToHalt(p, *core);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(core->readMemory(dst + 8 * i), 1000u + i) << i;
}

TEST_P(CoreExecTest, StoreToLoadForwardingValue)
{
    // Immediately reload stored values: exercises SQ forwarding.
    sb::ProgramBuilder b;
    const sb::Addr buf = 0x100000;
    b.movi(1, buf);
    b.movi(2, 0);   // acc
    b.movi(3, 0);   // i
    b.movi(4, 50);
    b.movi(5, 1);
    const auto loop = b.here();
    b.add(6, 3, 4);     // value = i + 50
    b.store(1, 6, 0);
    b.load(7, 1, 0);    // Forward from the store above.
    b.add(2, 2, 7);
    b.add(3, 3, 5);
    b.blt(3, 4, loop);
    b.halt();
    const sb::Program p = b.build();

    auto core = makeCore(p);
    runToHalt(p, *core);
    // sum of (i + 50) for i in 0..49 = 1225 + 2500 = 3725.
    EXPECT_EQ(core->readArchReg(2), 3725u);
}

TEST_P(CoreExecTest, DataDependentBranches)
{
    // Count odd background values over a fixed region: the result
    // must match a functional recomputation.
    sb::ProgramBuilder b;
    const sb::Addr buf = 0x300000;
    b.movi(1, buf);
    b.movi(2, 0);  // count
    b.movi(3, 0);  // i
    b.movi(4, 64);
    b.movi(5, 1);
    b.movi(6, 0);
    const auto loop = b.here();
    b.load(7, 1, 0);
    b.and_(8, 7, 5);
    const auto skip = b.futureLabel();
    b.beq(8, 6, skip);
    b.add(2, 2, 5);
    b.bind(skip);
    b.addi(1, 1, 8);
    b.add(3, 3, 5);
    b.blt(3, 4, loop);
    b.halt();
    const sb::Program p = b.build();

    unsigned expected = 0;
    for (int i = 0; i < 64; ++i)
        expected += sb::MemoryImage::backgroundValue(buf + 8 * i) & 1;

    auto core = makeCore(p);
    runToHalt(p, *core);
    EXPECT_EQ(core->readArchReg(2), expected);
}

TEST_P(CoreExecTest, DivisionAndMultiplication)
{
    sb::ProgramBuilder b;
    b.movi(1, 1000);
    b.movi(2, 7);
    b.div(3, 1, 2);   // 142
    b.mul(4, 3, 2);   // 994
    b.sub(5, 1, 4);   // 6
    b.halt();
    const sb::Program p = b.build();
    auto core = makeCore(p);
    runToHalt(p, *core);
    EXPECT_EQ(core->readArchReg(3), 142u);
    EXPECT_EQ(core->readArchReg(5), 6u);
}

TEST_P(CoreExecTest, DeterministicCycleCount)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);
    b.movi(2, 2000);
    b.movi(3, 1);
    b.movi(5, 0x100000);
    const auto loop = b.here();
    b.load(6, 5, 0);
    b.add(4, 4, 6);
    b.addi(5, 5, 64);
    b.add(1, 1, 3);
    b.blt(1, 2, loop);
    b.halt();
    const sb::Program p = b.build();

    auto c1 = makeCore(p);
    auto c2 = makeCore(p);
    const auto r1 = runToHalt(p, *c1);
    const auto r2 = runToHalt(p, *c2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST_P(CoreExecTest, RunsOnEverySmallConfigToo)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);
    b.movi(2, 300);
    b.movi(3, 1);
    const auto loop = b.here();
    b.add(1, 1, 3);
    b.blt(1, 2, loop);
    b.halt();
    const sb::Program p = b.build();

    for (const auto &cfg : sb::CoreConfig::boomPresets()) {
        auto core = makeCore(p, cfg);
        const auto r = runToHalt(p, *core);
        EXPECT_TRUE(r.halted) << cfg.name;
        EXPECT_EQ(core->readArchReg(1), 300u) << cfg.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CoreExecTest,
    ::testing::Values(sb::Scheme::Baseline, sb::Scheme::SttRename,
                      sb::Scheme::SttIssue, sb::Scheme::Nda,
                      sb::Scheme::NdaStrict, sb::Scheme::DelayOnMiss,
                      sb::Scheme::DelayAll),
    [](const ::testing::TestParamInfo<sb::Scheme> &info) {
        std::string name = sb::schemeName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // anonymous namespace
