/**
 * @file
 * Engine / scenario-stack tests: specKey() content addressing, the
 * ExperimentEngine's dedup and bit-exact equivalence with the simple
 * runner across thread counts, the on-disk result cache round-trip,
 * the SB_JOBS policy, the JSON value type, and the scenario registry.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/json.hh"
#include "harness/engine.hh"
#include "harness/reporting.hh"
#include "harness/result_cache.hh"
#include "harness/scenario.hh"

namespace
{

sb::RunSpec
quickSpec(const std::string &bench, sb::Scheme scheme)
{
    sb::RunSpec s;
    s.core = sb::CoreConfig::medium();
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    s.scheme = scfg;
    s.workload = bench;
    s.warmupInsts = 5000;
    s.measureInsts = 15000;
    return s;
}

void
expectSameOutcome(const sb::RunOutcome &a, const sb::RunOutcome &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.coreName, b.coreName);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.transmitViolations, b.transmitViolations);
    EXPECT_EQ(a.consumeViolations, b.consumeViolations);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(SpecKey, StableForIdenticalSpecs)
{
    const auto a = quickSpec("557.xz", sb::Scheme::Baseline);
    const auto b = quickSpec("557.xz", sb::Scheme::Baseline);
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.specKey(), b.specKey());
    EXPECT_EQ(a.specKey().size(), 16u);
}

TEST(SpecKey, ChangesWhenAnyFieldChanges)
{
    const auto base = quickSpec("557.xz", sb::Scheme::SttRename);
    std::set<std::string> keys{base.specKey()};

    const auto expectNew = [&keys](const sb::RunSpec &spec) {
        EXPECT_TRUE(keys.insert(spec.specKey()).second)
            << "key collision for " << spec.canonical();
    };

    auto s = base;
    s.core.name = "renamed";
    expectNew(s);
    s = base;
    s.core.fetchWidth += 1;
    expectNew(s);
    s = base;
    s.core.coreWidth += 1;
    expectNew(s);
    s = base;
    s.core.issueWidth += 1;
    expectNew(s);
    s = base;
    s.core.memPorts += 1;
    expectNew(s);
    s = base;
    s.core.robEntries += 1;
    expectNew(s);
    s = base;
    s.core.iqEntries += 1;
    expectNew(s);
    s = base;
    s.core.numPhysRegs += 1;
    expectNew(s);
    s = base;
    s.core.maxBranches += 1;
    expectNew(s);
    s = base;
    s.core.aluLatency += 1;
    expectNew(s);
    s = base;
    s.core.l1d.sizeBytes *= 2;
    expectNew(s);
    s = base;
    s.core.l1d.latency += 1;
    expectNew(s);
    s = base;
    s.core.l1d.stridePrefetcher = !s.core.l1d.stridePrefetcher;
    expectNew(s);
    s = base;
    s.core.l2.latency += 1;
    expectNew(s);
    s = base;
    s.core.memLatency += 1;
    expectNew(s);
    s = base;
    s.core.speculativeScheduling = !s.core.speculativeScheduling;
    expectNew(s);
    s = base;
    s.core.frontendStages += 1;
    expectNew(s);
    s = base;
    s.scheme.scheme = sb::Scheme::SttIssue;
    expectNew(s);
    s = base;
    s.scheme.twoTaintStores = !s.scheme.twoTaintStores;
    expectNew(s);
    s = base;
    s.scheme.ndaKeepSpeculativeScheduling =
        !s.scheme.ndaKeepSpeculativeScheduling;
    expectNew(s);
    s = base;
    s.workload = "541.leela";
    expectNew(s);
    s = base;
    s.warmupInsts += 1;
    expectNew(s);
    s = base;
    s.measureInsts += 1;
    expectNew(s);
    s = base;
    s.maxCycles += 1;
    expectNew(s);
}

TEST(ResolveJobs, ExplicitThenEnvThenHardware)
{
    EXPECT_EQ(sb::resolveJobs(5), 5u);

    ::setenv("SB_JOBS", "3", 1);
    EXPECT_EQ(sb::resolveJobs(0), 3u);
    EXPECT_EQ(sb::resolveJobs(2), 2u); // Explicit beats the env var.

    // Malformed values fall through to the hardware default; the
    // numeric prefix is large enough that a buggy partial parse
    // could not be mistaken for any real hardware concurrency.
    ::unsetenv("SB_JOBS");
    const unsigned hw = sb::resolveJobs(0);
    for (const char *bad : {"1000000;", "1000000 8", "abc", "-2", "0",
                            "4294967296", "99999999999999999999"}) {
        ::setenv("SB_JOBS", bad, 1);
        EXPECT_EQ(sb::resolveJobs(0), hw) << bad;
    }

    ::unsetenv("SB_JOBS");
    EXPECT_GE(sb::resolveJobs(0), 1u);
}

sb::ExperimentEngine::Options
engineOpts(unsigned jobs, std::string cacheDir = "")
{
    sb::ExperimentEngine::Options options;
    options.jobs = jobs;
    options.cacheDir = std::move(cacheDir);
    return options;
}

TEST(Engine, MatchesRunnerBitExact)
{
    const auto spec = quickSpec("557.xz", sb::Scheme::SttIssue);
    const auto direct = sb::ExperimentRunner::runOne(spec);

    sb::ExperimentEngine engine(engineOpts(2));
    const auto got = engine.run({spec});
    ASSERT_EQ(got.size(), 1u);
    expectSameOutcome(got[0], direct);
}

TEST(Engine, DedupsIdenticalSpecsInBatch)
{
    const auto a = quickSpec("557.xz", sb::Scheme::Baseline);
    const auto b = quickSpec("541.leela", sb::Scheme::Baseline);

    sb::ExperimentEngine engine(engineOpts(2));
    const auto got = engine.run({a, b, a, a});
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(engine.stats().requested, 4u);
    EXPECT_EQ(engine.stats().simulated, 2u);
    EXPECT_EQ(engine.stats().dedupHits, 2u);
    EXPECT_EQ(engine.stats().cacheHits, 0u);
    expectSameOutcome(got[0], got[2]);
    expectSameOutcome(got[0], got[3]);
    EXPECT_EQ(got[1].workload, "541.leela");
}

TEST(Engine, ThreadCountIndependent)
{
    std::vector<sb::RunSpec> specs;
    for (const char *b : {"557.xz", "541.leela", "503.bwaves"})
        specs.push_back(quickSpec(b, sb::Scheme::Nda));

    sb::ExperimentEngine serial(engineOpts(1));
    sb::ExperimentEngine parallel(engineOpts(4));
    const auto rs = serial.run(specs);
    const auto rp = parallel.run(specs);
    ASSERT_EQ(rs.size(), rp.size());
    for (std::size_t i = 0; i < rs.size(); ++i)
        expectSameOutcome(rs[i], rp[i]);
}

TEST(Engine, CacheRoundTripIsBitExact)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir())
         / "sb_cache_roundtrip")
            .string();
    std::filesystem::remove_all(dir);

    std::vector<sb::RunSpec> specs = {
        quickSpec("557.xz", sb::Scheme::SttRename),
        quickSpec("503.bwaves", sb::Scheme::Baseline),
    };

    std::vector<sb::RunOutcome> cold;
    {
        sb::ExperimentEngine engine(engineOpts(2, dir));
        cold = engine.run(specs);
        EXPECT_EQ(engine.stats().simulated, 2u);
        EXPECT_EQ(engine.stats().cacheHits, 0u);
        ASSERT_NE(engine.cache(), nullptr);
        EXPECT_EQ(engine.cache()->size(), 2u);
    }

    // A fresh engine over the same directory must serve everything
    // from disk, bit-identically — including every counter.
    sb::ExperimentEngine warm(engineOpts(2, dir));
    const auto cached = warm.run(specs);
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cacheHits, 2u);
    ASSERT_EQ(cached.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        expectSameOutcome(cached[i], cold[i]);

    std::filesystem::remove_all(dir);
}

TEST(Engine, MismatchedCacheEntryIsReSimulated)
{
    const std::string dir = (std::filesystem::path(::testing::TempDir())
                             / "sb_cache_mismatch")
                                .string();
    std::filesystem::remove_all(dir);

    const auto spec = quickSpec("557.xz", sb::Scheme::Baseline);
    {
        // Poison the spec's cache address with another cell's
        // outcome, as a cross-process key collision would.
        sb::ResultCache cache(dir);
        sb::RunOutcome wrong;
        wrong.workload = "541.leela";
        wrong.coreName = spec.core.name;
        wrong.scheme = spec.scheme.scheme;
        wrong.cycles = 1;
        wrong.instructions = 1;
        cache.store(spec.specKey(), wrong);
    }

    std::vector<sb::RunOutcome> fresh;
    {
        sb::ExperimentEngine engine(engineOpts(2, dir));
        fresh = engine.run({spec});
        ASSERT_EQ(fresh.size(), 1u);
        EXPECT_EQ(engine.stats().cacheHits, 0u);
        EXPECT_EQ(engine.stats().simulated, 1u);
        EXPECT_EQ(fresh[0].workload, "557.xz");
        expectSameOutcome(fresh[0], sb::ExperimentRunner::runOne(spec));
    }

    // The fresh result overwrote the poisoned entry (last line wins),
    // so the bad entry self-heals instead of re-simulating forever.
    sb::ExperimentEngine healed(engineOpts(2, dir));
    const auto again = healed.run({spec});
    EXPECT_EQ(healed.stats().cacheHits, 1u);
    EXPECT_EQ(healed.stats().simulated, 0u);
    expectSameOutcome(again[0], fresh[0]);
    std::filesystem::remove_all(dir);
}

TEST(Engine, UnusableCacheDirDegradesToUncached)
{
    // A regular file where the cache directory should go: the cache
    // warns and disables itself, and the engine still runs.
    const std::string blocker =
        (std::filesystem::path(::testing::TempDir()) / "sb_cache_file")
            .string();
    std::filesystem::remove_all(blocker);
    {
        std::ofstream f(blocker);
        f << "not a directory\n";
    }
    sb::ExperimentEngine engine(engineOpts(2, blocker + "/sub"));
    EXPECT_EQ(engine.cache(), nullptr);
    const auto got =
        engine.run({quickSpec("503.bwaves", sb::Scheme::Baseline)});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(engine.stats().simulated, 1u);
    std::filesystem::remove_all(blocker);
}

TEST(Engine, RepeatedRunIsDeterministic)
{
    const auto spec = quickSpec("520.omnetpp", sb::Scheme::SttRename);
    sb::ExperimentEngine engine(engineOpts(2));
    const auto first = engine.run({spec});
    const auto second = engine.run({spec});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    expectSameOutcome(first[0], second[0]);
}

TEST(ResultCache, SkipsCorruptLines)
{
    const std::string dir = (std::filesystem::path(::testing::TempDir())
                             / "sb_cache_corrupt")
                                .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::FILE *f = std::fopen(
            (std::filesystem::path(dir) / "results.jsonl").c_str(),
            "w");
        ASSERT_NE(f, nullptr);
        std::fprintf(f, "this is not json\n{\"key\": 42}\n");
        std::fclose(f);
    }
    sb::ResultCache cache(dir);
    EXPECT_EQ(cache.size(), 0u);

    sb::RunOutcome out;
    out.workload = "w";
    out.coreName = "c";
    out.cycles = 10;
    out.instructions = 20;
    out.stats["committed_insts"] = 20;
    cache.store("k1", out);
    sb::RunOutcome back;
    ASSERT_TRUE(cache.lookup("k1", back));
    EXPECT_EQ(back.cycles, 10u);
    EXPECT_FALSE(cache.lookup("k2", back));
    std::filesystem::remove_all(dir);
}

TEST(Json, BuildDumpParseRoundTrip)
{
    sb::Json obj = sb::Json::object();
    obj.set("name", sb::Json::str("mega \"quoted\"\n"));
    obj.set("count", sb::Json::num(std::uint64_t(18446744073709551615ull)));
    obj.set("ratio", sb::Json::num(0.25));
    obj.set("flag", sb::Json::boolean(true));
    sb::Json arr = sb::Json::array();
    arr.push(sb::Json::num(std::uint64_t(1)));
    arr.push(sb::Json());
    obj.set("items", std::move(arr));

    sb::Json parsed;
    std::string err;
    ASSERT_TRUE(sb::Json::parse(obj.dump(), parsed, &err)) << err;
    EXPECT_EQ(parsed.at("name").asString(), "mega \"quoted\"\n");
    EXPECT_EQ(parsed.at("count").asUint(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parsed.at("ratio").asDouble(), 0.25);
    EXPECT_TRUE(parsed.at("flag").asBool());
    ASSERT_EQ(parsed.at("items").items().size(), 2u);
    EXPECT_EQ(parsed.at("items").items()[0].asUint(), 1u);
    EXPECT_TRUE(parsed.at("items").items()[1].isNull());
}

TEST(Json, RejectsMalformedInput)
{
    sb::Json out;
    EXPECT_FALSE(sb::Json::parse("{", out));
    EXPECT_FALSE(sb::Json::parse("{\"a\": }", out));
    EXPECT_FALSE(sb::Json::parse("[1, 2", out));
    EXPECT_FALSE(sb::Json::parse("\"unterminated", out));
    EXPECT_FALSE(sb::Json::parse("{} trailing", out));
    // Out-of-range integers must be rejected, not clamped: a
    // corrupted cache line with extra digits has to load as a miss,
    // never as a wrong result.
    EXPECT_FALSE(sb::Json::parse("99999999999999999999999", out));
    // Unbounded nesting must fail cleanly, not overflow the stack.
    const std::string deep(100000, '[');
    EXPECT_FALSE(sb::Json::parse(deep, out));
    EXPECT_TRUE(sb::Json::parse(" { } ", out));
}

TEST(OutcomeJson, RoundTripsEveryCounter)
{
    const auto direct = sb::ExperimentRunner::runOne(
        quickSpec("548.exchange2", sb::Scheme::SttRename));
    ASSERT_FALSE(direct.stats.empty());

    sb::Json parsed;
    ASSERT_TRUE(sb::Json::parse(sb::toJson(direct).dump(), parsed));
    sb::RunOutcome back;
    ASSERT_TRUE(sb::outcomeFromJson(parsed, back));
    EXPECT_EQ(back.workload, direct.workload);
    EXPECT_EQ(back.coreName, direct.coreName);
    EXPECT_EQ(back.scheme, direct.scheme);
    EXPECT_EQ(back.cycles, direct.cycles);
    EXPECT_EQ(back.instructions, direct.instructions);
    EXPECT_DOUBLE_EQ(back.ipc, direct.ipc);
    EXPECT_EQ(back.stats, direct.stats);

    sb::RunOutcome ignored;
    EXPECT_FALSE(sb::outcomeFromJson(sb::Json(), ignored));
    EXPECT_FALSE(sb::outcomeFromJson(sb::Json::object(), ignored));
}

TEST(AggregateJson, SerializesEveryField)
{
    sb::SuiteAggregate agg;
    agg.coreName = "mega";
    agg.scheme = sb::Scheme::SttIssue;
    agg.meanIpc = 1.25;
    agg.perBench["557.xz"] = 0.5;
    agg.perBench["541.leela"] = 2.0;

    sb::Json parsed;
    ASSERT_TRUE(sb::Json::parse(sb::toJson(agg).dump(), parsed));
    EXPECT_EQ(parsed.at("core").asString(), "mega");
    EXPECT_EQ(parsed.at("scheme").asString(), "STT-Issue");
    EXPECT_DOUBLE_EQ(parsed.at("mean_ipc").asDouble(), 1.25);
    const auto &per_bench = parsed.at("per_bench").fields();
    ASSERT_EQ(per_bench.size(), 2u);
    EXPECT_DOUBLE_EQ(per_bench.at("557.xz").asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(per_bench.at("541.leela").asDouble(), 2.0);
}

TEST(Registry, PaperScenariosRegistered)
{
    const auto &registry = sb::ScenarioRegistry::instance();
    for (const char *name :
         {"table1", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
          "table3", "table4", "table5", "ablation_l1hit",
          "ablation_stores"}) {
        const sb::Scenario *s = registry.find(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->name, name);
        EXPECT_FALSE(s->title.empty());
    }
    EXPECT_EQ(registry.find("nope"), nullptr);
    EXPECT_GE(registry.names().size(), 12u);
}

TEST(Registry, GridCellsOverlapAcrossScenarios)
{
    // The structural basis of the >= 25% dedup claim: fig1, fig7,
    // fig8 and table3 request exactly the same cells, and fig10's
    // baseline sweep is a subset of them.
    const auto &registry = sb::ScenarioRegistry::instance();
    const auto keySet = [&registry](const char *name) {
        std::set<std::string> keys;
        for (const auto &spec : registry.find(name)->specs())
            keys.insert(spec.specKey());
        return keys;
    };

    const auto fig1 = keySet("fig1");
    EXPECT_EQ(fig1, keySet("fig7"));
    EXPECT_EQ(fig1, keySet("fig8"));
    EXPECT_EQ(fig1, keySet("table3"));

    for (const auto &key : keySet("fig10"))
        EXPECT_TRUE(fig1.count(key)) << "fig10 cell not in fig1";

    // Model-only scenarios request no cells.
    EXPECT_TRUE(registry.find("fig9")->specs().empty());
    EXPECT_TRUE(registry.find("table4")->specs().empty());
}

} // anonymous namespace
