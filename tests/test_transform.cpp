/**
 * @file
 * The software-mitigation pass framework's own regression net:
 * name/vocabulary round-trips for the CLI, structural invariants of
 * the in-place thunking strategy (PC provenance, scratch-register
 * discipline, per-pass instrumentation counts), differential
 * transform-correctness over the committed seed corpus and the
 * kernel suite, and the 50-program SLH conformance campaign.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/core.hh"
#include "harness/conformance.hh"
#include "harness/engine.hh"
#include "harness/verify.hh"
#include "isa/generator.hh"
#include "isa/transform.hh"
#include "secure/factory.hh"
#include "trace/gadgets.hh"
#include "trace/spec_suite.hh"

#ifndef SB_CORPUS_DIR
#error "SB_CORPUS_DIR must point at tests/corpus"
#endif

namespace
{

/** The three real passes (None is the identity and tested apart). */
const std::vector<sb::Mitigation> &
activeMitigations()
{
    static const std::vector<sb::Mitigation> roster = {
        sb::Mitigation::Slh,
        sb::Mitigation::Fence,
        sb::Mitigation::Retpoline,
    };
    return roster;
}

// ---------------------------------------------------------------------
// Name round-trips (the `sbsim fuzz --profile/--mitigation` vocabulary)
// ---------------------------------------------------------------------

TEST(Vocabulary, MitigationNamesRoundTrip)
{
    for (const sb::Mitigation m : sb::allMitigations()) {
        sb::Mitigation back;
        ASSERT_TRUE(sb::mitigationFromName(sb::mitigationName(m), back))
            << sb::mitigationName(m);
        EXPECT_EQ(back, m);
        // The CLI diagnostic enumerates exactly the parseable names.
        EXPECT_NE(sb::mitigationVocabulary().find(sb::mitigationName(m)),
                  std::string::npos);
    }
    sb::Mitigation out;
    for (const char *bad : {"", "SLH", "retpolines", "lfence", "nope"})
        EXPECT_FALSE(sb::mitigationFromName(bad, out)) << bad;
    EXPECT_EQ(sb::mitigationVocabulary(), "none|slh|fence|retpoline");
}

TEST(Vocabulary, OpMixProfileNamesRoundTrip)
{
    for (const sb::OpMixProfile p : sb::allOpMixProfiles()) {
        sb::OpMixProfile back;
        ASSERT_TRUE(sb::opMixProfileFromName(sb::opMixProfileName(p),
                                             back))
            << sb::opMixProfileName(p);
        EXPECT_EQ(back, p);
    }
    sb::OpMixProfile out;
    for (const char *bad : {"", "Mixed", "memory", "branchy"})
        EXPECT_FALSE(sb::opMixProfileFromName(bad, out)) << bad;
}

// ---------------------------------------------------------------------
// Structural invariants of the in-place thunking strategy
// ---------------------------------------------------------------------

/**
 * Every original PC must be represented exactly once in the rewritten
 * program (either left in place or relocated into a thunk), glue must
 * be marked -1, and original code slots must keep their indices —
 * programs store code addresses in data memory, so any shift is a
 * silent miscompile.
 */
void
checkProvenance(const sb::Program &original,
                const sb::TransformedProgram &t)
{
    ASSERT_EQ(t.originPc.size(), t.program.code.size());
    ASSERT_GE(t.program.code.size(), original.code.size());
    std::vector<unsigned> seen(original.code.size(), 0);
    for (std::size_t pc = 0; pc < t.originPc.size(); ++pc) {
        const std::int64_t orig = t.originPc[pc];
        if (orig < 0)
            continue;
        ASSERT_LT(static_cast<std::size_t>(orig), seen.size());
        ++seen[static_cast<std::size_t>(orig)];
        // An untouched slot stands for itself.
        if (pc < original.code.size()) {
            EXPECT_EQ(orig, static_cast<std::int64_t>(pc));
        }
    }
    for (std::size_t pc = 0; pc < seen.size(); ++pc)
        EXPECT_EQ(seen[pc], 1u) << "original pc " << pc;
}

TEST(TransformStructure, NoneIsTheIdentity)
{
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const sb::TransformedProgram t =
        sb::applyMitigation(sb::Mitigation::None, gadget.program);
    ASSERT_EQ(t.program.code.size(), gadget.program.code.size());
    for (std::size_t pc = 0; pc < t.originPc.size(); ++pc)
        EXPECT_EQ(t.originPc[pc], static_cast<std::int64_t>(pc));
    EXPECT_EQ(t.stats.hardenedLoads, 0u);
    EXPECT_EQ(t.stats.loweredIndirects, 0u);
}

TEST(TransformStructure, SlhInstrumentsAndKeepsProvenance)
{
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const sb::TransformedProgram t =
        sb::applyMitigation(sb::Mitigation::Slh, gadget.program);
    checkProvenance(gadget.program, t);
    EXPECT_GT(t.stats.instrumentedBranches, 0u);
    EXPECT_GT(t.stats.hardenedLoads, 0u);
    // Three distinct scratch registers the program never names.
    EXPECT_NE(t.stats.maskReg, sb::invalidArchReg);
    EXPECT_NE(t.stats.tmpReg, sb::invalidArchReg);
    EXPECT_NE(t.stats.zeroReg, sb::invalidArchReg);
    EXPECT_NE(t.stats.maskReg, t.stats.tmpReg);
    EXPECT_NE(t.stats.tmpReg, t.stats.zeroReg);
    for (const sb::MicroOp &uop : gadget.program.code) {
        if (uop.hasDst()) {
            EXPECT_NE(uop.dst, t.stats.maskReg);
        }
    }
    EXPECT_EQ(t.program.name, gadget.program.name + "+slh");
}

TEST(TransformStructure, FencePairsEveryInstrumentedBranch)
{
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const sb::TransformedProgram t =
        sb::applyMitigation(sb::Mitigation::Fence, gadget.program);
    checkProvenance(gadget.program, t);
    EXPECT_GT(t.stats.instrumentedBranches, 0u);
    EXPECT_EQ(t.stats.fencesInserted,
              2 * t.stats.instrumentedBranches);
    unsigned fences = 0;
    for (const sb::MicroOp &uop : t.program.code)
        fences += uop.op == sb::Op::Fence;
    EXPECT_EQ(fences, t.stats.fencesInserted);
}

TEST(TransformStructure, RetpolineLowersEveryIndirect)
{
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV2Indirect, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const sb::TransformedProgram t =
        sb::applyMitigation(sb::Mitigation::Retpoline, gadget.program);
    checkProvenance(gadget.program, t);
    EXPECT_GT(t.stats.loweredIndirects, 0u);
    unsigned jmpregs = 0, jrrs = 0;
    for (const sb::MicroOp &uop : t.program.code) {
        jmpregs += uop.op == sb::Op::JmpReg;
        jrrs += uop.op == sb::Op::JmpRegRet;
    }
    EXPECT_EQ(jmpregs, 0u) << "an un-lowered JmpReg survived";
    EXPECT_EQ(jrrs, t.stats.loweredIndirects);
}

TEST(TransformStructure, ProvenanceHoldsOnGeneratedPrograms)
{
    for (const std::uint64_t seed : {7ull, 1000ull, 4242ull}) {
        sb::GeneratorParams gen;
        gen.seed = seed;
        const sb::Program program = sb::generateProgram(gen);
        for (const sb::Mitigation m : activeMitigations()) {
            const sb::TransformedProgram t =
                sb::applyMitigation(m, program);
            checkProvenance(program, t);
        }
    }
}

// ---------------------------------------------------------------------
// Differential transform-correctness: corpus replay
// ---------------------------------------------------------------------

struct CorpusEntry
{
    std::string file;
    std::uint64_t seed = 0;
    sb::OpMixProfile profile = sb::OpMixProfile::Mixed;
    unsigned iters = 32;
};

std::vector<CorpusEntry>
loadCorpus()
{
    std::vector<CorpusEntry> entries;
    std::vector<std::filesystem::path> files;
    for (const auto &dirent :
         std::filesystem::directory_iterator(SB_CORPUS_DIR)) {
        if (dirent.path().extension() == ".seed")
            files.push_back(dirent.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        CorpusEntry entry;
        entry.file = path.filename().string();
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            const auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "seed")
                entry.seed = std::stoull(value, nullptr, 0);
            else if (key == "profile")
                EXPECT_TRUE(
                    sb::opMixProfileFromName(value, entry.profile))
                    << entry.file;
            else if (key == "iters")
                entry.iters = static_cast<unsigned>(std::stoul(value));
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

TEST(TransformCorrectness, CorpusStaysEquivalentUnderEveryTransform)
{
    const auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 8u)
        << "committed corpus went missing from " << SB_CORPUS_DIR;

    for (const sb::Mitigation m : activeMitigations()) {
        for (const CorpusEntry &entry : corpus) {
            sb::FuzzParams params;
            params.baseSeed = entry.seed;
            params.programs = 1;
            params.profiles = {entry.profile};
            params.outerIterations = entry.iters;
            params.mitigation = m;
            const auto specs = sb::fuzzSpecs(params);
            ASSERT_EQ(specs.size(),
                      sb::allSchemeConfigs().size() + 1);
            std::vector<sb::RunOutcome> outcomes;
            for (const sb::RunSpec &spec : specs)
                outcomes.push_back(sb::ExperimentRunner::runOne(spec));
            const sb::FuzzReport report =
                sb::foldFuzzOutcomes(params, outcomes);
            EXPECT_TRUE(report.ok())
                << entry.file << " under " << sb::mitigationName(m)
                << ": "
                << (report.failures.empty()
                        ? "no cells ran"
                        : report.failures[0].kind + ": "
                              + report.failures[0].detail);
        }
    }
}

// ---------------------------------------------------------------------
// Differential transform-correctness: kernel suite
// ---------------------------------------------------------------------

/**
 * Kernels never halt (they are windowed workloads), so equivalence is
 * judged on a bounded prefix: the committed-PC stream of the
 * untransformed kernel must equal the origin-mapped, glue-filtered
 * committed-PC stream of the transformed one, element for element.
 */
TEST(TransformCorrectness, KernelCommitStreamsMatchModuloGlue)
{
    sb::SchemeConfig baseline;
    for (const std::string &name :
         {std::string("505.mcf"), std::string("541.leela"),
          std::string("557.xz")}) {
        const sb::Workload workload = sb::SpecSuite::make(name);

        std::vector<std::uint32_t> reference;
        sb::Core ref(sb::CoreConfig::mega(), baseline,
                     sb::makeScheme(baseline), workload.program);
        ref.setCommitHook(
            [&reference](const sb::DynInst &inst, sb::Cycle) {
                if (reference.size() < 30000)
                    reference.push_back(inst.pc);
            });
        ref.run(30000, 1'000'000);
        ASSERT_GE(reference.size(), 20000u) << name;

        for (const sb::Mitigation m : activeMitigations()) {
            const sb::TransformedProgram t =
                sb::applyMitigation(m, workload.program);
            std::vector<std::uint32_t> mapped;
            sb::Core core(sb::CoreConfig::mega(), baseline,
                          sb::makeScheme(baseline), t.program);
            core.setCommitHook(
                [&mapped, &t](const sb::DynInst &inst, sb::Cycle) {
                    const std::int64_t orig = t.origin(inst.pc);
                    if (orig >= 0 && mapped.size() < 30000)
                        mapped.push_back(
                            static_cast<std::uint32_t>(orig));
                });
            // Generous raw budget: the transform pads the stream with
            // glue, so reaching 30000 *useful* commits takes more
            // committed instructions and cycles.
            core.run(400'000, 4'000'000);

            const std::size_t n =
                std::min(reference.size(), mapped.size());
            ASSERT_GE(n, 20000u)
                << name << " under " << sb::mitigationName(m);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(mapped[i], reference[i])
                    << name << " under " << sb::mitigationName(m)
                    << " diverges at useful commit " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The SLH conformance campaign (sbsim fuzz --mitigation slh)
// ---------------------------------------------------------------------

TEST(MitigationFuzz, FiftyProgramsSevenSchemesStayEquivalentUnderSlh)
{
    sb::FuzzParams params; // 50 programs, full roster, mega core.
    params.mitigation = sb::Mitigation::Slh;
    const sb::FuzzReport report = sb::runFuzz(params);
    EXPECT_EQ(report.cells,
              50 * (sb::allSchemeConfigs().size() + 1));
    for (const sb::FuzzFailure &f : report.failures) {
        ADD_FAILURE() << f.kind << " seed=" << f.seed << ": "
                      << f.detail << "\n  repro: "
                      << f.repro(report.coreName);
    }
    EXPECT_TRUE(report.ok());
}

TEST(MitigationFuzz, ReproLineCarriesTheMitigation)
{
    sb::FuzzFailure f;
    f.seed = 99;
    f.profile = sb::OpMixProfile::MemHeavy;
    f.mitigation = sb::Mitigation::Slh;
    const std::string repro = f.repro("mega");
    EXPECT_NE(repro.find("--seed 99"), std::string::npos) << repro;
    EXPECT_NE(repro.find("--mitigation slh"), std::string::npos)
        << repro;
}

} // anonymous namespace
