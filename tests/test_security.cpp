/**
 * @file
 * End-to-end Spectre-v1 verification (the stand-in for the paper's
 * BOOM-attacks methodology): the unprotected baseline must leak the
 * secret through the cache covert channel, and STT-Rename, STT-Issue
 * and NDA must all block it with clean monitor obligations.
 */

#include <gtest/gtest.h>

#include "harness/attack.hh"

namespace
{

TEST(SpectreV1, BaselineLeaksTheSecret)
{
    sb::SchemeConfig scfg;
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      0xA7);
    EXPECT_TRUE(res.leaked);
    EXPECT_EQ(res.oracleByte, 0xA7);
    EXPECT_EQ(res.timingByte, 0xA7);
    EXPECT_GT(res.transmitViolations, 0u);
}

struct SpectreSchemeTest : ::testing::TestWithParam<sb::Scheme>
{
};

TEST_P(SpectreSchemeTest, SchemeBlocksTheLeak)
{
    sb::SchemeConfig scfg;
    scfg.scheme = GetParam();
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      0xA7);
    EXPECT_FALSE(res.leaked);
    EXPECT_EQ(res.oracleByte, -1);
    EXPECT_NE(res.timingByte, 0xA7);
    EXPECT_EQ(res.transmitViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SpectreSchemeTest,
    ::testing::Values(sb::Scheme::SttRename, sb::Scheme::SttIssue,
                      sb::Scheme::Nda, sb::Scheme::NdaStrict,
                      sb::Scheme::DelayAll),
    [](const ::testing::TestParamInfo<sb::Scheme> &info) {
        std::string name = sb::schemeName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(SpectreV1, DelayOnMissBlocksTheChannelNotTheDataflow)
{
    // DoM parks the transient probe-array miss, so neither receiver
    // recovers the secret — but tainted transmitters still execute
    // when they *hit* in the L1, so the monitor legitimately records
    // transmitter violations. That asymmetry is exactly the
    // sandboxing contract DoM declares (obligesLeakFreedom without
    // obligesTransmitterSafety).
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::DelayOnMiss;
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      0xA7);
    EXPECT_FALSE(res.leaked);
    EXPECT_EQ(res.oracleByte, -1);
    EXPECT_NE(res.timingByte, 0xA7);
}

struct SpectreByteTest : ::testing::TestWithParam<int>
{
};

TEST_P(SpectreByteTest, BaselineLeaksArbitraryBytes)
{
    sb::SchemeConfig scfg;
    const auto secret = static_cast<std::uint8_t>(GetParam());
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      secret, 1234 + secret);
    EXPECT_TRUE(res.leaked) << "secret=" << GetParam();
    EXPECT_EQ(res.oracleByte, GetParam());
}

INSTANTIATE_TEST_SUITE_P(SecretSweep, SpectreByteTest,
                         ::testing::Values(0x01, 0x3C, 0x80, 0xC5,
                                           0xFF));

TEST(SpectreV1, LeaksOnNarrowCoresToo)
{
    sb::SchemeConfig scfg;
    const auto res = sb::runSpectreV1(sb::CoreConfig::medium(), scfg,
                                      0x42);
    EXPECT_TRUE(res.leaked);
}

TEST(SpectreV1, SttIssueBlocksOnNarrowCores)
{
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttIssue;
    const auto res = sb::runSpectreV1(sb::CoreConfig::medium(), scfg,
                                      0x42);
    EXPECT_FALSE(res.leaked);
    EXPECT_EQ(res.transmitViolations, 0u);
}

TEST(SpectreV1, TwoTaintStoresRemainSecure)
{
    // The Sec. 9.2 optimization must not weaken STT-Rename.
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    scfg.twoTaintStores = true;
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      0x99);
    EXPECT_FALSE(res.leaked);
    EXPECT_EQ(res.transmitViolations, 0u);
}

TEST(SpectreV1, TimingReceiverSeparatesHitFromMiss)
{
    sb::SchemeConfig scfg;
    const auto res = sb::runSpectreV1(sb::CoreConfig::mega(), scfg,
                                      0x5C);
    // The hot probe's commit gap must sit far below the miss median.
    EXPECT_GT(res.medianGap, res.minGap * 2.0);
}

} // anonymous namespace
