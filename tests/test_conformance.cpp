/**
 * @file
 * The differential conformance subsystem's own regression net:
 * committed corpus seeds replay under the full scheme roster, the
 * oracle and repro plumbing are exercised against injected faults
 * (a deadlocking scheme, doctored outcomes), the in-core invariant
 * checkers are unit-tested, specKey stability is pinned by golden
 * hashes, and the result cache must shed damaged JSONL lines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "core/core.hh"
#include "core/invariants.hh"
#include "harness/conformance.hh"
#include "harness/engine.hh"
#include "harness/result_cache.hh"
#include "isa/generator.hh"
#include "secure/factory.hh"

#ifndef SB_CORPUS_DIR
#error "SB_CORPUS_DIR must point at tests/corpus"
#endif

namespace
{

// ---------------------------------------------------------------------
// Corpus replay
// ---------------------------------------------------------------------

struct CorpusEntry
{
    std::string file;
    std::uint64_t seed = 0;
    sb::OpMixProfile profile = sb::OpMixProfile::Mixed;
    unsigned iters = 32;
};

std::vector<CorpusEntry>
loadCorpus()
{
    std::vector<CorpusEntry> entries;
    std::vector<std::filesystem::path> files;
    for (const auto &dirent :
         std::filesystem::directory_iterator(SB_CORPUS_DIR)) {
        if (dirent.path().extension() == ".seed")
            files.push_back(dirent.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        CorpusEntry entry;
        entry.file = path.filename().string();
        std::ifstream in(path);
        std::string line;
        bool have_seed = false;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            const auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "seed") {
                entry.seed = std::stoull(value, nullptr, 0);
                have_seed = true;
            } else if (key == "profile") {
                EXPECT_TRUE(
                    sb::opMixProfileFromName(value, entry.profile))
                    << entry.file << ": bad profile '" << value << "'";
            } else if (key == "iters") {
                entry.iters =
                    static_cast<unsigned>(std::stoul(value));
            } else {
                ADD_FAILURE() << entry.file << ": unknown key '" << key
                              << "'";
            }
        }
        EXPECT_TRUE(have_seed) << entry.file << ": missing seed=";
        entries.push_back(std::move(entry));
    }
    return entries;
}

TEST(Corpus, ReplaysCleanUnderEveryScheme)
{
    const auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 8u)
        << "committed corpus went missing from " << SB_CORPUS_DIR;

    for (const CorpusEntry &entry : corpus) {
        sb::FuzzParams params;
        params.baseSeed = entry.seed;
        params.programs = 1;
        params.profiles = {entry.profile};
        params.outerIterations = entry.iters;
        const auto specs = sb::fuzzSpecs(params);
        std::vector<sb::RunOutcome> outcomes;
        for (const sb::RunSpec &spec : specs)
            outcomes.push_back(sb::ExperimentRunner::runOne(spec));
        const sb::FuzzReport report =
            sb::foldFuzzOutcomes(params, outcomes);
        EXPECT_TRUE(report.ok()) << entry.file << ": "
                                 << (report.failures.empty()
                                         ? "no cells ran"
                                         : report.failures[0].kind + ": "
                                               + report.failures[0]
                                                     .detail);
    }
}

// ---------------------------------------------------------------------
// Oracle catches injected faults, with a replayable repro
// ---------------------------------------------------------------------

/** A scheme broken on purpose: it vetoes every select forever, so the
 *  pipeline never makes progress past the first real instruction. */
struct DeadlockScheme : sb::SecureScheme
{
    const char *name() const override { return "Deadlock"; }
    bool selectVeto(const sb::DynInst &, bool) override { return true; }
};

TEST(InjectedFault, DeadlockSchemeTripsTheSoftWatchdog)
{
    sb::GeneratorParams gen;
    gen.seed = 7;
    const sb::Program program = sb::generateProgram(gen);

    sb::SchemeConfig scfg; // Reported as Baseline; the scheme is ours.
    const sb::ConformanceCell cell = sb::runConformanceCell(
        program, sb::CoreConfig::mega(), scfg,
        std::make_unique<DeadlockScheme>(), 4'000'000);
    EXPECT_TRUE(cell.watchdogTripped);
    EXPECT_FALSE(cell.halted);
}

TEST(InjectedFault, FoldReportsDivergenceWithRepro)
{
    sb::FuzzParams params;
    params.baseSeed = 31337;
    params.programs = 1;
    params.profiles = {sb::OpMixProfile::MemHeavy};
    const auto specs = sb::fuzzSpecs(params);
    std::vector<sb::RunOutcome> outcomes;
    for (const sb::RunSpec &spec : specs)
        outcomes.push_back(sb::ExperimentRunner::runOne(spec));
    ASSERT_TRUE(sb::foldFuzzOutcomes(params, outcomes).ok());

    // Corrupt one secure scheme's committed-register digest, as a
    // scheme that corrupted architectural state would.
    outcomes.back().stats["fuzz_reg_hash"] ^= 1;
    const sb::FuzzReport report =
        sb::foldFuzzOutcomes(params, outcomes);
    ASSERT_EQ(report.failures.size(), 1u);
    const sb::FuzzFailure &f = report.failures[0];
    EXPECT_EQ(f.kind, "divergence");
    EXPECT_EQ(f.seed, 31337u);
    EXPECT_EQ(f.profile, sb::OpMixProfile::MemHeavy);
    const std::string repro = f.repro(report.coreName);
    EXPECT_NE(repro.find("--seed 31337"), std::string::npos) << repro;
    EXPECT_NE(repro.find("--profile mem"), std::string::npos) << repro;
    EXPECT_FALSE(report.ok());
}

TEST(InjectedFault, FoldReportsDeadlockAndInvariantTrips)
{
    sb::FuzzParams params;
    params.baseSeed = 424242;
    params.programs = 1;
    const auto specs = sb::fuzzSpecs(params);
    std::vector<sb::RunOutcome> outcomes;
    for (const sb::RunSpec &spec : specs)
        outcomes.push_back(sb::ExperimentRunner::runOne(spec));

    outcomes[1].stats["fuzz_watchdog"] = 1;
    outcomes[1].stats["fuzz_halted"] = 0;
    outcomes[2].stats["fuzz_invariant_violations"] = 3;
    const sb::FuzzReport report =
        sb::foldFuzzOutcomes(params, outcomes);
    ASSERT_EQ(report.failures.size(), 2u);
    EXPECT_EQ(report.failures[0].kind, "deadlock");
    EXPECT_EQ(report.failures[1].kind, "invariant");
}

// ---------------------------------------------------------------------
// Fuzz workload encoding
// ---------------------------------------------------------------------

TEST(FuzzWorkload, RoundTripsAndRejectsMalformed)
{
    const std::string name = sb::fuzzWorkloadName(
        sb::OpMixProfile::BranchHeavy, 0xdeadbeefULL, 48);
    EXPECT_TRUE(sb::isFuzzWorkload(name));
    sb::OpMixProfile profile;
    std::uint64_t seed = 0;
    unsigned iters = 0;
    ASSERT_TRUE(sb::parseFuzzWorkload(name, profile, seed, iters));
    EXPECT_EQ(profile, sb::OpMixProfile::BranchHeavy);
    EXPECT_EQ(seed, 0xdeadbeefULL);
    EXPECT_EQ(iters, 48u);

    for (const char *bad :
         {"fuzz:", "fuzz:nope:seed=1:iters=2", "fuzz:mixed:seed=1",
          "fuzz:mixed:seed=1:iters=0", "541.leela", "gadget:x"}) {
        EXPECT_FALSE(sb::parseFuzzWorkload(bad, profile, seed, iters))
            << bad;
    }
}

// ---------------------------------------------------------------------
// In-core invariant checkers
// ---------------------------------------------------------------------

TEST(Invariants, FlagsCommitOrderViolation)
{
    sb::InvariantChecker inv;
    inv.setActive(true);
    sb::DynInst a;
    a.seq = 5;
    a.completed = true;
    inv.onCommit(a);
    EXPECT_EQ(inv.violations(), 0u);
    sb::DynInst b;
    b.seq = 4; // Out of order.
    b.completed = true;
    inv.onCommit(b);
    EXPECT_EQ(inv.violations(), 1u);
    EXPECT_NE(inv.firstViolation().find("commit order"),
              std::string::npos);
}

TEST(Invariants, FlagsIncompleteAndSquashedCommits)
{
    sb::InvariantChecker inv;
    inv.setActive(true);
    sb::DynInst a;
    a.seq = 1; // Not completed.
    inv.onCommit(a);
    EXPECT_EQ(inv.violations(), 1u);
    sb::DynInst b;
    b.seq = 2;
    b.completed = true;
    b.squashed = true;
    inv.onCommit(b);
    EXPECT_EQ(inv.violations(), 2u);
}

TEST(Invariants, FlagsVisibilityPointRegression)
{
    sb::InvariantChecker inv;
    inv.setActive(true);
    inv.onVisibilityPoint(10);
    inv.onVisibilityPoint(10);
    inv.onVisibilityPoint(12);
    EXPECT_EQ(inv.violations(), 0u);
    inv.onVisibilityPoint(11);
    EXPECT_EQ(inv.violations(), 1u);
}

TEST(Invariants, FlagsWakeupAndForwardingViolations)
{
    sb::InvariantChecker inv;
    inv.setActive(true);
    sb::DynInst op;
    op.seq = 9;
    inv.onIssue(op, true, true);
    EXPECT_EQ(inv.violations(), 0u);
    inv.onIssue(op, true, false); // Unbroadcast operand selected.
    EXPECT_EQ(inv.violations(), 1u);

    sb::DynInst load;
    load.seq = 20;
    load.effAddrValid = true;
    inv.onForward(load, 12);
    EXPECT_EQ(inv.violations(), 1u);
    inv.onForward(load, 20); // Forward from itself / younger.
    EXPECT_EQ(inv.violations(), 2u);
    inv.onForward(load, sb::invalidSeqNum); // No forward: fine.
    EXPECT_EQ(inv.violations(), 2u);
}

TEST(Invariants, CleanAcrossARealRunAndTimingNeutral)
{
    sb::GeneratorParams gen;
    gen.seed = 11;
    gen.profile = sb::OpMixProfile::BranchHeavy;
    const sb::Program program = sb::generateProgram(gen);

    for (const sb::SchemeConfig &scfg : sb::allSchemeConfigs()) {
        // Run once with checkers on and once off: zero violations,
        // and bit-identical timing (the checkers only observe).
        sb::Core on(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                    program);
        on.setInvariantsEnabled(true);
        const sb::RunResult ron = on.run(10'000'000, 10'000'000);
        EXPECT_EQ(on.invariants().violations(), 0u)
            << sb::schemeName(scfg.scheme) << ": "
            << on.invariants().firstViolation();

        sb::Core off(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                     program);
        off.setInvariantsEnabled(false);
        const sb::RunResult roff = off.run(10'000'000, 10'000'000);
        EXPECT_EQ(ron.cycles, roff.cycles);
        EXPECT_EQ(ron.instructions, roff.instructions);
    }
}

// ---------------------------------------------------------------------
// specKey stability (golden hashes)
// ---------------------------------------------------------------------

// Accidental drift in RunSpec::canonical()/specKey() silently retires
// every persisted CI cache cell; this golden pins the key for three
// canonical specs. An *intentional* change (schema bump, new
// canonical field) should update these goldens in the same commit.
TEST(SpecKey, GoldenStability)
{
    sb::RunSpec bench;
    ASSERT_EQ(bench.core.name, "mega");
    ASSERT_EQ(bench.scheme.scheme, sb::Scheme::Baseline);
    bench.workload = "541.leela";

    sb::RunSpec gadget;
    gadget.workload = "gadget:spectre-v1:secret=167:seed=42";
    gadget.scheme.scheme = sb::Scheme::SttRename;

    sb::RunSpec fuzz;
    fuzz.workload =
        sb::fuzzWorkloadName(sb::OpMixProfile::Mixed, 0xC0FFEE, 32);
    fuzz.scheme.scheme = sb::Scheme::DelayOnMiss;
    fuzz.maxCycles = 4'000'000;

    // Schema 5: MitigationConfig joined the canonical serialization
    // (every spec now carries "|mitigation=<name>|").
    EXPECT_EQ(bench.specKey(), "a2d58888409bb91f");
    EXPECT_EQ(gadget.specKey(), "b868eccdb877aa84");
    EXPECT_EQ(fuzz.specKey(), "ed0c76e0c4c7565a");

    // A mitigated cell must address a *different* cache cell than the
    // same spec unmitigated.
    sb::RunSpec mitigated = gadget;
    mitigated.mitigation.kind = sb::Mitigation::Slh;
    EXPECT_EQ(mitigated.specKey(), "b0d45f125f181f39");
    EXPECT_NE(mitigated.specKey(), gadget.specKey());
    EXPECT_NE(mitigated.canonical().find("|mitigation=slh|"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Result-cache robustness
// ---------------------------------------------------------------------

TEST(ResultCacheRobustness, DamagedTailIsSkippedAndCompacted)
{
    const auto dir = std::filesystem::temp_directory_path()
                     / "sb_cache_damage";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto file = dir / "results.jsonl";

    // Two good entries via the real writer.
    sb::RunSpec spec;
    spec.workload = "541.leela";
    spec.measureInsts = 2000;
    spec.warmupInsts = 500;
    const sb::RunOutcome outcome = sb::ExperimentRunner::runOne(spec);
    {
        sb::ResultCache cache(dir.string());
        ASSERT_TRUE(cache.ok());
        cache.store("aaaa000000000001", outcome);
        cache.store("aaaa000000000002", outcome);
    }
    // Damage: editor garbage mid-file would be equally fatal, but the
    // common case is a truncated trailing line from a killed writer.
    {
        std::ofstream out(file, std::ios::app);
        out << "{\"key\": \"aaaa000000000003\", \"outcome\": {\"work";
    }

    {
        sb::ResultCache cache(dir.string());
        ASSERT_TRUE(cache.ok());
        EXPECT_EQ(cache.size(), 2u); // Damage skipped, not fatal.
        sb::RunOutcome loaded;
        EXPECT_TRUE(cache.lookup("aaaa000000000001", loaded));
        EXPECT_EQ(loaded.cycles, outcome.cycles);
        EXPECT_FALSE(cache.lookup("aaaa000000000003", loaded));
        // Appending after damage still lands on a clean line.
        cache.store("aaaa000000000004", outcome);
    }

    // The damaged line was compacted away on load: every line in the
    // rewritten file parses, and the batch is fully recoverable.
    std::ifstream in(file);
    std::string line;
    unsigned lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        sb::Json parsed;
        EXPECT_TRUE(sb::Json::parse(line, parsed)) << line;
    }
    EXPECT_EQ(lines, 3u);
    {
        sb::ResultCache cache(dir.string());
        EXPECT_EQ(cache.size(), 3u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheRobustness, GarbageOnlyFileYieldsEmptyWorkingCache)
{
    const auto dir = std::filesystem::temp_directory_path()
                     / "sb_cache_garbage";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream out(dir / "results.jsonl");
        out << "complete nonsense\n\x01\x02\x03\n{\"key\": 7}\n";
    }
    sb::ResultCache cache(dir.string());
    EXPECT_TRUE(cache.ok());
    EXPECT_EQ(cache.size(), 0u);
    std::filesystem::remove_all(dir);
}

} // anonymous namespace
