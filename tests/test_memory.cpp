/**
 * @file
 * Unit tests for src/memory: cache behaviour, stride prefetcher, and
 * the two-level memory system.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "memory/cache.hh"
#include "memory/memory_system.hh"
#include "memory/prefetcher.hh"

namespace
{

sb::CacheConfig
smallCache()
{
    sb::CacheConfig c;
    c.sizeBytes = 1024; // 2 sets x 8 ways x 64 B.
    c.assoc = 8;
    c.lineBytes = 64;
    c.latency = 3;
    return c;
}

TEST(Cache, MissThenHit)
{
    sb::Cache cache("t", smallCache());
    EXPECT_FALSE(cache.probe(0x100, 10).has_value());
    cache.insert(0x100, 10, 10);
    const auto hit = cache.probe(0x100, 20);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 23u); // now + latency.
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    sb::Cache cache("t", smallCache());
    cache.insert(0x100, 1, 1);
    EXPECT_TRUE(cache.probe(0x13F, 2).has_value());
    EXPECT_FALSE(cache.probe(0x140, 2).has_value());
}

TEST(Cache, InFlightFillAddsResidualLatency)
{
    sb::Cache cache("t", smallCache());
    cache.insert(0x100, 10, 100); // Fill completes at cycle 100.
    const auto hit = cache.probe(0x100, 20);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 103u); // readyAt + latency, not now + latency.
}

TEST(Cache, LruEvictionOrder)
{
    sb::Cache cache("t", smallCache());
    // Fill all 8 ways of set 0 (set stride is 2 lines = 128 B).
    for (unsigned i = 0; i < 8; ++i)
        cache.insert(0x1000 + i * 128, i + 1, i + 1);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(cache.probe(0x1000, 50).has_value());
    cache.insert(0x9000, 60, 60); // Same set, evicts LRU.
    EXPECT_TRUE(cache.probe(0x1000, 70).has_value());
    EXPECT_FALSE(cache.probe(0x1000 + 128, 70).has_value());
}

TEST(Cache, InvalidateRemovesLine)
{
    sb::Cache cache("t", smallCache());
    cache.insert(0x100, 1, 1);
    cache.invalidate(0x100);
    EXPECT_FALSE(cache.probe(0x100, 5).has_value());
}

TEST(Cache, FlushAllEmptiesEverything)
{
    sb::Cache cache("t", smallCache());
    cache.insert(0x100, 1, 1);
    cache.insert(0x200, 1, 1);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x200));
}

TEST(Cache, StatsCountHitsAndMisses)
{
    sb::Cache cache("t", smallCache());
    cache.probe(0x100, 1);
    cache.insert(0x100, 1, 1);
    cache.probe(0x100, 2);
    EXPECT_EQ(cache.stats().value("misses"), 1u);
    EXPECT_EQ(cache.stats().value("hits"), 1u);
}

TEST(Prefetcher, DetectsStableStride)
{
    sb::StridePrefetcher pf("t", 16, 2);
    std::vector<sb::Addr> out;
    for (int i = 0; i < 5; ++i)
        pf.observe(7, 0x1000 + i * 64, out);
    EXPECT_FALSE(out.empty());
    // Prefetches run ahead of the last observed address.
    for (const auto a : out)
        EXPECT_GT(a, 0x1000u + 4 * 64);
}

TEST(Prefetcher, IgnoresRandomPattern)
{
    sb::StridePrefetcher pf("t", 16, 2);
    std::vector<sb::Addr> out;
    const sb::Addr addrs[] = {0x1000, 0x9333, 0x2789, 0xF001, 0x0437,
                              0x8888, 0x1234, 0xCAFE};
    for (const auto a : addrs)
        pf.observe(7, a, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, TracksPerPcIndependently)
{
    sb::StridePrefetcher pf("t", 16, 1);
    std::vector<sb::Addr> out;
    // Interleaved streams with different strides on different PCs.
    for (int i = 0; i < 6; ++i) {
        pf.observe(1, 0x1000 + i * 64, out);
        pf.observe(2, 0x80000 + i * 128, out);
    }
    EXPECT_GE(out.size(), 4u);
}

TEST(MemorySystem, LatencyTiers)
{
    sb::CoreConfig cfg = sb::CoreConfig::mega();
    cfg.l1d.stridePrefetcher = false;
    cfg.l2.stridePrefetcher = false;
    sb::MemorySystem mem(cfg);

    // Cold: full DRAM path.
    const auto cold = mem.access(0x10000, 1, 100, false);
    ASSERT_TRUE(cold.accepted);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_GE(cold.completeAt,
              100 + cfg.memLatency);

    // Warm L1 hit after the fill completes.
    const sb::Cycle later = cold.completeAt + 10;
    const auto warm = mem.access(0x10000, 1, later, false);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.completeAt, later + cfg.l1d.latency);
}

TEST(MemorySystem, L2HitAfterL1Eviction)
{
    sb::CoreConfig cfg = sb::CoreConfig::mega();
    cfg.l1d.stridePrefetcher = false;
    cfg.l2.stridePrefetcher = false;
    sb::MemorySystem mem(cfg);

    auto first = mem.access(0x10000, 1, 1, false);
    mem.l1Cache().invalidate(0x10000);
    const sb::Cycle later = first.completeAt + 10;
    const auto l2hit = mem.access(0x10000, 1, later, false);
    EXPECT_FALSE(l2hit.l1Hit);
    // Much faster than DRAM: an L2 hit plus the L1 fill.
    EXPECT_LT(l2hit.completeAt, later + cfg.memLatency);
}

TEST(MemorySystem, MshrLimitRejects)
{
    sb::CoreConfig cfg = sb::CoreConfig::mega();
    cfg.l1d.mshrs = 2;
    cfg.l1d.stridePrefetcher = false;
    sb::MemorySystem mem(cfg);

    EXPECT_TRUE(mem.access(0x100000, 1, 1, false).accepted);
    EXPECT_TRUE(mem.access(0x200000, 2, 1, false).accepted);
    EXPECT_FALSE(mem.access(0x300000, 3, 1, false).accepted);
    // After the fills complete, capacity returns.
    EXPECT_TRUE(mem.access(0x300000, 3, 1000, false).accepted);
}

TEST(MemorySystem, PrefetcherHidesStreamLatency)
{
    sb::CoreConfig cfg = sb::CoreConfig::mega();
    sb::MemorySystem with(cfg);
    cfg.l1d.stridePrefetcher = false;
    cfg.l2.stridePrefetcher = false;
    sb::MemorySystem without(cfg);

    sb::Cycle t_with = 0;
    sb::Cycle t_without = 0;
    sb::Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        now += 10;
        auto a = with.access(0x100000 + i * 64, 1, now, false);
        auto b = without.access(0x100000 + i * 64, 1, now, false);
        if (a.accepted)
            t_with += a.completeAt - now;
        if (b.accepted)
            t_without += b.completeAt - now;
    }
    EXPECT_LT(t_with, t_without / 2);
}

TEST(MemorySystem, CachedOracleSeesBothLevels)
{
    sb::CoreConfig cfg = sb::CoreConfig::mega();
    cfg.l1d.stridePrefetcher = false;
    sb::MemorySystem mem(cfg);
    mem.access(0x40000, 1, 1, false);
    EXPECT_TRUE(mem.cached(0x40000));
    mem.l1Cache().invalidate(0x40000);
    EXPECT_TRUE(mem.cached(0x40000)); // Still in L2.
    mem.invalidate(0x40000);
    EXPECT_FALSE(mem.cached(0x40000));
}

} // anonymous namespace
