/**
 * @file
 * Property tests over the whole SPEC CPU2017 stand-in suite: every
 * benchmark must build, run deterministically under every scheme,
 * commit forward progress, and satisfy the schemes' security
 * obligations (ground-truth monitor).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "trace/kernels.hh"
#include "trace/spec_suite.hh"

namespace
{

struct WorkloadTest : ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, BuildsAndDisassembles)
{
    const sb::Workload w = sb::SpecSuite::make(GetParam());
    EXPECT_GT(w.program.size(), 10u);
    EXPECT_FALSE(w.program.disassemble().empty());
    // Branch targets were validated by the builder; spot-check loops.
    bool has_backward_branch = false;
    for (std::uint32_t i = 0; i < w.program.size(); ++i) {
        const auto &uop = w.program.code[i];
        if (uop.isBranch() && uop.target < i)
            has_backward_branch = true;
    }
    EXPECT_TRUE(has_backward_branch);
}

TEST_P(WorkloadTest, RunsAndCommitsUnderEveryScheme)
{
    const sb::Workload w = sb::SpecSuite::make(GetParam());
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      w.program);
        const auto r = core.run(8000, 4'000'000);
        EXPECT_GE(r.instructions, 8000u)
            << GetParam() << " / " << sb::schemeName(s);
    }
}

TEST_P(WorkloadTest, DeterministicCycles)
{
    const sb::Workload w = sb::SpecSuite::make(GetParam());
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    sb::Core a(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
               w.program);
    sb::Core b(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
               w.program);
    EXPECT_EQ(a.run(6000, 4'000'000).cycles,
              b.run(6000, 4'000'000).cycles)
        << GetParam();
}

TEST_P(WorkloadTest, SttObligationHoldsEverywhere)
{
    const sb::Workload w = sb::SpecSuite::make(GetParam());
    for (sb::Scheme s : {sb::Scheme::SttRename, sb::Scheme::SttIssue}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      w.program);
        core.run(10000, 4'000'000);
        EXPECT_EQ(core.monitor().transmitViolations(), 0u)
            << GetParam() << " / " << sb::schemeName(s);
    }
}

TEST_P(WorkloadTest, NdaObligationHoldsEverywhere)
{
    const sb::Workload w = sb::SpecSuite::make(GetParam());
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::Nda;
    sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                  w.program);
    core.run(10000, 4'000'000);
    EXPECT_EQ(core.monitor().transmitViolations(), 0u) << GetParam();
    EXPECT_EQ(core.monitor().consumeViolations(), 0u) << GetParam();
}

TEST_P(WorkloadTest, SchemesNeverChangeCommittedState)
{
    // Timing-only schemes: after the same number of commits, the
    // architectural accumulator state must match the baseline.
    const sb::Workload w = sb::SpecSuite::make(GetParam());

    auto signature = [&](sb::Scheme s) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      w.program);
        std::uint64_t commits = 0;
        sb::Word sig = 0;
        core.setCommitHook([&](const sb::DynInst &inst, sb::Cycle) {
            // Hash a fixed window: the final tick can overshoot the
            // commit budget by up to coreWidth-1 instructions.
            if (commits >= 5000)
                return;
            ++commits;
            if (inst.uop.hasDst())
                sig = sig * 1099511628211ULL + inst.result;
        });
        core.run(5000, 4'000'000);
        return std::make_pair(commits, sig);
    };

    const auto base = signature(sb::Scheme::Baseline);
    for (sb::Scheme s : {sb::Scheme::SttRename, sb::Scheme::SttIssue,
                         sb::Scheme::Nda}) {
        const auto got = signature(s);
        EXPECT_EQ(got.first, base.first)
            << GetParam() << " / " << sb::schemeName(s);
        EXPECT_EQ(got.second, base.second)
            << GetParam() << " / " << sb::schemeName(s);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Spec2017, WorkloadTest,
    ::testing::ValuesIn(sb::SpecSuite::benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

TEST(SpecSuite, HasAll22Benchmarks)
{
    EXPECT_EQ(sb::SpecSuite::benchmarkNames().size(), 22u);
    EXPECT_EQ(sb::SpecSuite::all().size(), 22u);
}

TEST(SpecSuite, UnknownNameDies)
{
    EXPECT_DEATH(sb::SpecSuite::make("999.unknown"), "unknown");
}

TEST(Kernels, GeneratorsAreSeedStable)
{
    sb::PointerChaseParams p;
    p.footprintBytes = 1u << 20;
    const sb::Program a = sb::makePointerChaseKernel(p);
    const sb::Program b = sb::makePointerChaseKernel(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.code[i].disassemble(), b.code[i].disassemble());
}

TEST(Kernels, PointerChaseChainsAreClosedCycles)
{
    sb::PointerChaseParams p;
    p.footprintBytes = 256u << 10;
    p.chains = 1;
    p.heterogeneous = false;
    const sb::Program prog = sb::makePointerChaseKernel(p);
    // Follow the chain from the head; it must return to the head
    // after exactly slots hops.
    const sb::Addr head = 1u << 20;
    const std::uint64_t slots = (256u << 10) / 64;
    sb::Addr node = head;
    for (std::uint64_t i = 0; i < slots; ++i) {
        node = prog.memory.read(node);
        ASSERT_GE(node, head);
    }
    EXPECT_EQ(node, head);
}

} // anonymous namespace
