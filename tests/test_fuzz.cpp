/**
 * @file
 * Differential fuzzing: random always-terminating programs must
 * produce bit-identical architectural state under every secure
 * scheme, with clean security obligations and no simulator panics —
 * across seeds, configurations, and generator shapes (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/core.hh"
#include "harness/conformance.hh"
#include "isa/generator.hh"
#include "secure/factory.hh"
#include "trace/random_program.hh"

namespace
{

struct ArchState
{
    std::vector<sb::Word> regs;
    sb::Word memSignature = 0;
    std::uint64_t instructions = 0;
    bool halted = false;

    bool
    operator==(const ArchState &o) const
    {
        return regs == o.regs && memSignature == o.memSignature
               && instructions == o.instructions && halted == o.halted;
    }
};

ArchState
runProgram(const sb::Program &program, sb::Scheme scheme,
           const sb::CoreConfig &cfg, std::uint64_t *transmit_viol,
           std::uint64_t *consume_viol)
{
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    sb::Core core(cfg, scfg, sb::makeScheme(scfg), program);
    const auto r = core.run(50'000'000, 50'000'000);

    ArchState s;
    s.halted = r.halted;
    s.instructions = r.instructions;
    for (sb::ArchReg reg = sb::randomProgramFirstReg;
         reg <= sb::randomProgramLastReg; ++reg) {
        s.regs.push_back(core.readArchReg(reg));
    }
    for (sb::Addr a = 0; a < 4096; a += 8) {
        s.memSignature =
            s.memSignature * 1099511628211ULL
            + core.readMemory(sb::randomProgramMemBase + a);
    }
    if (transmit_viol)
        *transmit_viol = core.monitor().transmitViolations();
    if (consume_viol)
        *consume_viol = core.monitor().consumeViolations();
    return s;
}

struct FuzzSeedTest : ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSeedTest, AllSchemesMatchBaseline)
{
    sb::RandomProgramParams params;
    params.seed = 1000 + GetParam();
    const sb::Program program = sb::makeRandomProgram(params);

    const ArchState base = runProgram(program, sb::Scheme::Baseline,
                                      sb::CoreConfig::mega(), nullptr,
                                      nullptr);
    ASSERT_TRUE(base.halted) << "seed " << params.seed;

    for (sb::Scheme s : {sb::Scheme::SttRename, sb::Scheme::SttIssue,
                         sb::Scheme::Nda, sb::Scheme::NdaStrict,
                         sb::Scheme::DelayOnMiss, sb::Scheme::DelayAll}) {
        std::uint64_t tv = 0;
        std::uint64_t cv = 0;
        const ArchState got = runProgram(program, s,
                                         sb::CoreConfig::mega(), &tv,
                                         &cv);
        EXPECT_TRUE(got == base)
            << "seed " << params.seed << " scheme "
            << sb::schemeName(s);
        // DoM's contract has no dataflow obligation (tainted transmitters may
        // execute on L1 hits); every other scheme must stay clean.
        if (s != sb::Scheme::DelayOnMiss) {
            EXPECT_EQ(tv, 0u) << "seed " << params.seed << " "
                              << sb::schemeName(s);
        }
        if (s == sb::Scheme::Nda || s == sb::Scheme::NdaStrict
            || s == sb::Scheme::DelayAll) {
            EXPECT_EQ(cv, 0u) << "seed " << params.seed;
        }
    }
}

TEST_P(FuzzSeedTest, TwoTaintStoresMatchToo)
{
    sb::RandomProgramParams params;
    params.seed = 2000 + GetParam();
    params.storeFraction = 0.25; // Store-heavy: stress partial issue.
    params.slowBranchFraction = 0.10;
    const sb::Program program = sb::makeRandomProgram(params);

    const ArchState base = runProgram(program, sb::Scheme::Baseline,
                                      sb::CoreConfig::mega(), nullptr,
                                      nullptr);
    ASSERT_TRUE(base.halted);

    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    scfg.twoTaintStores = true;
    sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                  program);
    core.run(50'000'000, 50'000'000);
    ArchState got;
    got.halted = core.halted();
    got.instructions = core.committedInstructions();
    for (sb::ArchReg reg = sb::randomProgramFirstReg;
         reg <= sb::randomProgramLastReg; ++reg) {
        got.regs.push_back(core.readArchReg(reg));
    }
    for (sb::Addr a = 0; a < 4096; a += 8) {
        got.memSignature =
            got.memSignature * 1099511628211ULL
            + core.readMemory(sb::randomProgramMemBase + a);
    }
    EXPECT_TRUE(got == base) << "seed " << params.seed;
    EXPECT_EQ(core.monitor().transmitViolations(), 0u);
}

TEST_P(FuzzSeedTest, NarrowConfigMatchesWide)
{
    // Architectural results are configuration-independent.
    sb::RandomProgramParams params;
    params.seed = 3000 + GetParam();
    params.blocks = 4;
    params.outerIterations = 25;
    const sb::Program program = sb::makeRandomProgram(params);

    const ArchState wide = runProgram(program, sb::Scheme::SttIssue,
                                      sb::CoreConfig::mega(), nullptr,
                                      nullptr);
    const ArchState narrow = runProgram(program, sb::Scheme::SttIssue,
                                        sb::CoreConfig::small(),
                                        nullptr, nullptr);
    EXPECT_TRUE(wide == narrow) << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(0, 12));

TEST(FuzzGenerator, DeterministicForSeed)
{
    sb::RandomProgramParams params;
    params.seed = 77;
    const auto a = sb::makeRandomProgram(params);
    const auto c = sb::makeRandomProgram(params);
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.code[i].disassemble(), c.code[i].disassemble());
}

TEST(FuzzGenerator, DifferentSeedsDiffer)
{
    sb::RandomProgramParams pa;
    pa.seed = 1;
    sb::RandomProgramParams pb;
    pb.seed = 2;
    const auto a = sb::makeRandomProgram(pa);
    const auto c = sb::makeRandomProgram(pb);
    bool differ = a.size() != c.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i)
        differ = a.code[i].disassemble() != c.code[i].disassemble();
    EXPECT_TRUE(differ);
}

TEST(FuzzGenerator, StoreHeavyProgramsTerminate)
{
    sb::RandomProgramParams params;
    params.seed = 99;
    params.storeFraction = 0.35;
    params.loadFraction = 0.35;
    const auto program = sb::makeRandomProgram(params);
    const ArchState s = runProgram(program, sb::Scheme::SttRename,
                                   sb::CoreConfig::mega(), nullptr,
                                   nullptr);
    EXPECT_TRUE(s.halted);
}

// ---------------------------------------------------------------------
// The structured generator (src/isa/generator.hh) through the full
// conformance oracle: every profile, several seeds, every scheme.
// ---------------------------------------------------------------------

struct StructuredSweep : ::testing::TestWithParam<int>
{
};

TEST_P(StructuredSweep, EverySchemeMatchesBaseline)
{
    const auto profiles = sb::allOpMixProfiles();
    sb::FuzzParams params;
    params.baseSeed = 5000 + GetParam();
    params.programs = 1;
    params.profiles = {profiles[GetParam() % profiles.size()]};
    const auto specs = sb::fuzzSpecs(params);
    std::vector<sb::RunOutcome> outcomes;
    for (const sb::RunSpec &spec : specs)
        outcomes.push_back(sb::ExperimentRunner::runOne(spec));
    const sb::FuzzReport report = sb::foldFuzzOutcomes(params, outcomes);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty()
                ? "no cells"
                : report.failures[0].kind + ": "
                      + report.failures[0].detail);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredSweep,
                         ::testing::Range(0, 8));

TEST(StructuredGenerator, DeterministicForSeedAndProfile)
{
    sb::GeneratorParams params;
    params.seed = 424;
    params.profile = sb::OpMixProfile::BranchHeavy;
    const auto a = sb::generateProgram(params);
    const auto b = sb::generateProgram(params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.code[i].disassemble(), b.code[i].disassemble());
    EXPECT_EQ(a.memory.fingerprint(), b.memory.fingerprint());
}

TEST(StructuredGenerator, ProfilesShapeTheOpMix)
{
    auto density = [](sb::OpMixProfile profile, auto pred) {
        sb::GeneratorParams params;
        params.seed = 9;
        params.profile = profile;
        const auto program = sb::generateProgram(params);
        std::size_t hits = 0;
        for (const auto &uop : program.code)
            hits += pred(uop) ? 1 : 0;
        return static_cast<double>(hits)
               / static_cast<double>(program.size());
    };
    auto is_mem = [](const sb::MicroOp &u) {
        return u.isLoad() || u.isStore();
    };
    auto is_branch = [](const sb::MicroOp &u) { return u.isBranch(); };
    EXPECT_GT(density(sb::OpMixProfile::MemHeavy, is_mem),
              density(sb::OpMixProfile::AluHeavy, is_mem));
    EXPECT_GT(density(sb::OpMixProfile::BranchHeavy, is_branch),
              density(sb::OpMixProfile::MemHeavy, is_branch));
}

TEST(StructuredGenerator, EveryProfileTerminatesOnEveryPreset)
{
    for (sb::OpMixProfile profile : sb::allOpMixProfiles()) {
        sb::GeneratorParams gen;
        gen.seed = 77;
        gen.profile = profile;
        const sb::Program program = sb::generateProgram(gen);
        for (const auto &core_cfg :
             {sb::CoreConfig::small(), sb::CoreConfig::mega()}) {
            sb::SchemeConfig scfg;
            scfg.scheme = sb::Scheme::NdaStrict;
            sb::Core core(core_cfg, scfg, sb::makeScheme(scfg),
                          program);
            const auto r = core.run(10'000'000, 10'000'000);
            EXPECT_TRUE(r.halted)
                << sb::opMixProfileName(profile) << " on "
                << core_cfg.name;
        }
    }
}

} // anonymous namespace
