/**
 * @file
 * Unit tests for the differential leakage verifier: gadget workload
 * encoding, the ExperimentRunner dispatch into the attack harness,
 * battery pairing/folding, and — most importantly — that an
 * intentionally leaky scheme which *claims* safety is caught by the
 * differential check.
 */

#include <gtest/gtest.h>

#include "harness/attack.hh"
#include "harness/engine.hh"
#include "harness/verify.hh"
#include "isa/transform.hh"
#include "secure/factory.hh"

namespace
{

sb::RunSpec
gadgetSpec(sb::GadgetKind kind, std::uint8_t secret, sb::Scheme scheme)
{
    sb::RunSpec spec;
    spec.core = sb::CoreConfig::mega();
    spec.scheme.scheme = scheme;
    spec.workload =
        sb::gadgetWorkloadName(kind, secret, sb::verifyGadgetSeed);
    spec.warmupInsts = 0;
    spec.measureInsts = 0;
    return spec;
}

TEST(GadgetWorkloads, EncodingRoundTrips)
{
    for (const auto kind : sb::allGadgets()) {
        const std::string name = sb::gadgetWorkloadName(kind, 0xA7, 42);
        EXPECT_TRUE(sb::isGadgetWorkload(name));

        sb::GadgetKind parsed_kind;
        std::uint8_t secret = 0;
        std::uint64_t seed = 0;
        ASSERT_TRUE(sb::parseGadgetWorkload(name, parsed_kind, secret,
                                            seed))
            << name;
        EXPECT_EQ(parsed_kind, kind);
        EXPECT_EQ(secret, 0xA7);
        EXPECT_EQ(seed, 42u);
    }
}

TEST(GadgetWorkloads, ParseRejectsMalformed)
{
    sb::GadgetKind kind;
    std::uint8_t secret = 0;
    std::uint64_t seed = 0;
    for (const char *bad :
         {"505.mcf", "gadget:", "gadget:spectre-v1",
          "gadget:spectre-v1:secret=167", "gadget:nope:secret=1:seed=2",
          "gadget:spectre-v1:secret=0:seed=2",
          "gadget:spectre-v1:secret=256:seed=2",
          "gadget:spectre-v1:secret=x:seed=2",
          "gadget:spectre-v1:seed=2:secret=167"}) {
        EXPECT_FALSE(sb::parseGadgetWorkload(bad, kind, secret, seed))
            << bad;
    }
    EXPECT_FALSE(sb::isGadgetWorkload("505.mcf"));
}

TEST(GadgetWorkloads, SpecKeySeparatesSecretsAndGadgets)
{
    const auto a = gadgetSpec(sb::GadgetKind::SpectreV1,
                              sb::verifySecretA, sb::Scheme::Baseline);
    const auto a2 = gadgetSpec(sb::GadgetKind::SpectreV1,
                               sb::verifySecretA, sb::Scheme::Baseline);
    const auto b = gadgetSpec(sb::GadgetKind::SpectreV1,
                              sb::verifySecretB, sb::Scheme::Baseline);
    const auto mask =
        gadgetSpec(sb::GadgetKind::SpectreV1Mask, sb::verifySecretA,
                   sb::Scheme::Baseline);
    EXPECT_EQ(a.specKey(), a2.specKey());
    EXPECT_NE(a.specKey(), b.specKey());
    EXPECT_NE(a.specKey(), mask.specKey());
}

TEST(GadgetCells, RunnerDispatchesIntoAttackHarness)
{
    const auto spec = gadgetSpec(sb::GadgetKind::SpectreV1,
                                 sb::verifySecretA, sb::Scheme::Baseline);
    const auto out = sb::ExperimentRunner::runOne(spec);
    EXPECT_EQ(out.workload, spec.workload);
    EXPECT_EQ(out.stat("gadget_leaked"), 1u);
    EXPECT_EQ(out.stat("gadget_oracle_byte"),
              std::uint64_t(sb::verifySecretA) + 1);
    EXPECT_GT(out.stat("gadget_trace_len"), 0u);
    EXPECT_GT(out.transmitViolations, 0u);

    const auto safe = sb::ExperimentRunner::runOne(gadgetSpec(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::Scheme::SttRename));
    EXPECT_EQ(safe.stat("gadget_leaked"), 0u);
    EXPECT_EQ(safe.transmitViolations, 0u);
}

TEST(Battery, SpecsComeInAdjacentSecretPairs)
{
    sb::SchemeConfig baseline;
    const auto specs =
        sb::verifyBatterySpecs(sb::CoreConfig::mega(), {baseline});
    ASSERT_EQ(specs.size(), 2 * sb::allGadgets().size());
    for (std::size_t i = 0; i + 1 < specs.size(); i += 2) {
        sb::GadgetKind ka, kb;
        std::uint8_t sa = 0, sbyte = 0;
        std::uint64_t seed_a = 0, seed_b = 0;
        ASSERT_TRUE(sb::parseGadgetWorkload(specs[i].workload, ka, sa,
                                            seed_a));
        ASSERT_TRUE(sb::parseGadgetWorkload(specs[i + 1].workload, kb,
                                            sbyte, seed_b));
        EXPECT_EQ(ka, kb);
        EXPECT_EQ(sa, sb::verifySecretA);
        EXPECT_EQ(sbyte, sb::verifySecretB);
    }
}

TEST(Battery, FoldAndJsonOverEngineOutcomes)
{
    sb::SchemeConfig baseline;
    std::vector<sb::RunSpec> specs;
    for (std::uint8_t secret : {sb::verifySecretA, sb::verifySecretB}) {
        specs.push_back(gadgetSpec(sb::GadgetKind::SpectreV1, secret,
                                   sb::Scheme::Baseline));
    }
    sb::ExperimentEngine engine;
    const auto outcomes = engine.run(specs);

    const auto matrix = sb::foldVerifyOutcomes(outcomes);
    ASSERT_EQ(matrix.cells.size(), 1u);
    const auto &cell = matrix.cells[0];
    EXPECT_EQ(cell.gadget, "spectre-v1");
    EXPECT_TRUE(cell.leaked);
    EXPECT_TRUE(cell.armed);
    EXPECT_TRUE(cell.diverged);   // A leaky run is secret-dependent.
    EXPECT_EQ(cell.contract.policy, sb::ContractPolicy::None);
    // An unprotected leak must come with the pinpointed repro record
    // from the contract shadow engine.
    EXPECT_TRUE(cell.firstCtViolation.valid());
    EXPECT_GT(cell.ctViolations, 0u);
    EXPECT_TRUE(cell.pass());     // The baseline is *supposed* to leak.
    EXPECT_TRUE(matrix.ok());

    const sb::Json doc = sb::toJson(matrix);
    EXPECT_TRUE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("cells").items().size(), 1u);
    EXPECT_EQ(doc.at("cells").items()[0].at("gadget").asString(),
              "spectre-v1");
}

/**
 * A scheme that *claims* the STT obligation but implements nothing:
 * the whole point of the differential checker is that this must be
 * caught, whatever its self-report says.
 */
class LeakyDummyScheme : public sb::SecureScheme
{
  public:
    const char *name() const override { return "LeakyDummy"; }
    sb::SecurityContract contract() const override
    {
        return sb::SecurityContract::transmitterSafe();
    }
};

TEST(Differential, LeakyDummySchemeIsCaught)
{
    sb::SchemeConfig scfg; // Baseline knobs; the scheme is injected.
    const auto core_cfg = sb::CoreConfig::mega();

    const auto gadget_a = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const auto gadget_b = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretB,
        sb::verifyGadgetSeed);

    const auto res_a = sb::runGadgetAttack(
        gadget_a, core_cfg, scfg, std::make_unique<LeakyDummyScheme>(),
        sb::verifySecretA);
    const auto res_b = sb::runGadgetAttack(
        gadget_b, core_cfg, scfg, std::make_unique<LeakyDummyScheme>(),
        sb::verifySecretB);

    // The do-nothing scheme leaks, and the paired observation traces
    // diverge: the differential signal fires with no knowledge of the
    // receivers at all.
    EXPECT_TRUE(res_a.leaked);
    EXPECT_TRUE(res_b.leaked);
    EXPECT_NE(res_a.traceHash, res_b.traceHash);

    sb::VerifyCell cell;
    cell.gadget = "spectre-v1";
    cell.scheme = sb::Scheme::Baseline;
    cell.contract = LeakyDummyScheme().contract();
    cell.judgedPolicy = cell.contract.policy;
    cell.leaked = res_a.leaked || res_b.leaked;
    cell.armed = res_a.leaked && res_b.leaked;
    cell.diverged = res_a.traceHash != res_b.traceHash
                    || res_a.traceLength != res_b.traceLength
                    || res_a.cycles != res_b.cycles;
    cell.transmitViolations = std::max(res_a.transmitViolations,
                                       res_b.transmitViolations);
    EXPECT_FALSE(cell.pass()) << "a leaky scheme claiming safety "
                                 "must fail verification";
}

TEST(GadgetCells, NewRosterSchemesBlockTheBattery)
{
    // DelayAll satisfies the full dataflow contract: no leak, no
    // violations of either obligation.
    const auto delay_all = sb::ExperimentRunner::runOne(gadgetSpec(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::Scheme::DelayAll));
    EXPECT_EQ(delay_all.stat("gadget_leaked"), 0u);
    EXPECT_EQ(delay_all.transmitViolations, 0u);
    EXPECT_EQ(delay_all.consumeViolations, 0u);

    // DoM blocks the channel without policing dataflow: no leak, yet
    // tainted transmitters legitimately execute on L1 hits — the
    // monitor's nonzero count is the signature of the
    // leak-freedom-only contract.
    const auto dom = sb::ExperimentRunner::runOne(gadgetSpec(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::Scheme::DelayOnMiss));
    EXPECT_EQ(dom.stat("gadget_leaked"), 0u);
    EXPECT_GT(dom.transmitViolations, 0u);
}

TEST(Differential, DomPairedTracesAreEquivalent)
{
    // The leak-freedom contract DoM claims is exactly this: paired
    // secret-flipped runs must be observationally identical even
    // though the monitor records transmitter violations.
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::DelayOnMiss;
    for (const auto kind : sb::allGadgets()) {
        const auto res_a =
            sb::runGadget(kind, sb::CoreConfig::mega(), scfg,
                          sb::verifySecretA, sb::verifyGadgetSeed);
        const auto res_b =
            sb::runGadget(kind, sb::CoreConfig::mega(), scfg,
                          sb::verifySecretB, sb::verifyGadgetSeed);
        EXPECT_EQ(res_a.traceHash, res_b.traceHash)
            << sb::gadgetName(kind);
        EXPECT_EQ(res_a.cycles, res_b.cycles) << sb::gadgetName(kind);
        EXPECT_FALSE(res_a.leaked) << sb::gadgetName(kind);
        EXPECT_FALSE(res_b.leaked) << sb::gadgetName(kind);
    }
}

/**
 * A do-nothing scheme claiming only the observational contract: the
 * new leak-freedom verdict path must catch it through the
 * differential check alone (it has no monitor obligation to trip).
 */
class LeakyObservationalScheme : public sb::SecureScheme
{
  public:
    const char *name() const override { return "LeakyObservational"; }
    sb::SecurityContract contract() const override
    {
        return sb::SecurityContract::sandboxing();
    }
};

TEST(Differential, LeakyLeakFreedomClaimantIsCaught)
{
    sb::SchemeConfig scfg;
    const auto core_cfg = sb::CoreConfig::mega();

    const auto gadget_a = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const auto gadget_b = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretB,
        sb::verifyGadgetSeed);

    const auto res_a = sb::runGadgetAttack(
        gadget_a, core_cfg, scfg,
        std::make_unique<LeakyObservationalScheme>(),
        sb::verifySecretA);
    const auto res_b = sb::runGadgetAttack(
        gadget_b, core_cfg, scfg,
        std::make_unique<LeakyObservationalScheme>(),
        sb::verifySecretB);

    sb::VerifyCell cell;
    cell.gadget = "spectre-v1";
    cell.scheme = sb::Scheme::Baseline;
    // Declares nothing stronger than observational leak freedom.
    cell.contract = sb::SecurityContract::sandboxing();
    cell.judgedPolicy = cell.contract.policy;
    cell.leaked = res_a.leaked || res_b.leaked;
    cell.armed = res_a.leaked && res_b.leaked;
    cell.diverged = res_a.traceHash != res_b.traceHash
                    || res_a.traceLength != res_b.traceLength
                    || res_a.cycles != res_b.cycles;
    EXPECT_TRUE(cell.leaked);
    EXPECT_TRUE(cell.diverged);
    EXPECT_FALSE(cell.pass()) << "a leaky scheme claiming only leak "
                                 "freedom must fail verification";
}

TEST(Battery, FoldCarriesTheContract)
{
    std::vector<sb::RunSpec> specs;
    for (std::uint8_t secret : {sb::verifySecretA, sb::verifySecretB}) {
        specs.push_back(gadgetSpec(sb::GadgetKind::SpectreV1, secret,
                                   sb::Scheme::DelayOnMiss));
    }
    sb::ExperimentEngine engine;
    const auto matrix = sb::foldVerifyOutcomes(engine.run(specs));
    ASSERT_EQ(matrix.cells.size(), 1u);
    const auto &cell = matrix.cells[0];
    EXPECT_EQ(cell.contract.policy, sb::ContractPolicy::Sandboxing);
    EXPECT_EQ(cell.judgedPolicy, sb::ContractPolicy::Sandboxing);
    EXPECT_TRUE(cell.contract.obligesLeakFreedom);
    EXPECT_FALSE(cell.contract.obligesTransmitterSafety);
    EXPECT_FALSE(cell.contract.obligesConsumeSafety);
    EXPECT_FALSE(cell.leaked);
    EXPECT_FALSE(cell.diverged);
    EXPECT_EQ(cell.sandboxViolations, 0u);
    EXPECT_TRUE(cell.pass());

    const sb::Json doc = sb::toJson(matrix);
    const auto &jcell = doc.at("cells").items()[0];
    EXPECT_EQ(jcell.at("contract").asString(), "sandboxing");
    EXPECT_EQ(jcell.at("judged_contract").asString(), "sandboxing");
    EXPECT_TRUE(jcell.at("obliges_leak_freedom").asBool());
}

TEST(Battery, ConstantTimeOverrideJudgesDeclaredCells)
{
    std::vector<sb::RunSpec> specs;
    for (sb::Scheme s :
         {sb::Scheme::Baseline, sb::Scheme::DelayOnMiss}) {
        for (std::uint8_t secret :
             {sb::verifySecretA, sb::verifySecretB}) {
            specs.push_back(
                gadgetSpec(sb::GadgetKind::SpectreV1, secret, s));
        }
    }
    sb::ExperimentEngine engine;
    const auto matrix = sb::foldVerifyOutcomes(
        engine.run(specs), sb::ContractPolicy::ConstantTime);
    ASSERT_EQ(matrix.cells.size(), 2u);
    for (const auto &cell : matrix.cells) {
        if (cell.scheme == sb::Scheme::Baseline) {
            // The override never touches undeclared cells: Baseline
            // keeps its armed-proof role, and its shadow record is the
            // evidence that it violates constant-time.
            EXPECT_EQ(cell.judgedPolicy, sb::ContractPolicy::None);
            EXPECT_GT(cell.ctViolations, 0u);
            EXPECT_TRUE(cell.firstCtViolation.valid());
        } else {
            EXPECT_EQ(cell.judgedPolicy,
                      sb::ContractPolicy::ConstantTime);
            // DoM never lets the secret reach a transmitter on this
            // battery (the transient read is the only access, and the
            // judged CT count is over executed transmitters).
            EXPECT_EQ(cell.ctViolations, 0u);
        }
        EXPECT_TRUE(cell.pass());
    }
    EXPECT_TRUE(matrix.ok());
}

// ---------------------------------------------------------------------
// Software-mitigation closure (isa/transform.hh co-study)
// ---------------------------------------------------------------------

/** One attack run on the unprotected core with @p m applied. */
sb::AttackResult
runMitigated(sb::GadgetKind kind, sb::Mitigation m,
             std::uint8_t secret)
{
    const sb::GadgetProgram gadget =
        sb::buildGadgetProgram(kind, secret, sb::verifyGadgetSeed);
    const sb::TransformedProgram mitigated =
        sb::applyMitigation(m, gadget.program);
    sb::SchemeConfig scfg; // Unprotected Baseline.
    return sb::runGadgetAttack(gadget, sb::CoreConfig::mega(), scfg,
                               sb::makeScheme(scfg), secret,
                               &mitigated);
}

TEST(MitigationClosure, ClosureMapMatchesTheDesign)
{
    using sb::GadgetKind;
    using sb::Mitigation;
    for (const GadgetKind g : sb::allGadgets())
        EXPECT_FALSE(sb::mitigationCloses(Mitigation::None, g));
    for (const Mitigation m : {Mitigation::Slh, Mitigation::Fence}) {
        EXPECT_TRUE(sb::mitigationCloses(m, GadgetKind::SpectreV1));
        EXPECT_TRUE(sb::mitigationCloses(m, GadgetKind::SpectreV1Mask));
        EXPECT_TRUE(
            sb::mitigationCloses(m, GadgetKind::SpectreV1Swapgs));
        EXPECT_FALSE(
            sb::mitigationCloses(m, GadgetKind::SpectreV2Indirect));
        EXPECT_FALSE(
            sb::mitigationCloses(m, GadgetKind::SpectreV2CrossDomain));
        EXPECT_FALSE(
            sb::mitigationCloses(m, GadgetKind::SpectreV4StoreBypass));
    }
    EXPECT_TRUE(sb::mitigationCloses(Mitigation::Retpoline,
                                     GadgetKind::SpectreV2Indirect));
    EXPECT_TRUE(sb::mitigationCloses(Mitigation::Retpoline,
                                     GadgetKind::SpectreV2CrossDomain));
    EXPECT_FALSE(sb::mitigationCloses(Mitigation::Retpoline,
                                      GadgetKind::SpectreV1));
    EXPECT_FALSE(sb::mitigationCloses(Mitigation::Retpoline,
                                      GadgetKind::SpectreV1Swapgs));
    // Nothing in the software roster closes the store-bypass channel.
    for (const Mitigation m : sb::allMitigations())
        EXPECT_FALSE(
            sb::mitigationCloses(m, GadgetKind::SpectreV4StoreBypass));
}

TEST(MitigationClosure, TargetGadgetsFlipToClosedOnBaseline)
{
    const struct
    {
        sb::Mitigation m;
        sb::GadgetKind g;
    } targets[] = {
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV1},
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV1Mask},
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV1Swapgs},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV1},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV1Mask},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV1Swapgs},
        {sb::Mitigation::Retpoline, sb::GadgetKind::SpectreV2Indirect},
        {sb::Mitigation::Retpoline,
         sb::GadgetKind::SpectreV2CrossDomain},
    };
    sb::SchemeConfig scfg;
    for (const auto &t : targets) {
        ASSERT_TRUE(sb::mitigationCloses(t.m, t.g));
        const std::string label = std::string(sb::mitigationName(t.m))
                                  + " x " + sb::gadgetName(t.g);

        // Unmitigated Baseline: demonstrably armed, with the contract
        // shadow engine's pinpointed (cycle, seq, pc) leak record.
        const auto bare =
            sb::runGadget(t.g, sb::CoreConfig::mega(), scfg,
                          sb::verifySecretA, sb::verifyGadgetSeed);
        ASSERT_TRUE(bare.leaked) << label;
        ASSERT_TRUE(bare.firstCtViolation.valid()) << label;

        // Mitigated: the cell flips to PASS — no recovery through
        // either receiver, and the first-violation record is *gone*
        // (the secret never reached a transmitter at all).
        const auto hard = runMitigated(t.g, t.m, sb::verifySecretA);
        EXPECT_FALSE(hard.leaked) << label;
        EXPECT_FALSE(hard.firstCtViolation.valid()) << label;
        EXPECT_EQ(hard.ctViolations, 0u) << label;
    }
}

TEST(MitigationClosure, NonTargetGadgetsStayArmed)
{
    // A pass must not quietly perturb a gadget it does not claim:
    // the attack still recovers the secret through the rewritten
    // program.
    const struct
    {
        sb::Mitigation m;
        sb::GadgetKind g;
    } non_targets[] = {
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV2Indirect},
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV4StoreBypass},
        {sb::Mitigation::Slh, sb::GadgetKind::SpectreV2CrossDomain},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV2Indirect},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV4StoreBypass},
        {sb::Mitigation::Fence, sb::GadgetKind::SpectreV2CrossDomain},
        {sb::Mitigation::Retpoline, sb::GadgetKind::SpectreV1},
        {sb::Mitigation::Retpoline, sb::GadgetKind::SpectreV1Swapgs},
    };
    for (const auto &t : non_targets) {
        ASSERT_FALSE(sb::mitigationCloses(t.m, t.g));
        const auto res = runMitigated(t.g, t.m, sb::verifySecretA);
        EXPECT_TRUE(res.leaked)
            << sb::mitigationName(t.m) << " x " << sb::gadgetName(t.g);
    }
}

TEST(MitigationClosure, WeakenedSlhIsStillCaught)
{
    // SLH with a control-flow-derived (not data-dependent) mask keeps
    // the full pass shape but hardens nothing: transient execution
    // runs the wrong pad's immediate. The verifier must still catch
    // the leak — this is the leaky-dummy-scheme test for transforms.
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV1, sb::verifySecretA,
        sb::verifyGadgetSeed);
    const sb::TransformedProgram weak =
        sb::applySlh(gadget.program, /*data_dependent_mask=*/false);
    // Same instrumentation shape as the honest pass...
    const sb::TransformedProgram honest =
        sb::applySlh(gadget.program, /*data_dependent_mask=*/true);
    EXPECT_EQ(weak.stats.hardenedLoads, honest.stats.hardenedLoads);
    EXPECT_EQ(weak.stats.instrumentedBranches,
              honest.stats.instrumentedBranches);

    sb::SchemeConfig scfg;
    const auto res = sb::runGadgetAttack(
        gadget, sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
        sb::verifySecretA, &weak);
    EXPECT_TRUE(res.leaked);
    EXPECT_TRUE(res.firstCtViolation.valid());

    // ...while the honest mask closes the same gadget.
    const auto closed = sb::runGadgetAttack(
        gadget, sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
        sb::verifySecretA, &honest);
    EXPECT_FALSE(closed.leaked);
    EXPECT_FALSE(closed.firstCtViolation.valid());
}

TEST(MitigationBattery, SpecsHalvesAlignAndFoldJudgesClosure)
{
    sb::SchemeConfig baseline;
    const auto specs = sb::mitigationBatterySpecs(
        sb::CoreConfig::mega(), {baseline}, sb::Mitigation::Slh);
    const std::size_t half = specs.size() / 2;
    ASSERT_EQ(specs.size(), 4 * sb::allGadgets().size());
    for (std::size_t i = 0; i < half; ++i) {
        EXPECT_EQ(specs[i].workload, specs[half + i].workload);
        EXPECT_FALSE(specs[i].mitigation.enabled());
        EXPECT_EQ(specs[half + i].mitigation.kind, sb::Mitigation::Slh);
    }

    sb::ExperimentEngine engine;
    const sb::MitigationReport report = sb::foldMitigationOutcomes(
        sb::Mitigation::Slh, engine.run(specs));
    ASSERT_EQ(report.cells.size(), sb::allGadgets().size());
    for (const sb::MitigationCell &cell : report.cells) {
        // SLH keys on conditional branches: it closes the classic and
        // masked bounds-check bypasses plus the swapgs variant (whose
        // transient entry is also a trained conditional branch).
        const bool is_v1 = cell.gadget == "spectre-v1"
                           || cell.gadget == "spectre-v1-mask"
                           || cell.gadget == "spectre-v1-swapgs";
        EXPECT_EQ(cell.target, is_v1) << cell.gadget;
        EXPECT_EQ(cell.closed, is_v1) << cell.gadget;
        EXPECT_EQ(cell.armed, !is_v1) << cell.gadget;
        EXPECT_GT(cell.cyclesBase, 0u);
        EXPECT_GT(cell.cyclesMitigated, 0u);
        EXPECT_TRUE(cell.pass()) << cell.gadget;
    }
    EXPECT_TRUE(report.ok());

    const sb::Json doc = sb::toJson(report);
    EXPECT_EQ(doc.at("mitigation").asString(), "slh");
    EXPECT_TRUE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("cells").items().size(),
              sb::allGadgets().size());
}

TEST(Differential, SecureSchemeTracesAreEquivalent)
{
    // Positive control for the equivalence check: under STT-Rename
    // the paired traces must be bit-identical, so the differential
    // checker's pass is meaningful (not just an insensitive hash).
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    const auto res_a =
        sb::runGadget(sb::GadgetKind::SpectreV2Indirect,
                      sb::CoreConfig::mega(), scfg, sb::verifySecretA,
                      sb::verifyGadgetSeed);
    const auto res_b =
        sb::runGadget(sb::GadgetKind::SpectreV2Indirect,
                      sb::CoreConfig::mega(), scfg, sb::verifySecretB,
                      sb::verifyGadgetSeed);
    EXPECT_EQ(res_a.traceHash, res_b.traceHash);
    EXPECT_EQ(res_a.traceLength, res_b.traceLength);
    EXPECT_EQ(res_a.cycles, res_b.cycles);
    EXPECT_GT(res_a.traceLength, 0u);
}

} // anonymous namespace
