/**
 * @file
 * Secure-scheme semantics: YRoT helpers, taint propagation through
 * the rename-stage taint RAT and issue-stage taint table, blocking
 * behaviour, and the schemes' ground-truth obligations on targeted
 * mini-programs.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/core.hh"
#include "secure/factory.hh"
#include "secure/nda.hh"
#include "secure/stt_issue.hh"
#include "secure/stt_rename.hh"
#include "secure/taint_util.hh"

namespace
{

TEST(TaintUtil, YoungestRootPicksMaximumValidSeq)
{
    using sb::invalidSeqNum;
    EXPECT_EQ(sb::youngestRoot(invalidSeqNum, invalidSeqNum),
              invalidSeqNum);
    EXPECT_EQ(sb::youngestRoot(5, invalidSeqNum), 5u);
    EXPECT_EQ(sb::youngestRoot(invalidSeqNum, 7), 7u);
    EXPECT_EQ(sb::youngestRoot(5, 7), 7u);
    EXPECT_EQ(sb::youngestRoot(9, 7), 9u);
}

TEST(TaintUtil, RootLiveness)
{
    EXPECT_TRUE(sb::rootLive(10, 5));   // Root younger than VP: live.
    EXPECT_FALSE(sb::rootLive(10, 10)); // At the point: resolved.
    EXPECT_FALSE(sb::rootLive(10, 15));
    EXPECT_FALSE(sb::rootLive(sb::invalidSeqNum, 0));
    EXPECT_EQ(sb::filterRoot(10, 15), sb::invalidSeqNum);
    EXPECT_EQ(sb::filterRoot(10, 5), 10u);
}

/**
 * A mini-program with a long shadow: a slow branch (never taken, on
 * a value that trails a load by a mul chain) covering a dependent
 * load pair. Used to probe blocking behaviour per scheme.
 */
sb::Program
shadowedDependentLoads()
{
    sb::ProgramBuilder b;
    const sb::Addr table = 0x100000;
    // Pointer table: each slot points at the next (valid addresses).
    for (int i = 0; i < 64; ++i)
        b.memory().write(table + 8 * i, table + 8 * ((i + 1) % 64));

    b.movi(1, table);  // p
    b.movi(20, 0);     // i
    b.movi(21, 600);
    b.movi(22, 1);
    b.movi(30, 0x7fffffff); // magic (never equal)
    b.movi(15, 3);
    const auto loop = b.here();
    // Slow branch on a mul chain from the previous iteration's load.
    b.mul(15, 15, 22);
    b.mul(15, 15, 22);
    const auto next = b.futureLabel();
    b.beq(15, 30, next);
    b.bind(next);
    // Dependent load pair: the second address derives from the first.
    b.load(2, 1, 0);   // p = *p (speculative under the branch).
    b.load(3, 2, 0);   // tainted address: blocked under STT.
    b.add(15, 3, 22);  // Feed the next slow branch.
    b.sub(1, 2, 20);   // p for next iteration (r20 is the counter...
    b.add(1, 1, 20);   // ...undone: p = r2).
    b.add(20, 20, 22);
    b.blt(20, 21, loop);
    b.halt();
    return b.build("shadowed-deps");
}

sb::RunResult
runScheme(const sb::Program &p, sb::SchemeConfig scfg, sb::Core **out,
          std::unique_ptr<sb::Core> &holder)
{
    holder = std::make_unique<sb::Core>(sb::CoreConfig::mega(), scfg,
                                        sb::makeScheme(scfg), p);
    *out = holder.get();
    return holder->run(3'000'000, 3'000'000);
}

TEST(SttRename, BlocksTaintedTransmitters)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(core->stats().value("scheme_select_blocks"), 100u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
}

TEST(SttIssue, KillsTaintedSelectionsIntoNops)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttIssue;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    // Issue-time tainting wastes slots on kills (Fig. 4 step 4)...
    EXPECT_GT(core->stats().value("scheme_issue_kills"), 50u);
    // ...and masks ready afterwards (back-propagated YRoT).
    EXPECT_GT(core->stats().value("scheme_select_blocks"), 50u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
}

TEST(Nda, DefersSpeculativeLoadBroadcasts)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::Nda;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(core->stats().value("deferred_broadcasts"), 100u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
    EXPECT_EQ(core->monitor().consumeViolations(), 0u);
}

TEST(Baseline, LeaksOnTheSameProgram)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    runScheme(p, scfg, &core, holder);
    // The unprotected core freely transmits speculative data.
    EXPECT_GT(core->monitor().transmitViolations(), 0u);
    EXPECT_GT(core->monitor().consumeViolations(), 0u);
}

TEST(NdaStrict, AlsoDefersAluResults)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::NdaStrict;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);

    sb::SchemeConfig perm;
    perm.scheme = sb::Scheme::Nda;
    sb::Core *core2;
    std::unique_ptr<sb::Core> holder2;
    runScheme(p, perm, &core2, holder2);
    // Strict defers at least as much as permissive.
    EXPECT_GE(core->stats().value("deferred_broadcasts"),
              core2->stats().value("deferred_broadcasts"));
    EXPECT_EQ(core->monitor().consumeViolations(), 0u);
}

TEST(Schemes, IdenticalArchitecturalResults)
{
    const sb::Program p = shadowedDependentLoads();
    std::vector<sb::Word> results;
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda,
                         sb::Scheme::NdaStrict}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      p);
        const auto r = core.run(3'000'000, 3'000'000);
        ASSERT_TRUE(r.halted) << sb::schemeName(s);
        results.push_back(core.readArchReg(3));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[0]);
}

TEST(Schemes, OrderingOnShadowedLoads)
{
    // On a workload dominated by tainted transmitters, the baseline
    // must be fastest and every scheme slower or equal.
    const sb::Program p = shadowedDependentLoads();
    std::map<sb::Scheme, std::uint64_t> cycles;
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      p);
        cycles[s] = core.run(3'000'000, 3'000'000).cycles;
    }
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::SttRename]);
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::SttIssue]);
    EXPECT_LE(cycles[sb::Scheme::Baseline], cycles[sb::Scheme::Nda]);
}

TEST(SchemeFactory, CreatesEveryKind)
{
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda,
                         sb::Scheme::NdaStrict}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        auto scheme = sb::makeScheme(scfg);
        ASSERT_TRUE(scheme);
        EXPECT_EQ(scheme->kind(), s);
        EXPECT_STREQ(scheme->name(), sb::schemeName(s));
    }
}

TEST(SchemeFactory, NdaDisablesSpeculativeScheduling)
{
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::Nda;
    EXPECT_FALSE(sb::makeScheme(scfg)->allowsSpeculativeScheduling());
    scfg.ndaKeepSpeculativeScheduling = true;
    EXPECT_TRUE(sb::makeScheme(scfg)->allowsSpeculativeScheduling());

    sb::SchemeConfig stt;
    stt.scheme = sb::Scheme::SttRename;
    EXPECT_TRUE(sb::makeScheme(stt)->allowsSpeculativeScheduling());
}

} // anonymous namespace
