/**
 * @file
 * Secure-scheme semantics: YRoT helpers, taint propagation through
 * the rename-stage taint RAT and issue-stage taint table, blocking
 * behaviour, and the schemes' ground-truth obligations on targeted
 * mini-programs.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/core.hh"
#include "secure/delay_all.hh"
#include "secure/dom.hh"
#include "secure/factory.hh"
#include "secure/nda.hh"
#include "secure/stt_issue.hh"
#include "secure/stt_rename.hh"
#include "secure/taint_util.hh"

namespace
{

TEST(TaintUtil, YoungestRootPicksMaximumValidSeq)
{
    using sb::invalidSeqNum;
    EXPECT_EQ(sb::youngestRoot(invalidSeqNum, invalidSeqNum),
              invalidSeqNum);
    EXPECT_EQ(sb::youngestRoot(5, invalidSeqNum), 5u);
    EXPECT_EQ(sb::youngestRoot(invalidSeqNum, 7), 7u);
    EXPECT_EQ(sb::youngestRoot(5, 7), 7u);
    EXPECT_EQ(sb::youngestRoot(9, 7), 9u);
}

TEST(TaintUtil, RootLiveness)
{
    EXPECT_TRUE(sb::rootLive(10, 5));   // Root younger than VP: live.
    EXPECT_FALSE(sb::rootLive(10, 10)); // At the point: resolved.
    EXPECT_FALSE(sb::rootLive(10, 15));
    EXPECT_FALSE(sb::rootLive(sb::invalidSeqNum, 0));
    EXPECT_EQ(sb::filterRoot(10, 15), sb::invalidSeqNum);
    EXPECT_EQ(sb::filterRoot(10, 5), 10u);
}

/**
 * A mini-program with a long shadow: a slow branch (never taken, on
 * a value that trails a load by a mul chain) covering a dependent
 * load pair. Used to probe blocking behaviour per scheme.
 */
sb::Program
shadowedDependentLoads()
{
    sb::ProgramBuilder b;
    const sb::Addr table = 0x100000;
    // Pointer table: each slot points at the next (valid addresses).
    for (int i = 0; i < 64; ++i)
        b.memory().write(table + 8 * i, table + 8 * ((i + 1) % 64));

    b.movi(1, table);  // p
    b.movi(20, 0);     // i
    b.movi(21, 600);
    b.movi(22, 1);
    b.movi(30, 0x7fffffff); // magic (never equal)
    b.movi(15, 3);
    const auto loop = b.here();
    // Slow branch on a mul chain from the previous iteration's load.
    b.mul(15, 15, 22);
    b.mul(15, 15, 22);
    const auto next = b.futureLabel();
    b.beq(15, 30, next);
    b.bind(next);
    // Dependent load pair: the second address derives from the first.
    b.load(2, 1, 0);   // p = *p (speculative under the branch).
    b.load(3, 2, 0);   // tainted address: blocked under STT.
    b.add(15, 3, 22);  // Feed the next slow branch.
    b.sub(1, 2, 20);   // p for next iteration (r20 is the counter...
    b.add(1, 1, 20);   // ...undone: p = r2).
    b.add(20, 20, 22);
    b.blt(20, 21, loop);
    b.halt();
    return b.build("shadowed-deps");
}

sb::RunResult
runScheme(const sb::Program &p, sb::SchemeConfig scfg, sb::Core **out,
          std::unique_ptr<sb::Core> &holder)
{
    holder = std::make_unique<sb::Core>(sb::CoreConfig::mega(), scfg,
                                        sb::makeScheme(scfg), p);
    *out = holder.get();
    return holder->run(3'000'000, 3'000'000);
}

TEST(SttRename, BlocksTaintedTransmitters)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttRename;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(core->stats().value("scheme_select_blocks"), 100u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
}

TEST(SttIssue, KillsTaintedSelectionsIntoNops)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::SttIssue;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    // Issue-time tainting wastes slots on kills (Fig. 4 step 4)...
    EXPECT_GT(core->stats().value("scheme_issue_kills"), 50u);
    // ...and masks ready afterwards (back-propagated YRoT).
    EXPECT_GT(core->stats().value("scheme_select_blocks"), 50u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
}

TEST(Nda, DefersSpeculativeLoadBroadcasts)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::Nda;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(core->stats().value("deferred_broadcasts"), 100u);
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
    EXPECT_EQ(core->monitor().consumeViolations(), 0u);
}

TEST(Baseline, LeaksOnTheSameProgram)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    runScheme(p, scfg, &core, holder);
    // The unprotected core freely transmits speculative data.
    EXPECT_GT(core->monitor().transmitViolations(), 0u);
    EXPECT_GT(core->monitor().consumeViolations(), 0u);
}

TEST(NdaStrict, AlsoDefersAluResults)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::NdaStrict;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);

    sb::SchemeConfig perm;
    perm.scheme = sb::Scheme::Nda;
    sb::Core *core2;
    std::unique_ptr<sb::Core> holder2;
    runScheme(p, perm, &core2, holder2);
    // Strict defers at least as much as permissive.
    EXPECT_GE(core->stats().value("deferred_broadcasts"),
              core2->stats().value("deferred_broadcasts"));
    EXPECT_EQ(core->monitor().consumeViolations(), 0u);
}

/**
 * shadowedDependentLoads() with the pointer table spread at 4 KB
 * stride: every slot maps to the same L1 set, so the chase misses on
 * (nearly) every lap — each one a speculative demand miss under the
 * slow branch's shadow, i.e. exactly what Delay-on-Miss must park.
 */
sb::Program
thrashingShadowedLoads()
{
    sb::ProgramBuilder b;
    const sb::Addr table = 0x100000;
    const sb::Addr stride = 4096;
    for (int i = 0; i < 64; ++i) {
        b.memory().write(table + stride * i,
                         table + stride * ((i + 1) % 64));
    }

    b.movi(1, table);  // p
    b.movi(20, 0);     // i
    b.movi(21, 300);
    b.movi(22, 1);
    b.movi(30, 0x7fffffff); // magic (never equal)
    b.movi(15, 3);
    const auto loop = b.here();
    b.mul(15, 15, 22);
    b.mul(15, 15, 22);
    const auto next = b.futureLabel();
    b.beq(15, 30, next);
    b.bind(next);
    b.load(2, 1, 0);   // p = *p: a cold miss under the shadow.
    b.add(15, 2, 22);  // Feed the next slow branch.
    b.add(1, 2, 20);   // p for the next iteration (r20 stays 0...
    b.sub(1, 1, 20);   // ...undone: p = r2).
    b.add(20, 20, 22);
    b.blt(20, 21, loop);
    b.halt();
    return b.build("thrashing-shadowed");
}

TEST(DelayOnMiss, ParksSpeculativeMissesUntilSafe)
{
    const sb::Program p = thrashingShadowedLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::DelayOnMiss;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    // The set-thrashing chase misses under the shadow on (nearly)
    // every lap: those demand accesses must have been parked.
    EXPECT_GT(core->stats().value("scheme_miss_delays"), 50u);
    // Every parked load was eventually released or squashed.
    auto *dom = dynamic_cast<sb::DomScheme *>(&core->scheme());
    ASSERT_NE(dom, nullptr);
    EXPECT_EQ(dom->parkedLoads(), 0u);
    // The delays are pure timing: architectural state is untouched
    // (r20 counted all 300 laps).
    EXPECT_EQ(core->readArchReg(20), 300u);
}

TEST(DelayOnMiss, SpeculativeHitsProceed)
{
    // The 64-slot pointer table (512 B) becomes L1-resident after the
    // first lap, so DoM — which only delays *misses* — must end up
    // much closer to baseline than DelayAll, which delays every
    // speculative load forever.
    const sb::Program p = shadowedDependentLoads();
    std::map<sb::Scheme, std::uint64_t> cycles;
    for (sb::Scheme s : {sb::Scheme::DelayOnMiss, sb::Scheme::DelayAll}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      p);
        cycles[s] = core.run(3'000'000, 3'000'000).cycles;
    }
    EXPECT_LT(cycles[sb::Scheme::DelayOnMiss],
              cycles[sb::Scheme::DelayAll]);
}

TEST(DelayAll, NoLoadIssuesSpeculatively)
{
    const sb::Program p = shadowedDependentLoads();
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::DelayAll;
    sb::Core *core;
    std::unique_ptr<sb::Core> holder;
    const auto r = runScheme(p, scfg, &core, holder);
    EXPECT_TRUE(r.halted);
    // The veto fires in the ready logic, never a kill or a park.
    EXPECT_GT(core->stats().value("scheme_select_blocks"), 100u);
    EXPECT_EQ(core->stats().value("scheme_issue_kills"), 0u);
    EXPECT_EQ(core->stats().value("scheme_miss_delays"), 0u);
    // A load that never executes speculatively satisfies the NDA
    // obligation (and hence STT's) by construction.
    EXPECT_EQ(core->monitor().transmitViolations(), 0u);
    EXPECT_EQ(core->monitor().consumeViolations(), 0u);
}

TEST(Schemes, ContractsMatchTheRoster)
{
    struct Expect
    {
        sb::Scheme scheme;
        sb::ContractPolicy policy;
        bool transmitter;
        bool consume;
        bool leakFree;
    };
    const Expect expected[] = {
        {sb::Scheme::Baseline, sb::ContractPolicy::None, false, false,
         false},
        {sb::Scheme::SttRename, sb::ContractPolicy::TransmitterSafe,
         true, false, true},
        {sb::Scheme::SttIssue, sb::ContractPolicy::TransmitterSafe,
         true, false, true},
        {sb::Scheme::Nda, sb::ContractPolicy::ConsumeSafe, true, true,
         true},
        {sb::Scheme::NdaStrict, sb::ContractPolicy::ConsumeSafe, true,
         true, true},
        {sb::Scheme::DelayOnMiss, sb::ContractPolicy::Sandboxing, false,
         false, true},
        {sb::Scheme::DelayAll, sb::ContractPolicy::ConsumeSafe, true,
         true, true},
    };
    for (const Expect &e : expected) {
        sb::SchemeConfig scfg;
        scfg.scheme = e.scheme;
        const sb::SecurityContract c = sb::makeScheme(scfg)->contract();
        EXPECT_EQ(c.policy, e.policy) << sb::schemeName(e.scheme);
        EXPECT_EQ(c.obligesTransmitterSafety, e.transmitter)
            << sb::schemeName(e.scheme);
        EXPECT_EQ(c.obligesConsumeSafety, e.consume)
            << sb::schemeName(e.scheme);
        EXPECT_EQ(c.obligesLeakFreedom, e.leakFree)
            << sb::schemeName(e.scheme);
    }
}

TEST(Schemes, IdenticalArchitecturalResults)
{
    const sb::Program p = shadowedDependentLoads();
    std::vector<sb::Word> results;
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda,
                         sb::Scheme::NdaStrict, sb::Scheme::DelayOnMiss,
                         sb::Scheme::DelayAll}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      p);
        const auto r = core.run(3'000'000, 3'000'000);
        ASSERT_TRUE(r.halted) << sb::schemeName(s);
        results.push_back(core.readArchReg(3));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[0]);
}

TEST(Schemes, OrderingOnShadowedLoads)
{
    // On a workload dominated by tainted transmitters, the baseline
    // must be fastest and every scheme slower or equal.
    const sb::Program p = shadowedDependentLoads();
    std::map<sb::Scheme, std::uint64_t> cycles;
    for (sb::Scheme s : {sb::Scheme::Baseline, sb::Scheme::SttRename,
                         sb::Scheme::SttIssue, sb::Scheme::Nda,
                         sb::Scheme::DelayOnMiss, sb::Scheme::DelayAll}) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        sb::Core core(sb::CoreConfig::mega(), scfg, sb::makeScheme(scfg),
                      p);
        cycles[s] = core.run(3'000'000, 3'000'000).cycles;
    }
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::SttRename]);
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::SttIssue]);
    EXPECT_LE(cycles[sb::Scheme::Baseline], cycles[sb::Scheme::Nda]);
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::DelayOnMiss]);
    EXPECT_LE(cycles[sb::Scheme::Baseline],
              cycles[sb::Scheme::DelayAll]);
}

TEST(SchemeFactory, CreatesEveryKind)
{
    for (sb::Scheme s : sb::allSchemes()) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        auto scheme = sb::makeScheme(scfg);
        ASSERT_TRUE(scheme);
        EXPECT_EQ(scheme->kind(), s);
        EXPECT_STREQ(scheme->name(), sb::schemeName(s));
    }
}

TEST(SchemeFactory, NdaDisablesSpeculativeScheduling)
{
    sb::SchemeConfig scfg;
    scfg.scheme = sb::Scheme::Nda;
    EXPECT_FALSE(sb::makeScheme(scfg)->allowsSpeculativeScheduling());
    scfg.ndaKeepSpeculativeScheduling = true;
    EXPECT_TRUE(sb::makeScheme(scfg)->allowsSpeculativeScheduling());

    sb::SchemeConfig stt;
    stt.scheme = sb::Scheme::SttRename;
    EXPECT_TRUE(sb::makeScheme(stt)->allowsSpeculativeScheduling());
}

} // anonymous namespace
